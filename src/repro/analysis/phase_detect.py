"""Change-point detection on metric streams.

§3.1's payoff was *knowing the instant something changed*: "Knowing the
instant when something changed let us focus the investigation." This module
finds those instants automatically with a simple, robust sliding-window
mean-shift detector: a transition is declared where the mean of the next
window differs from the mean of the previous window by more than
``threshold`` (relative), with a minimum segment length to suppress noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.timeseries import MetricSeries
from repro.errors import ReproError


@dataclass(frozen=True)
class PhaseSegment:
    """One detected phase.

    Attributes:
        start_index / end_index: half-open sample range [start, end).
        start_x / end_x: sample positions of the range.
        mean: mean metric value across the segment.
    """

    start_index: int
    end_index: int
    start_x: float
    end_x: float
    mean: float

    @property
    def length(self) -> int:
        """Number of samples in the segment."""
        return self.end_index - self.start_index


def transition_points(
    series: MetricSeries,
    *,
    window: int = 10,
    threshold: float = 0.3,
    min_gap: int | None = None,
    level_floor_fraction: float = 0.1,
) -> list[int]:
    """Indices where the metric's local mean shifts by > ``threshold``.

    Args:
        series: the metric stream.
        window: samples per side of the comparison windows.
        threshold: relative mean shift that counts as a transition
            (|after - before| over the local level).
        min_gap: minimum samples between reported transitions
            (default: ``window``).
        level_floor_fraction: the local level is floored at this fraction
            of the series' global range, so near-zero segments (IPC 0.03
            after the Fig. 3a collapse) don't turn their own noise into
            spurious relative shifts.

    Returns:
        Sorted sample indices (each is the first sample of the new phase).
    """
    if window < 1:
        raise ReproError(f"window must be >= 1, got {window}")
    if min_gap is None:
        min_gap = window
    y = np.asarray(series.y, dtype=float)
    n = len(y)
    if n < 2 * window:
        return []
    finite = y[np.isfinite(y)]
    span = float(np.max(finite) - np.min(finite)) if len(finite) else 0.0
    floor = max(level_floor_fraction * span, 1e-9)
    # Rolling means and variances before/after each candidate point.
    clean = np.nan_to_num(y)
    csum = np.cumsum(np.insert(clean, 0, 0.0))
    csum2 = np.cumsum(np.insert(clean**2, 0, 0.0))

    def _stats(lo: int, hi: int) -> tuple[float, float]:
        w = hi - lo
        mean = (csum[hi] - csum[lo]) / w
        var = max((csum2[hi] - csum2[lo]) / w - mean * mean, 0.0)
        return mean, var

    shifts = []
    for i in range(window, n - window):
        before, var_b = _stats(i - window, i)
        after, var_a = _stats(i, i + window)
        shift = abs(after - before)
        # Welch-style significance: the shift must stand out from the
        # windows' own noise, not just from the level.
        sem = np.sqrt((var_b + var_a) / window)
        if shift < 4.0 * sem:
            continue
        denom = max(abs(before), floor)
        shifts.append((shift / denom, i))
    out: list[int] = []
    for magnitude, index in sorted(shifts, reverse=True):
        if magnitude < threshold:
            break
        if all(abs(index - seen) >= min_gap for seen in out):
            out.append(index)
    return sorted(out)


def detect_phases(
    series: MetricSeries,
    *,
    window: int = 10,
    threshold: float = 0.3,
) -> list[PhaseSegment]:
    """Segment a metric stream at its transitions.

    Returns at least one segment covering the whole series.
    """
    cuts = transition_points(series, window=window, threshold=threshold)
    bounds = [0, *cuts, len(series)]
    segments = []
    y = np.asarray(series.y, dtype=float)
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        if hi <= lo:
            continue
        segments.append(
            PhaseSegment(
                start_index=lo,
                end_index=hi,
                start_x=float(series.x[lo]),
                end_x=float(series.x[hi - 1]),
                mean=float(np.nanmean(y[lo:hi])),
            )
        )
    return segments
