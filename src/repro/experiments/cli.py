"""``python -m repro.experiments`` — run specs, list the library,
regenerate the frozen signatures.

Exit status: 0 on success, 2 for any typed configuration error
(malformed spec, unknown workload, bad flags — argparse's own exit
code for bad usage is also 2).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import ReproError

from repro.experiments import library, report, runner, signatures
from repro.experiments import spec as specmod

#: Default output root, matching the per-figure benchmarks.
DEFAULT_OUT = Path("benchmarks") / "out"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Deterministic experiment runner over the workload library.",
    )
    parser.add_argument(
        "--regen-signatures",
        action="store_true",
        help="rewrite the frozen workload-signature golden and exit",
    )
    parser.add_argument(
        "--signatures",
        type=Path,
        default=signatures.GOLDEN_RELPATH,
        help="golden signature file (default: %(default)s)",
    )
    sub = parser.add_subparsers(dest="command")

    run_p = sub.add_parser("run", help="run one experiment spec")
    run_p.add_argument("spec", type=Path, help="spec file (.toml or .json)")
    run_p.add_argument(
        "--out", type=Path, default=DEFAULT_OUT,
        help="artifact root (default: %(default)s)",
    )
    run_p.add_argument(
        "--jobs", type=int, default=1,
        help="parallel worker processes (never changes the artifact bytes)",
    )
    run_p.add_argument(
        "--formats", default=",".join(report.FORMATS),
        help="comma-separated subset of json,csv,md (default: all)",
    )

    sub.add_parser("list", help="list the workload library")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    spec = specmod.load(args.spec)
    formats = tuple(f for f in args.formats.split(",") if f)
    artifact = runner.run(
        spec, jobs=args.jobs, out_dir=args.out, formats=formats
    )
    out = Path(args.out) / spec.name
    print(
        f"{spec.name}: {len(artifact['cells'])} cell(s) -> "
        f"{out}/results.{{{','.join(formats)}}}"
    )
    return 0


def _cmd_list() -> int:
    for name in library.names():
        workload = library.resolve(name)
        phases = len(workload.phases)
        repeat = f" x{workload.repeat}" if workload.repeat > 1 else ""
        print(f"{name:24s} {phases:2d} phase(s){repeat}")
    print(
        "\nmodifiers: NAME@icc (compiler), NAME#i (endless phase i), "
        "NAME/k (budgets / k)"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.regen_signatures:
            path = signatures.write_golden(args.signatures)
            print(f"wrote {path}")
            return 0
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "list":
            return _cmd_list()
    except ReproError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2
    parser.print_help()
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
