"""Table rendering."""

import pytest

from repro.util.tabulate import Align, ColumnFormat, render_table


class TestColumnFormat:
    def test_right_align_pads_left(self):
        col = ColumnFormat("N", width=5)
        assert col.format_cell(42) == "   42"

    def test_left_align_pads_right(self):
        col = ColumnFormat("NAME", width=6, align=Align.LEFT)
        assert col.format_cell("ab") == "ab    "

    def test_truncate(self):
        col = ColumnFormat("CMD", width=4, align=Align.LEFT, truncate=True)
        assert col.format_cell("verylongcommand") == "very"

    def test_no_truncate_grows(self):
        col = ColumnFormat("N", width=2)
        assert col.format_cell("12345") == "12345"

    def test_custom_render(self):
        col = ColumnFormat("X", width=6, render=lambda v: f"{v:.1f}")
        assert col.format_cell(1.96) == "   2.0"

    def test_header_same_geometry(self):
        col = ColumnFormat("COMMAND", width=4, align=Align.LEFT, truncate=True)
        assert col.format_header() == "COMM"


class TestRenderTable:
    def test_header_and_rows(self):
        cols = [ColumnFormat("A", 3), ColumnFormat("B", 3, align=Align.LEFT)]
        text = render_table(cols, [[1, "x"], [2, "y"]])
        lines = text.splitlines()
        assert lines[0] == "  A B"
        assert lines[1] == "  1 x"
        assert lines[2] == "  2 y"

    def test_no_header(self):
        cols = [ColumnFormat("A", 3)]
        assert render_table(cols, [[7]], header=False) == "  7"

    def test_arity_mismatch_raises(self):
        cols = [ColumnFormat("A", 3)]
        with pytest.raises(ValueError):
            render_table(cols, [[1, 2]])

    def test_trailing_whitespace_stripped(self):
        cols = [ColumnFormat("A", 3, align=Align.LEFT)]
        assert render_table(cols, [["x"]]).splitlines()[1] == "x"
