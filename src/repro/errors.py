"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro package."""


class PerfError(ReproError):
    """Base class for perf_event subsystem errors."""


class PerfNotSupportedError(PerfError):
    """The running kernel does not expose a usable perf_event PMU.

    Raised by the real syscall backend when ``perf_event_open`` fails with
    ``ENOENT``/``ENOSYS``/``EACCES`` in a way that indicates the facility is
    unavailable rather than the request being malformed.
    """


class PerfPermissionError(PerfError):
    """The caller may not monitor the requested task.

    Mirrors the paper's footnote 1: a non-privileged user can only watch
    processes they own (EPERM/EACCES from the kernel).
    """


class NoSuchTaskError(PerfError):
    """The monitored task does not exist (ESRCH)."""


class TransientPerfError(PerfError):
    """A perf operation failed in a way that is safe to retry.

    The kernel (real or simulated) reported a condition that does not
    invalidate the counter or its target — the same call may well succeed
    if reissued. Consumers (:class:`~repro.core.sampler.Sampler`,
    :class:`~repro.core.proclist.ProcessList`) retry these with a bounded
    backoff instead of dropping the task.
    """


class PerfInterruptedError(TransientPerfError):
    """A perf syscall was interrupted by a signal (EINTR)."""


class PerfBusyError(TransientPerfError):
    """The kernel asked us to try again later (EAGAIN/EBUSY)."""


class CorruptReadError(TransientPerfError):
    """A counter read returned garbage (short read / torn value).

    The fd itself is presumed healthy — a re-read usually succeeds — so
    this is classified transient; persistent corruption escalates to
    quarantine through the retry budget.
    """


class FdLimitError(PerfError):
    """The per-process or system fd table is full (EMFILE/ENFILE).

    Not a per-task denial: the attach is retried on a later refresh once
    descriptors have been released, rather than the task being blacklisted.
    """


class CounterStateError(PerfError):
    """A counter operation was issued in an invalid state.

    For example reading a closed counter, or enabling a counter whose task
    has already exited.
    """


class EventError(PerfError):
    """An event name or raw descriptor could not be resolved."""


class ExprError(ReproError):
    """A derived-column expression failed to parse or evaluate."""


class WireError(ReproError):
    """Base class for telemetry wire-protocol failures.

    Raised by :mod:`repro.serve.protocol` when bytes on the collector/
    client link cannot be produced or consumed. Every decode failure maps
    to a typed subclass so transports can distinguish "wait for more
    bytes" (:class:`WireTruncatedError` during streaming is handled by
    the reassembler, not raised) from "this peer is broken".
    """


class WireTruncatedError(WireError):
    """A message payload ended before its declared contents.

    The decoder's cursor is bounds-checked: a frame whose header promises
    more rows, columns or string bytes than the payload carries raises
    this instead of over-reading (or worse, hanging waiting for bytes
    that already went to a different field).
    """


class WireCorruptError(WireError):
    """A message failed structural validation (bad magic, bad checksum,
    undecodable compression, trailing garbage, unknown dtype tag)."""


class WireVersionError(WireError):
    """The peer speaks an unknown protocol version."""


class WireOversizeError(WireError):
    """A length prefix exceeds the protocol's message-size ceiling.

    Raised *before* any buffering of the oversized body, so a garbled or
    hostile length prefix can never make the reassembler allocate
    unbounded memory.
    """


class SessionError(ReproError):
    """A serve-session contract was violated (bad subscription, an
    out-of-order publish, an unknown resume point)."""


class ConfigError(ReproError):
    """Invalid screen/column/option configuration."""


class ExperimentError(ConfigError):
    """An experiment spec failed to parse or validate.

    Raised by :mod:`repro.experiments` for malformed spec files, unknown
    keys, out-of-range values or unresolvable workload references. The
    CLI maps it (like every :class:`ConfigError`) to exit status 2.
    """


class ProcfsError(ReproError):
    """A /proc read or parse failed."""


class SimulationError(ReproError):
    """Invalid simulated-machine configuration or operation."""


class WorkloadError(SimulationError):
    """Invalid workload or phase description."""


class WorkerFailure(SimulationError):
    """A grid worker process failed its round-trip contract.

    Raised by the sharded engines when a worker crashes (pipe closed,
    process exited), misses its epoch deadline (hang), replies with a
    message that does not parse as an epoch report (garbled), or is
    spoken to after the transport was deliberately shut down (closed —
    e.g. a send racing :meth:`close` during interpreter teardown). The
    supervised engine catches this internally and recovers; the
    unsupervised :class:`~repro.sim.parallel.ShardedEngine` lets it
    propagate instead of leaking a raw ``EOFError``/``BrokenPipeError``.

    Attributes:
        worker: index of the failing worker.
        kind: one of ``"crash"``, ``"hang"``, ``"garbled"``, ``"closed"``.
        exitcode: the worker's exit code, when known.
    """

    def __init__(
        self,
        message: str,
        *,
        worker: int,
        kind: str,
        exitcode: int | None = None,
    ) -> None:
        super().__init__(message)
        self.worker = worker
        self.kind = kind
        self.exitcode = exitcode
