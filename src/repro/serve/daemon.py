"""The collector daemon: one sampler, any number of subscribers.

Tiptop's premise is monitoring at negligible overhead (§2.5), but a
process-per-viewer design multiplies that overhead by the audience. The
daemon inverts it: ONE :class:`~repro.core.sampler.Sampler` runs the
refresh loop, and each resulting columnar frame is published through a
:class:`~repro.serve.session.FanoutHub` to every connected client. The
sampling cost is O(1) in client count — encoding happens once per
*distinct* subscription, delivery is a queue append per client — which
is the property ``benchmarks/test_serve_fanout.py`` pins down.

Handshake (client speaks first)::

    client -> HELLO     {"client": id, "resume": last-seen seq | null}
    server -> HELLO     {"version", "events", "columns", "retained", "seq"}
    client -> SUBSCRIBE {"pids", "comms", "columns", "exprs"}
    server -> FRAME*    (resumed backlog first, then live frames)
    server -> BYE       {"stats": exact per-client accounting}

A malformed subscription (bad expr syntax, wrong shapes) gets a BYE
carrying ``"error"`` instead of a stream. A client may send BYE at any
time to leave early and still receive its accounting.

Network chaos. When built with a
:class:`~repro.sim.netchaos.NetChaosPlan` the daemon consults it before
every frame send: the plan's :meth:`~repro.sim.netchaos.NetChaosPlan.cut`
decides per ``(client link, frame seq)`` whether the connection is
severed mid-stream (the write transport is aborted, not closed — bytes
in flight are lost like on a real cut). A client's link id is the crc32
of its client id, so each client's cut schedule is independent and
stable across reconnects. Attempt counts per ``(link, seq)`` live on
the daemon (not the session, which dies with the connection), so a
multi-attempt partition heals after its scheduled duration instead of
cutting the replayed frame forever.
"""

from __future__ import annotations

import asyncio
import zlib
from collections.abc import Callable
from time import perf_counter
from typing import TYPE_CHECKING

from repro.core.sampler import Sampler
from repro.errors import SessionError, WireError
from repro.serve import protocol
from repro.serve.session import FanoutHub, Subscription
from repro.serve.stream import MessageStream

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.netchaos import NetChaosPlan


class CollectorDaemon:
    """Runs the sampler's refresh loop and fans frames out over TCP.

    Args:
        sampler: the one sampler whose frames every client shares.
        advance: called once per refresh *before* sampling — in sim mode
            this advances the virtual clock (e.g. ``machine.run_for``);
            None means free-running (wall-clock pacing only).
        iterations: publish this many frames then finish (None = forever).
        pace: real seconds to sleep between refreshes (0 still yields to
            the event loop so client pumps run).
        min_clients: hold the first refresh until this many subscribers
            completed their handshake — the fan-out equivalent of
            starting every viewer at the same baseline.
        queue_limit: per-client send-queue bound (drop-oldest beyond).
        retention: frames kept for resume-by-sequence.
        compress: forwarded to the codec (None = auto by block width).
        profile: per-refresh observability sink (a callable taking one
            formatted line); the CLI's ``--profile`` wires stderr here.
        netchaos: seeded link-fault schedule; cuts client connections
            mid-stream per (client link, frame seq). None disables
            injection (production shape).
    """

    def __init__(
        self,
        sampler: Sampler,
        *,
        advance: Callable[[], None] | None = None,
        iterations: int | None = None,
        pace: float = 0.0,
        min_clients: int = 0,
        queue_limit: int = 64,
        retention: int = 256,
        compress: bool | None = None,
        profile: Callable[[str], None] | None = None,
        netchaos: "NetChaosPlan | None" = None,
    ) -> None:
        self.sampler = sampler
        self.advance = advance
        self.iterations = iterations
        self.pace = pace
        self.min_clients = min_clients
        self.profile = profile
        self.netchaos = netchaos
        #: Cut connections so far (observability for tests and smoke).
        self.net_cuts = 0
        #: Send attempts per (link, seq). Daemon-level on purpose: the
        #: heal schedule must survive the reconnects it causes.
        self._net_attempts: dict[tuple[int, int], int] = {}
        self.hub = FanoutHub(
            queue_limit=queue_limit, retention=retention, compress=compress
        )
        self.finished = False
        self.port: int | None = None
        self._server: asyncio.AbstractServer | None = None
        self._ready = asyncio.Event()
        self._client_events: dict[str, asyncio.Event] = {}
        self._handlers: set[asyncio.Task] = set()
        self._anon = 0
        if min_clients == 0:
            self._ready.set()

    # -- lifecycle ----------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind and start accepting clients; returns the bound port."""
        self._server = await asyncio.start_server(self._accept, host, port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def run(self) -> dict:
        """The refresh loop: advance, sample, publish, pace; returns the
        hub's final accounting once ``iterations`` frames are out."""
        if self.min_clients:
            await self._ready.wait()
        # Baseline pass: attach counters, zero-length interval. Matches
        # the solo pipeline's cadence; the baseline is never published.
        self.sampler.sample_frame()
        published = 0
        while self.iterations is None or published < self.iterations:
            if self.advance is not None:
                self.advance()
            t0 = perf_counter()
            frame = self.sampler.sample_frame()
            t1 = perf_counter()
            seq = self.hub.publish(frame)
            t2 = perf_counter()
            published += 1
            if self.profile is not None:
                stats = self.hub.stats()
                self.profile(
                    f"serve: seq={seq} tasks={len(frame)} "
                    f"clients={stats['clients']} "
                    f"sample={1e3 * (t1 - t0):.2f}ms "
                    f"fanout={1e3 * (t2 - t1):.2f}ms "
                    f"drops={stats['dropped_total']} "
                    f"lag={stats['lag_max']}"
                )
            await asyncio.sleep(self.pace)
        self.finished = True
        for event in self._client_events.values():
            event.set()
        return self.hub.stats()

    async def close(self) -> None:
        """Let pumps flush their queues and BYEs, then stop accepting."""
        self.finished = True
        for event in self._client_events.values():
            event.set()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.sampler.close()

    # -- per-client protocol ------------------------------------------------
    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._handlers.add(task)
        stream = MessageStream(reader, writer)
        client_id: str | None = None
        try:
            client_id = await self._serve_client(stream)
        except (WireError, ConnectionError, OSError):
            pass  # broken peer: nothing useful left to tell it
        finally:
            if client_id is not None:
                self.hub.remove_session(client_id)
                self._client_events.pop(client_id, None)
            await stream.close()
            self._handlers.discard(task)

    async def _serve_client(self, stream: MessageStream) -> str | None:
        """Handshake + pump for one connection; returns the client id
        once registered (None if the peer never got that far)."""
        msg = await stream.recv()
        if msg is None or msg[0] != protocol.MSG_HELLO:
            return None
        hello = msg[1]
        client_id = str(hello.get("client") or self._anonymous_id())
        resume = hello.get("resume")
        retained = self.hub.retained_range()
        stream.send(
            protocol.encode_control(
                protocol.MSG_HELLO,
                {
                    "version": protocol.VERSION,
                    "screen": self.sampler.screen.name,
                    "events": [e.name for e in self.sampler.events],
                    "columns": [
                        [c.header, c.kind.value]
                        for c in self.sampler.screen.columns
                    ],
                    "retained": list(retained) if retained else None,
                    "seq": self.hub.next_seq,
                },
            )
        )
        await stream.drain()
        msg = await stream.recv()
        if msg is None:
            return None
        if msg[0] == protocol.MSG_BYE:
            return None
        if msg[0] != protocol.MSG_SUBSCRIBE:
            raise SessionError(f"expected SUBSCRIBE, got type {msg[0]}")
        event = asyncio.Event()
        if hello.get("takeover") and client_id in self.hub.sessions:
            # A reconnect raced its predecessor's teardown: the old
            # connection is dead but its handler has not unwound yet.
            # The redial claims the id explicitly (its HELLO carries
            # ``takeover``), so the newest connection wins and the
            # zombie's pump is woken to notice the closed session and
            # exit. A duplicate id *without* the claim still gets the
            # "already subscribed" BYE below.
            self.hub.remove_session(client_id)
            stale = self._client_events.pop(client_id, None)
            if stale is not None:
                stale.set()
        try:
            subscription = Subscription.from_dict(msg[1])
            session = self.hub.add_session(
                client_id,
                subscription,
                resume_from=int(resume) if resume is not None else None,
                on_enqueue=event.set,
            )
        except SessionError as exc:
            stream.send(
                protocol.encode_control(protocol.MSG_BYE, {"error": str(exc)})
            )
            await stream.drain()
            return None
        self._client_events[client_id] = event
        try:
            if session.lag or self.finished:
                event.set()  # resumed backlog (or post-run join) flushes now
            if (
                not self._ready.is_set()
                and len(self.hub.sessions) >= self.min_clients
            ):
                self._ready.set()
            bye_seen = asyncio.Event()
            watcher = asyncio.ensure_future(
                self._watch_for_bye(stream, bye_seen, event)
            )
            try:
                await self._pump(session, stream, event, bye_seen)
            finally:
                watcher.cancel()
            stream.send(
                protocol.encode_control(
                    protocol.MSG_BYE, {"stats": session.stats()}
                )
            )
            await stream.drain()
            return client_id
        finally:
            # Identity-guarded: a handler that died mid-pump must clean
            # up its own session here (its id never reaches _accept),
            # but must never tear down a successor that took the id
            # over while this handler was unwinding.
            if self.hub.sessions.get(client_id) is session:
                self.hub.remove_session(client_id)
            if self._client_events.get(client_id) is event:
                del self._client_events[client_id]

    async def _watch_for_bye(
        self,
        stream: MessageStream,
        bye_seen: asyncio.Event,
        pump_event: asyncio.Event,
    ) -> None:
        """A client may leave early (BYE or EOF) while frames flow."""
        try:
            while True:
                msg = await stream.recv()
                if msg is None or msg[0] == protocol.MSG_BYE:
                    break
        except (WireError, ConnectionError, OSError):
            pass
        bye_seen.set()
        pump_event.set()  # the pump may be parked on event.wait()

    async def _pump(
        self,
        session,
        stream: MessageStream,
        event: asyncio.Event,
        bye_seen: asyncio.Event,
    ) -> None:
        """Drain one session's queue to its socket until the run ends."""
        link = zlib.crc32(session.client_id.encode()) & 0x7FFFFFFF
        while not (bye_seen.is_set() or session.closed):
            await event.wait()
            event.clear()
            if bye_seen.is_set() or session.closed:
                break
            while (item := session.pop()) is not None:
                if self.netchaos is not None:
                    seq = item[0]
                    attempt = self._net_attempts.get((link, seq), 0)
                    self._net_attempts[(link, seq)] = attempt + 1
                    if self.netchaos.cut(link, seq, attempt):
                        # The cut link loses whatever was in flight:
                        # abort (no FIN, no flush), so the client sees
                        # a reset or a truncated frame, never a clean
                        # end it could mistake for the server's BYE.
                        self.net_cuts += 1
                        stream.abort()
                        raise ConnectionResetError(
                            f"net chaos cut client "
                            f"{session.client_id!r} at seq {seq}"
                        )
                stream.send(item[1])
            await stream.drain()
            if self.finished and session.lag == 0:
                break

    def _anonymous_id(self) -> str:
        self._anon += 1
        return f"anon-{self._anon}"
