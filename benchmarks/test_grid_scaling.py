"""Grid engine scaling: dispatch epochs + shards vs the per-tick loop.

The paper's §3.4 deployment watches a ~100-node SGE fleet; simulating one
at per-tick granularity makes wall-clock linear in fleet size. This
benchmark drives a datacenter-shaped mix — long-lived services filling
most slots, a finite batch job per node, and a queued backlog that
dispatches as slots free — through every engine and records the sweep in
``BENCH_grid.json``:

* ``legacy`` — the pre-epoch sequential loop (baseline),
* ``serial`` — in-process engine, epoch batching only (workers=1),
* ``sharded-2`` / ``sharded-4`` — persistent worker shards.

Engines must agree bitwise — job fingerprints and per-node counter tables
are asserted equal on every run, smoke or full (this is the CI guard that
sharded == serial). Timing targets only apply to the full run:
epoch batching alone >= 1.5x, and sharded-4 >= 3x on the 16-node fleet.

A second sweep scales the *fleet* engine (two-level supervision tree)
across the shard-transport axis — inproc / fork / socket — at 64 and 256
simulated nodes, recording per-epoch latency percentiles and bytes per
epoch in the same ``BENCH_grid.json`` under ``"fleet"``. All transports
must agree bitwise (vs a serial reference at 64 nodes, pairwise at 256);
the full run also asserts the wire floor: socket epoch p95 within 2x of
fork at 64 nodes — the binary TTSV framing must stay in the same class
as the pickled pipe, or the interning/codec has regressed.

``REPRO_BENCH_SMOKE=1`` shrinks the sweep for CI and skips the speedup
assertions (shared runners make ratios unreliable).
"""

from __future__ import annotations

import json
import os
import time

from _harness import OUT_DIR

from repro.sim.arch import NEHALEM
from repro.sim.grid import Grid, NodeSpec
from repro.sim.workloads import datacenter

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
NODE_COUNTS = (4,) if SMOKE else (4, 16)
SPAN_SECONDS = 45.0 if SMOKE else 480.0
REPEATS = 1 if SMOKE else 3
SERIAL_MIN_SPEEDUP = 1.5
SHARDED4_MIN_SPEEDUP = 3.0

ENGINES = (
    ("legacy", "legacy", 1),
    ("serial", "serial", 1),
    ("sharded-2", "sharded", 2),
    ("sharded-4", "sharded", 4),
)


def fleet(n_nodes: int) -> list[NodeSpec]:
    """A mixed fleet of small nodes (4 PUs each keeps the sweep fast)."""
    specs = []
    for i in range(n_nodes):
        if i % 2 == 0:
            specs.append(
                NodeSpec(name=f"bench{i:02d}", sockets=1, cores_per_socket=2)
            )
        else:
            specs.append(
                NodeSpec(name=f"bench{i:02d}", arch=NEHALEM, sockets=1,
                         cores_per_socket=2, memory_bytes=16 * 1024**3)
            )
    return specs


def populate(grid: Grid, n_nodes: int) -> None:
    """A datacenter-shaped mix sized to the fleet.

    Per node slot: three long-lived services and one finite, noise-free
    batch job (deterministic jobs get the exec-inclusive exit bound, so
    epoch boundaries land near the real exits), plus a queued backlog of
    half a job per node. Slots free mid-run and the dispatcher re-fills
    them, so epoch boundaries genuinely matter."""
    for i in range(4 * n_nodes):
        if i % 4 == 3:
            workload = datacenter.compute_job(
                f"job{i:03d}",
                1.0,
                duration_hint=30.0 + 15.0 * (i % 5),
                noise=0.0,
            )
        else:
            workload = datacenter.compute_job(f"job{i:03d}", 0.9 + 0.1 * (i % 4))
        grid.submit(
            f"job{i:03d}",
            workload,
            user=f"user{i % 3}",
            queue=("short-2g-asap", "day-2g-overnight")[i % 2],
        )
    for i in range(n_nodes // 2):
        grid.submit(
            f"backlog{i:02d}",
            datacenter.compute_job(
                f"backlog{i:02d}", 1.1, duration_hint=40.0, noise=0.0
            ),
            queue="short-2g-asap",
        )


def fingerprint(grid: Grid):
    return [
        (j.job_id, j.node, j.started_at, j.finished_at, j.killed, j.pid,
         j.state)
        for j in grid.jobs()
    ]


def run_engine(label: str, engine: str, workers: int, n_nodes: int):
    """Best-of-N wall time plus the observables for the equality check."""
    best = float("inf")
    observed = None
    epochs = 0
    for _ in range(REPEATS):
        with Grid(fleet(n_nodes), tick=1.0, seed=42, workers=workers,
                  engine=engine) as grid:
            populate(grid, n_nodes)
            t0 = time.perf_counter()
            grid.run_for(SPAN_SECONDS)
            best = min(best, time.perf_counter() - t0)
            observed = (
                fingerprint(grid),
                {s.name: grid.snapshot(s.name) for s in grid.specs},
            )
            epochs = grid.stats["epochs"]
    return best, observed, epochs


def test_grid_scaling():
    sweeps = []
    speedups: dict[int, dict[str, float]] = {}
    for n_nodes in NODE_COUNTS:
        results = {}
        for label, engine, workers in ENGINES:
            seconds, observed, epochs = run_engine(
                label, engine, workers, n_nodes
            )
            results[label] = (seconds, observed, epochs)
        baseline = results["legacy"][1]
        for label, (_, observed, _) in results.items():
            assert observed == baseline, (
                f"{label} diverged from legacy on {n_nodes} nodes"
            )
        legacy_seconds = results["legacy"][0]
        speedups[n_nodes] = {}
        entry = {"nodes": n_nodes, "engines": {}}
        for label, (seconds, _, epochs) in results.items():
            speedup = legacy_seconds / seconds
            speedups[n_nodes][label] = speedup
            entry["engines"][label] = {
                "seconds": round(seconds, 6),
                "speedup_vs_legacy": round(speedup, 3),
                "epochs": epochs,
            }
        sweeps.append(entry)
        print(
            f"\n{n_nodes:3d} nodes: " + "  ".join(
                f"{label}={results[label][0]:.3f}s"
                f" ({speedups[n_nodes][label]:.2f}x)"
                for label, _, _ in ENGINES
            )
        )

    payload = {
        "scenario": {
            "span_seconds": SPAN_SECONDS,
            "tick": 1.0,
            "seed": 42,
            "jobs_per_node": 4,
            "backlog_jobs_per_node": 0.5,
            "node_counts": list(NODE_COUNTS),
            "repeats": REPEATS,
            "smoke": SMOKE,
        },
        "targets": {
            "serial_min_speedup": SERIAL_MIN_SPEEDUP,
            "sharded4_min_speedup": SHARDED4_MIN_SPEEDUP,
        },
        "sweeps": sweeps,
    }
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_grid.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    if not SMOKE:
        serial = speedups[16]["serial"]
        sharded4 = speedups[16]["sharded-4"]
        assert serial >= SERIAL_MIN_SPEEDUP, (
            f"epoch batching alone is only {serial:.2f}x on 16 nodes"
        )
        assert sharded4 >= SHARDED4_MIN_SPEEDUP, (
            f"sharded-4 is only {sharded4:.2f}x on 16 nodes"
        )


# -- fleet transport sweep ----------------------------------------------------

FLEET_NODE_COUNTS = (16,) if SMOKE else (64, 256)
FLEET_SPAN = 45.0 if SMOKE else 120.0
FLEET_REPEATS = 1 if SMOKE else 2
FLEET_WORKERS = 8
FLEET_HOSTS = 4
TRANSPORTS = ("inproc", "fork", "socket")
SOCKET_P95_MAX_VS_FORK = 2.0


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def run_fleet(transport: str, n_nodes: int):
    """One fleet run per repeat; pools per-epoch advance latencies.

    The engine's ``advance`` is wrapped with a perf_counter so the
    sample is the epoch round-trip (fan out to hosts, collect reports),
    not dispatch bookkeeping or snapshot traffic.
    """
    latencies: list[float] = []
    best = float("inf")
    digest = None
    bytes_per_epoch = 0.0
    for _ in range(FLEET_REPEATS):
        with Grid(fleet(n_nodes), tick=1.0, seed=42, workers=FLEET_WORKERS,
                  hosts=FLEET_HOSTS, transport=transport) as grid:
            populate(grid, n_nodes)
            engine_advance = grid.engine.advance

            def timed(commands, n_ticks, frac, _adv=engine_advance):
                t0 = time.perf_counter()
                out = _adv(commands, n_ticks, frac)
                latencies.append(time.perf_counter() - t0)
                return out

            grid.engine.advance = timed
            t0 = time.perf_counter()
            grid.run_for(FLEET_SPAN)
            best = min(best, time.perf_counter() - t0)
            digest = grid.conformance_digest()
            epochs = max(1, grid.stats["epochs"])
            bytes_per_epoch = (
                grid.stats["bytes_sent"] + grid.stats["bytes_received"]
            ) / epochs
    return {
        "seconds": best,
        "epoch_p50": _percentile(latencies, 0.50),
        "epoch_p95": _percentile(latencies, 0.95),
        "bytes_per_epoch": bytes_per_epoch,
        "digest": digest,
    }


def test_fleet_transport_sweep():
    sweeps = []
    p95 = {}
    for n_nodes in FLEET_NODE_COUNTS:
        results = {t: run_fleet(t, n_nodes) for t in TRANSPORTS}
        # Bitwise agreement: against a serial reference on the smaller
        # fleets, pairwise at 256 (a serial 256-node run adds nothing —
        # inproc *is* the serial compute on the fleet engine's path).
        if n_nodes <= 64:
            with Grid(fleet(n_nodes), tick=1.0, seed=42) as grid:
                populate(grid, n_nodes)
                grid.run_for(FLEET_SPAN)
                reference = grid.conformance_digest()
            for t in TRANSPORTS:
                assert results[t]["digest"] == reference, (
                    f"fleet/{t} diverged from serial on {n_nodes} nodes"
                )
        first = results[TRANSPORTS[0]]["digest"]
        for t in TRANSPORTS[1:]:
            assert results[t]["digest"] == first, (
                f"fleet/{t} diverged from fleet/{TRANSPORTS[0]}"
                f" on {n_nodes} nodes"
            )
        assert results["inproc"]["bytes_per_epoch"] == 0
        for t in ("fork", "socket"):
            assert results[t]["bytes_per_epoch"] > 0
        p95[n_nodes] = {t: results[t]["epoch_p95"] for t in TRANSPORTS}
        entry = {"nodes": n_nodes, "transports": {}}
        for t in TRANSPORTS:
            r = results[t]
            entry["transports"][t] = {
                "seconds": round(r["seconds"], 6),
                "epoch_p50": round(r["epoch_p50"], 6),
                "epoch_p95": round(r["epoch_p95"], 6),
                "bytes_per_epoch": round(r["bytes_per_epoch"], 1),
            }
        sweeps.append(entry)
        print(
            f"\nfleet {n_nodes:3d} nodes: " + "  ".join(
                f"{t}={results[t]['seconds']:.3f}s"
                f" p95={results[t]['epoch_p95'] * 1000:.1f}ms"
                for t in TRANSPORTS
            )
        )

    # Merge into the scaling payload so one artifact carries both sweeps.
    out_path = OUT_DIR / "BENCH_grid.json"
    OUT_DIR.mkdir(exist_ok=True)
    payload = json.loads(out_path.read_text()) if out_path.exists() else {}
    payload["fleet"] = {
        "scenario": {
            "span_seconds": FLEET_SPAN,
            "workers": FLEET_WORKERS,
            "hosts": FLEET_HOSTS,
            "node_counts": list(FLEET_NODE_COUNTS),
            "repeats": FLEET_REPEATS,
            "smoke": SMOKE,
        },
        "targets": {"socket_p95_max_vs_fork": SOCKET_P95_MAX_VS_FORK},
        "sweeps": sweeps,
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n")

    if not SMOKE:
        ratio = p95[64]["socket"] / p95[64]["fork"]
        assert ratio <= SOCKET_P95_MAX_VS_FORK, (
            f"socket epoch p95 is {ratio:.2f}x fork at 64 nodes"
            f" (floor: {SOCKET_P95_MAX_VS_FORK}x)"
        )
