"""Canonical derived metrics (§2.6).

The paper's position is that a few *simple* metrics characterise behaviour
for most users: IPC first, then miss ratios to localise a bottleneck, plus
the application-characterisation rates FPI/LPI/BPI and the Diamond et al.
machine-facing FPC/LPC. Each metric is an expression over per-interval
counter deltas (identifiers are underscored event names; ``delta_t`` is the
interval length in seconds).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.expr import Expression


@dataclass(frozen=True)
class Metric:
    """A named derived metric.

    Attributes:
        name: canonical metric name ("IPC").
        expression: compiled formula over counter deltas.
        description: one-line meaning.
    """

    name: str
    expression: Expression
    description: str

    def compute(self, env: dict[str, float]) -> float:
        """Evaluate the metric against one interval's deltas."""
        return self.expression.evaluate(env)


def _m(name: str, text: str, description: str) -> Metric:
    return Metric(name, Expression(text), description)


#: All canonical metrics, keyed by name.
METRICS: dict[str, Metric] = {
    m.name: m
    for m in (
        _m("IPC", "instructions / cycles", "retired instructions per cycle"),
        _m(
            "DMIS",
            "100 * cache_misses / instructions",
            "last-level cache misses per 100 instructions (Fig. 1)",
        ),
        _m(
            "MISS_RATIO",
            "100 * cache_misses / cache_references",
            "LLC miss ratio in percent",
        ),
        _m(
            "BMIS",
            "100 * branch_misses / instructions",
            "branch mispredicts per 100 instructions",
        ),
        _m(
            "BMISPRED",
            "100 * branch_misses / branch_instructions",
            "branch misprediction ratio in percent",
        ),
        _m(
            "FP_ASSIST",
            "100 * fp_assist / instructions",
            "micro-code FP assists per 100 instructions (§3.1)",
        ),
        _m("FPI", "fp_operations / instructions", "FP operations per instruction"),
        _m("LPI", "loads / instructions", "loads per instruction"),
        _m("BPI", "branch_instructions / instructions", "branches per instruction"),
        _m("FPC", "fp_operations / cycles", "FP operations per cycle (CPU subsystem)"),
        _m("LPC", "loads / cycles", "loads per cycle (memory subsystem)"),
        _m(
            "L2MIS",
            "100 * l2_misses / instructions",
            "L2 misses per 100 instructions (Fig. 11d)",
        ),
        _m(
            "L3MIS",
            "100 * l3_misses / instructions",
            "L3 misses per 100 instructions (Fig. 11b)",
        ),
        _m(
            "UPI",
            "uops_executed / instructions",
            "micro-ops per instruction (assist detector)",
        ),
        _m(
            "MEMLAT",
            "mem_latency_cycles / cache_misses",
            "average observed memory latency in cycles (§3.4 outlook): "
            "rises under DRAM/LLC contention",
        ),
        _m("MCYCLE", "cycles / 1000000", "cycles in millions since last refresh"),
        _m("MINST", "instructions / 1000000", "instructions in millions"),
        _m("GHZ", "cycles / delta_t / 1000000000", "effective clock in GHz"),
    )
}


def get_metric(name: str) -> Metric:
    """Look up a canonical metric by (case-insensitive) name.

    Raises:
        KeyError: unknown metric.
    """
    return METRICS[name.upper()]
