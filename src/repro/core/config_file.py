"""Screen configuration files — the equivalent of tiptop's XML config.

Real tiptop reads user-defined screens from an XML file; this reproduction
uses JSON (no extra dependencies) with the same information content: named
screens made of derived columns over counter expressions. A file holds one
screen or a list of screens::

    {
      "screens": [
        {
          "name": "hpc",
          "description": "roofline-ish rates",
          "columns": [
            {"header": "FPC", "expr": "fp_operations / cycles"},
            {"header": "LPC", "expr": "loads / cycles"}
          ]
        }
      ]
    }

Loaded screens are validated eagerly (unknown identifiers fail at load
time, not mid-monitoring) and can shadow built-ins by name.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.screen import Screen, screen_from_config
from repro.errors import ConfigError


def parse_screens(data: object) -> list[Screen]:
    """Build screens from a decoded config object.

    Accepts a single screen dict, a list of screen dicts, or a dict with a
    ``"screens"`` list.

    Raises:
        ConfigError: malformed structure or invalid screen definitions.
    """
    if isinstance(data, dict) and "screens" in data:
        entries = data["screens"]
    elif isinstance(data, dict):
        entries = [data]
    elif isinstance(data, list):
        entries = data
    else:
        raise ConfigError(
            f"screen config must be a dict or list, got {type(data).__name__}"
        )
    if not isinstance(entries, list) or not entries:
        raise ConfigError("screen config contains no screens")
    screens = [screen_from_config(entry) for entry in entries]
    names = [s.name for s in screens]
    if len(set(names)) != len(names):
        raise ConfigError(f"duplicate screen names in config: {names}")
    return screens


def load_screens(path: str | Path) -> list[Screen]:
    """Load and validate screens from a JSON file.

    Raises:
        ConfigError: unreadable file, invalid JSON, or bad definitions.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ConfigError(f"cannot read screen config {path}: {exc}") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigError(f"invalid JSON in {path}: {exc}") from exc
    return parse_screens(data)


def find_screen(screens: list[Screen], name: str) -> Screen:
    """Pick a screen by name from a loaded list.

    Raises:
        ConfigError: no screen of that name in the file.
    """
    for screen in screens:
        if screen.name == name:
            return screen
    raise ConfigError(
        f"no screen named {name!r} in config (has: {[s.name for s in screens]})"
    )
