"""The columnar pipeline: SnapshotFrame, vectorised exprs, lossless CSV.

Covers the frame container's adapters (rows round-trip exactly), the
vectorised expression evaluator (bitwise-identical to the scalar walker),
the frame-backed Recorder (series match a scalar reference, CSV round
trips losslessly including NaN cells and non-ASCII command names), the
frame-consuming renderers (text identical to the row path), and the
``--profile`` breakdown.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.timeseries import MetricSeries
from repro.core import formatter
from repro.core.app import SimHost, TipTop
from repro.core.batchparse import frames_from_blocks, parse_blocks
from repro.core.cli import main
from repro.core.expr import Expression
from repro.core.frame import SnapshotFrame
from repro.core.options import Options
from repro.core.recorder import Recorder, Sample
from repro.core.sampler import Snapshot
from repro.core.screen import get_screen
from repro.sim.arch import NEHALEM
from repro.sim.machine import SimMachine
from repro.sim.workloads import synthetic


def make_app(procs: int = 6, *, seed: int = 3, delay: float = 2.0) -> TipTop:
    machine = SimMachine(
        NEHALEM, sockets=1, cores_per_socket=2, tick=0.25, seed=seed
    )
    for spec in synthetic.generate_specs(procs, seed=seed):
        machine.spawn(spec.name, synthetic.build(spec, NEHALEM, seed=11))
    return TipTop(SimHost(machine), Options(delay=delay), get_screen("default"))


def values_equal(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    return a == b


class TestSnapshotFrame:
    def _snapshot(self) -> Snapshot:
        with make_app() as app:
            snapshots = list(app.snapshots(2))
        return snapshots[-1]

    def test_sampler_attaches_frame(self):
        snapshot = self._snapshot()
        assert snapshot.frame is not None
        assert len(snapshot.frame) == len(snapshot.rows)

    def test_to_rows_matches_snapshot_rows(self):
        snapshot = self._snapshot()
        rebuilt = snapshot.frame.to_rows()
        assert rebuilt == snapshot.rows
        for row, back in zip(snapshot.rows, rebuilt):
            assert list(back.values) == list(row.values)
            assert list(back.deltas) == list(row.deltas)

    def test_from_rows_round_trip(self):
        snapshot = self._snapshot()
        lifted = SnapshotFrame.from_rows(
            snapshot.time, snapshot.interval, snapshot.rows
        )
        assert lifted.to_rows() == snapshot.rows
        assert lifted.columns == snapshot.frame.columns

    def test_take_and_select(self):
        frame = self._snapshot().frame
        order = list(range(len(frame)))[::-1]
        flipped = frame.take(order)
        assert flipped.pids.tolist() == frame.pids.tolist()[::-1]
        assert flipped.comms == tuple(reversed(frame.comms))
        mask = frame.cpu_pct >= np.median(frame.cpu_pct)
        kept = frame.select(mask)
        assert len(kept) == int(mask.sum())
        assert set(kept.pids.tolist()) <= set(frame.pids.tolist())

    def test_uids_carried_from_procfs(self):
        frame = self._snapshot().frame
        assert (frame.uids >= 0).all()


class TestVectorisedExpr:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e9), min_size=1, max_size=9
        ),
        st.lists(
            st.floats(min_value=0.0, max_value=1e9), min_size=1, max_size=9
        ),
    )
    @settings(max_examples=100)
    def test_column_matches_scalar_bitwise(self, xs, ys):
        n = min(len(xs), len(ys))
        xs, ys = xs[:n], ys[:n]
        exprs = [
            "a / b",
            "100 * a / b",
            "(a - b) / (a + b)",
            "-a * 2.5 + b / 3",
            "a / (b - b)",  # division by zero everywhere
        ]
        for text in exprs:
            expression = Expression(text)
            env = {"a": np.asarray(xs), "b": np.asarray(ys)}
            column = expression.evaluate_column(env, n)
            for i in range(n):
                scalar = expression.evaluate({"a": xs[i], "b": ys[i]})
                assert values_equal(float(column[i]), scalar)

    def test_scalar_only_expression_broadcasts(self):
        expression = Expression("3 * 2 + 1")
        assert expression.evaluate_column({}, 4).tolist() == [7.0] * 4

    def test_unknown_identifier_still_raises(self):
        from repro.errors import ExprError

        with pytest.raises(ExprError):
            Expression("nope + 1").evaluate_column({"a": np.ones(2)}, 2)


class TestRecorderColumnar:
    def _recording(self) -> Recorder:
        with make_app(procs=5) as app:
            return app.run_collect(4)

    def test_series_matches_scalar_reference(self):
        recorder = self._recording()
        for pid in recorder.pids():
            for header in ("IPC", "%CPU", "PID", "COMMAND", "missing"):
                for drop_nan in (True, False):
                    times, values = recorder.series(
                        pid, header, drop_nan=drop_nan
                    )
                    ref_t, ref_v = [], []
                    for s in recorder.samples:
                        if s.pid != pid:
                            continue
                        v = s.values.get(header)
                        if not isinstance(v, (int, float)):
                            continue
                        if drop_nan and isinstance(v, float) and math.isnan(v):
                            continue
                        ref_t.append(s.time)
                        ref_v.append(float(v))
                    assert times.tolist() == ref_t
                    assert [
                        values_equal(a, b)
                        for a, b in zip(values.tolist(), ref_v)
                    ] == [True] * len(ref_v)

    def test_total_delta_and_mean_match_reference(self):
        recorder = self._recording()
        pid = recorder.pids()[0]
        ref = sum(
            s.deltas.get("instructions", 0.0)
            for s in recorder.samples
            if s.pid == pid
        )
        assert recorder.total_delta(pid, "instructions") == pytest.approx(ref)
        assert recorder.total_delta(pid, "no-such-event") == 0.0
        _, values = recorder.series(pid, "IPC")
        if len(values):
            assert recorder.mean(pid, "IPC") == pytest.approx(
                float(np.mean(values))
            )

    def test_series_vs_instructions_matches_reference(self):
        recorder = self._recording()
        pid = recorder.pids()[0]
        xs, ys = recorder.series_vs_instructions(pid, "IPC")
        total, ref_x, ref_y = 0.0, [], []
        for s in recorder.samples:
            if s.pid != pid:
                continue
            total += s.deltas.get("instructions", 0.0)
            v = s.values.get("IPC")
            if isinstance(v, (int, float)) and not (
                isinstance(v, float) and math.isnan(v)
            ):
                ref_x.append(total)
                ref_y.append(float(v))
        assert xs.tolist() == pytest.approx(ref_x)
        assert ys.tolist() == ref_y

    def test_metric_series_from_frames(self):
        recorder = self._recording()
        pid = recorder.pids()[0]
        series = MetricSeries.from_frames(recorder.frames, pid, "IPC")
        times, values = recorder.series(pid, "IPC")
        assert series.x.tolist() == times.tolist()
        assert series.y.tolist() == values.tolist()


_comm = st.text(
    alphabet=st.characters(
        blacklist_categories=("Cs",), blacklist_characters="\r\n"
    ),
    min_size=1,
    max_size=12,
)
_metric = st.floats(allow_nan=True, allow_infinity=True, width=64)

_samples = st.lists(
    st.builds(
        Sample,
        time=st.floats(0, 1e6, allow_nan=False),
        pid=st.integers(1, 1 << 22),
        comm=_comm,
        user=_comm,
        cpu_pct=st.floats(0, 100, allow_nan=False),
        deltas=st.dictionaries(
            st.sampled_from(["cycles", "instructions", "cache-misses"]),
            st.floats(0, 1e15, allow_nan=False),
            max_size=3,
        ),
        values=st.fixed_dictionaries({"IPC": _metric, "DMIS": _metric}),
    ),
    max_size=16,
)


class TestLosslessCsv:
    @given(_samples)
    @settings(max_examples=60)
    def test_round_trip_exact(self, samples):
        recorder = Recorder(samples=list(samples))
        back = Recorder.from_csv(recorder.to_csv())
        assert len(back.samples) == len(recorder.samples)
        for original, restored in zip(recorder.samples, back.samples):
            assert restored.time == original.time
            assert restored.pid == original.pid
            assert restored.comm == original.comm
            assert restored.user == original.user
            assert restored.cpu_pct == original.cpu_pct
            for key, value in original.deltas.items():
                assert restored.deltas[key] == value
            for header, value in original.values.items():
                assert values_equal(restored.values[header], float(value))

    def test_full_pipeline_round_trip_is_lossless(self):
        with make_app(procs=5) as app:
            recorder = app.run_collect(3)
        back = Recorder.from_csv(recorder.to_csv())
        assert back.samples == recorder.samples
        for mine, theirs in zip(recorder.frames, back.frames):
            assert mine.columns == theirs.columns
            assert mine.interval == theirs.interval
            assert mine.tids.tolist() == theirs.tids.tolist()
            assert mine.uids.tolist() == theirs.uids.tolist()
            assert mine.processors.tolist() == theirs.processors.tolist()

    def test_nan_metric_and_unicode_comm_cells(self):
        sample = Sample(
            time=1.5,
            pid=7,
            comm="naïve-προ€ess",
            user="üser",
            cpu_pct=12.5,
            deltas={"instructions": 1e7},
            values={"IPC": math.nan},
        )
        back = Recorder.from_csv(Recorder(samples=[sample]).to_csv())
        assert back.samples[0].comm == "naïve-προ€ess"
        assert back.samples[0].user == "üser"
        assert math.isnan(back.samples[0].values["IPC"])

    def test_legacy_format_still_parses(self):
        legacy = (
            "time,pid,comm,user,cpu_pct,instructions\n"
            "1.000,42,lbm,alice,99.50,123456\n"
        )
        recorder = Recorder.from_csv(legacy)
        assert recorder.samples[0].pid == 42
        assert recorder.samples[0].deltas["instructions"] == 123456.0


class TestFrameRendering:
    def test_frame_and_row_renderers_emit_identical_text(self):
        with make_app() as app:
            snapshots = list(app.snapshots(2))
        snapshot = snapshots[-1]
        rows_only = Snapshot(
            time=snapshot.time, interval=snapshot.interval, rows=snapshot.rows
        )
        screen = get_screen("default")
        for threshold in (0.0, 20.0):
            assert formatter.render_frame(
                screen, snapshot, idle_threshold=threshold
            ) == formatter.render_frame(
                screen, rows_only, idle_threshold=threshold
            )
        assert formatter.render_batch(screen, snapshot) == formatter.render_batch(
            screen, rows_only
        )

    def test_batch_blocks_lift_into_frames(self):
        with make_app() as app:
            blocks = app.run_batch(2, write=lambda s: None)
        frames = frames_from_blocks(parse_blocks("".join(blocks)))
        assert len(frames) == 2
        parsed = parse_blocks("".join(blocks))
        for frame, block in zip(frames, parsed):
            assert frame.time == block.time
            assert len(frame) == len(block.rows)
            assert frame.pids.tolist() == [r.pid for r in block.rows]
            assert [h for h, _ in frame.columns] == list(block.headers)


class TestProfileFlag:
    def test_cli_profile_prints_breakdown(self, capsys):
        assert main(["--sim", "-b", "-n", "2", "--profile"]) == 0
        err = capsys.readouterr().err
        lines = [line for line in err.splitlines() if line.startswith("profile:")]
        assert len(lines) == 2
        for line in lines:
            for field in ("advance=", "read=", "eval=", "render=", "tasks="):
                assert field in line

    def test_profile_off_by_default(self, capsys):
        assert main(["--sim", "-b", "-n", "1"]) == 0
        assert "profile:" not in capsys.readouterr().err

    def test_sampler_records_timing(self):
        with make_app() as app:
            list(app.snapshots(1))
            timing = app.sampler.last_timing
        assert timing is not None
        assert timing.tasks > 0
        assert timing.read_seconds >= 0.0
        assert timing.eval_seconds >= 0.0
