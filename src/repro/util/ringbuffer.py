"""A fixed-capacity ring buffer for sample histories.

The sampler keeps a bounded history of per-task metric samples so that live
screens can show sparklines/averages without unbounded memory growth — the
tool is meant to run for days against long-running jobs (§2.2).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from typing import Generic, TypeVar

T = TypeVar("T")


class RingBuffer(Generic[T]):
    """Fixed-capacity FIFO that overwrites the oldest element when full.

    Iteration and indexing are oldest-first. ``len()`` reports the number of
    live elements (<= capacity).
    """

    __slots__ = ("_buf", "_capacity", "_start", "_size")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._buf: list[T | None] = [None] * capacity
        self._start = 0
        self._size = 0

    @property
    def capacity(self) -> int:
        """Maximum number of retained elements."""
        return self._capacity

    def __len__(self) -> int:
        return self._size

    @property
    def full(self) -> bool:
        """True when the next append will evict the oldest element."""
        return self._size == self._capacity

    def append(self, item: T) -> None:
        """Add ``item``, evicting the oldest element if at capacity."""
        idx = (self._start + self._size) % self._capacity
        if self._size == self._capacity:
            self._buf[self._start] = item
            self._start = (self._start + 1) % self._capacity
        else:
            self._buf[idx] = item
            self._size += 1

    def extend(self, items: Sequence[T]) -> None:
        """Append every element of ``items`` in order."""
        for item in items:
            self.append(item)

    def __getitem__(self, index: int) -> T:
        if isinstance(index, slice):
            raise TypeError("RingBuffer does not support slicing; use list()")
        if index < 0:
            index += self._size
        if not 0 <= index < self._size:
            raise IndexError(f"index {index} out of range for size {self._size}")
        return self._buf[(self._start + index) % self._capacity]  # type: ignore[return-value]

    def __iter__(self) -> Iterator[T]:
        for i in range(self._size):
            yield self._buf[(self._start + i) % self._capacity]  # type: ignore[misc]

    def latest(self) -> T:
        """Return the most recently appended element.

        Raises:
            IndexError: when the buffer is empty.
        """
        if self._size == 0:
            raise IndexError("latest() on empty RingBuffer")
        return self[self._size - 1]

    def clear(self) -> None:
        """Drop all elements (capacity is unchanged)."""
        self._buf = [None] * self._capacity
        self._start = 0
        self._size = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RingBuffer({list(self)!r}, capacity={self._capacity})"
