"""Failure injection: the tool must survive a misbehaving kernel.

Real monitors race the kernel constantly — tasks die between listing and
attach, reads hit stale fds, opens fail transiently. These tests drive the
first-class fault subsystem (:mod:`repro.perf.faults`) wired natively into
:class:`~repro.perf.simbackend.SimBackend` and assert the sampler's
lifecycle policy: bounded retry for transient errors, quarantine and
reattach for per-task failures, and guaranteed fd cleanup throughout.

The first three classes keep the assertions of the original ad-hoc
``FlakyBackend`` tests as regressions (same scenarios, now expressed as
seeded fault plans).
"""

import pytest

from repro.core.columns import HEALTH_COLUMN
from repro.core.options import Options
from repro.core.sampler import Sampler
from repro.core.screen import get_screen
from repro.errors import FdLimitError
from repro.perf.counter import CounterGroup
from repro.perf.events import resolve_event
from repro.perf.faults import FaultPlan, FaultSpec
from repro.perf.simbackend import SimBackend
from repro.procfs.model import ProcessInfo
from repro.procfs.simproc import SimProcReader


def make_sampler(machine, *, faults=None, screen=None, options=None,
                 monitor_uid=0):
    backend = SimBackend(machine, monitor_uid, faults=faults)
    sampler = Sampler(
        backend,
        SimProcReader(machine),
        screen or get_screen("default"),
        options,
    )
    return backend, sampler


class VanishingTasks:
    """A /proc provider whose chosen pid exists in listings but not reads
    (the classic exit-between-listdir-and-open race)."""

    def __init__(self, inner, ghost_pid):
        self.inner = inner
        self.ghost_pid = ghost_pid

    def uptime(self):
        return self.inner.uptime()

    def list_processes(self):
        procs = self.inner.list_processes()
        ghost = ProcessInfo(
            pid=self.ghost_pid,
            tids=(self.ghost_pid,),
            uid=0,
            user="ghost",
            comm="ghost",
            state="R",
            cpu_seconds=0.0,
            start_time=0.0,
            processor=0,
        )
        return [*procs, ghost]

    def process(self, pid):
        return self.inner.process(pid)  # raises for the ghost


class TestAttachFailures:
    def test_transient_open_failure_skips_task_then_recovers(
        self, coarse_machine, endless_workload
    ):
        coarse_machine.spawn("a", endless_workload)
        coarse_machine.spawn("b", endless_workload)
        # EAGAIN on the first attempt and both bounded retries: the attach
        # budget (1 + retry_limit) is exhausted for task a's first group.
        faults = FaultPlan(
            0, [FaultSpec("open", "eagain", at_calls=frozenset({1, 2, 3}))]
        )
        backend, sampler = make_sampler(coarse_machine, faults=faults)
        snap = sampler.sample()
        # One task failed to attach this round; the other is monitored.
        assert len(snap.rows) == 1
        assert sampler.proclist.attach_errors == 1
        assert sampler.proclist.attach_retries == 2
        coarse_machine.run_for(2.0)
        # The failure was transient: the task attaches on a later refresh.
        snap = sampler.sample()
        coarse_machine.run_for(2.0)
        snap = sampler.sample()
        assert len(snap.rows) == 2
        sampler.close()
        assert coarse_machine.counters.open_count() == 0
        assert backend.opened_total == backend.closed_total

    def test_ghost_task_attach_does_not_crash(
        self, coarse_machine, endless_workload
    ):
        coarse_machine.spawn("real", endless_workload)
        backend = SimBackend(coarse_machine)
        tasks = VanishingTasks(SimProcReader(coarse_machine), ghost_pid=99999)
        sampler = Sampler(backend, tasks, get_screen("default"))
        snap = sampler.sample()
        assert [r.comm for r in snap.rows] == ["real"]
        assert sampler.proclist.attach_errors >= 1
        sampler.close()

    def test_retry_succeeds_within_budget(
        self, coarse_machine, endless_workload
    ):
        """One EAGAIN, then success: the retry hides the fault entirely."""
        coarse_machine.spawn("a", endless_workload)
        faults = FaultPlan(
            0, [FaultSpec("open", "eagain", at_calls=frozenset({1}))]
        )
        backend, sampler = make_sampler(coarse_machine, faults=faults)
        snap = sampler.sample()
        assert len(snap.rows) == 1
        assert sampler.proclist.attach_errors == 0
        assert sampler.proclist.attach_retries == 1
        sampler.close()
        assert coarse_machine.counters.open_count() == 0

    def test_fd_limit_is_retried_next_refresh_not_denied(
        self, coarse_machine, endless_workload
    ):
        coarse_machine.spawn("a", endless_workload)
        faults = FaultPlan(
            0, [FaultSpec("open", "emfile", at_calls=frozenset({1}))]
        )
        backend, sampler = make_sampler(coarse_machine, faults=faults)
        snap = sampler.sample()
        assert len(snap.rows) == 0
        assert sampler.proclist.attach_errors == 1
        assert not sampler.proclist.denied  # EMFILE is not a denial
        coarse_machine.run_for(2.0)
        sampler.sample()
        coarse_machine.run_for(2.0)
        snap = sampler.sample()
        assert len(snap.rows) == 1
        sampler.close()


class TestReadFailures:
    def test_stale_read_drops_row_keeps_others(
        self, coarse_machine, endless_workload
    ):
        coarse_machine.spawn("a", endless_workload)
        coarse_machine.spawn("b", endless_workload)
        faults = FaultPlan(0)
        backend, sampler = make_sampler(coarse_machine, faults=faults)
        sampler.sample()
        coarse_machine.run_for(2.0)
        # The kernel declares task a's target gone on the very next read.
        faults.add(
            FaultSpec(
                "read",
                "esrch",
                at_calls=frozenset({faults.call_count("read") + 1}),
            )
        )
        snap = sampler.sample()
        assert len(snap.rows) == 1  # victim skipped, not fatal
        coarse_machine.run_for(2.0)
        snap = sampler.sample()
        assert len(snap.rows) == 2  # back to normal
        sampler.close()
        assert coarse_machine.counters.open_count() == 0
        assert backend.opened_total == backend.closed_total

    def test_transient_read_retries_within_interval(
        self, coarse_machine, endless_workload
    ):
        """EINTR once mid-read: retried immediately, row survives."""
        coarse_machine.spawn("a", endless_workload)
        faults = FaultPlan(0)
        backend, sampler = make_sampler(coarse_machine, faults=faults)
        sampler.sample()
        coarse_machine.run_for(2.0)
        faults.add(
            FaultSpec(
                "read",
                "eintr",
                at_calls=frozenset({faults.call_count("read") + 1}),
            )
        )
        snap = sampler.sample()
        assert len(snap.rows) == 1
        assert sampler.read_retries == 1
        assert sampler.proclist.tracked[snap.rows[0].tid].health == "retry"
        sampler.close()

    def test_exhausted_transient_reads_skip_but_keep_counters(
        self, coarse_machine, endless_workload
    ):
        coarse_machine.spawn("a", endless_workload)
        faults = FaultPlan(0)
        backend, sampler = make_sampler(coarse_machine, faults=faults)
        sampler.sample()
        coarse_machine.run_for(2.0)
        nxt = faults.call_count("read")
        faults.add(
            FaultSpec(
                "read",
                "corrupt",
                at_calls=frozenset({nxt + 1, nxt + 2, nxt + 3}),
            )
        )
        snap = sampler.sample()
        assert len(snap.rows) == 0
        assert sampler.read_skips == 1
        # Counters stayed attached: the next clean interval just works.
        assert len(sampler.proclist.tracked) == 1
        coarse_machine.run_for(2.0)
        snap = sampler.sample()
        assert len(snap.rows) == 1
        sampler.close()

    def test_multiplex_starvation_reads_as_zero_delta(
        self, coarse_machine, endless_workload
    ):
        coarse_machine.spawn("a", endless_workload)
        faults = FaultPlan(0, [FaultSpec("read", "starve", 1.0)])
        backend, sampler = make_sampler(coarse_machine, faults=faults)
        sampler.sample()
        coarse_machine.run_for(2.0)
        snap = sampler.sample()
        assert len(snap.rows) == 1
        assert all(v == 0.0 for v in snap.rows[0].deltas.values())
        sampler.close()


class TestQuarantine:
    def test_quarantine_then_reattach_lifecycle(
        self, coarse_machine, endless_workload
    ):
        proc = coarse_machine.spawn("a", endless_workload)
        faults = FaultPlan(0)
        screen = get_screen("default").with_columns(HEALTH_COLUMN)
        backend, sampler = make_sampler(
            coarse_machine, faults=faults, screen=screen
        )
        sampler.sample()
        coarse_machine.run_for(2.0)
        faults.add(
            FaultSpec(
                "read",
                "esrch",
                at_calls=frozenset({faults.call_count("read") + 1}),
            )
        )
        snap = sampler.sample()
        assert len(snap.rows) == 0
        # First offense: benched for one refresh, so the end-of-sample
        # rescan already brought it back.
        assert sampler.proclist.health_report() == {proc.pid: "reattached"}
        assert not sampler.proclist.quarantined
        coarse_machine.run_for(2.0)
        # Second offense right after reattach: the episode count survived,
        # so the backoff escalates and the bench is now observable.
        faults.add(
            FaultSpec(
                "read",
                "esrch",
                at_calls=frozenset({faults.call_count("read") + 1}),
            )
        )
        snap = sampler.sample()
        assert len(snap.rows) == 0
        assert sampler.proclist.health_report() == {proc.pid: "quarantined"}
        assert backend.open_handle_count() == 0
        entry = sampler.proclist.quarantined[proc.pid]
        assert entry.failures == 2
        assert entry.reason == "NoSuchTaskError"
        # Serve out the bench, reattach, and recover.
        coarse_machine.run_for(2.0)
        snap = sampler.sample()
        coarse_machine.run_for(2.0)
        snap = sampler.sample()
        assert len(snap.rows) == 1
        assert snap.frame.labels["HEALTH"] == ("reattached",)
        assert snap.rows[0].values["HEALTH"] == "reattached"
        coarse_machine.run_for(2.0)
        snap = sampler.sample()
        assert snap.frame.labels["HEALTH"] == ("ok",)
        # The clean interval wiped the history: backoff starts over.
        assert proc.pid not in sampler.proclist.quarantine_history
        sampler.close()
        assert coarse_machine.counters.open_count() == 0
        assert backend.opened_total == backend.closed_total

    def test_repeat_offender_backoff_escalates(
        self, coarse_machine, endless_workload
    ):
        proc = coarse_machine.spawn("a", endless_workload)
        backend, sampler = make_sampler(coarse_machine, faults=FaultPlan(0))
        sampler.sample()
        sampler.proclist.quarantine(proc.pid, "CounterStateError")
        first = sampler.proclist.quarantined[proc.pid]
        sampler.proclist.quarantine(proc.pid, "CounterStateError")
        second = sampler.proclist.quarantined[proc.pid]
        assert second.failures == 2
        assert (second.eligible_at - sampler.proclist.refresh_count) > (
            first.eligible_at - sampler.proclist.refresh_count - 1
        )
        sampler.close()

    def test_dead_quarantined_task_entry_is_purged(
        self, coarse_machine, endless_workload
    ):
        proc = coarse_machine.spawn("a", endless_workload)
        backend, sampler = make_sampler(coarse_machine, faults=FaultPlan(0))
        sampler.sample()
        sampler.proclist.quarantine(proc.pid, "CounterStateError")
        coarse_machine.kill(proc.pid)
        coarse_machine.run_for(2.0)
        sampler.sample()
        assert proc.pid not in sampler.proclist.quarantined
        sampler.close()


class TestPartialGroupOpen:
    def test_partial_group_open_closes_earlier_handles(
        self, coarse_machine, endless_workload
    ):
        """If event k of n fails to open, the k-1 opened ones are closed."""
        proc = coarse_machine.spawn("a", endless_workload)
        faults = FaultPlan(
            0, [FaultSpec("open", "emfile", at_calls=frozenset({2}))]
        )
        backend = SimBackend(coarse_machine, faults=faults)
        events = [
            resolve_event(n)
            for n in ("cycles", "instructions", "cache-misses")
        ]
        with pytest.raises(FdLimitError):
            CounterGroup(backend, events, proc.pid)
        assert coarse_machine.counters.open_count() == 0
        assert backend.open_handle_count() == 0
        assert backend.opened_total == backend.closed_total == 1

    def test_partial_open_unwind_survives_interrupted_close(
        self, coarse_machine, endless_workload
    ):
        """EINTR during the cleanup closes must not strand handles."""
        proc = coarse_machine.spawn("a", endless_workload)
        faults = FaultPlan(
            0,
            [
                FaultSpec("open", "emfile", at_calls=frozenset({3})),
                FaultSpec("close", "eintr", 1.0),
            ],
        )
        backend = SimBackend(coarse_machine, faults=faults)
        events = [
            resolve_event(n)
            for n in ("cycles", "instructions", "cache-misses")
        ]
        with pytest.raises(FdLimitError):
            CounterGroup(backend, events, proc.pid)
        assert coarse_machine.counters.open_count() == 0
        assert backend.open_handle_count() == 0

    def test_partial_kernel_counter_open_is_unwound(
        self, coarse_machine, endless_workload, monkeypatch
    ):
        """Inherit-mode opens fan out per thread; a mid-fan failure must
        close the kernel counters already created for earlier threads."""
        from repro.errors import CounterStateError

        proc = coarse_machine.spawn("a", endless_workload, nthreads=3)
        backend = SimBackend(coarse_machine)
        table = coarse_machine.counters
        real_open = table.open
        calls = {"n": 0}

        def flaky_open(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 3:
                raise CounterStateError("injected kernel-side failure")
            return real_open(*args, **kwargs)

        monkeypatch.setattr(table, "open", flaky_open)
        with pytest.raises(CounterStateError):
            backend.open(
                resolve_event("cycles"), proc.pid, inherit=True
            )
        assert table.open_count() == 0
        assert backend.open_handle_count() == 0


class TestPermanentDenial:
    def test_denied_tasks_not_retried(self, coarse_machine, endless_workload):
        coarse_machine.spawn("mine", endless_workload, uid=1001)
        coarse_machine.spawn("theirs", endless_workload, uid=1002)
        backend, sampler = make_sampler(coarse_machine, monitor_uid=1001)
        sampler.sample()
        denied_after_first = set(sampler.proclist.denied)
        coarse_machine.run_for(2.0)
        sampler.sample()
        # The denial is cached; no repeated attach storm.
        assert sampler.proclist.denied == denied_after_first
        assert len(denied_after_first) == 1
        sampler.close()
