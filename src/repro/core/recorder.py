"""Time-series capture of sampled metrics.

The paper's figures are all time series of per-interval metrics (IPC every
5 s, misses per 100 instructions every 10 s...). :class:`Recorder`
accumulates snapshots and exposes exactly the series the figures plot —
by pid, by command, against time or against cumulative instructions
(Fig. 8's x-axis).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.sampler import Snapshot


@dataclass(frozen=True)
class Sample:
    """One (task, interval) measurement."""

    time: float
    pid: int
    comm: str
    user: str
    cpu_pct: float
    deltas: dict[str, float]
    values: dict[str, float | str | int]


@dataclass
class Recorder:
    """Accumulates samples across snapshots."""

    samples: list[Sample] = field(default_factory=list)

    def record(self, snapshot: Snapshot) -> None:
        """Fold one snapshot's rows in."""
        for row in snapshot.rows:
            self.samples.append(
                Sample(
                    time=snapshot.time,
                    pid=row.pid,
                    comm=row.comm,
                    user=row.user,
                    cpu_pct=row.cpu_pct,
                    deltas=dict(row.deltas),
                    values=dict(row.values),
                )
            )

    def pids(self) -> list[int]:
        """All pids seen, sorted."""
        return sorted({s.pid for s in self.samples})

    def for_pid(self, pid: int) -> list[Sample]:
        """Samples of one process in time order."""
        return [s for s in self.samples if s.pid == pid]

    def for_command(self, comm: str) -> list[Sample]:
        """Samples of all processes with this command name."""
        return [s for s in self.samples if s.comm == comm]

    def series(
        self, pid: int, header: str, *, drop_nan: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        """(times, values) of one derived column for one pid."""
        times, values = [], []
        for s in self.for_pid(pid):
            v = s.values.get(header)
            if not isinstance(v, (int, float)):
                continue
            if drop_nan and (isinstance(v, float) and math.isnan(v)):
                continue
            times.append(s.time)
            values.append(float(v))
        return np.asarray(times), np.asarray(values)

    def series_vs_instructions(
        self, pid: int, header: str
    ) -> tuple[np.ndarray, np.ndarray]:
        """(cumulative instructions, values) — Fig. 8's x-axis.

        Requires the screen to have counted ``instructions``.
        """
        xs, values = [], []
        total = 0.0
        for s in self.for_pid(pid):
            total += s.deltas.get("instructions", 0.0)
            v = s.values.get(header)
            if isinstance(v, (int, float)) and not (
                isinstance(v, float) and math.isnan(v)
            ):
                xs.append(total)
                values.append(float(v))
        return np.asarray(xs), np.asarray(values)

    def mean(self, pid: int, header: str) -> float:
        """Time-average of a derived column for one pid (NaN if empty)."""
        _, values = self.series(pid, header)
        return float(np.mean(values)) if len(values) else math.nan

    def total_delta(self, pid: int, event_name: str) -> float:
        """Sum of an event's deltas over the whole recording."""
        return sum(s.deltas.get(event_name, 0.0) for s in self.for_pid(pid))

    # -- persistence --------------------------------------------------------
    def to_csv(self) -> str:
        """Serialise the recording as CSV (one line per task-interval).

        Columns: time, pid, comm, user, cpu_pct, then every counter delta
        (union across samples, sorted). Derived column values are not
        exported — they recompute from the deltas.
        """
        events = sorted({k for s in self.samples for k in s.deltas})
        header = ["time", "pid", "comm", "user", "cpu_pct", *events]
        lines = [",".join(header)]
        for s in self.samples:
            cells = [
                f"{s.time:.3f}",
                str(s.pid),
                s.comm,
                s.user,
                f"{s.cpu_pct:.2f}",
                *(f"{s.deltas.get(e, 0.0):.6g}" for e in events),
            ]
            lines.append(",".join(cells))
        return "\n".join(lines) + "\n"

    @classmethod
    def from_csv(cls, text: str) -> "Recorder":
        """Rebuild a recording from :meth:`to_csv` output.

        Raises:
            ValueError: malformed header or rows.
        """
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            return cls()
        header = lines[0].split(",")
        fixed = ["time", "pid", "comm", "user", "cpu_pct"]
        if header[: len(fixed)] != fixed:
            raise ValueError(f"unexpected CSV header {header[:5]}")
        events = header[len(fixed):]
        recorder = cls()
        for line in lines[1:]:
            cells = line.split(",")
            if len(cells) != len(header):
                raise ValueError(f"row arity mismatch: {line!r}")
            deltas = {
                e: float(v) for e, v in zip(events, cells[len(fixed):])
            }
            recorder.samples.append(
                Sample(
                    time=float(cells[0]),
                    pid=int(cells[1]),
                    comm=cells[2],
                    user=cells[3],
                    cpu_pct=float(cells[4]),
                    deltas=deltas,
                    values={},
                )
            )
        return recorder
