"""Topology: PU numbering, sibling lookup, hwloc rendering."""

import pytest

from repro.errors import SimulationError
from repro.sim import NEHALEM, PPC970, WESTMERE_E5640
from repro.sim.cpu_topology import Topology


class TestNumbering:
    def test_quad_core_smt_counts(self):
        topo = Topology(NEHALEM, 1, 4)
        assert topo.n_cores == 4
        assert topo.n_pus == 8

    def test_linux_style_smt_numbering(self):
        """Fig. 11c: core 0 hosts PU#0 and PU#4."""
        topo = Topology(NEHALEM, 1, 4)
        core0 = [p.pu_id for p in topo.pus_of_core(0)]
        assert core0 == [0, 4]

    def test_siblings(self):
        topo = Topology(NEHALEM, 1, 4)
        assert [p.pu_id for p in topo.siblings(0)] == [4]
        assert [p.pu_id for p in topo.siblings(4)] == [0]

    def test_no_smt_no_siblings(self):
        topo = Topology(PPC970, 1, 2)
        assert topo.siblings(0) == []

    def test_two_socket_node(self):
        """The bi-Xeon E5640 of Figs. 1/10: 16 PUs, 8 cores, 2 sockets."""
        topo = Topology(WESTMERE_E5640, 2, 4)
        assert topo.n_pus == 16
        assert topo.pu(0).socket_id == 0
        assert topo.pu(7).socket_id == 1

    def test_unknown_pu(self):
        topo = Topology(NEHALEM, 1, 4)
        with pytest.raises(SimulationError):
            topo.pu(64)

    def test_invalid_shape(self):
        with pytest.raises(SimulationError):
            Topology(NEHALEM, 0, 4)

    def test_maps_cover_all(self):
        topo = Topology(WESTMERE_E5640, 2, 4)
        assert set(topo.pu_to_core()) == set(range(16))
        assert set(topo.core_to_socket()) == set(range(8))


class TestRender:
    def test_render_fig11c_shape(self):
        """The hwloc drawing: machine, socket, shared L3, 4 cores, 8 PUs."""
        topo = Topology(NEHALEM, 1, 4)
        text = topo.render(memory_bytes=5965 * 1024 * 1024)
        assert "Machine (5965MB)" in text
        assert "Socket#0" in text
        assert "L3 (8192KB)" in text
        assert text.count("L2 (256KB)") == 4
        assert text.count("L1 (32KB)") == 4
        for pu in range(8):
            assert f"PU#{pu}" in text

    def test_render_without_memory(self):
        text = Topology(NEHALEM, 1, 4).render()
        assert text.startswith("Machine")
