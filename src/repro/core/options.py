"""Tool options, mirroring tiptop's command line.

The paper's tool is deliberately top-like: a refresh delay, a batch mode
(like ``top -b``), an iteration cap, per-thread vs per-process counting
(§2.2 "events can be counted per thread, or per process"), and filters for
whose processes to watch (footnote 1: non-privileged users only see their
own).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass(frozen=True)
class Options:
    """Sampler/application options.

    Attributes:
        delay: seconds between refreshes (tiptop's -d; default 2 like top,
            the paper typically samples every few seconds).
        batch: stream text instead of refreshing a live screen (-b).
        iterations: stop after N refreshes (None = run forever; -n).
        per_thread: count each thread separately instead of folding a
            process's threads together (inherit).
        watch_uid: only monitor processes of this uid (None = all visible).
        watch_pids: only monitor these pids (empty = all visible).
        watch_commands: only monitor processes whose command matches one of
            these names exactly (empty = all).
        screen: screen name to display.
        idle_threshold: hide rows below this %CPU in live mode (0 shows
            everything, like tiptop's idle-process toggle).
        sort_by: column header to sort rows by (descending); "%CPU" default.
        max_tasks: cap on simultaneously monitored tasks (guards fd usage).
        profile: print a per-refresh wall-time breakdown to stderr, making
            overhead claims like the paper's §2.5 observable on our tool.
        chaos: fault-injection seed (``--chaos SEED``). None disables
            injection; any int seeds a replayable
            :class:`~repro.perf.faults.FaultPlan` so batch runs of a
            failure schedule are byte-identical.
        retry_limit: extra attempts after a transient perf error
            (EINTR/EAGAIN/corrupt read) before the operation is given up
            for the interval.
        retry_backoff: base seconds slept between retries (doubles per
            attempt). 0 keeps retries immediate — the right choice for
            simulated hosts, where sleeping wall time means nothing.
        grid_workers: shard the simulated datacenter fleet over this many
            persistent worker processes (``--grid-workers``; 1 = the
            in-process serial engine). Only meaningful with ``--sim``
            grid runs — results are identical at any worker count.
        grid_chaos: worker-fault injection seed (``--grid-chaos SEED``).
            None disables injection; any int seeds a replayable
            :class:`~repro.sim.supervisor.GridFaultPlan` (worker
            crashes, hangs, garbled replies) executed under the
            supervised grid engine — the same seed replays the same
            failures and recoveries byte-identically.
        net_chaos: network-fault injection seed (``--net-chaos SEED``).
            None disables injection; any int seeds a replayable
            :class:`~repro.sim.netchaos.NetChaosPlan` (partitions, lost
            and duplicated messages, half-open links, delay) at the shard
            transport boundary — the supervised engine's epoch fencing
            keeps grid output byte-identical to an unpartitioned run.
        grid_transport: how grid shards talk to their workers
            (``--grid-transport``): "inproc", "fork" or "socket". None
            keeps the engine default (fork). A pure performance knob —
            grid output is identical across transports.
        grid_hosts: partition the grid's worker pool into this many
            supervised host groups under fleet-level supervision
            (``--grid-hosts``). None keeps single-host supervision.
        serve_port: run as a collector daemon on this TCP port instead
            of rendering locally (``--serve PORT``; 0 binds an ephemeral
            port). One sampler serves every connected viewer — ROADMAP
            item 1's "millions of users" split.
        connect: subscribe to a collector daemon at ``"host:port"``
            instead of sampling locally (``--connect``); the stream
            drives the ordinary screen pipeline unchanged.
    """

    delay: float = 2.0
    batch: bool = False
    iterations: int | None = None
    per_thread: bool = False
    watch_uid: int | None = None
    watch_pids: frozenset[int] = field(default_factory=frozenset)
    watch_commands: frozenset[str] = field(default_factory=frozenset)
    screen: str = "default"
    idle_threshold: float = 0.0
    sort_by: str = "%CPU"
    max_tasks: int = 512
    profile: bool = False
    chaos: int | None = None
    retry_limit: int = 2
    retry_backoff: float = 0.0
    grid_workers: int = 1
    grid_chaos: int | None = None
    net_chaos: int | None = None
    grid_transport: str | None = None
    grid_hosts: int | None = None
    serve_port: int | None = None
    connect: str | None = None

    def __post_init__(self) -> None:
        if self.delay <= 0:
            raise ConfigError(f"delay must be positive, got {self.delay}")
        if self.iterations is not None and self.iterations < 1:
            raise ConfigError(f"iterations must be >= 1, got {self.iterations}")
        if self.idle_threshold < 0:
            raise ConfigError("idle_threshold must be >= 0")
        if self.max_tasks < 1:
            raise ConfigError("max_tasks must be >= 1")
        if self.retry_limit < 0:
            raise ConfigError(
                f"retry_limit must be >= 0, got {self.retry_limit}"
            )
        if self.retry_backoff < 0:
            raise ConfigError(
                f"retry_backoff must be >= 0, got {self.retry_backoff}"
            )
        if self.grid_workers < 1:
            raise ConfigError(
                f"grid_workers must be >= 1, got {self.grid_workers}"
            )
        if self.grid_transport is not None and self.grid_transport not in (
            "inproc", "fork", "socket"
        ):
            raise ConfigError(
                "grid_transport must be one of inproc, fork, socket; "
                f"got {self.grid_transport!r}"
            )
        if self.grid_hosts is not None and self.grid_hosts < 1:
            raise ConfigError(
                f"grid_hosts must be >= 1, got {self.grid_hosts}"
            )
        if self.serve_port is not None and not (
            0 <= self.serve_port <= 65535
        ):
            raise ConfigError(
                f"serve_port must be 0..65535, got {self.serve_port}"
            )
        if self.connect is not None:
            host, _, port = self.connect.rpartition(":")
            if not host or not port.isdigit() or not 0 < int(port) <= 65535:
                raise ConfigError(
                    f"connect must be 'host:port', got {self.connect!r}"
                )
        if self.serve_port is not None and self.connect is not None:
            raise ConfigError("serve_port and connect are mutually exclusive")

    def wants(self, *, pid: int, uid: int, comm: str) -> bool:
        """Whether a task passes the watch filters."""
        if self.watch_uid is not None and uid != self.watch_uid:
            return False
        if self.watch_pids and pid not in self.watch_pids:
            return False
        if self.watch_commands and comm not in self.watch_commands:
            return False
        return True
