"""SPEC CPU2006 phase models calibrated against the paper's figures.

Each benchmark is described by an instruction mix, a memory behaviour
(cumulative per-level hit fractions and contention exponents), a branch
behaviour, and a list of phases as ``(name, weight, target solo IPC on
Nehalem)``. The execution CPI of every phase is solved at build time with
:func:`repro.sim.core.calibrate_phase`, so the *solo* IPC on the reference
architecture is exact by construction and everything else — the other
architectures, co-run contention, miss-rate responses — emerges from the
machine model.

Sources of the shapes:

* 429.mcf, 473.astar — Fig. 6 (phase profiles on Nehalem/Core2/PPC970) and
  Fig. 11 (mcf's miss rates and co-run slowdowns; the cumulative hit
  profile (0.85, 0.91, 0.92) with contention exponents (0.53, 0.75, 0.08)
  encodes "thrashes the SMT-shared L2 badly, barely notices losing L3
  share" — the key to Fig. 11d).
* 410.bwaves, 435.gromacs — Fig. 7 (gromacs ripples only on Nehalem).
* 456.hmmer, 482.sphinx3, 464.h264ref, 433.milc — Fig. 9 (gcc vs icc:
  higher IPC wins / lower IPC wins / phase inversion / same speed).
* Fig. 8 — astar's phase boundaries are instruction counts, so the IPC
  versus instructions-retired curves of the two Intel machines coincide;
  the PPC970 *binary* retires ~6 % more instructions (different compiler),
  shifting its curve.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import WorkloadError
from repro.sim.arch import NEHALEM
from repro.sim.branch import BranchBehavior
from repro.sim.cache import MemoryBehavior
from repro.sim.core import calibrate_phase
from repro.sim.isa import InstructionMix
from repro.sim.workload import Phase, Workload

#: Compilers of §3.3 (Fig. 9). GCC 4.4.3 and icc 11.0 in the paper.
GCC = "gcc"
ICC = "icc"


@dataclass(frozen=True)
class PhaseShape:
    """One phase of a benchmark model.

    Attributes:
        name: phase label.
        weight: fraction of the run's instructions spent here.
        ipc: target solo IPC on the Nehalem reference machine.
        arch_factors: optional per-arch execution multipliers (see
            :class:`repro.sim.workload.Phase`).
        noise: per-tick execution jitter override (None = benchmark default).
    """

    name: str
    weight: float
    ipc: float
    arch_factors: tuple[tuple[str, float], ...] = ()
    noise: float | None = None


@dataclass(frozen=True)
class BenchmarkModel:
    """Full description of one SPEC benchmark (per compiler).

    Attributes:
        name: SPEC identifier ("429.mcf").
        mix: instruction-class mix.
        memory: memory behaviour.
        branches: branch behaviour.
        noise: default per-tick execution jitter.
        variants: compiler -> (total instructions, phase shapes).
        ppc_instruction_scale: relative instruction count of the PowerPC
            binary (different ISA/compiler; Fig. 8's horizontal shift).
    """

    name: str
    mix: InstructionMix
    memory: MemoryBehavior
    branches: BranchBehavior
    noise: float
    variants: dict[str, tuple[float, tuple[PhaseShape, ...]]]
    ppc_instruction_scale: float = 1.06

    def compilers(self) -> tuple[str, ...]:
        """Compilers this model has variants for."""
        return tuple(self.variants)


def _mk(name: str, **kw) -> BenchmarkModel:
    return BenchmarkModel(name=name, **kw)


_MODELS: dict[str, BenchmarkModel] = {}


def _register(model: BenchmarkModel) -> None:
    _MODELS[model.name] = model


# ---------------------------------------------------------------------------
# Fig. 6 / Fig. 11 benchmarks
# ---------------------------------------------------------------------------
_register(
    _mk(
        "429.mcf",
        mix=InstructionMix.of(
            int_alu=0.36, load=0.30, store=0.05, branch=0.24, fp_sse=0.05
        ),
        memory=MemoryBehavior(
            working_set=1_700 * 1024 * 1024,
            level_hit_ratios=(0.85, 0.91, 0.92),
            miss_amplification=(1.45, 2.35, 0.48),
            mlp=6.0,
        ),
        branches=BranchBehavior(mispredict_ratio=0.04),
        noise=0.03,
        variants={
            GCC: (
                6.5e11,
                (
                    PhaseShape("startup", 0.08, 0.66),
                    PhaseShape("simplex-a", 0.22, 0.45),
                    PhaseShape("pricing-a", 0.25, 0.62),
                    PhaseShape("simplex-b", 0.25, 0.48),
                    PhaseShape("pricing-b", 0.20, 0.58),
                ),
            )
        },
    )
)

_register(
    _mk(
        "473.astar",
        mix=InstructionMix.of(
            int_alu=0.44, load=0.28, store=0.07, branch=0.18, fp_sse=0.03
        ),
        memory=MemoryBehavior(
            working_set=300 * 1024 * 1024,
            level_hit_ratios=(0.93, 0.95, 0.975),
            miss_amplification=(0.6, 0.7, 0.5),
            mlp=3.5,
        ),
        branches=BranchBehavior(mispredict_ratio=0.05),
        noise=0.03,
        variants={
            GCC: (
                1.4e12,
                (
                    PhaseShape("way-1", 0.15, 1.02),
                    PhaseShape("rivers-1", 0.20, 0.62),
                    PhaseShape("way-2", 0.20, 1.06),
                    PhaseShape("rivers-2", 0.15, 0.68),
                    # The relative IPC of the last phases differs on the
                    # PowerPC (Fig. 6b, §3.2).
                    PhaseShape("biglakes", 0.15, 0.90, arch_factors=(("ppc970", 1.35),)),
                    PhaseShape("final", 0.15, 0.55, arch_factors=(("ppc970", 0.80),)),
                ),
            )
        },
    )
)

# ---------------------------------------------------------------------------
# Fig. 7 benchmarks
# ---------------------------------------------------------------------------
_register(
    _mk(
        "410.bwaves",
        mix=InstructionMix.of(
            int_alu=0.22, load=0.33, store=0.10, branch=0.06, fp_sse=0.29
        ),
        memory=MemoryBehavior(
            working_set=800 * 1024 * 1024,
            level_hit_ratios=(0.96, 0.97, 0.985),
            miss_amplification=(0.4, 0.5, 0.6),
            streaming=0.02,
            mlp=7.0,
        ),
        branches=BranchBehavior(mispredict_ratio=0.01),
        noise=0.02,
        variants={
            GCC: (
                2.2e12,
                (
                    PhaseShape("solve-1", 0.20, 1.35),
                    PhaseShape("bc-1", 0.06, 1.10),
                    PhaseShape("solve-2", 0.20, 1.38),
                    PhaseShape("bc-2", 0.06, 1.12),
                    PhaseShape("solve-3", 0.22, 1.35),
                    PhaseShape("bc-3", 0.06, 1.15),
                    PhaseShape("solve-4", 0.20, 1.30),
                ),
            )
        },
    )
)

# 435.gromacs is built specially below (Nehalem-only ripples).

# ---------------------------------------------------------------------------
# The rest of the suite (§2.4/§2.5 run *all* of SPEC 2006). Characteristics
# follow the published workload characterisations: integer codes are
# branchy; libquantum/lbm stream; omnetpp/xalancbmk chase pointers; namd/
# povray live in the caches.
# ---------------------------------------------------------------------------
def _suite(name, *, mix, memory, mispredict, noise, total, ipcs):
    shapes = tuple(
        PhaseShape(f"slice-{i}", 1.0 / len(ipcs), ipc) for i, ipc in enumerate(ipcs)
    )
    _register(
        _mk(
            name,
            mix=mix,
            memory=memory,
            branches=BranchBehavior(mispredict_ratio=mispredict),
            noise=noise,
            variants={GCC: (total, shapes)},
        )
    )


_suite(
    "400.perlbench",
    mix=InstructionMix.of(int_alu=0.49, load=0.24, store=0.11, branch=0.15, nop=0.01),
    memory=MemoryBehavior(
        working_set=50 * 1024 * 1024, level_hit_ratios=(0.97, 0.985, 0.995), mlp=2.5
    ),
    mispredict=0.04,
    noise=0.03,
    total=2.1e12,
    ipcs=(1.55, 1.4, 1.5),
)

_suite(
    "401.bzip2",
    mix=InstructionMix.of(int_alu=0.52, load=0.26, store=0.09, branch=0.13),
    memory=MemoryBehavior(
        working_set=8 * 1024 * 1024, level_hit_ratios=(0.96, 0.975, 0.998), mlp=3.0
    ),
    mispredict=0.055,
    noise=0.03,
    total=1.8e12,
    ipcs=(1.25, 1.05, 1.2, 1.1),
)

_suite(
    "403.gcc",
    mix=InstructionMix.of(int_alu=0.44, load=0.26, store=0.12, branch=0.18),
    memory=MemoryBehavior(
        working_set=80 * 1024 * 1024, level_hit_ratios=(0.95, 0.97, 0.985), mlp=3.0
    ),
    mispredict=0.05,
    noise=0.04,
    total=1.1e12,
    ipcs=(0.95, 0.75, 0.9),
)

_suite(
    "445.gobmk",
    mix=InstructionMix.of(int_alu=0.5, load=0.25, store=0.1, branch=0.15),
    memory=MemoryBehavior(
        working_set=30 * 1024 * 1024, level_hit_ratios=(0.97, 0.99, 0.998), mlp=2.0
    ),
    mispredict=0.09,
    noise=0.03,
    total=1.6e12,
    ipcs=(0.95, 0.9),
)

_suite(
    "458.sjeng",
    mix=InstructionMix.of(int_alu=0.52, load=0.23, store=0.08, branch=0.17),
    memory=MemoryBehavior(
        working_set=170 * 1024 * 1024, level_hit_ratios=(0.975, 0.99, 0.997), mlp=2.0
    ),
    mispredict=0.08,
    noise=0.02,
    total=2.2e12,
    ipcs=(1.1, 1.05),
)

_suite(
    "462.libquantum",
    mix=InstructionMix.of(int_alu=0.35, load=0.31, store=0.14, branch=0.2),
    memory=MemoryBehavior(
        working_set=100 * 1024 * 1024,
        level_hit_ratios=(0.96, 0.965, 0.97),
        streaming=0.02,
        mlp=6.5,
    ),
    mispredict=0.015,
    noise=0.02,
    total=2.6e12,
    ipcs=(0.62, 0.6),
)

_suite(
    "471.omnetpp",
    mix=InstructionMix.of(int_alu=0.4, load=0.31, store=0.12, branch=0.17),
    memory=MemoryBehavior(
        working_set=150 * 1024 * 1024,
        level_hit_ratios=(0.93, 0.95, 0.965),
        miss_amplification=(0.8, 1.0, 0.4),
        mlp=4.0,
    ),
    mispredict=0.045,
    noise=0.03,
    total=6.9e11,
    ipcs=(0.5, 0.42, 0.48),
)

_suite(
    "483.xalancbmk",
    mix=InstructionMix.of(int_alu=0.43, load=0.3, store=0.09, branch=0.18),
    memory=MemoryBehavior(
        working_set=60 * 1024 * 1024, level_hit_ratios=(0.95, 0.96, 0.985), mlp=3.5
    ),
    mispredict=0.035,
    noise=0.03,
    total=1.2e12,
    ipcs=(0.85, 0.78, 0.82),
)

_suite(
    "444.namd",
    mix=InstructionMix.of(int_alu=0.27, load=0.26, store=0.07, branch=0.08, fp_sse=0.32),
    memory=MemoryBehavior(
        working_set=45 * 1024 * 1024, level_hit_ratios=(0.985, 0.995, 0.999), mlp=2.0
    ),
    mispredict=0.012,
    noise=0.015,
    total=3.3e12,
    ipcs=(1.75, 1.7),
)

_suite(
    "450.soplex",
    mix=InstructionMix.of(int_alu=0.33, load=0.3, store=0.08, branch=0.14, fp_sse=0.15),
    memory=MemoryBehavior(
        working_set=250 * 1024 * 1024,
        level_hit_ratios=(0.94, 0.955, 0.975),
        mlp=4.5,
    ),
    mispredict=0.03,
    noise=0.03,
    total=8.5e11,
    ipcs=(0.72, 0.6, 0.7),
)

_suite(
    "453.povray",
    mix=InstructionMix.of(int_alu=0.35, load=0.26, store=0.09, branch=0.13, fp_sse=0.17),
    memory=MemoryBehavior(
        working_set=3 * 1024 * 1024, level_hit_ratios=(0.985, 0.997, 0.9995), mlp=2.0
    ),
    mispredict=0.025,
    noise=0.02,
    total=2.4e12,
    ipcs=(1.5, 1.45),
)

_suite(
    "470.lbm",
    mix=InstructionMix.of(int_alu=0.2, load=0.32, store=0.14, branch=0.04, fp_sse=0.3),
    memory=MemoryBehavior(
        working_set=400 * 1024 * 1024,
        level_hit_ratios=(0.955, 0.96, 0.965),
        streaming=0.015,
        mlp=7.5,
    ),
    mispredict=0.008,
    noise=0.015,
    total=1.5e12,
    ipcs=(0.58, 0.56),
)

_suite(
    "437.leslie3d",
    mix=InstructionMix.of(int_alu=0.24, load=0.3, store=0.11, branch=0.06, fp_sse=0.29),
    memory=MemoryBehavior(
        working_set=130 * 1024 * 1024,
        level_hit_ratios=(0.965, 0.975, 0.985),
        mlp=5.0,
    ),
    mispredict=0.01,
    noise=0.02,
    total=2.0e12,
    ipcs=(1.15, 1.05, 1.1),
)

_suite(
    "459.GemsFDTD",
    mix=InstructionMix.of(int_alu=0.23, load=0.33, store=0.12, branch=0.05, fp_sse=0.27),
    memory=MemoryBehavior(
        working_set=850 * 1024 * 1024,
        level_hit_ratios=(0.955, 0.965, 0.975),
        mlp=5.5,
    ),
    mispredict=0.01,
    noise=0.02,
    total=1.4e12,
    ipcs=(0.82, 0.76),
)


# ---------------------------------------------------------------------------
# Fig. 9 benchmarks (gcc vs icc)
# ---------------------------------------------------------------------------
_register(
    _mk(
        "456.hmmer",
        mix=InstructionMix.of(
            int_alu=0.55, load=0.25, store=0.05, branch=0.10, fp_sse=0.05
        ),
        memory=MemoryBehavior(
            working_set=150 * 1024,
            level_hit_ratios=(0.99, 0.998, 0.999),
            mlp=2.0,
        ),
        branches=BranchBehavior(mispredict_ratio=0.008),
        noise=0.02,
        variants={
            # Fig. 9a: icc's code has a clearly higher IPC and wins.
            GCC: (
                3.4e12,
                (
                    PhaseShape("search-1", 0.5, 1.85),
                    PhaseShape("search-2", 0.5, 1.82),
                ),
            ),
            ICC: (
                3.4e12,
                (
                    PhaseShape("search-1", 0.5, 2.35),
                    PhaseShape("search-2", 0.5, 2.32),
                ),
            ),
        },
    )
)

_register(
    _mk(
        "482.sphinx3",
        mix=InstructionMix.of(
            int_alu=0.40, load=0.28, store=0.06, branch=0.12, fp_sse=0.14
        ),
        memory=MemoryBehavior(
            working_set=30 * 1024 * 1024,
            level_hit_ratios=(0.96, 0.97, 0.99),
            mlp=3.0,
        ),
        branches=BranchBehavior(mispredict_ratio=0.03),
        noise=0.03,
        variants={
            # Fig. 9b: gcc's IPC is higher but icc executes far fewer
            # instructions and finishes first.
            GCC: (
                2.4e12,
                (
                    PhaseShape("utt-1", 0.30, 1.38),
                    PhaseShape("utt-2", 0.20, 1.28),
                    PhaseShape("utt-3", 0.30, 1.40),
                    PhaseShape("utt-4", 0.20, 1.30),
                ),
            ),
            ICC: (
                1.75e12,
                (
                    PhaseShape("utt-1", 0.30, 1.18),
                    PhaseShape("utt-2", 0.20, 1.10),
                    PhaseShape("utt-3", 0.30, 1.20),
                    PhaseShape("utt-4", 0.20, 1.12),
                ),
            ),
        },
    )
)

_register(
    _mk(
        "464.h264ref",
        mix=InstructionMix.of(
            int_alu=0.50, load=0.26, store=0.08, branch=0.10, fp_sse=0.06
        ),
        memory=MemoryBehavior(
            working_set=5 * 1024 * 1024,
            level_hit_ratios=(0.97, 0.98, 0.999),
            mlp=2.5,
        ),
        branches=BranchBehavior(mispredict_ratio=0.02),
        noise=0.02,
        variants={
            # Fig. 9c: the inversion — gcc leads in the first (short)
            # phase, trails in the second; total run times are close.
            GCC: (
                3.1e12,
                (
                    PhaseShape("foreman", 0.29, 2.10),
                    PhaseShape("sss-main", 0.71, 1.45),
                ),
            ),
            ICC: (
                3.1e12,
                (
                    PhaseShape("foreman", 0.29, 1.75),
                    PhaseShape("sss-main", 0.71, 1.65),
                ),
            ),
        },
    )
)

_register(
    _mk(
        "433.milc",
        mix=InstructionMix.of(
            int_alu=0.28, load=0.32, store=0.10, branch=0.07, fp_sse=0.23
        ),
        memory=MemoryBehavior(
            working_set=400 * 1024 * 1024,
            level_hit_ratios=(0.96, 0.97, 0.985),
            streaming=0.01,
            mlp=4.0,
        ),
        branches=BranchBehavior(mispredict_ratio=0.01),
        noise=0.02,
        variants={
            # Fig. 9d: same wall time; gcc's IPC constantly higher because
            # its code executes proportionally more instructions.
            GCC: (
                1.45e12,
                (
                    PhaseShape("su3-1", 0.5, 1.05),
                    PhaseShape("su3-2", 0.5, 1.02),
                ),
            ),
            ICC: (
                1.216e12,
                (
                    PhaseShape("su3-1", 0.5, 0.88),
                    PhaseShape("su3-2", 0.5, 0.855),
                ),
            ),
        },
    )
)

#: 435.gromacs ripple structure (Fig. 7b): alternating hi/lo IPC visible on
#: Nehalem only; on Core2/PPC970 the hi phases carry a compensating factor.
_GROMACS_PAIRS = 8
_GROMACS_IPC_LO = 1.55
_GROMACS_IPC_HI = 1.68
_GROMACS_TOTAL = 3.2e12

_GROMACS_BASE = dict(
    mix=InstructionMix.of(
        int_alu=0.30, load=0.24, store=0.08, branch=0.07, fp_sse=0.31
    ),
    memory=MemoryBehavior(
        working_set=2 * 1024 * 1024,
        level_hit_ratios=(0.97, 0.99, 0.999),
        mlp=2.0,
    ),
    branches=BranchBehavior(mispredict_ratio=0.015),
    noise=0.015,
)


def _build_gromacs() -> Workload:
    base = Phase(
        name="seed",
        instructions=1.0,
        mix=_GROMACS_BASE["mix"],
        memory=_GROMACS_BASE["memory"],
        branches=_GROMACS_BASE["branches"],
        noise=_GROMACS_BASE["noise"],
    )
    lo = calibrate_phase(NEHALEM, base, _GROMACS_IPC_LO)
    hi = calibrate_phase(NEHALEM, base, _GROMACS_IPC_HI)
    # On Core2/PPC970 the hi phases run at the lo phases' execution CPI:
    # the ripple is a Nehalem-specific micro-architectural interaction.
    flatten = lo.exec_cpi / hi.exec_cpi
    per_pair = _GROMACS_TOTAL / _GROMACS_PAIRS
    phases: list[Phase] = []
    for i in range(_GROMACS_PAIRS):
        phases.append(
            replace(
                hi,
                name=f"nb-kernel-{i}",
                instructions=per_pair * 0.55,
                arch_factors=(("core2", flatten), ("ppc970", flatten)),
            )
        )
        phases.append(replace(lo, name=f"update-{i}", instructions=per_pair * 0.45))
    return Workload(name="435.gromacs", phases=tuple(phases))


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------
_CACHE: dict[tuple[str, str], Workload] = {}


def available() -> list[str]:
    """Names of all modelled SPEC benchmarks."""
    return sorted([*_MODELS, "435.gromacs"])


def compilers(name: str) -> tuple[str, ...]:
    """Compilers a benchmark has variants for.

    Raises:
        WorkloadError: for an unknown benchmark.
    """
    if name == "435.gromacs":
        return (GCC,)
    model = _model(name)
    return model.compilers()


def _model(name: str) -> BenchmarkModel:
    try:
        return _MODELS[name]
    except KeyError as exc:
        raise WorkloadError(
            f"unknown SPEC benchmark {name!r}; known: {available()}"
        ) from exc


def workload(name: str, compiler: str = GCC) -> Workload:
    """Build (and cache) the workload for ``name`` compiled by ``compiler``.

    Phase execution CPIs are calibrated so each phase's solo IPC on the
    Nehalem reference machine equals the model's target.

    Raises:
        WorkloadError: unknown benchmark or compiler variant.
    """
    key = (name, compiler)
    if key in _CACHE:
        return _CACHE[key]
    if name == "435.gromacs":
        if compiler != GCC:
            raise WorkloadError(f"435.gromacs has no {compiler!r} variant")
        built = _build_gromacs()
        _CACHE[key] = built
        return built
    model = _model(name)
    try:
        total, shapes = model.variants[compiler]
    except KeyError as exc:
        raise WorkloadError(
            f"{name} has no {compiler!r} variant (has {model.compilers()})"
        ) from exc
    weight_sum = sum(s.weight for s in shapes)
    if abs(weight_sum - 1.0) > 1e-6:
        raise WorkloadError(f"{name}/{compiler} phase weights sum to {weight_sum}")
    phases: list[Phase] = []
    for shape in shapes:
        seed = Phase(
            name=shape.name,
            instructions=total * shape.weight,
            mix=model.mix,
            memory=model.memory,
            branches=model.branches,
            noise=model.noise if shape.noise is None else shape.noise,
            arch_factors=shape.arch_factors,
        )
        phases.append(calibrate_phase(NEHALEM, seed, shape.ipc))
    built = Workload(name=f"{name}", phases=tuple(phases))
    _CACHE[key] = built
    return built


def ppc_workload(name: str, compiler: str = GCC) -> Workload:
    """The PowerPC build of a benchmark: same phases, more instructions.

    Different compiler and ISA mean the PPC binary retires a slightly
    different instruction stream — Fig. 8 shows astar's curve shifting
    horizontally relative to the two (identical-binary) Intel machines.
    """
    base = workload(name, compiler)
    scale = 1.06 if name == "435.gromacs" else _model(name).ppc_instruction_scale
    phases = tuple(
        p.with_budget(p.instructions * scale) for p in base.phases
    )
    return Workload(name=f"{name}-ppc", phases=phases)
