"""Micro-architecture models for the machines used in the paper.

The paper experiments on four machines: an Intel Xeon W3550 ("Nehalem",
§2.5–3.3), an Intel Core 2 (§3.2), a PowerPC 970 (§3.1–3.2), and bi-Xeon
E5640 data-center nodes ("Westmere", §3.4 / Figs. 1, 10). Each
:class:`ArchModel` captures the parameters the coarse performance model
needs: clock, issue width, cache geometry, penalties, the presence of the
micro-code FP-assist mechanism, and the PMU width (the Xeon W3550 supports
sixteen simultaneous events, §2.6).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.sim.events import Event
from repro.util.units import parse_size


class CacheScope(enum.Enum):
    """Which tasks share a cache level."""

    PER_PU = "pu"          # private to a hardware thread (not used by defaults)
    PER_CORE = "core"      # shared by the SMT threads of one core (L1, L2)
    PER_SOCKET = "socket"  # shared by all cores of a socket (L3)


@dataclass(frozen=True)
class CacheLevelSpec:
    """Geometry of one cache level.

    Attributes:
        name: display name ("L1", "L2", "L3").
        size: capacity in bytes.
        line: line size in bytes.
        associativity: number of ways (informational; the analytic model
            works on capacities).
        scope: sharing scope (see :class:`CacheScope`).
        latency: load-to-use latency in cycles for a hit at this level.
        locality_exponent: exponent of the power-law hit-ratio curve
            ``hit = min(1, (capacity/ws)^theta)`` used by the analytic model.
        hit_floor: fraction of references that hit this level regardless of
            working-set size — short-term reuse of stack/locals/hot lines
            that even cache-hostile programs exhibit. Only the remainder
            follows the power-law capacity curve.
    """

    name: str
    size: int
    line: int = 64
    associativity: int = 8
    scope: CacheScope = CacheScope.PER_CORE
    latency: int = 10
    locality_exponent: float = 0.5
    hit_floor: float = 0.0

    def __post_init__(self) -> None:
        if self.size <= 0 or self.line <= 0:
            raise SimulationError(f"invalid cache geometry for {self.name}")


@dataclass(frozen=True)
class ArchModel:
    """Parameters of one simulated micro-architecture.

    Attributes:
        name: short identifier ("nehalem", "core2", "ppc970", "westmere").
        freq_hz: core clock frequency.
        issue_width: sustained retire width (upper bound on IPC).
        cpi_scale: multiplier applied to a phase's execution CPI; encodes the
            front-end/back-end quality difference between architectures
            (Nehalem is the 1.0 reference).
        mispredict_penalty: cycles lost per branch mispredict.
        mem_latency: DRAM access latency in cycles (uncontended).
        cache_levels: L1 -> LLC geometry, ordered.
        fp_assist_penalty: cycles of micro-code per assisted FP instruction,
            or ``None`` when the architecture has no assist mechanism
            (PPC970 handles non-finite values in hardware, §3.1/Fig. 3d).
        smt_per_core: hardware threads per core.
        smt_efficiency: total issue throughput of a core with both SMT
            threads active, relative to one thread (e.g. 1.15 means two
            threads together sustain 115 % of one thread's issue rate).
        pmu_width: number of simultaneously-countable events.
        raw_events: target-specific events this PMU implements.
        uops_per_instruction: average micro-ops per retired instruction
            (drives UOPS_EXECUTED).
    """

    name: str
    freq_hz: float
    issue_width: float
    cpi_scale: float
    mispredict_penalty: float
    mem_latency: float
    cache_levels: tuple[CacheLevelSpec, ...]
    fp_assist_penalty: float | None
    smt_per_core: int = 1
    smt_efficiency: float = 1.15
    pmu_width: int = 16
    raw_events: frozenset[Event] = field(default_factory=frozenset)
    uops_per_instruction: float = 1.2

    def __post_init__(self) -> None:
        if self.issue_width <= 0 or self.freq_hz <= 0:
            raise SimulationError(f"invalid ArchModel {self.name}")
        if not self.cache_levels:
            raise SimulationError(f"ArchModel {self.name} needs >= 1 cache level")

    @property
    def has_fp_assist(self) -> bool:
        """True when non-finite FP operands trigger micro-code assist."""
        return self.fp_assist_penalty is not None

    @property
    def llc(self) -> CacheLevelSpec:
        """The last-level cache."""
        return self.cache_levels[-1]

    def supports_event(self, event: Event) -> bool:
        """Whether this PMU can count ``event``."""
        return event.is_generic() or event in self.raw_events


_INTEL_RAW = frozenset(
    {
        Event.FP_ASSIST,
        Event.UOPS_EXECUTED,
        Event.L1D_ACCESSES,
        Event.L1D_MISSES,
        Event.L2_ACCESSES,
        Event.L2_MISSES,
        Event.L3_ACCESSES,
        Event.L3_MISSES,
        Event.LOADS,
        Event.STORES,
        Event.FP_OPERATIONS,
        Event.X87_OPERATIONS,
        Event.SSE_OPERATIONS,
        Event.MEM_LATENCY_CYCLES,
    }
)

_PPC_RAW = frozenset(
    {
        Event.L1D_ACCESSES,
        Event.L1D_MISSES,
        Event.L2_ACCESSES,
        Event.L2_MISSES,
        Event.LOADS,
        Event.STORES,
        Event.FP_OPERATIONS,
    }
)


def _nehalem_caches(l3_size: str = "8MB") -> tuple[CacheLevelSpec, ...]:
    return (
        CacheLevelSpec("L1", parse_size("32KB"), scope=CacheScope.PER_CORE,
                       latency=4, locality_exponent=0.35, associativity=8,
                       hit_floor=0.85),
        CacheLevelSpec("L2", parse_size("256KB"), scope=CacheScope.PER_CORE,
                       latency=10, locality_exponent=0.5, associativity=8,
                       hit_floor=0.92),
        CacheLevelSpec("L3", parse_size(l3_size), scope=CacheScope.PER_SOCKET,
                       latency=40, locality_exponent=0.6, associativity=16,
                       hit_floor=0.97),
    )


#: Intel Xeon W3550 @ 3.07 GHz — "Nehalem", the paper's main workstation.
NEHALEM = ArchModel(
    name="nehalem",
    freq_hz=3.07e9,
    issue_width=4.0,
    cpi_scale=1.0,
    mispredict_penalty=17.0,
    mem_latency=180.0,
    cache_levels=_nehalem_caches("8MB"),
    fp_assist_penalty=264.0,  # calibrated so Table 1's x87 IPC is ~0.015
    smt_per_core=2,
    pmu_width=16,
    raw_events=_INTEL_RAW,
)

#: Intel Xeon E5640 @ 2.67 GHz — Westmere data-center node (Figs. 1, 10).
WESTMERE_E5640 = ArchModel(
    name="westmere",
    freq_hz=2.67e9,
    issue_width=4.0,
    cpi_scale=1.0,
    mispredict_penalty=17.0,
    mem_latency=185.0,
    cache_levels=_nehalem_caches("12MB"),
    fp_assist_penalty=264.0,
    smt_per_core=2,
    pmu_width=16,
    raw_events=_INTEL_RAW,
)

#: Intel Core 2 class machine (§3.2, Figs. 6–8).
CORE2 = ArchModel(
    name="core2",
    freq_hz=2.4e9,
    issue_width=4.0,
    cpi_scale=1.25,
    mispredict_penalty=15.0,
    mem_latency=200.0,
    cache_levels=(
        CacheLevelSpec("L1", parse_size("32KB"), scope=CacheScope.PER_CORE,
                       latency=3, locality_exponent=0.35, hit_floor=0.85),
        CacheLevelSpec("L2", parse_size("4MB"), scope=CacheScope.PER_SOCKET,
                       latency=15, locality_exponent=0.55, hit_floor=0.95),
    ),
    fp_assist_penalty=300.0,
    smt_per_core=1,
    pmu_width=4,
    # The Core 2 era predates both the L3 and the memory-latency counters
    # (§3.4 calls the latter a *recent* addition).
    raw_events=_INTEL_RAW
    - {Event.L3_ACCESSES, Event.L3_MISSES, Event.MEM_LATENCY_CYCLES},
)

#: PowerPC 970 @ 1.8 GHz (§3.1–3.2): no micro-code FP assist mechanism.
PPC970 = ArchModel(
    name="ppc970",
    freq_hz=1.8e9,
    issue_width=4.0,
    cpi_scale=1.6,
    mispredict_penalty=12.0,
    mem_latency=220.0,
    cache_levels=(
        CacheLevelSpec("L1", parse_size("32KB"), scope=CacheScope.PER_CORE,
                       latency=3, locality_exponent=0.35, hit_floor=0.85),
        CacheLevelSpec("L2", parse_size("512KB"), scope=CacheScope.PER_CORE,
                       latency=12, locality_exponent=0.5, hit_floor=0.93),
    ),
    fp_assist_penalty=None,
    smt_per_core=1,
    pmu_width=8,
    raw_events=_PPC_RAW,
)

#: All models keyed by name, for lookups from configs and the CLI.
ARCHITECTURES: dict[str, ArchModel] = {
    a.name: a for a in (NEHALEM, WESTMERE_E5640, CORE2, PPC970)
}


def get_arch(name: str) -> ArchModel:
    """Look up an architecture model by name.

    Raises:
        SimulationError: for an unknown name.
    """
    try:
        return ARCHITECTURES[name]
    except KeyError as exc:
        known = ", ".join(sorted(ARCHITECTURES))
        raise SimulationError(f"unknown architecture {name!r} (known: {known})") from exc
