"""procfs providers: the real /proc (against ourselves) and the sim view."""

import os

import pytest

from repro.errors import ProcfsError
from repro.procfs.model import ProcessInfo, cpu_percent
from repro.procfs.reader import ProcReader
from repro.procfs.simproc import SimProcReader


class TestRealProc:
    """The container has a real /proc; exercise it on our own process."""

    def test_uptime_positive(self):
        assert ProcReader().uptime() > 0

    def test_self_process(self):
        info = ProcReader().process(os.getpid())
        assert info.pid == os.getpid()
        assert info.uid == os.getuid()
        assert "python" in info.comm or info.comm  # interpreter name
        assert info.cpu_seconds >= 0
        assert os.getpid() in info.tids

    def test_missing_pid_raises(self):
        with pytest.raises(ProcfsError):
            ProcReader().process(2**22 - 1)

    def test_list_includes_self(self):
        pids = {p.pid for p in ProcReader().list_processes()}
        assert os.getpid() in pids

    def test_comm_with_spaces_parsed(self, tmp_path):
        """stat's comm field may contain spaces and parens."""
        pid_dir = tmp_path / "123"
        (pid_dir / "task").mkdir(parents=True)
        (pid_dir / "task" / "123").mkdir()
        stat = (
            "123 (my (we)ird name) S 1 123 123 0 -1 4194304 "
            + " ".join(["0"] * 32)
            + "\n"
        )
        (pid_dir / "stat").write_text(stat)
        (pid_dir / "status").write_text("Name: x\nUid:\t0\t0\t0\t0\n")
        (tmp_path / "uptime").write_text("100.0 50.0\n")
        reader = ProcReader(root=str(tmp_path), clock_ticks=100)
        info = reader.process(123)
        assert info.comm == "my (we)ird name"
        assert info.state == "S"

    def test_malformed_stat_raises(self, tmp_path):
        pid_dir = tmp_path / "77"
        pid_dir.mkdir()
        (pid_dir / "stat").write_text("garbage without parens")
        with pytest.raises(ProcfsError):
            ProcReader(root=str(tmp_path)).process(77)


class TestSimProc:
    def test_lists_live_processes(self, nehalem_machine, endless_workload):
        nehalem_machine.spawn("svc", endless_workload, user="bob", uid=1002)
        reader = SimProcReader(nehalem_machine)
        procs = reader.list_processes()
        assert len(procs) == 1
        info = procs[0]
        assert info.user == "bob"
        assert info.uid == 1002
        assert info.comm == "svc"
        assert info.state == "R"

    def test_uptime_is_virtual(self, nehalem_machine):
        reader = SimProcReader(nehalem_machine)
        nehalem_machine.run_for(3.0)
        assert reader.uptime() == pytest.approx(3.0)

    def test_dead_process_disappears(self, nehalem_machine, endless_workload):
        p = nehalem_machine.spawn("x", endless_workload)
        reader = SimProcReader(nehalem_machine)
        nehalem_machine.kill(p.pid)
        with pytest.raises(ProcfsError):
            reader.process(p.pid)
        assert reader.list_processes() == []

    def test_comm_truncated_to_15(self, nehalem_machine, endless_workload):
        nehalem_machine.spawn("a-very-long-command-name", endless_workload)
        info = SimProcReader(nehalem_machine).list_processes()[0]
        assert len(info.comm) == 15

    def test_cpu_seconds_accrue(self, nehalem_machine, endless_workload):
        p = nehalem_machine.spawn("x", endless_workload)
        reader = SimProcReader(nehalem_machine)
        nehalem_machine.run_for(2.0)
        assert reader.process(p.pid).cpu_seconds == pytest.approx(2.0, rel=0.05)


class TestCpuPercent:
    def _info(self, cpu_seconds, start=0.0):
        return ProcessInfo(
            pid=1, tids=(1,), uid=0, user="r", comm="c", state="R",
            cpu_seconds=cpu_seconds, start_time=start, processor=0,
        )

    def test_interval_based(self):
        prev, cur = self._info(1.0), self._info(2.0)
        assert cpu_percent(prev, cur, 2.0) == pytest.approx(50.0)

    def test_first_sample_uses_lifetime(self):
        cur = self._info(5.0, start=10.0)
        assert cpu_percent(None, cur, 1.0, uptime=20.0) == pytest.approx(50.0)

    def test_first_sample_without_uptime(self):
        assert cpu_percent(None, self._info(5.0), 1.0) == 0.0

    def test_negative_clamped(self):
        prev, cur = self._info(3.0), self._info(2.0)
        assert cpu_percent(prev, cur, 1.0) == 0.0

    def test_zero_interval(self):
        prev, cur = self._info(1.0), self._info(2.0)
        assert cpu_percent(prev, cur, 0.0) == 0.0
