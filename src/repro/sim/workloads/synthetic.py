"""Synthetic workload populations for stress and endurance testing.

The paper's tool runs unattended against *whatever* a production node
happens to be running. This generator produces deterministic, seeded
populations spanning the behavioural space the models cover — compute-bound,
memory-bound, branchy, FP-heavy, phase-switching, short-lived, duty-cycled —
so endurance tests can churn thousands of realistic processes through the
monitor without hand-writing each one.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.sim.arch import ArchModel, NEHALEM
from repro.sim.branch import BranchBehavior
from repro.sim.cache import MemoryBehavior
from repro.sim.core import calibrate_phase
from repro.sim.isa import InstructionMix
from repro.sim.workload import Phase, Workload

#: The behavioural archetypes the generator draws from.
ARCHETYPES = (
    "compute",     # high IPC, cache-resident
    "memory",      # LLC-missing, low IPC
    "branchy",     # mispredict-limited
    "fp",          # FP-dense kernels
    "phased",      # alternates two regimes
)


@dataclass(frozen=True)
class SyntheticSpec:
    """One generated job description (inputs to :func:`build`)."""

    name: str
    archetype: str
    target_ipc: float
    duration: float  # solo seconds; inf for services
    duty_cycle: float
    nthreads: int


def _mix_for(archetype: str, rng: np.random.Generator) -> InstructionMix:
    if archetype == "fp":
        return InstructionMix.of(
            int_alu=0.28, load=0.24, store=0.08, branch=0.08, fp_sse=0.32
        )
    if archetype == "branchy":
        return InstructionMix.of(
            int_alu=0.48, load=0.22, store=0.07, branch=0.23
        )
    if archetype == "memory":
        return InstructionMix.of(
            int_alu=0.37, load=0.31, store=0.12, branch=0.2
        )
    return InstructionMix.of(
        int_alu=0.5, load=0.22, store=0.08, branch=0.15, fp_sse=0.05
    )


def _memory_for(archetype: str, rng: np.random.Generator) -> MemoryBehavior:
    if archetype == "memory":
        return MemoryBehavior(
            working_set=int(rng.integers(64, 1024)) * 1024 * 1024,
            level_hit_ratios=(0.94, 0.955, 0.97),
            mlp=float(rng.uniform(3.5, 6.0)),
        )
    return MemoryBehavior(
        working_set=int(rng.integers(1, 16)) * 1024 * 1024,
        level_hit_ratios=(0.97, 0.99, 0.998),
        mlp=2.0,
    )


def _ipc_range(archetype: str) -> tuple[float, float]:
    return {
        "compute": (1.4, 2.4),
        "memory": (0.35, 0.7),
        "branchy": (0.8, 1.2),
        "fp": (1.2, 1.9),
        "phased": (0.8, 1.6),
    }[archetype]


def generate_specs(
    count: int,
    *,
    seed: int = 0,
    service_fraction: float = 0.2,
) -> list[SyntheticSpec]:
    """Draw ``count`` deterministic job specs.

    Raises:
        WorkloadError: non-positive count or a fraction outside [0, 1].
    """
    if count < 1:
        raise WorkloadError(f"count must be >= 1, got {count}")
    if not 0 <= service_fraction <= 1:
        raise WorkloadError("service_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    specs = []
    for i in range(count):
        archetype = ARCHETYPES[int(rng.integers(0, len(ARCHETYPES)))]
        lo, hi = _ipc_range(archetype)
        duration = (
            math.inf
            if rng.random() < service_fraction
            else float(rng.uniform(10.0, 120.0))
        )
        specs.append(
            SyntheticSpec(
                name=f"{archetype}{i}",
                archetype=archetype,
                target_ipc=float(rng.uniform(lo, hi)),
                duration=duration,
                duty_cycle=float(rng.choice([1.0, 1.0, 1.0, 0.4, 0.7])),
                nthreads=int(rng.choice([1, 1, 1, 2, 4])),
            )
        )
    return specs


def build(
    spec: SyntheticSpec, arch: ArchModel = NEHALEM, *, seed: int = 0
) -> Workload:
    """Materialise one spec into a calibrated workload."""
    rng = np.random.default_rng((seed, zlib.crc32(spec.name.encode())))
    mix = _mix_for(spec.archetype, rng)
    memory = _memory_for(spec.archetype, rng)
    mispredict = 0.09 if spec.archetype == "branchy" else 0.02
    budget = (
        math.inf
        if math.isinf(spec.duration)
        else spec.target_ipc * arch.freq_hz * spec.duration
    )
    base = Phase(
        name="main",
        instructions=budget,
        mix=mix,
        memory=memory,
        branches=BranchBehavior(mispredict_ratio=mispredict),
        noise=0.03,
    )
    if spec.archetype != "phased":
        return Workload(spec.name, (calibrate_phase(arch, base, spec.target_ipc),))
    # Phased: alternate around the target, finite chunks.
    chunk = (
        budget / 6 if not math.isinf(budget) else 20.0 * arch.freq_hz
    )
    hi = calibrate_phase(arch, base.with_budget(chunk), spec.target_ipc * 1.2)
    lo = calibrate_phase(arch, base.with_budget(chunk), spec.target_ipc * 0.8)
    phases = (hi, lo, hi.with_budget(chunk), lo.with_budget(chunk), hi.with_budget(chunk), lo.with_budget(chunk))
    if math.isinf(budget):
        phases = (*phases[:-1], phases[-1].with_budget(math.inf))
    return Workload(spec.name, phases)
