"""PAPI preset naming (§4's cross-platform standard names)."""

import pytest

from repro.errors import EventError
from repro.perf.papi import PAPI_PRESETS, papi_names, resolve_papi
from repro.sim import NEHALEM, PPC970
from repro.sim.events import Event


class TestPresets:
    def test_core_presets(self):
        assert resolve_papi("PAPI_TOT_CYC").sim_event is Event.CYCLES
        assert resolve_papi("PAPI_TOT_INS").sim_event is Event.INSTRUCTIONS
        assert resolve_papi("PAPI_L3_TCM").sim_event is Event.L3_MISSES
        assert resolve_papi("PAPI_FP_INS").sim_event is Event.FP_OPERATIONS

    def test_case_insensitive(self):
        assert resolve_papi("papi_tot_ins").name == "instructions"

    def test_unknown(self):
        with pytest.raises(EventError):
            resolve_papi("PAPI_WARP_SPEED")

    def test_arch_gating(self):
        resolve_papi("PAPI_L3_TCM", NEHALEM)
        with pytest.raises(EventError):
            resolve_papi("PAPI_L3_TCM", PPC970)

    def test_every_preset_resolves(self):
        for preset in papi_names():
            resolve_papi(preset)

    def test_names_sorted(self):
        assert papi_names() == sorted(PAPI_PRESETS)

    def test_usable_for_counting(self, coarse_machine, endless_workload):
        from repro.perf.counter import Counter
        from repro.perf.simbackend import SimBackend

        proc = coarse_machine.spawn("j", endless_workload)
        backend = SimBackend(coarse_machine)
        counter = Counter(backend, resolve_papi("PAPI_TOT_INS"), proc.pid)
        coarse_machine.run_for(1.0)
        assert counter.delta() > 0
