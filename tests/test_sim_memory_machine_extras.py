"""MemorySystem and SimMachine edge cases not covered elsewhere."""

import math

import pytest

from repro.errors import SimulationError
from repro.sim import NEHALEM, PPC970, SimMachine
from repro.sim.events import Event
from repro.sim.memory import MemorySystem
from repro.sim.workload import Workload


class TestMemorySystem:
    def test_validation(self):
        with pytest.raises(SimulationError):
            MemorySystem(bandwidth_bytes_per_sec=0, base_latency_cycles=100)
        with pytest.raises(SimulationError):
            MemorySystem(bandwidth_bytes_per_sec=1e9, base_latency_cycles=0)

    def test_idle_bus_base_latency(self):
        mem = MemorySystem(bandwidth_bytes_per_sec=25e9, base_latency_cycles=180)
        assert mem.effective_latency(0.0) == 180.0
        assert mem.utilisation(0.0) == 0.0

    def test_latency_monotone_in_demand(self):
        mem = MemorySystem(bandwidth_bytes_per_sec=25e9, base_latency_cycles=180)
        lats = [mem.effective_latency(d) for d in (1e9, 10e9, 20e9, 24e9)]
        assert lats == sorted(lats)

    def test_latency_capped(self):
        mem = MemorySystem(
            bandwidth_bytes_per_sec=25e9,
            base_latency_cycles=180,
            max_inflation=2.5,
        )
        assert mem.effective_latency(1e15) <= 180 * 2.5

    def test_utilisation_saturates_below_one(self):
        mem = MemorySystem(bandwidth_bytes_per_sec=25e9, base_latency_cycles=180)
        assert mem.utilisation(100e9) < 1.0


class TestMachineExtras:
    def test_tick_must_be_positive(self):
        with pytest.raises(SimulationError):
            SimMachine(NEHALEM, tick=0)

    def test_same_time_timers_fire_in_order(self, nehalem_machine):
        fired = []
        nehalem_machine.at(0.5, lambda: fired.append(1))
        nehalem_machine.at(0.5, lambda: fired.append(2))
        nehalem_machine.at(0.5, lambda: fired.append(3))
        nehalem_machine.run_for(1.0)
        assert fired == [1, 2, 3]

    def test_run_until_partial_tick(self):
        m = SimMachine(NEHALEM, tick=1.0)
        m.run_until(2.3)
        assert m.now == pytest.approx(2.3)

    def test_unknown_thread_lookup(self, nehalem_machine):
        with pytest.raises(SimulationError):
            nehalem_machine.thread(777)

    def test_thread_lookup(self, nehalem_machine, endless_workload):
        p = nehalem_machine.spawn("mt", endless_workload, nthreads=2)
        assert nehalem_machine.thread(p.threads[1].tid) is p.threads[1]

    def test_multithread_tids_never_collide_with_pids(
        self, nehalem_machine, endless_workload
    ):
        a = nehalem_machine.spawn("a", endless_workload, nthreads=4)
        b = nehalem_machine.spawn("b", endless_workload)
        a_tids = {t.tid for t in a.threads}
        assert b.pid not in a_tids
        assert len(a_tids) == 4

    def test_mem_latency_event_consistency(self, coarse_machine):
        """MEM_LATENCY_CYCLES / CACHE_MISSES ~= base latency when alone."""
        from repro.sim.workloads import spec

        phase = spec.workload("429.mcf").phases[2].with_budget(math.inf)
        p = coarse_machine.spawn("mcf", Workload("mcf", (phase,)))
        lat = coarse_machine.counters.open(Event.MEM_LATENCY_CYCLES, p.pid, p.uid)
        mis = coarse_machine.counters.open(Event.CACHE_MISSES, p.pid, p.uid)
        coarse_machine.run_for(10.0)
        assert lat.value / mis.value == pytest.approx(NEHALEM.mem_latency, rel=0.2)

    def test_kill_unknown_pid(self, nehalem_machine):
        with pytest.raises(SimulationError):
            nehalem_machine.kill(5)

    def test_context_switches_counted_under_oversubscription(
        self, endless_workload
    ):
        m = SimMachine(NEHALEM, sockets=1, cores_per_socket=1, tick=0.25, seed=2)
        procs = [m.spawn(f"j{i}", endless_workload) for i in range(4)]
        m.run_for(10.0)
        switches = sum(p.threads[0].context_switches for p in procs)
        assert switches > 4  # real time-sharing happened

    def test_ppc_machine_runs_generic_events_only(self, endless_workload):
        m = SimMachine(PPC970, tick=0.5)
        p = m.spawn("j", endless_workload)
        c = m.counters.open(Event.INSTRUCTIONS, p.pid, p.uid)
        m.run_for(2.0)
        assert c.value > 0


class TestGridHeterogeneity:
    def test_same_job_runs_slower_on_older_node(self):
        """The paper's fleet is heterogeneous; IPC differs per node."""
        from repro.sim.grid import Grid, NodeSpec
        from repro.sim.workloads import datacenter
        from repro.sim.arch import WESTMERE_E5640

        fleet = [
            NodeSpec(name="new", arch=WESTMERE_E5640),
            NodeSpec(name="old", arch=PPC970, sockets=1, cores_per_socket=2),
        ]
        grid = Grid(fleet, tick=1.0, seed=5)
        wl = datacenter.compute_job("j", 1.5, duration_hint=30.0)
        done = {}
        for node in ("new", "old"):
            machine = grid.node(node)
            proc = machine.spawn("j", wl)
            machine.run_for(200.0)
            done[node] = proc.cpu_time
        assert done["old"] > 1.5 * done["new"]  # same work, slower metal
