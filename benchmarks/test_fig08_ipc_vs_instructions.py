"""Figure 8: IPC versus executed instructions for 473.astar.

Paper: plotting IPC against *instructions retired* (not time) aligns the
phase boundaries of the two Intel machines, which execute the same binary —
their curves' features coincide on the x-axis. The PowerPC executes a
different binary and "slightly shifts compared to the other two". This is
the alignment trick for choosing SimPoints / fast-forward counts.
"""

import numpy as np
import pytest
from _harness import ipc_vs_instructions, monitor_workload, once, save_artifact

from repro.sim import CORE2, NEHALEM, PPC970
from repro.sim.workloads import spec


def _curves():
    out = {}
    for name, arch, workload in (
        ("nehalem", NEHALEM, spec.workload("473.astar")),
        ("core2", CORE2, spec.workload("473.astar")),
        ("ppc970", PPC970, spec.ppc_workload("473.astar")),
    ):
        recorder, proc = monitor_workload(
            arch, workload, delay=5.0, tick=2.5, seed=17, command="astar"
        )
        out[name] = ipc_vs_instructions(recorder, proc, f"473.astar on {name}")
    return out


def _drop_positions(series, k=3):
    """Instruction counts of the k largest downward IPC steps, ascending."""
    dy = np.diff(series.y)
    idx = np.argsort(dy)[:k]
    return np.sort(series.x[idx + 1].astype(float))


def test_fig08_alignment(benchmark):
    curves = once(benchmark, _curves)
    art = "\n\n".join(curves[a].ascii_plot() for a in curves)
    save_artifact("fig08_astar_ipc_vs_instructions", art)

    neh, core, ppc = curves["nehalem"], curves["core2"], curves["ppc970"]

    # Same binary -> same total instructions on the Intel machines.
    assert neh.x[-1] == pytest.approx(core.x[-1], rel=0.01)
    # Different binary on PPC: visibly more instructions (shifted curve).
    assert ppc.x[-1] > 1.03 * neh.x[-1]

    # The phase transitions happen at the *same instruction counts* on
    # both Intel machines (within one sampling quantum each)...
    neh_drops = _drop_positions(neh)
    core_drops = _drop_positions(core)
    np.testing.assert_allclose(neh_drops, core_drops, rtol=0.08)
    # ...and at shifted positions on the PPC970 (its binary retires ~6 %
    # more instructions to reach the same phase boundaries). The earliest
    # boundary sits within one sampling quantum, so assert on the later two.
    ppc_drops = _drop_positions(ppc)
    assert np.all(ppc_drops[1:] > 1.02 * neh_drops[1:])

    # IPC ordering is preserved all along the common x-range.
    grid = np.linspace(neh.x[0], neh.x[-1] * 0.95, 50)
    neh_i = neh.resampled(grid)
    ppc_i = ppc.resampled(grid)
    assert np.mean(neh_i.y) > np.mean(ppc_i.y)
