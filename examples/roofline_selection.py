#!/usr/bin/env python3
"""Roofline-based processor selection from live counters (paper §2.6).

"The reported instruction mix is useful in selecting the most appropriate
processor in a family of binary compatible chips, for example with the
Roofline methodology." This example watches three very different workloads
through tiptop's ``mix`` screen, places each on the roofline from its
FPC/DMIS counters, and picks the best chip from a small family.

Run:  python examples/roofline_selection.py
"""

from repro import Options, SimHost, TipTop
from repro.analysis.roofline import (
    MachineRoofline,
    machine_roofline,
    point_from_deltas,
    select_processor,
)
from repro.core.screen import get_screen
from repro.sim import NEHALEM, SimMachine
from repro.sim.workload import Workload
from repro.sim.workloads import spec

#: A family of binary-compatible chips to choose from.
FAMILY = [
    machine_roofline(NEHALEM, memory_bandwidth=25e9),
    MachineRoofline("fat-core", peak_flops=12e9, peak_bandwidth=18e9),
    MachineRoofline("bandwidth-monster", peak_flops=8e9, peak_bandwidth=60e9),
]


def place(bench: str) -> None:
    machine = SimMachine(NEHALEM, tick=0.5, seed=6)
    phase = spec.workload(bench).phases[0].with_budget(float("inf"))
    proc = machine.spawn(bench, Workload(bench, (phase,)))
    app = TipTop(SimHost(machine), Options(delay=5.0), get_screen("mix"))
    with app:
        recorder = app.run_collect(3)
    sample = recorder.for_pid(proc.pid)[-1]
    point = point_from_deltas(sample.deltas, interval=5.0)
    winner, table = select_processor(point, FAMILY)

    print(f"--- {bench} ---")
    print(f"  operational intensity: {point.operational_intensity:8.2f} flops/byte")
    print(f"  measured throughput:   {point.flops_per_sec / 1e9:8.2f} Gflop/s")
    for name, attainable in sorted(table.items(), key=lambda kv: -kv[1]):
        marker = " <= pick" if name == winner.name else ""
        roof = next(m for m in FAMILY if m.name == name)
        print(
            f"  {name:18s} attainable {attainable / 1e9:6.2f} Gflop/s "
            f"({roof.bound(point.operational_intensity)}-bound){marker}"
        )
    print()


def main() -> None:
    for bench in ("470.lbm", "444.namd", "482.sphinx3"):
        place(bench)
    print("streaming codes pick bandwidth, dense FP picks flops — straight "
          "from the counters, no source code, no profiling build.")


if __name__ == "__main__":
    main()
