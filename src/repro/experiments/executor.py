"""Cell execution: one (config, workload, seed) point, three harnesses.

Every harness builds a fresh simulated machine seeded with the cell's
seed and advances it through the machine's batched columnar tick path
(:meth:`~repro.sim.machine.SimMachine.run_ticks` via ``run_for``), so a
cell's metrics are a pure function of the cell — the property the
byte-identical-artifact tests pin.

* ``counters`` — raw :class:`~repro.perf.counter.Counter` objects on a
  :class:`~repro.perf.simbackend.SimBackend`: counting vs sampling,
  multiplexing and tick-size ablations live here.
* ``tool`` — the full tiptop application recording through a
  :class:`~repro.core.recorder.Recorder`: refresh-period and
  thread-vs-process ablations, phase-transition detection.
* ``grid`` — batch submission through :class:`~repro.sim.grid.Grid`
  with selectable engine/transport; reports wait/turnaround latency
  percentiles and the cross-engine conformance digest.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import replace

from repro.core.app import SimHost, TipTop
from repro.core.options import Options
from repro.core.phases import pid_metric_series
from repro.core.recorder import Recorder
from repro.core.screen import get_screen
from repro.perf.counter import Counter
from repro.perf.events import event_names, resolve_event
from repro.perf.simbackend import SimBackend
from repro.sim.arch import ArchModel, get_arch
from repro.sim.grid import Grid, NodeSpec
from repro.sim.machine import SimMachine
from repro.sim.workload import Workload

from repro.experiments import library
from repro.experiments.matrix import Cell
from repro.experiments.spec import CellConfig

#: The portable always-on set (the perf generic events §2.3 leans on).
DEFAULT_EVENTS = (
    "instructions",
    "cycles",
    "cache-references",
    "cache-misses",
    "branch-instructions",
    "branch-misses",
)

#: Snapshot cap for span=0 (run to completion) tool cells.
MAX_SNAPSHOTS = 50_000


def _percentile(values: list[float], q: float) -> float:
    """Linear-interpolated percentile (numpy's default), pure Python so
    artifact floats never depend on array dtypes."""
    s = sorted(values)
    if len(s) == 1:
        return float(s[0])
    pos = (len(s) - 1) * q / 100.0
    lo = math.floor(pos)
    hi = math.ceil(pos)
    frac = pos - lo
    return float(s[lo] * (1.0 - frac) + s[hi] * frac)


def _series_summary(prefix: str, values: list[float]) -> dict[str, float]:
    return {
        f"{prefix}_mean": float(sum(values) / len(values)),
        f"{prefix}_p50": _percentile(values, 50.0),
        f"{prefix}_p95": _percentile(values, 95.0),
    }


def _event_list(cfg: CellConfig, arch: ArchModel) -> list[str]:
    if cfg.events is None:
        return list(DEFAULT_EVENTS)
    if isinstance(cfg.events, tuple):
        return [resolve_event(n, arch).name for n in cfg.events]
    supported = [
        n for n in event_names()
        if arch.supports_event(resolve_event(n).sim_event)
    ]
    supported.remove("instructions")
    supported.insert(0, "instructions")
    return supported[: cfg.events]


def _materialise(cell: Cell) -> Workload:
    workload = library.resolve(cell.workload)
    if cell.config.noise is None:
        return workload
    return Workload(
        name=workload.name,
        phases=tuple(replace(p, noise=cell.config.noise) for p in workload.phases),
        repeat=workload.repeat,
    )


def _machine(cell: Cell) -> SimMachine:
    cfg = cell.config
    return SimMachine(
        get_arch(cfg.arch),
        sockets=cfg.sockets,
        cores_per_socket=cfg.cores_per_socket,
        tick=cfg.tick,
        seed=cell.seed,
    )


def _spawn_copies(machine: SimMachine, cell: Cell, workload: Workload) -> list:
    cfg = cell.config
    n_pus = len(machine.topology.pus)
    procs = []
    for i in range(cfg.copies):
        name = workload.name if cfg.copies == 1 else f"{workload.name}-{i}"
        procs.append(
            machine.spawn(
                name,
                workload,
                nthreads=cfg.nthreads,
                duty_cycle=cfg.duty_cycle,
                affinity={i % n_pus} if cfg.pin else None,
            )
        )
    return procs


def _intervals(cfg: CellConfig) -> int:
    return max(1, math.ceil(cfg.span / cfg.delay - 1e-9))


def _run_counters(cell: Cell, workload: Workload) -> dict:
    cfg = cell.config
    machine = _machine(cell)
    procs = _spawn_copies(machine, cell, workload)
    backend = SimBackend(machine)
    names = _event_list(cfg, machine.arch)
    counters = {
        p.pid: {n: Counter(backend, resolve_event(n), p.pid) for n in names}
        for p in procs
    }
    sampled = (
        {
            p.pid: Counter(
                backend,
                resolve_event("instructions"),
                p.pid,
                sample_period=cfg.sample_period,
            )
            for p in procs
        }
        if cfg.sample_period
        else {}
    )
    if cfg.warmup:
        machine.run_for(cfg.warmup)
    for row in counters.values():
        for counter in row.values():
            counter.delta()  # baseline after warmup
    for counter in sampled.values():
        counter.delta()
    truth_base = {p.pid: sum(t.retired for t in p.threads) for p in procs}

    n = _intervals(cfg)
    totals = dict.fromkeys(names, 0.0)
    ipc_series: list[float] = []
    for _ in range(n):
        machine.run_for(cfg.delay)
        interval_ipcs = []
        for p in procs:
            deltas = {name: counters[p.pid][name].delta() for name in names}
            for name, d in deltas.items():
                totals[name] += d
            if deltas.get("cycles"):
                interval_ipcs.append(deltas["instructions"] / deltas["cycles"])
        if interval_ipcs:
            ipc_series.append(sum(interval_ipcs) / len(interval_ipcs))

    truth = sum(
        sum(t.retired for t in p.threads) - truth_base[p.pid] for p in procs
    )
    metrics: dict = {
        "intervals": n,
        "span": n * cfg.delay,
        "events": {name: float(totals[name]) for name in names},
        "instructions_true": float(truth),
    }
    counted = totals.get("instructions", 0.0)
    if truth:
        metrics["count_rel_err"] = abs(counted - truth) / truth
    if ipc_series:
        metrics.update(_series_summary("ipc", ipc_series))
    if totals.get("cache-references"):
        metrics["cache_miss_ratio"] = (
            totals.get("cache-misses", 0.0) / totals["cache-references"]
        )
    if totals.get("branch-instructions"):
        metrics["branch_miss_ratio"] = (
            totals.get("branch-misses", 0.0) / totals["branch-instructions"]
        )
    if sampled:
        estimate = sum(counter.delta() for counter in sampled.values())
        metrics["sampled_instructions"] = float(estimate)
        if counted:
            metrics["sampling_rel_err"] = abs(estimate - counted) / counted
    return metrics


def _run_tool(cell: Cell, workload: Workload) -> dict:
    cfg = cell.config
    machine = _machine(cell)
    procs = _spawn_copies(machine, cell, workload)
    if cfg.warmup:
        machine.run_for(cfg.warmup)
    app = TipTop(
        SimHost(machine),
        Options(delay=cfg.delay, per_thread=cfg.per_thread),
        get_screen(cfg.screen),
    )
    limit = _intervals(cfg) if cfg.span else MAX_SNAPSHOTS
    recorder = Recorder()
    with app:
        for i, snapshot in enumerate(app.snapshots()):
            if i > 0:
                recorder.record(snapshot)
            if i >= limit:
                break
            if not cfg.span and not procs[0].alive:
                break

    samples = recorder.samples
    metrics: dict = {
        "rows": len(samples),
        "tasks_observed": len({s.pid for s in samples}),
        "instructions": float(
            sum(s.deltas.get("instructions", 0.0) for s in samples)
        ),
    }
    series = pid_metric_series(recorder, procs[0].pid, "IPC")
    values = [float(y) for y in series.y if not math.isnan(y)]
    if values:
        metrics.update(_series_summary("ipc", values))
    if cfg.detect_transitions:
        from repro.analysis.phase_detect import transition_points

        cuts = transition_points(series, window=4, threshold=0.5)
        metrics["transition_s"] = float(series.x[cuts[0]]) if cuts else None
    return metrics


def _run_grid(cell: Cell, workload: Workload) -> dict:
    cfg = cell.config
    arch = get_arch(cfg.arch)
    specs = [
        NodeSpec(
            name=f"node{i:02d}",
            arch=arch,
            sockets=cfg.sockets,
            cores_per_socket=cfg.cores_per_socket,
        )
        for i in range(cfg.nodes)
    ]
    with Grid(
        specs,
        tick=cfg.tick,
        seed=cell.seed,
        workers=cfg.workers,
        engine=cfg.engine,
        transport=cfg.transport,
    ) as grid:
        for i in range(cfg.copies):
            grid.submit(
                f"{workload.name}-{i}", workload, user="experiments",
                queue=cfg.queue,
            )
        grid.run_for(cfg.span)
        jobs = grid.jobs()
        waits = [
            j.started_at - j.submitted_at for j in jobs
            if j.started_at is not None
        ]
        turnarounds = [
            j.finished_at - j.submitted_at for j in jobs
            if j.finished_at is not None
        ]
        utilisation = grid.utilisation()
        digest = grid.conformance_digest()

    metrics: dict = {
        "jobs": len(jobs),
        "started": len(waits),
        "completed": len(turnarounds),
        "utilisation_mean": (
            float(sum(utilisation.values()) / len(utilisation))
            if utilisation
            else 0.0
        ),
        # The cross-engine identity: two engines/transports agree on a
        # scenario iff these sixteen hex digits agree.
        "digest": hashlib.sha256(
            json.dumps(digest, sort_keys=True, default=repr).encode()
        ).hexdigest()[:16],
    }
    if waits:
        metrics.update(_series_summary("wait", waits))
    if turnarounds:
        metrics.update(_series_summary("turnaround", turnarounds))
    return metrics


_HARNESSES = {
    "counters": _run_counters,
    "tool": _run_tool,
    "grid": _run_grid,
}


def run_cell(cell: Cell) -> dict:
    """Execute one cell; returns its (JSON-clean) metrics dict."""
    workload = _materialise(cell)
    return _HARNESSES[cell.config.harness](cell, workload)
