"""Scenario model and seeded generator."""

import math

import pytest

from repro.errors import ConfigError
from repro.verify.scenario import (
    FaultClause,
    JobPlan,
    QueuePlan,
    Scenario,
    TaskPlan,
    generate,
)


class TestGenerate:
    @pytest.mark.parametrize("seed", [0, 1, 7, 42, 1234])
    def test_deterministic(self, seed):
        assert generate(seed) == generate(seed)

    def test_seeds_differ(self):
        scenarios = {generate(seed).digest() for seed in range(20)}
        assert len(scenarios) > 15  # digests almost never collide

    def test_produces_both_kinds(self):
        kinds = {generate(seed).kind for seed in range(40)}
        assert kinds == {"tool", "grid"}

    @pytest.mark.parametrize("seed", range(30))
    def test_timing_is_tick_aligned(self, seed):
        """Every timed quantity is an exact tick multiple, so the scalar
        and batched clock advances walk identical float ladders."""
        s = generate(seed)
        def aligned(t):
            k = t / s.tick
            return k == round(k)
        if s.kind == "tool":
            assert aligned(s.delay)
            for task in s.tasks:
                assert aligned(task.spawn_at)
                if task.kill_at is not None:
                    assert aligned(task.kill_at)
                    assert task.kill_at > task.spawn_at
        else:
            assert aligned(s.span)
            for job in s.jobs:
                assert aligned(job.submit_at)

    @pytest.mark.parametrize("seed", range(30))
    def test_grid_jobs_reference_known_queues(self, seed):
        s = generate(seed)
        if s.kind == "grid":
            names = {q.name for q in s.queues}
            assert all(job.queue in names for job in s.jobs)


class TestSerialisation:
    @pytest.mark.parametrize("seed", range(20))
    def test_json_round_trip(self, seed):
        s = generate(seed)
        assert Scenario.from_json(s.to_json()) == s

    def test_round_trip_preserves_inf(self):
        s = Scenario(
            kind="tool",
            seed=1,
            tasks=(
                TaskPlan(
                    name="svc", archetype="compute", target_ipc=1.8,
                    duration=math.inf,
                ),
            ),
        )
        back = Scenario.from_json(s.to_json())
        assert math.isinf(back.tasks[0].duration)

    def test_digest_stable_across_round_trip(self):
        s = generate(5)
        assert Scenario.from_json(s.to_json()).digest() == s.digest()

    def test_unknown_schema_rejected(self):
        d = generate(0).to_dict()
        d["schema"] = 999
        with pytest.raises(ConfigError, match="schema"):
            Scenario.from_dict(d)

    def test_round_trips_explicit_faults(self):
        s = Scenario(
            kind="tool",
            seed=2,
            tasks=(
                TaskPlan(
                    name="t", archetype="memory", target_ipc=0.5,
                    duration=math.inf,
                ),
            ),
            faults=(
                FaultClause(op="read", error="eintr", at_calls=(5, 9)),
                FaultClause(op="open", error="emfile", rate=0.5),
            ),
        )
        back = Scenario.from_json(s.to_json())
        assert back.faults == s.faults
        assert back.faults[0].at_calls == (5, 9)


class TestValidation:
    def test_unknown_kind(self):
        with pytest.raises(ConfigError, match="kind"):
            Scenario(kind="fleet", seed=0)

    def test_delay_must_be_tick_multiple(self):
        with pytest.raises(ConfigError, match="multiple"):
            Scenario(kind="tool", seed=0, tick=0.25, delay=0.8)

    def test_unknown_archetype(self):
        with pytest.raises(ConfigError, match="archetype"):
            TaskPlan(name="x", archetype="gpu", target_ipc=1.0, duration=1.0)

    def test_kill_before_spawn(self):
        with pytest.raises(ConfigError, match="kill_at"):
            TaskPlan(
                name="x", archetype="compute", target_ipc=1.8,
                duration=math.inf, spawn_at=2.0, kill_at=1.0,
            )

    def test_unknown_fault_op(self):
        with pytest.raises(ConfigError, match="op"):
            FaultClause(op="mmap", error="eintr")

    def test_unknown_fault_error(self):
        with pytest.raises(ConfigError, match="error"):
            FaultClause(op="read", error="enoent")

    def test_job_plan_validates_archetype(self):
        with pytest.raises(ConfigError, match="archetype"):
            JobPlan(
                name="j", archetype="gpu", target_ipc=1.0, duration=1.0,
                queue="fast",
            )

    def test_chaotic_property(self):
        quiet = Scenario(kind="tool", seed=0)
        assert not quiet.chaotic
        assert Scenario(kind="tool", seed=0, chaos_seed=4).chaotic
        assert Scenario(
            kind="tool", seed=0,
            faults=(FaultClause(op="read", error="eintr", rate=0.1),),
        ).chaotic

    def test_queue_plan_fields(self):
        q = QueuePlan(name="fast", max_wallclock=4.0, memory_limit=2**30)
        assert q.priority == 0
