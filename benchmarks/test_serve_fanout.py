"""Fan-out scaling: one sampler, a thousand subscribers.

The collector daemon's design claim is that the audience size never
touches the sampling loop: frames are encoded once per *distinct*
subscription and delivery is a queue append per client. This benchmark
pins that down with the hub driven directly (no sockets — the TCP layer
is exercised by ``tests/test_serve_daemon.py`` and the CI smoke step;
here we time the shared machinery):

* a 200-task simulated node sampled at a 10 Hz cadence;
* 1 vs 1000 total-subscription sessions on the same
  :class:`~repro.serve.session.FanoutHub`;
* per-(client, frame) delivery latency measured publish -> pop+decode.

Artifacts:

* ``BENCH_serve.json``        — the full run (default, committed).
* ``BENCH_serve_smoke.json``  — the CI smoke run (``REPRO_BENCH_SMOKE=1``).

Floors: the full run asserts p99 delivery latency under half a refresh
period and — the tentpole property — median per-refresh ``sample_frame``
wall time at 1000 subscribers within 10% of the 1-subscriber cost. The
smoke run keeps a deliberately loose latency ceiling and a 2x cost
ratio so shared-runner noise cannot flake CI, while a fan-out that has
gone accidentally O(clients) in the sampler still fails loudly.
"""

from __future__ import annotations

import json
import os
import time

from _harness import OUT_DIR

from repro.core.app import SimHost
from repro.core.options import Options
from repro.core.sampler import Sampler
from repro.core.screen import get_screen
from repro.serve.protocol import decode_message
from repro.serve.session import FanoutHub
from repro.sim.arch import NEHALEM
from repro.sim.machine import SimMachine
from repro.sim.workloads import synthetic

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

DELAY = 0.1  # the 10 Hz refresh cadence
TASKS = 200

if SMOKE:
    CLIENTS, FRAMES = 50, 6
    MAX_P99_S = 2.0
    MAX_COST_RATIO = 2.0
else:
    CLIENTS, FRAMES = 1000, 20
    MAX_P99_S = DELAY / 2  # delivered well inside the refresh period
    MAX_COST_RATIO = 1.10  # sampling cost flat in client count


def _build() -> tuple[SimHost, Sampler]:
    """A 4-core node oversubscribed with 200 monitored synthetic tasks —
    heavy enough that per-refresh sampling cost times stably."""
    machine = SimMachine(
        NEHALEM, sockets=1, cores_per_socket=4, tick=DELAY, seed=7
    )
    for spec in synthetic.generate_specs(TASKS, seed=3):
        workload = synthetic.build(spec, NEHALEM, seed=11)
        machine.spawn(spec.name, workload, nthreads=1, duty_cycle=1.0)
    host = SimHost(machine)
    sampler = Sampler(
        host.backend, host.tasks, get_screen("default"), Options(delay=DELAY)
    )
    return host, sampler


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1)))
    return sorted_values[index]


def _run_fanout(clients: int, frames: int) -> dict:
    """Drive ``frames`` refreshes into ``clients`` sessions; every
    session drains after each publish.

    A client's delivery latency is publish -> its payload popped off the
    queue, plus one decode of that payload. Real subscribers decode
    concurrently in their own processes, so the decode cost enters each
    latency once — timing 1000 *sequential* decodes of byte-identical
    payloads would charge the last client for 999 decodes it never
    performs (a single-threaded-harness artifact, not fan-out cost)."""
    host, sampler = _build()
    hub = FanoutHub(queue_limit=8, retention=16)
    sessions = [hub.add_session(f"dash-{i}") for i in range(clients)]
    sampler.sample_frame()  # baseline
    sample_s: list[float] = []
    fanout_s: list[float] = []
    latencies: list[float] = []
    for _ in range(frames):
        host.sleep(DELAY)
        t0 = time.perf_counter()
        frame = sampler.sample_frame()
        t1 = time.perf_counter()
        hub.publish(frame)
        t2 = time.perf_counter()
        decode_cost: dict[bytes, float] = {}
        for session in sessions:
            while (item := session.pop()) is not None:
                handoff = time.perf_counter() - t1
                payload = item[1]
                cost = decode_cost.get(payload)
                if cost is None:
                    d0 = time.perf_counter()
                    decode_message(payload[4:])
                    cost = time.perf_counter() - d0
                    decode_cost[payload] = cost
                latencies.append(handoff + cost)
        sample_s.append(t1 - t0)
        fanout_s.append(t2 - t1)
        assert len(frame) > 0
    sampler.close()
    stats = hub.stats()
    assert stats["dropped_total"] == 0  # every session drained in time
    assert stats["encode_misses"] == frames  # one encode per publish...
    assert stats["encode_hits"] == (clients - 1) * frames  # ...shared
    sample_s.sort()
    latencies.sort()
    return {
        "clients": clients,
        "frames": frames,
        "sample_ms_median": round(1e3 * _percentile(sample_s, 0.5), 4),
        "fanout_ms_median": round(
            1e3 * _percentile(sorted(fanout_s), 0.5), 4
        ),
        "latency_ms_p50": round(1e3 * _percentile(latencies, 0.50), 4),
        "latency_ms_p99": round(1e3 * _percentile(latencies, 0.99), 4),
        "deliveries": len(latencies),
    }


def test_fanout_scaling():
    solo = _run_fanout(1, FRAMES)
    crowd = _run_fanout(CLIENTS, FRAMES)
    ratio = (
        crowd["sample_ms_median"] / solo["sample_ms_median"]
        if solo["sample_ms_median"] > 0
        else 1.0
    )
    payload = {
        "arch": NEHALEM.name,
        "tasks": TASKS,
        "refresh_hz": round(1.0 / DELAY, 1),
        "smoke": SMOKE,
        "solo": solo,
        "crowd": crowd,
        "sampling_cost_ratio": round(ratio, 3),
        "max_cost_ratio": MAX_COST_RATIO,
        "max_p99_ms": round(1e3 * MAX_P99_S, 1),
    }
    OUT_DIR.mkdir(exist_ok=True)
    artifact = "BENCH_serve_smoke.json" if SMOKE else "BENCH_serve.json"
    (OUT_DIR / artifact).write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"\nserve fanout: {CLIENTS} clients x {FRAMES} frames, "
        f"p50 {crowd['latency_ms_p50']:.2f} ms, "
        f"p99 {crowd['latency_ms_p99']:.2f} ms, "
        f"sampling cost x{ratio:.3f} vs 1 client"
    )
    assert crowd["latency_ms_p99"] <= 1e3 * MAX_P99_S, (
        f"p99 delivery latency {crowd['latency_ms_p99']:.2f} ms exceeds "
        f"{1e3 * MAX_P99_S:.0f} ms at {CLIENTS} clients"
    )
    assert ratio <= MAX_COST_RATIO, (
        f"sampling cost grew x{ratio:.3f} going from 1 to {CLIENTS} "
        f"clients (floor {MAX_COST_RATIO}x) — fan-out is leaking into "
        "the sampler"
    )
