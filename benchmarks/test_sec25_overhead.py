"""§2.5 perturbation: the cost of monitoring.

Paper measurements on the SPEC suite (three runs, median):
* tiptop running concurrently degrades the score by 0.7 % — *within* the
  1.4 % run-to-run variability of the idle machine;
* the same suite under Pin's inscount2 runs 1.7x slower;
* tiptop's own CPU use is below 0.06 % at a five-second refresh.

The reproduction measures the same three quantities: monitored-vs-bare run
time of a benchmark on the simulated machine (tiptop's only footprint is
its own scheduling, modelled by running the monitor as a low-duty process),
the Pin slowdown from the instrumentation model, and the monitor's CPU
share.
"""

import pytest
from _harness import endless_slice, once, save_artifact

from repro import Options, SimHost, TipTop
from repro.pin.inscount import inscount
from repro.sim import NEHALEM, SimMachine
from repro.sim.workload import Workload
from repro.sim.workloads import spec
from repro.util.stats import median_of_runs

#: Tiptop's measured CPU activity at a 5 s refresh (§2.5): reading a few
#: counters and repainting costs ~milliseconds per refresh.
TIPTOP_WORK_PER_REFRESH = 0.002  # seconds of CPU per 5 s refresh


def _bench_workload() -> Workload:
    w = spec.workload("456.hmmer")
    return Workload("suite", (w.phases[0].with_budget(3e11),))


def _run_once(monitored: bool, seed: int) -> float:
    """Run time of the workload, optionally with tiptop monitoring."""
    machine = SimMachine(NEHALEM, tick=0.5, seed=seed)
    proc = machine.spawn("bench", _bench_workload())
    if monitored:
        # tiptop itself: a tiny duty-cycle process (counter reads + repaint).
        tiptop_duty = TIPTOP_WORK_PER_REFRESH / 5.0
        machine.spawn("tiptop", _idle_monitor(), duty_cycle=tiptop_duty)
        app = TipTop(SimHost(machine), Options(delay=5.0))
        with app:
            for snap in app.snapshots():
                if not proc.alive:
                    break
    else:
        while proc.alive:
            machine.run_for(5.0)
    return proc.cpu_time


def _idle_monitor() -> Workload:
    return endless_slice("456.hmmer", name="tiptop")


def _run_experiment():
    bare = median_of_runs([_run_once(False, s) for s in (1, 2, 3)])
    monitored = median_of_runs([_run_once(True, s) for s in (1, 2, 3)])
    overhead = monitored / bare - 1.0

    pin = inscount(NEHALEM, _bench_workload())
    variability = _variability()
    return bare, monitored, overhead, pin, variability


def _variability() -> float:
    """Run-to-run spread of the unmonitored benchmark across seeds."""
    times = [_run_once(False, s) for s in range(10, 16)]
    return (max(times) - min(times)) / min(times)


def test_sec25_overhead(benchmark):
    bare, monitored, overhead, pin, variability = once(benchmark, _run_experiment)

    lines = [
        "§2.5 perturbation (paper: tiptop 0.7 %, noise 1.4 %, Pin 1.7x):",
        f"  bare run:       {bare:9.2f} s",
        f"  with tiptop:    {monitored:9.2f} s  ({100 * overhead:+.2f} %)",
        f"  run-to-run variability: {100 * variability:.2f} %",
        f"  under inscount2: {pin.wall_time:8.2f} s  ({pin.slowdown:.2f}x)",
        f"  tiptop CPU share: {100 * TIPTOP_WORK_PER_REFRESH / 5.0:.3f} % "
        "(paper: < 0.06 %)",
    ]
    save_artifact("sec25_overhead", "\n".join(lines))

    # Monitoring overhead is tiny and within the noise band.
    assert abs(overhead) < 0.02
    assert abs(overhead) <= max(variability, 0.015)
    # Pin's instrumentation is ~1.7x.
    assert pin.slowdown == pytest.approx(1.7, abs=0.05)
    # Tiptop's own CPU share at 5 s refresh is below 0.06 %.
    assert TIPTOP_WORK_PER_REFRESH / 5.0 < 0.0006
