"""Deterministic experiments over the full workload library.

The package LIKWID-style "packages measurements as named, reusable
configurations": an experiment is a declarative TOML/JSON spec sweeping
``configs x workloads x seeds``; every cell runs through the simulated
machine's columnar tick path and the whole artifact (JSON/CSV/Markdown
under ``benchmarks/out/``) is a pure function of the spec — regenerable
byte-identically on any machine.

Layers (import order, no cycles):

* :mod:`~repro.experiments.library` — the unified named-workload
  registry with ``@compiler``/``#phase``/``/scale`` modifiers.
* :mod:`~repro.experiments.signatures` — frozen 12-significant-digit
  per-phase metric signatures of every library workload.
* :mod:`~repro.experiments.spec` — spec schema, loading, validation.
* :mod:`~repro.experiments.matrix` — the factorial cell planner.
* :mod:`~repro.experiments.executor` — counters/tool/grid harnesses.
* :mod:`~repro.experiments.report` — canonical artifact writers.
* :mod:`~repro.experiments.runner` — orchestration (``--jobs`` fan-out).
* :mod:`~repro.experiments.cli` — ``python -m repro.experiments``.
"""

from repro.experiments import library, signatures
from repro.experiments.matrix import Cell, plan
from repro.experiments.report import build_artifact, canonical_json
from repro.experiments.runner import run, run_cells
from repro.experiments.spec import CellConfig, ExperimentSpec, from_dict, load

__all__ = [
    "Cell",
    "CellConfig",
    "ExperimentSpec",
    "build_artifact",
    "canonical_json",
    "from_dict",
    "library",
    "load",
    "plan",
    "run",
    "run_cells",
    "signatures",
]
