"""Make the harness importable and keep artefact output tidy."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
