#!/usr/bin/env python3
"""Cross-core interference study (paper §3.4 / Figure 11).

Runs one, two and three copies of the memory-hungry 429.mcf on a quad-core
Nehalem — and then two copies pinned to the *same physical core* — and
shows what %CPU cannot: every configuration reports ~100 % CPU, yet IPC
falls and per-level cache misses tell exactly where the contention lives
(shared L3 across cores; SMT-shared L1/L2 within a core).

Run:  python examples/interference_study.py
"""

import numpy as np

from repro import Options, SimHost, TipTop
from repro.core.screen import get_screen
from repro.sim import NEHALEM, SimMachine
from repro.sim.cpu_topology import Topology
from repro.sim.workload import Workload
from repro.sim.workloads import spec


def mcf() -> Workload:
    phase = spec.workload("429.mcf").phases[2].with_budget(float("inf"))
    return Workload("mcf", (phase,))


def corun(affinities):
    machine = SimMachine(NEHALEM, sockets=1, cores_per_socket=4, tick=1.0, seed=5)
    procs = [
        machine.spawn(f"mcf{i}", mcf(), affinity=aff)
        for i, aff in enumerate(affinities)
    ]
    app = TipTop(SimHost(machine), Options(delay=10.0), get_screen("cache"))
    with app:
        recorder = app.run_collect(12)
    mean = lambda header: float(
        np.mean([recorder.mean(p.pid, header) for p in procs])
    )
    cpu = float(np.mean([s.cpu_pct for s in recorder.samples]))
    return mean("IPC"), mean("L2MIS"), mean("L3MIS"), cpu


def main() -> None:
    print("Machine (Fig. 11c):")
    print(Topology(NEHALEM, 1, 4).render(memory_bytes=5965 * 1024 * 1024))
    print()

    configs = [
        ("1 copy, core 0", [{0}]),
        ("2 copies, cores 0+1", [{0}, {1}]),
        ("3 copies, cores 0+1+2", [{0}, {1}, {2}]),
        ("2 copies, SAME core (PU0+PU4)", [{0}, {4}]),
    ]
    print(f"{'configuration':32s} {'IPC':>6s} {'L2/100':>7s} {'L3/100':>7s} {'%CPU':>6s}")
    results = {}
    for name, aff in configs:
        ipc, l2, l3, cpu = corun(aff)
        results[name] = ipc
        print(f"{name:32s} {ipc:6.3f} {l2:7.2f} {l3:7.2f} {cpu:6.1f}")

    solo = results["1 copy, core 0"]
    print()
    print(f"3-copy slowdown:  {100 * (1 - results['3 copies, cores 0+1+2'] / solo):.0f} % "
          "(paper: up to 30 %) — shared L3 contention")
    print(f"same-core factor: {solo / results['2 copies, SAME core (PU0+PU4)']:.1f}x "
          "(paper: 2x) — the SMT siblings thrash their shared L2")
    print("...all while %CPU sat at 100 everywhere. That is the paper's point.")


if __name__ == "__main__":
    main()
