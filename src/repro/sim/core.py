"""Core pipeline model: turn a phase + machine conditions into rates.

The model is additive in CPI, the textbook first-order decomposition::

    CPI = exec + memory + branch + fp_assist

* ``exec`` — the phase's dependency-limited execution CPI, scaled by the
  architecture's quality factor and inflated when SMT siblings share issue
  slots (floor: 1/issue_width).
* ``memory`` — per-level hit latencies weighted by access rates from the
  analytic cache model, divided by the phase's memory-level parallelism.
* ``branch`` — mispredicts/instruction x penalty.
* ``fp_assist`` — micro-code assists/instruction x penalty (§3.1).

The same function also emits per-instruction rates for every countable
:class:`~repro.sim.events.Event`, which is what the simulated PMU integrates
over a scheduled slice.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.sim.arch import ArchModel, CacheLevelSpec
from repro.sim.branch import mispredicts_per_instruction
from repro.sim.cache import MissProfile, miss_chain
from repro.sim.events import EVENT_CODE, N_EVENT_CODES, Event
from repro.sim.isa import InstructionClass
from repro.sim.microcode import assist_outcome
from repro.sim.workload import Phase


@dataclass(frozen=True)
class SliceRates:
    """Per-instruction rates for one task under given machine conditions.

    Attributes:
        cpi: total cycles per instruction.
        cpi_exec: execution component.
        cpi_memory: cache/DRAM stall component.
        cpi_branch: branch mispredict component.
        cpi_assist: FP micro-code assist component.
        events: per-instruction rate of every countable event
            (``Event.INSTRUCTIONS`` is always 1.0).
        miss_profile: per-level access/miss rates.
    """

    cpi: float
    cpi_exec: float
    cpi_memory: float
    cpi_branch: float
    cpi_assist: float
    events: dict[Event, float]
    miss_profile: MissProfile

    @property
    def ipc(self) -> float:
        """Instructions per cycle implied by these rates."""
        return 1.0 / self.cpi

    def events_vector(self) -> "np.ndarray":
        """Dense float64 rate vector indexed by :data:`EVENT_CODE`.

        Memoised on the instance: rates are immutable and the columnar
        kernel multiplies this vector by the retired-instruction count on
        every scheduled slice, so building it once per distinct rates
        object keeps the hot loop free of enum hashing.
        """
        vec = self.__dict__.get("_events_vec")
        if vec is None:
            vec = np.zeros(N_EVENT_CODES)
            for event, rate in self.events.items():
                vec[EVENT_CODE[event]] = rate
            object.__setattr__(self, "_events_vec", vec)
        return vec


def memory_cpi(
    profile: MissProfile,
    levels: list[CacheLevelSpec],
    mem_latency_cycles: float,
    mlp: float = 1.6,
) -> float:
    """Stall CPI from the memory hierarchy.

    Accesses hitting level i+1 pay that level's latency; LLC misses pay the
    (possibly contention-inflated) memory latency. Latencies are divided by
    the MLP factor to model overlap of outstanding misses.
    """
    if mlp <= 0:
        raise SimulationError(f"mlp must be positive, got {mlp}")
    stall = 0.0
    for i in range(len(levels)):
        if i + 1 < len(levels):
            hits_next = profile.misses[i] - profile.misses[i + 1]
            stall += hits_next * levels[i + 1].latency
        else:
            stall += profile.misses[i] * mem_latency_cycles
    return stall / mlp


def compute_rates(
    arch: ArchModel,
    phase: Phase,
    level_capacities: list[tuple[CacheLevelSpec, float]],
    mem_latency_cycles: float | None = None,
    issue_share: float = 1.0,
    noise_factor: float = 1.0,
) -> SliceRates:
    """Full rate computation for ``phase`` on ``arch``.

    Args:
        arch: the micro-architecture.
        phase: active workload phase.
        level_capacities: ``(spec, effective_capacity)`` per level on the
            task's cache path (contention already folded into capacities).
        mem_latency_cycles: effective DRAM latency (defaults to the arch's
            uncontended latency).
        issue_share: fraction of the core's issue bandwidth available to
            this hardware thread (1.0 solo; < 1 with an active SMT sibling).
        noise_factor: multiplicative jitter on the execution component.
    """
    if not 0 < issue_share <= 1.0:
        raise SimulationError(f"issue_share must be in (0, 1], got {issue_share}")
    if mem_latency_cycles is None:
        mem_latency_cycles = arch.mem_latency

    mix = phase.mix
    profile = miss_chain(phase.memory, mix.mem_refs, level_capacities)
    specs = [spec for spec, _ in level_capacities]

    # Floor: a thread cannot sustain more than 2x the nominal issue width
    # even when penalties overlap perfectly with execution (the additive
    # CPI model otherwise lets calibration push exec below physical limits).
    cpi_exec = max(
        phase.exec_cpi
        * arch.cpi_scale
        * phase.arch_factor(arch.name)
        * noise_factor
        / issue_share,
        0.5 / arch.issue_width,
    )
    cpi_mem = memory_cpi(profile, specs, mem_latency_cycles, mlp=phase.memory.mlp)
    mpi = mispredicts_per_instruction(phase.branches, mix.branches)
    cpi_branch = mpi * arch.mispredict_penalty
    assist = assist_outcome(arch, mix, phase.operands)
    cpi = cpi_exec + cpi_mem + cpi_branch + assist.cpi_tax

    llc_is_last = len(profile.misses) - 1
    events: dict[Event, float] = {
        Event.INSTRUCTIONS: 1.0,
        Event.CYCLES: cpi,
        Event.CACHE_REFERENCES: profile.accesses[llc_is_last],
        Event.CACHE_MISSES: profile.misses[llc_is_last],
        Event.BRANCH_INSTRUCTIONS: mix.branches,
        Event.BRANCH_MISSES: mpi,
        Event.BUS_CYCLES: cpi * 0.25,
        Event.FP_ASSIST: assist.assists_per_instruction,
        Event.UOPS_EXECUTED: arch.uops_per_instruction
        + assist.extra_uops_per_instruction,
        Event.LOADS: mix.loads,
        Event.STORES: mix.stores,
        Event.FP_OPERATIONS: mix.fp_ops,
        Event.X87_OPERATIONS: mix.x87_ops,
        Event.SSE_OPERATIONS: mix.sse_ops,
        Event.L1D_ACCESSES: profile.accesses[0],
        Event.L1D_MISSES: profile.misses[0],
        # §3.4 outlook: memory-access latency counters. Total cycles of
        # DRAM wait per instruction; dividing by LLC misses recovers the
        # (possibly contention-inflated) average memory latency.
        Event.MEM_LATENCY_CYCLES: profile.misses[-1] * mem_latency_cycles,
    }
    if len(profile.accesses) > 1:
        events[Event.L2_ACCESSES] = profile.accesses[1]
        events[Event.L2_MISSES] = profile.misses[1]
    if len(profile.accesses) > 2:
        events[Event.L3_ACCESSES] = profile.accesses[2]
        events[Event.L3_MISSES] = profile.misses[2]

    return SliceRates(
        cpi=cpi,
        cpi_exec=cpi_exec,
        cpi_memory=cpi_mem,
        cpi_branch=cpi_branch,
        cpi_assist=assist.cpi_tax,
        events=events,
        miss_profile=profile,
    )


def solo_rates(arch: ArchModel, phase: Phase) -> SliceRates:
    """Rates for ``phase`` running alone with full caches on ``arch``."""
    caps = [(spec, float(spec.size)) for spec in arch.cache_levels]
    return compute_rates(arch, phase, caps)


def exec_cpi_for_target_ipc(
    arch: ArchModel,
    phase: Phase,
    target_ipc: float,
    *,
    min_exec_cpi: float | None = None,
) -> float:
    """Solve for the ``exec_cpi`` that yields ``target_ipc`` solo on ``arch``.

    Used to calibrate phase models against the paper's measured solo IPC
    values: the memory/branch/assist penalties are computed for the
    uncontended machine, and the execution component absorbs the remainder.
    The result is expressed in reference-architecture units (divided by
    ``arch.cpi_scale``) so the same phase transfers across architectures.

    Raises:
        SimulationError: when the target is unreachable (penalties alone
            already exceed the cycle budget by more than the floor allows).
    """
    if target_ipc <= 0:
        raise SimulationError(f"target_ipc must be positive, got {target_ipc}")
    if min_exec_cpi is None:
        # Below the compute_rates() floor the solved value would be
        # silently clamped and the solo IPC would miss the target.
        min_exec_cpi = 0.5 / arch.issue_width
    probe = solo_rates(arch, phase)
    penalties = probe.cpi_memory + probe.cpi_branch + probe.cpi_assist
    budget = 1.0 / target_ipc - penalties
    if budget < min_exec_cpi:
        raise SimulationError(
            f"target IPC {target_ipc} unreachable for phase {phase.name!r}: "
            f"penalties alone cost {penalties:.3f} CPI"
        )
    return budget / arch.cpi_scale


def calibrate_phase(arch: ArchModel, phase: Phase, target_ipc: float) -> Phase:
    """Return a copy of ``phase`` whose solo IPC on ``arch`` is ``target_ipc``."""
    from dataclasses import replace

    return replace(
        phase, exec_cpi=exec_cpi_for_target_ipc(arch, phase, target_ipc)
    )


class RateCache:
    """Exact memo over :func:`compute_rates`.

    ``compute_rates`` is a pure function, so two calls with the *same
    objects* and the same scalar arguments return value-identical results.
    The cache keys on object identity (phases and cache-level specs live for
    the whole machine lifetime) plus the raw float arguments, and stores
    strong references to the keyed objects so an id can never be recycled
    while its entry is live. Eviction only costs speed, never correctness:
    a recomputed entry is bitwise-identical to the evicted one.

    Used by :meth:`SimMachine.run_ticks` to avoid re-deriving rates for the
    (phase, capacities, latency, share) combinations that repeat every time
    the scheduler's round-robin orbit revisits a co-schedule.
    """

    def __init__(self, max_entries: int = 65536) -> None:
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        # key -> (rates, keepalive) where keepalive pins the ids in the key.
        self._store: dict[tuple, tuple[SliceRates, tuple]] = {}

    def rates(
        self,
        arch: ArchModel,
        phase: Phase,
        level_capacities: list[tuple[CacheLevelSpec, float]],
        mem_latency_cycles: float | None = None,
        issue_share: float = 1.0,
    ) -> SliceRates:
        """Memoised :func:`compute_rates` (identical result object on hit)."""
        key = (
            id(arch),
            id(phase),
            tuple((id(spec), cap) for spec, cap in level_capacities),
            mem_latency_cycles,
            issue_share,
        )
        entry = self._store.get(key)
        if entry is not None:
            self.hits += 1
            return entry[0]
        self.misses += 1
        result = compute_rates(
            arch,
            phase,
            level_capacities,
            mem_latency_cycles=mem_latency_cycles,
            issue_share=issue_share,
        )
        if len(self._store) >= self.max_entries:
            self._evict()
        keepalive = (arch, phase, tuple(spec for spec, _ in level_capacities))
        self._store[key] = (result, keepalive)
        return result

    def _evict(self) -> None:
        """Drop the oldest half of the store (insertion-order FIFO).

        A wholesale ``clear()`` makes any working set just over
        ``max_entries`` thrash to a 0% hit rate: the steady-state orbit of
        co-schedules is re-inserted and re-cleared every pass. Halving
        keeps the *recent* half — which contains the live orbit, since
        dict order is insertion order — so steady state stays hot.
        """
        for key in list(itertools.islice(self._store, len(self._store) // 2)):
            del self._store[key]

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        """Drop all entries (correctness-neutral)."""
        self._store.clear()


#: Instruction classes with memory side effects, exposed for tests.
MEMORY_CLASSES = (InstructionClass.LOAD, InstructionClass.STORE)
