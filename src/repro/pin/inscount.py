"""inscount: exact instruction counting by dynamic instrumentation.

The model of Pin's ``inscount2`` example (§2.4): execute a workload under
instrumentation, producing

* an **exact user-instruction count** — the ground truth the hardware
  counter is validated against. Real counters and real Pin disagree by a
  whisker (counter skid at kernel entry, micro-coded sequences counted
  differently, the instrumented process's own startup): that residual is
  modelled as a small deterministic per-benchmark relative offset with the
  magnitude the paper reports (mean |error| ~= 6e-4);
* a **slowed-down wall time** — the paper measures the suite at 1.7x under
  inscount2 versus 0.7 % overhead under tiptop (§2.5).
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.sim.arch import ArchModel
from repro.sim.core import solo_rates
from repro.sim.workload import Workload

#: The paper's measured slowdown of the SPEC suite under inscount2.
PIN_SLOWDOWN = 1.7

#: Scale of the counter-vs-instrumentation residual (relative). Calibrated
#: so the mean |error| over a SPEC-sized suite is ~6e-4 (§2.4's 0.06 %).
RESIDUAL_SIGMA = 7.5e-4


@dataclass(frozen=True)
class InstrumentedRun:
    """Result of one instrumented execution.

    Attributes:
        workload_name: what ran.
        instructions: Pin's exact user-instruction count.
        native_time: solo uninstrumented run time (seconds).
        wall_time: instrumented run time (seconds).
        slowdown: wall_time / native_time.
    """

    workload_name: str
    instructions: float
    native_time: float
    wall_time: float

    @property
    def slowdown(self) -> float:
        """Instrumentation slowdown factor."""
        return self.wall_time / self.native_time


def native_run_time(arch: ArchModel, workload: Workload) -> float:
    """Solo uninstrumented run time of ``workload`` on ``arch``.

    Raises:
        WorkloadError: for endless workloads (no finite run time).
    """
    total = 0.0
    for phase in workload.phases:
        if math.isinf(phase.instructions):
            raise WorkloadError(
                f"workload {workload.name!r} is endless; no finite run time"
            )
        rates = solo_rates(arch, phase)
        total += phase.instructions * rates.cpi / arch.freq_hz
    return total * workload.repeat


def inscount(
    arch: ArchModel,
    workload: Workload,
    *,
    slowdown: float = PIN_SLOWDOWN,
    seed: int = 20110408,
) -> InstrumentedRun:
    """Run ``workload`` under instrumentation and count instructions.

    The count is the workload's exact retired-instruction total shifted by
    the deterministic per-benchmark residual that separates a hardware
    counter from a software instruction count (see module docstring). The
    residual is keyed on (workload name, seed) so repeated runs agree, as
    Pin's do.

    Raises:
        WorkloadError: endless workload, or non-positive slowdown.
    """
    if slowdown <= 0:
        raise WorkloadError(f"slowdown must be positive, got {slowdown}")
    native = native_run_time(arch, workload)
    exact = workload.total_instructions
    # zlib.crc32, not hash(): Python string hashing is salted per process
    # and would break cross-run reproducibility of the residuals.
    rng = np.random.default_rng(
        zlib.crc32(f"{workload.name}:{seed}".encode())
    )
    residual = rng.normal(0.0, RESIDUAL_SIGMA)
    return InstrumentedRun(
        workload_name=workload.name,
        instructions=exact * (1.0 + residual),
        native_time=native,
        wall_time=native * slowdown,
    )
