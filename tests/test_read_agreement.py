"""Batched vs per-handle counter reads must agree under faults.

Regression for a real divergence: the per-handle fallback in
``CounterGroup.read_deltas`` used to fold each counter's delta baseline
as it read. An EINTR injected mid-group (counter k of n) then left the
first k-1 baselines already advanced, so the sampler's retry re-read
identical values and silently reported zero deltas for those counters —
while the batched ``read_many`` path (which reads everything before any
baseline moves) reported the full interval. Both paths are two-phase
now; the conformance harness's read-agreement oracle locks the contract.
"""

import pytest

from repro.errors import PerfInterruptedError
from repro.perf.counter import CounterGroup
from repro.perf.events import resolve_event
from repro.perf.faults import FaultPlan, FaultSpec
from repro.perf.simbackend import SimBackend
from repro.verify.runner import _SequentialBackend, run_tool
from repro.verify.scenario import FaultClause, Scenario, TaskPlan

EVENTS = ("cycles", "instructions", "cache-misses")


def _machine_with_task(coarse_machine, endless_workload):
    proc = coarse_machine.spawn("busy", endless_workload)
    return coarse_machine, proc.pid


def _group(backend, tid):
    return CounterGroup(backend, [resolve_event(n) for n in EVENTS], tid)


def _eintr_plan():
    """EINTR on the 5th read: the middle counter of the second batch
    (the baseline consumed reads 1-3). Plans hold per-op call indices,
    so every run under comparison needs its own fresh instance."""
    return FaultPlan(1, (FaultSpec("read", "eintr", at_calls=frozenset({5})),))


class TestCounterGroupAgreement:
    def _deltas_after_fault(self, machine, endless_workload, *, sequential):
        machine, pid = _machine_with_task(machine, endless_workload)
        backend = SimBackend(machine, 0, faults=_eintr_plan())
        if sequential:
            backend = _SequentialBackend(backend)
        with _group(backend, pid) as group:
            group.read_deltas()  # baseline: reads 1-3
            machine.run_for(2.0)
            with pytest.raises(PerfInterruptedError):
                group.read_deltas()  # reads 4-5: aborts mid-group
            return group.read_deltas()  # the retry: reads 6-8

    def test_sequential_retry_keeps_full_interval(
        self, coarse_machine, endless_workload
    ):
        deltas = self._deltas_after_fault(
            coarse_machine, endless_workload, sequential=True
        )
        # The old lazy fallback returned 0.0 here for the counter read
        # before the fault (its baseline had already moved).
        assert all(deltas[name] > 0 for name in ("cycles", "instructions"))

    def test_paths_agree_exactly(self, endless_workload):
        from repro.sim import NEHALEM, SimMachine

        results = []
        for sequential in (False, True):
            machine = SimMachine(
                NEHALEM, sockets=1, cores_per_socket=4, tick=0.5, seed=11
            )
            results.append(
                self._deltas_after_fault(
                    machine, endless_workload, sequential=sequential
                )
            )
        assert results[0] == results[1]


class TestScenarioLevelAgreement:
    @pytest.fixture
    def scenario(self):
        return Scenario(
            kind="tool",
            seed=9,
            tick=0.25,
            delay=1.0,
            iterations=3,
            tasks=(
                TaskPlan(
                    name="busy", archetype="compute", target_ipc=1.8,
                    duration=float("inf"),
                ),
            ),
            faults=(FaultClause(op="read", error="eintr", at_calls=(5,)),),
        )

    def test_fault_actually_fires(self, scenario):
        run = run_tool(scenario)
        assert run.read_retries > 0

    def test_oracle_is_green(self, scenario):
        from repro.verify import check_scenario

        violations = check_scenario(scenario)
        assert violations == [], "\n".join(
            f"[{v.oracle}] {v.message}" for v in violations
        )
