"""The conformance harness end to end: fuzzing, oracles, shrinking.

The fuzz block is the acceptance criterion of the harness: 60 fresh
seeded scenarios all come back green from every oracle. The injected-bug
block proves the harness has teeth — a deliberately broken engine path
is caught by the differential oracles, shrunk to a tiny scenario, and
reproduced deterministically from its replay artifact.
"""

import math

import pytest

from repro.sim.machine import CounterTable
from repro.verify import check, check_scenario, execute, generate, shrink
from repro.verify.oracles import Violation, deep_diff
from repro.verify.shrink import replay_artifact, write_artifact
from repro.verify.scenario import Scenario, TaskPlan

#: The fuzz budget demanded by the harness acceptance criteria.
FUZZ_SEEDS = 60


@pytest.mark.parametrize("seed", range(FUZZ_SEEDS))
def test_fuzz_seed_passes_all_oracles(seed):
    violations = check_scenario(generate(seed))
    assert violations == [], "\n".join(
        f"[{v.oracle}] {v.message}" for v in violations
    )


def _oversubscribed_scenario() -> Scenario:
    """Five runnable tasks on two logical PUs: some task is always
    unscheduled, so the lazy idle-clock path must do real work."""
    tasks = tuple(
        TaskPlan(
            name=f"compute{i}", archetype="compute", target_ipc=1.8,
            duration=math.inf,
        )
        for i in range(5)
    )
    return Scenario(
        kind="tool", seed=3, cores_per_socket=1, tick=0.25, delay=1.0,
        iterations=3, tasks=tasks,
    )


def _break_idle_clock(mp: pytest.MonkeyPatch) -> None:
    """The injected bug: run_ticks' lazy idle-counter catch-up becomes a
    no-op, so idle tasks silently lose enabled time on the batched
    advance path only."""
    mp.setattr(CounterTable, "advance_idle", lambda self, tid, dt, ticks: None)


class TestInjectedBug:
    def test_divergence_is_caught(self, monkeypatch):
        _break_idle_clock(monkeypatch)
        violations = check_scenario(_oversubscribed_scenario())
        assert any(v.oracle == "advance-equivalence" for v in violations)

    def test_shrinks_to_minimal_repro(self, monkeypatch, tmp_path):
        _break_idle_clock(monkeypatch)
        scenario = _oversubscribed_scenario()
        small = shrink(scenario)
        # Two PUs: three single-thread tasks is the least oversubscription
        # that keeps a task idle, and one interval suffices to see it.
        assert len(small.tasks) <= 3
        assert small.iterations == 1
        violations = check_scenario(small)
        assert any(v.oracle == "advance-equivalence" for v in violations)

        path = write_artifact(small, violations, tmp_path)
        assert path.name == f"repro-{small.digest()}.json"
        replayed, recorded, current = replay_artifact(path)
        assert replayed == small
        assert {v.oracle for v in recorded} == {v.oracle for v in violations}
        assert current  # deterministic: the bug still reproduces

    def test_artifact_goes_quiet_once_fixed(self, tmp_path):
        with pytest.MonkeyPatch.context() as mp:
            _break_idle_clock(mp)
            small = shrink(_oversubscribed_scenario())
            path = write_artifact(small, check_scenario(small), tmp_path)
        # Patch undone: the replay runs against healthy code.
        _, recorded, current = replay_artifact(path)
        assert recorded
        assert current == []


class TestShrinker:
    def test_keeps_failure_reproducing(self):
        """Shrinking against a synthetic predicate only accepts candidates
        that still fail, and stops at a fixpoint."""
        scenario = generate(2)  # a multi-task tool scenario
        assert len(scenario.tasks) > 1

        def failing(s):
            # "Bug" requires a task named like the first one.
            if any(t.name == scenario.tasks[0].name for t in s.tasks):
                return [Violation("synthetic", "still there")]
            return []

        small = shrink(scenario, failing)
        assert len(small.tasks) == 1
        assert small.tasks[0].name == scenario.tasks[0].name
        assert small.chaos_seed is None

    def test_eval_budget_respected(self):
        calls = 0

        def failing(s):
            nonlocal calls
            calls += 1
            return [Violation("synthetic", "always")]

        shrink(generate(2), failing, max_evals=5)
        assert calls <= 5

    def test_crashing_candidate_not_accepted(self):
        scenario = generate(2)

        def failing(s):
            if len(s.tasks) < len(scenario.tasks):
                raise RuntimeError("harness crash")
            return [Violation("synthetic", "original fails")]

        small = shrink(scenario, failing)
        assert len(small.tasks) == len(scenario.tasks)


class TestOracleInternals:
    def test_deep_diff_reports_first_paths(self):
        a = {"x": [1, 2], "y": {"z": 1.0}}
        b = {"x": [1, 3], "y": {"z": 2.0}}
        diffs = deep_diff(a, b)
        assert any("$.x[1]" in d for d in diffs)
        assert any("$.y.z" in d for d in diffs)

    def test_deep_diff_nan_equal(self):
        assert deep_diff({"v": math.nan}, {"v": math.nan}) == []

    def test_deep_diff_length_mismatch(self):
        assert deep_diff([1], [1, 2]) == ["$: length 1 != 2"]

    def test_violation_to_dict(self):
        v = Violation("conservation", "lost 3 events")
        assert v.to_dict() == {
            "oracle": "conservation",
            "message": "lost 3 events",
        }

    def test_health_oracle_flags_illegal_label(self):
        ex = execute(generate(0))
        assert ex.base is not None and ex.base.health
        ex.base.health[0][9999] = "zombie"
        violations = check(ex)
        assert any(v.oracle == "health-legal" for v in violations)

    def test_doctored_snapshot_breaks_replay_oracle(self):
        ex = execute(generate(1))
        assert ex.base is not None and ex.replay is not None
        ex.replay.snapshot["now"] = ex.replay.snapshot["now"] + 1.0
        violations = check(ex)
        assert any(v.oracle == "replay-determinism" for v in violations)
