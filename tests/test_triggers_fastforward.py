"""Triggers (§3.2 attach-on-phase) and fast-forward recommendations."""

import math

import numpy as np
import pytest

from repro import Options, SimHost, TipTop
from repro.analysis.fastforward import compare_skips, recommend_skip
from repro.analysis.timeseries import MetricSeries
from repro.core.screen import get_screen
from repro.core.triggers import Comparison, Trigger, TriggerSet
from repro.errors import ConfigError, ReproError
from repro.sim import NEHALEM, SimMachine
from repro.sim.workload import Workload
from repro.sim.workloads import revolve


class TestTriggerUnit:
    def _snapshot(self, time, ipc, pid=1):
        from repro.core.sampler import Row, Snapshot

        row = Row(
            pid=pid, tid=pid, user="u", comm="c", cpu_pct=100.0, cpu_time=0.0,
            deltas={}, values={"IPC": ipc},
        )
        return Snapshot(time=time, interval=1.0, rows=(row,))

    def test_fires_after_hold(self):
        fired = []
        t = Trigger("IPC", Comparison.BELOW, 0.5, fired.append, hold=3)
        for i in range(5):
            t.observe(self._snapshot(float(i), 0.1))
        assert len(fired) == 1
        assert fired[0].time == 2.0  # third consecutive sample

    def test_streak_resets(self):
        fired = []
        t = Trigger("IPC", Comparison.BELOW, 0.5, fired.append, hold=3)
        values = [0.1, 0.1, 0.9, 0.1, 0.1, 0.1]
        for i, v in enumerate(values):
            t.observe(self._snapshot(float(i), v))
        assert len(fired) == 1
        assert fired[0].time == 5.0

    def test_above_comparison(self):
        fired = []
        t = Trigger("IPC", Comparison.ABOVE, 2.0, fired.append, hold=1)
        t.observe(self._snapshot(0.0, 2.5))
        assert fired

    def test_once_disarms(self):
        fired = []
        t = Trigger("IPC", Comparison.BELOW, 0.5, fired.append, hold=1)
        for i in range(5):
            t.observe(self._snapshot(float(i), 0.1))
        assert len(fired) == 1

    def test_rearm_mode(self):
        fired = []
        t = Trigger("IPC", Comparison.BELOW, 0.5, fired.append, hold=2, once=False)
        values = [0.1, 0.1, 0.9, 0.1, 0.1]
        for i, v in enumerate(values):
            t.observe(self._snapshot(float(i), v))
        assert len(fired) == 2

    def test_nan_never_matches(self):
        fired = []
        t = Trigger("IPC", Comparison.BELOW, 0.5, fired.append, hold=1)
        t.observe(self._snapshot(0.0, math.nan))
        assert not fired

    def test_pid_filter(self):
        fired = []
        t = Trigger("IPC", Comparison.BELOW, 0.5, fired.append, hold=1, pid=99)
        t.observe(self._snapshot(0.0, 0.1, pid=1))
        assert not fired

    def test_bad_hold(self):
        with pytest.raises(ConfigError):
            Trigger("IPC", Comparison.BELOW, 0.5, lambda e: None, hold=0)

    def test_trigger_set(self):
        hits = []
        ts = TriggerSet(
            [Trigger("IPC", Comparison.BELOW, 0.5, hits.append, hold=1)]
        )
        ts.add(Trigger("IPC", Comparison.ABOVE, 3.0, hits.append, hold=1))
        ts.observe(self._snapshot(0.0, 0.2))
        assert ts.any_fired
        assert len(hits) == 1


class TestTriggerEndToEnd:
    def test_attach_when_collapse_begins(self):
        """The §3.2 workflow on the §3.1 victim: run at full speed, get
        called back the moment the pathological phase starts."""
        workload = Workload(
            "r-small",
            tuple(
                p.with_budget(p.instructions / 100)
                for p in revolve.original().phases
            ),
        )
        machine = SimMachine(NEHALEM, tick=0.5, seed=10)
        proc = machine.spawn("R", workload)
        app = TipTop(SimHost(machine), Options(delay=2.0), get_screen("fpassist"))
        attached = []
        triggers = TriggerSet([
            Trigger("IPC", Comparison.BELOW, 0.3, attached.append,
                    pid=proc.pid, hold=2),
        ])
        with app:
            for snapshot in app.snapshots(120):
                triggers.observe(snapshot)
                if triggers.any_fired or not proc.alive:
                    break
        assert attached, "the collapse must trigger the attach"
        event = attached[0]
        # Nominal part: 953/100 steps at ~5 s/step -> collapse near t~48 s.
        assert 40.0 < event.time < 70.0
        assert proc.alive  # caught it live, mid-run


class TestFastForward:
    def _profile(self, init_ipc=0.6, steady_ipc=1.4, init_frac=0.1, n=200):
        cut = int(n * init_frac)
        y = np.r_[init_ipc * np.ones(cut), steady_ipc * np.ones(n - cut)]
        x = np.cumsum(np.full(n, 1e10))
        return MetricSeries(x, y, "profile")

    def test_recommends_boundary(self):
        ff = recommend_skip(self._profile(), window=5)
        assert ff.fraction_of_run == pytest.approx(0.1, abs=0.03)
        assert ff.initialization_mean_ipc == pytest.approx(0.6, abs=0.05)
        assert ff.steady_mean_ipc == pytest.approx(1.4, abs=0.05)

    def test_flat_profile_skips_nothing(self):
        n = 100
        flat = MetricSeries(
            np.cumsum(np.full(n, 1e10)), np.ones(n), "flat"
        )
        ff = recommend_skip(flat, window=5)
        assert ff.skip_instructions == 0.0
        assert ff.fraction_of_run == 0.0

    def test_late_transition_is_not_initialization(self):
        ff = recommend_skip(self._profile(init_frac=0.7), window=5)
        assert ff.skip_instructions == 0.0

    def test_too_short_raises(self):
        with pytest.raises(ReproError):
            recommend_skip(MetricSeries.of([1.0], [1.0]), window=5)

    def test_per_arch_comparison(self):
        """§3.2: the right skip differs per architecture."""
        profiles = {
            "nehalem": self._profile(init_frac=0.10),
            "ppc970": self._profile(init_frac=0.15),
        }
        skips = compare_skips(profiles, window=5)
        assert (
            skips["ppc970"].skip_instructions
            > skips["nehalem"].skip_instructions
        )
