"""Partition recovery cost for the supervised grid engine.

The netchaos kernel severs shard links mid-run; the supervisor must
bring the run back — retry lost requests, fence stale replies, heal
partitions on the attempt axis — without rewriting history (digests stay
serial-equal) and without pathological cost. This benchmark drives the
``test_grid_scaling`` mix through three configurations and records the
sweep in ``BENCH_partition.json``:

* ``supervised-clean`` — supervision on, healthy links (baseline),
* ``supervised-partition`` — a two-attempt partition that heals plus a
  lost request (detection + restart + replay + resume),
* ``supervised-splitbrain`` — a half-open link and a duplicated reply
  (the fencing path: stale answers rejected, not double-applied).

All three must agree bitwise with the serial engine on every run, smoke
or full (the CI guard that recovery is exact). The timing floor only
applies to the full run: a healed partition costs <= 5x the clean
supervised run, measured per dispatched epoch so queue-shape noise
cancels. ``REPRO_BENCH_SMOKE=1`` shrinks the sweep and skips the floor
(shared runners make ratios unreliable).
"""

from __future__ import annotations

import json
import os
import time

from _harness import OUT_DIR

from repro.sim.grid import Grid
from repro.sim.netchaos import NetChaosPlan, NetFaultSpec
from repro.sim.supervisor import Supervision

from test_grid_scaling import fleet, populate

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
N_NODES = 4 if SMOKE else 8
SPAN_SECONDS = 45.0 if SMOKE else 240.0
REPEATS = 1 if SMOKE else 3
RECOVERY_MAX_OVERHEAD = 5.0

SUPERVISION = Supervision(deadline=30.0, backoff_base=0.0)

#: A partition that heals after two attempts on link 0 plus one lost
#: request on link 1 — the recovery path end to end.
PARTITION = NetChaosPlan(
    seed=0,
    specs=(
        NetFaultSpec("partition", at_epochs=frozenset({0}), link=0,
                     duration=2),
        NetFaultSpec("drop", at_epochs=frozenset({1}), link=1),
    ),
)

#: The split-brain shapes: an applied epoch whose reply is lost (the
#: stale answer must be fenced after the restart) and a duplicated
#: reply whose second copy must be discarded.
SPLITBRAIN = NetChaosPlan(
    seed=0,
    specs=(
        NetFaultSpec("half_open", at_epochs=frozenset({0}), link=0),
        NetFaultSpec("duplicate", at_epochs=frozenset({1}), link=0),
    ),
)

CONFIGS = (
    ("supervised-clean", None),
    ("supervised-partition", PARTITION),
    ("supervised-splitbrain", SPLITBRAIN),
)


def run_config(plan: NetChaosPlan | None):
    """Best-of-N wall time per epoch plus digest and recovery counters."""
    best = float("inf")
    digest = None
    stats: dict = {}
    counters: dict = {}
    for _ in range(REPEATS):
        with Grid(fleet(N_NODES), tick=1.0, seed=42, workers=2,
                  engine="supervised", net_chaos=plan,
                  supervision=SUPERVISION) as grid:
            populate(grid, N_NODES)
            t0 = time.perf_counter()
            grid.run_for(SPAN_SECONDS)
            seconds = time.perf_counter() - t0
            epochs = max(1, grid.stats["epochs"])
            best = min(best, seconds / epochs)
            digest = grid.conformance_digest()
            stats = dict(getattr(grid.engine, "stats", {}))
            counters = {
                "net_faults": grid.engine.net_faults(),
                "fenced_replies": grid.engine.fenced_replies(),
            }
    return best, digest, stats, counters


def test_partition_recovery():
    with Grid(fleet(N_NODES), tick=1.0, seed=42, workers=1,
              engine="serial") as grid:
        populate(grid, N_NODES)
        grid.run_for(SPAN_SECONDS)
        reference = grid.conformance_digest()

    results = {}
    for label, plan in CONFIGS:
        per_epoch, digest, stats, counters = run_config(plan)
        assert digest == reference, f"{label} diverged from serial"
        results[label] = (per_epoch, stats, counters)

    part_stats = results["supervised-partition"][1]
    part_counters = results["supervised-partition"][2]
    assert part_counters["net_faults"] >= 2
    assert part_stats["failures"]["unreachable"] >= 2
    assert part_stats["restarts"] >= 2
    assert not part_stats["degraded"]

    brain_counters = results["supervised-splitbrain"][2]
    assert brain_counters["net_faults"] >= 2
    assert brain_counters["fenced_replies"] >= 1

    clean = results["supervised-clean"][0]
    partition = results["supervised-partition"][0]
    splitbrain = results["supervised-splitbrain"][0]
    recovery = partition / clean
    fencing = splitbrain / clean
    print(
        f"\nclean={1e3 * clean:.2f}ms/epoch "
        f"partition={1e3 * partition:.2f}ms/epoch ({recovery:.2f}x) "
        f"splitbrain={1e3 * splitbrain:.2f}ms/epoch ({fencing:.2f}x)"
    )

    payload = {
        "scenario": {
            "nodes": N_NODES,
            "span_seconds": SPAN_SECONDS,
            "tick": 1.0,
            "seed": 42,
            "workers": 2,
            "repeats": REPEATS,
            "smoke": SMOKE,
            "faults": {
                label: [
                    {"kind": s.kind, "at_epochs": sorted(s.at_epochs or ()),
                     "link": s.link, "duration": s.duration}
                    for s in plan.specs
                ]
                for label, plan in CONFIGS
                if plan is not None
            },
        },
        "targets": {"recovery_max_overhead": RECOVERY_MAX_OVERHEAD},
        "results": {
            label: {
                "seconds_per_epoch": round(per_epoch, 6),
                "restarts": stats.get("restarts", 0),
                "replayed_epochs": stats.get("replayed_epochs", 0),
                "failures": stats.get("failures", {}),
                **counters,
            }
            for label, (per_epoch, stats, counters) in results.items()
        },
        "partition_recovery_overhead": round(recovery, 3),
        "splitbrain_fencing_overhead": round(fencing, 3),
    }
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_partition.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    if not SMOKE:
        assert recovery <= RECOVERY_MAX_OVERHEAD, (
            f"healed partition costs {recovery:.2f}x per epoch over clean"
        )
        assert fencing <= RECOVERY_MAX_OVERHEAD, (
            f"split-brain fencing costs {fencing:.2f}x per epoch over clean"
        )
