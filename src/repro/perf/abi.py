"""The ``perf_event_open(2)`` ABI: structures and constants.

A faithful ctypes rendering of ``struct perf_event_attr`` and the constants
tiptop needs, matching ``linux/perf_event.h`` as of the 2.6.31+ interface
the paper uses (Fig. 2 shows the syscall prototype). The structure layout
is the original 64-byte (``PERF_ATTR_SIZE_VER0``) core plus the size field
protocol that lets newer userspace run on older kernels.
"""

from __future__ import annotations

import ctypes
import enum

#: x86_64 syscall number for perf_event_open.
SYSCALL_NR_X86_64 = 298

#: The original attr size (PERF_ATTR_SIZE_VER0).
PERF_ATTR_SIZE_VER0 = 64


class PerfTypeId(enum.IntEnum):
    """``perf_event_attr.type`` values (perf_type_id)."""

    HARDWARE = 0
    SOFTWARE = 1
    TRACEPOINT = 2
    HW_CACHE = 3
    RAW = 4
    BREAKPOINT = 5


class HardwareEventId(enum.IntEnum):
    """Generic hardware events (perf_hw_id) — the portable set of §2.2."""

    CPU_CYCLES = 0
    INSTRUCTIONS = 1
    CACHE_REFERENCES = 2
    CACHE_MISSES = 3
    BRANCH_INSTRUCTIONS = 4
    BRANCH_MISSES = 5
    BUS_CYCLES = 6


class SoftwareEventId(enum.IntEnum):
    """Software events (perf_sw_ids) — kernel-counted."""

    CPU_CLOCK = 0
    TASK_CLOCK = 1
    PAGE_FAULTS = 2
    CONTEXT_SWITCHES = 3
    CPU_MIGRATIONS = 4


class HwCacheId(enum.IntEnum):
    """Cache levels for PERF_TYPE_HW_CACHE config (perf_hw_cache_id)."""

    L1D = 0
    L1I = 1
    LL = 2
    DTLB = 3
    ITLB = 4
    BPU = 5


class HwCacheOpId(enum.IntEnum):
    """Cache op for PERF_TYPE_HW_CACHE config."""

    READ = 0
    WRITE = 1
    PREFETCH = 2


class HwCacheResultId(enum.IntEnum):
    """Cache op result for PERF_TYPE_HW_CACHE config."""

    ACCESS = 0
    MISS = 1


def hw_cache_config(
    cache: HwCacheId, op: HwCacheOpId, result: HwCacheResultId
) -> int:
    """Pack a PERF_TYPE_HW_CACHE config value (id | op<<8 | result<<16)."""
    return int(cache) | (int(op) << 8) | (int(result) << 16)


class ReadFormat(enum.IntFlag):
    """``perf_event_attr.read_format`` flags."""

    TOTAL_TIME_ENABLED = 1 << 0
    TOTAL_TIME_RUNNING = 1 << 1
    ID = 1 << 2
    GROUP = 1 << 3


# attr flag bit positions (bitfield packed into one u64 after read_format).
FLAG_DISABLED = 1 << 0
FLAG_INHERIT = 1 << 1
FLAG_PINNED = 1 << 2
FLAG_EXCLUSIVE = 1 << 3
FLAG_EXCLUDE_USER = 1 << 4
FLAG_EXCLUDE_KERNEL = 1 << 5
FLAG_EXCLUDE_HV = 1 << 6
FLAG_EXCLUDE_IDLE = 1 << 7

# ioctl request numbers (from _IO('$', n)).
IOCTL_ENABLE = 0x2400
IOCTL_DISABLE = 0x2401
IOCTL_REFRESH = 0x2402
IOCTL_RESET = 0x2403


class PerfEventAttr(ctypes.Structure):
    """``struct perf_event_attr`` (VER0 layout + trailing reserve).

    Only the fields tiptop uses are named; the flag bitfield is exposed as
    a single ``flags`` u64 with the ``FLAG_*`` masks above, matching the
    kernel's packing on little-endian x86.
    """

    _fields_ = [
        ("type", ctypes.c_uint32),
        ("size", ctypes.c_uint32),
        ("config", ctypes.c_uint64),
        ("sample_period_or_freq", ctypes.c_uint64),
        ("sample_type", ctypes.c_uint64),
        ("read_format", ctypes.c_uint64),
        ("flags", ctypes.c_uint64),
        ("wakeup_events_or_watermark", ctypes.c_uint32),
        ("bp_type", ctypes.c_uint32),
        ("bp_addr_or_config1", ctypes.c_uint64),
        ("bp_len_or_config2", ctypes.c_uint64),
    ]


assert ctypes.sizeof(PerfEventAttr) == PERF_ATTR_SIZE_VER0 + 8, (
    "PerfEventAttr layout drifted"
)


def counting_attr(
    type_id: PerfTypeId,
    config: int,
    *,
    inherit: bool = False,
    disabled: bool = False,
    exclude_kernel: bool = True,
    exclude_hv: bool = True,
) -> PerfEventAttr:
    """Build an attr for counting mode, as tiptop configures it.

    Counting (not sampling) mode: no sample period, read_format asking for
    the enabled/running times so multiplexed counts can be scaled (§2.5).
    """
    attr = PerfEventAttr()
    attr.type = int(type_id)
    attr.size = PERF_ATTR_SIZE_VER0
    attr.config = config
    attr.read_format = int(
        ReadFormat.TOTAL_TIME_ENABLED | ReadFormat.TOTAL_TIME_RUNNING
    )
    flags = 0
    if disabled:
        flags |= FLAG_DISABLED
    if inherit:
        flags |= FLAG_INHERIT
    if exclude_kernel:
        flags |= FLAG_EXCLUDE_KERNEL
    if exclude_hv:
        flags |= FLAG_EXCLUDE_HV
    attr.flags = flags
    return attr


def sampling_attr(
    type_id: PerfTypeId,
    config: int,
    sample_period: int,
    **kwargs: bool,
) -> PerfEventAttr:
    """Build an attr for sampling mode (§2.5's statistical alternative).

    Same as :func:`counting_attr` with a PMU interrupt every
    ``sample_period`` events.

    Raises:
        ValueError: for a non-positive period.
    """
    if sample_period < 1:
        raise ValueError(f"sample_period must be >= 1, got {sample_period}")
    attr = counting_attr(type_id, config, **kwargs)
    attr.sample_period_or_freq = sample_period
    return attr
