"""End-to-end daemon tests: handshake, equivalence, resume, CLI wiring.

pytest-asyncio is not available in this environment, so every async
scenario runs inside an explicit ``asyncio.run``. All daemon tests bind
to an ephemeral loopback port; the simulated node's virtual clock makes
the streams deterministic regardless of real scheduling.
"""

from __future__ import annotations

import asyncio
import re
import subprocess
import sys

from repro.core.app import SimHost
from repro.core.cli import main as cli_main
from repro.core.frame import SnapshotFrame
from repro.core.options import Options
from repro.core.sampler import Sampler
from repro.core.screen import get_screen
from repro.errors import SessionError
from repro.serve.client import ServeClient, collect
from repro.serve.daemon import CollectorDaemon
from repro.serve.protocol import frame_digest
from repro.serve.session import Subscription, subscription_view
from repro.sim.workloads import datacenter

_DELAY = 0.5
_SEED = 7


def _make_daemon(iterations: int = 3, *, min_clients: int = 1, **kwargs):
    machine = datacenter.make_node(tick=min(0.5, _DELAY / 4), seed=_SEED)
    datacenter.populate_fig1(machine)
    host = SimHost(machine)
    sampler = Sampler(
        host.backend, host.tasks, get_screen("default"), Options(delay=_DELAY)
    )
    return CollectorDaemon(
        sampler,
        advance=lambda: host.sleep(_DELAY),
        iterations=iterations,
        min_clients=min_clients,
        **kwargs,
    )


def _solo_frames(iterations: int = 3) -> list[SnapshotFrame]:
    machine = datacenter.make_node(tick=min(0.5, _DELAY / 4), seed=_SEED)
    datacenter.populate_fig1(machine)
    host = SimHost(machine)
    sampler = Sampler(
        host.backend, host.tasks, get_screen("default"), Options(delay=_DELAY)
    )
    frames = []
    sampler.sample_frame()  # baseline, never published by the daemon either
    for _ in range(iterations):
        host.sleep(_DELAY)
        frames.append(sampler.sample_frame())
    sampler.close()
    return frames


# -- bitwise equivalence over the wire ----------------------------------------

def test_served_stream_bitwise_equal_to_solo():
    """Three concurrent subscriptions, each bitwise-equal to the solo
    pipeline's view — the daemon adds transport, not meaning."""
    subs = {
        "total": Subscription(),
        "filtered": Subscription(comms=frozenset({"process1"})),
        "derived": Subscription(
            exprs=(("GIPS", "instructions / delta_t / 1e9"),)
        ),
    }

    async def go():
        daemon = _make_daemon(iterations=3, min_clients=len(subs))
        port = await daemon.start()
        results, _ = await asyncio.gather(
            asyncio.gather(
                *(
                    collect("127.0.0.1", port, client_id=name, subscription=sub)
                    for name, sub in subs.items()
                )
            ),
            daemon.run(),
        )
        await daemon.close()
        return results

    results = asyncio.run(go())
    solo = _solo_frames(iterations=3)
    for (name, sub), (received, client) in zip(subs.items(), results):
        assert [seq for seq, _ in received] == [0, 1, 2], name
        expect = [frame_digest(subscription_view(f, sub)) for f in solo]
        got = [frame_digest(f) for _, f in received]
        assert got == expect, f"{name}: served stream diverged from solo"
        stats = client.bye["stats"]
        assert stats["published"] == (
            stats["delivered"] + stats["dropped"] + stats["lag"]
        )
        assert client.gaps == 0

    # The derived column really carries data (not a silent NaN column).
    derived_frames = results[2][0]
    import numpy as np

    gips = derived_frames[-1][1].metrics["GIPS"]
    assert np.isfinite(gips).any() and (gips[np.isfinite(gips)] > 0).all()


def test_hello_describes_the_screen():
    async def go():
        daemon = _make_daemon(iterations=1)
        port = await daemon.start()
        client = ServeClient("127.0.0.1", port, client_id="peek")
        hello_task = asyncio.ensure_future(client.connect())
        run_task = asyncio.ensure_future(daemon.run())
        hello = await hello_task
        async for _ in client.frames():
            pass
        await run_task
        await client.close()
        await daemon.close()
        return hello

    hello = asyncio.run(go())
    assert hello["screen"] == "default"
    assert "instructions" in hello["events"] or any(
        "instr" in e for e in hello["events"]
    )
    headers = [header for header, _kind in hello["columns"]]
    assert "PID" in headers and "COMMAND" in headers


# -- satellite 4: the columnar codec is the hot path --------------------------

def test_serve_never_touches_row_codecs(monkeypatch):
    """`from_rows` lifts uids as -1; the serve path must move columns,
    not rows. Poison both row codecs and require real uids end-to-end."""

    def _boom(*_args, **_kwargs):  # pragma: no cover - the assertion
        raise AssertionError("row codec used in the serve hot path")

    monkeypatch.setattr(SnapshotFrame, "to_rows", _boom)
    monkeypatch.setattr(SnapshotFrame, "from_rows", staticmethod(_boom))

    async def go():
        daemon = _make_daemon(iterations=2)
        port = await daemon.start()
        (received, _client), _ = await asyncio.gather(
            collect("127.0.0.1", port, client_id="colcheck"),
            daemon.run(),
        )
        await daemon.close()
        return received

    received = asyncio.run(go())
    assert len(received) == 2
    for _seq, frame in received:
        assert len(frame) > 0
        # Real uids survive the wire — the from_rows path would have
        # flattened every one of these to -1.
        assert (frame.uids >= 0).all()
        assert any(user != "?" for user in frame.users)


# -- resume and late joiners --------------------------------------------------

def test_late_subscriber_resumes_retained_frames():
    """A client that connects after the run finished still gets the
    retained backlog (from seq 0) and a clean BYE."""

    async def go():
        daemon = _make_daemon(iterations=3, min_clients=1)
        port = await daemon.start()
        _, _ = await asyncio.gather(
            collect("127.0.0.1", port, client_id="live"),
            daemon.run(),
        )
        # Run is over; daemon still accepting until close().
        late, client = await collect(
            "127.0.0.1", port, client_id="latecomer", resume_from=-1
        )
        await daemon.close()
        return late, client

    late, client = asyncio.run(go())
    assert [seq for seq, _ in late] == [0, 1, 2]
    assert client.bye is not None and "stats" in client.bye
    solo = _solo_frames(iterations=3)
    assert [frame_digest(f) for _, f in late] == [
        frame_digest(f) for f in solo
    ]


def test_bad_subscription_expr_rejected_with_bye_error():
    async def go():
        daemon = _make_daemon(iterations=1)
        port = await daemon.start()
        run_task = asyncio.ensure_future(daemon.run())
        bad = Subscription(exprs=(("OOPS", "cycles +* 1"),))
        client = ServeClient(
            "127.0.0.1", port, client_id="bad", subscription=bad
        )
        await client.connect()
        error = None
        try:
            async for _ in client.frames():
                pass
        except SessionError as exc:
            error = str(exc)
        await client.close()
        # Unblock the run (it waits for min_clients=1 real subscriber).
        _, _ = await asyncio.gather(
            collect("127.0.0.1", port, client_id="good"),
            run_task,
        )
        await daemon.close()
        return error

    error = asyncio.run(go())
    assert error is not None and "OOPS" in error


def test_duplicate_client_id_second_connection_rejected():
    async def go():
        daemon = _make_daemon(iterations=1, min_clients=2)
        port = await daemon.start()
        first = ServeClient("127.0.0.1", port, client_id="twin")
        await first.connect()
        second = ServeClient("127.0.0.1", port, client_id="twin")
        await second.connect()
        error = None
        try:
            async for _ in second.frames():
                pass
        except SessionError as exc:
            error = str(exc)
        await second.close()
        # Let the run complete: the surviving twin plus one more.
        _, _, _ = await asyncio.gather(
            _drain(first),
            collect("127.0.0.1", port, client_id="other"),
            daemon.run(),
        )
        await first.close()
        await daemon.close()
        return error

    async def _drain(client):
        async for _ in client.frames():
            pass

    error = asyncio.run(go())
    assert error is not None and "already subscribed" in error


def test_module_smoke_gate(capsys):
    """The CI smoke entry point (python -m repro.serve --smoke), run
    in-process: 3 clients, digest-equal to the solo run, exit 0."""
    from repro.serve.__main__ import main as serve_main

    assert serve_main(["--smoke", "--delay", "0.5", "--iterations", "2"]) == 0
    out = capsys.readouterr().out
    assert "serve smoke: OK 3 clients x 2 frames" in out


# -- CLI wiring ---------------------------------------------------------------

def test_cli_serve_requires_sim(capsys):
    assert cli_main(["--serve", "0"]) == 2
    assert "--sim" in capsys.readouterr().err


def test_cli_serve_connect_mutually_exclusive(capsys):
    assert cli_main(["--sim", "--serve", "0", "--connect", "x:1"]) == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_cli_bad_connect_address(capsys):
    assert cli_main(["--connect", "no-port-here"]) == 1
    assert "connect" in capsys.readouterr().err


def test_cli_serve_and_connect_subprocess():
    """The real thing: a daemon subprocess on an ephemeral port, a
    connect subprocess rendering its frames to stdout."""
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro.core.cli",
            "--sim", "--serve", "0", "-d", "0.4", "-n", "2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        line = server.stdout.readline()
        match = re.search(r"serving on 127\.0\.0\.1:(\d+)", line)
        assert match, f"no port line: {line!r}"
        port = match.group(1)
        viewer = subprocess.run(
            [
                sys.executable, "-m", "repro.core.cli",
                "--connect", f"127.0.0.1:{port}", "-n", "2",
            ],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert viewer.returncode == 0, viewer.stderr
        # Two rendered batches, real process names from the sim node.
        assert viewer.stdout.count("PID") == 2
        assert "process1" in viewer.stdout
        assert server.wait(timeout=60) == 0
    finally:
        server.kill()
