"""Pin-like dynamic instrumentation substrate (inscount2 equivalent).

Used by the §2.4 validation (instruction counts within 0.06 % of Pin) and
the §2.5 overhead comparison (the instrumented suite runs 1.7x slower,
versus 0.7 % for tiptop).
"""

from repro.pin.inscount import InstrumentedRun, inscount

__all__ = ["InstrumentedRun", "inscount"]
