"""Seeded network-fault kernel for the shard transports and the daemon.

:class:`~repro.sim.supervisor.GridFaultPlan` breaks *processes* (crash,
hang, garble inside the agent); this module breaks the *links between*
them. A :class:`NetChaosPlan` is the same shape of object — a frozen,
stateless, picklable schedule seeded once and queried as a pure function
— but its decisions model the message layer: partition/heal windows,
lost requests, replies that arrive late with a stale incarnation,
duplicated replies, and per-link delay.

Determinism contract (mirroring :mod:`repro.perf.faults`): every
decision hashes ``(seed, link, epoch)`` through crc32 into one uniform
variate, so the schedule is platform-stable and **independent per
link** — faults on one link never shift another link's schedule, and
``--net-chaos SEED`` replays byte-identically. The third ``attempt``
axis is how a partition *heals*: a fault with ``duration`` ``d`` keeps
firing while the round-trip for that (link, epoch) has been attempted
fewer than ``d`` times, then clears. Retries are driven by the
supervisor's restart ladder, so "heal after d failed attempts" is itself
a pure function of the schedule and the supervision policy — no
wall-clock enters the replay.

Fault kinds and how the transport layer realises them::

    partition   the request never crosses the cut; the reply deadline
                expires -> WorkerFailure(kind="unreachable"). Lasts
                ``duration`` attempts (the heal schedule).
    drop        a single lost request message (a 1-attempt partition).
    half_open   the request is delivered and *applied*, but the reply is
                lost to the cut; after heal the stale reply surfaces and
                is rejected by its incarnation fence (the split-brain
                case: without fencing this epoch would be double-counted).
    reorder     the reply is held back past its round-trip and delivered
                ahead of a later reply; the epoch fence rejects it.
    duplicate   the reply is delivered twice; the second copy's epoch
                fence fails and it is discarded, not merged.
    delay       ``latency`` seconds of injected link latency; a delay at
                or beyond the round-trip deadline becomes "unreachable".

At the serve daemon's stream layer the same plan decides per
``(link, frame seq)`` whether the connection is severed mid-stream
(:meth:`NetChaosPlan.cut`); the auto-reconnecting client then exercises
resume-by-seq against the retention ring.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = [
    "CUT_KINDS",
    "NET_FAULT_KINDS",
    "NetChaosPlan",
    "NetFaultSpec",
    "default_net_specs",
]

#: Fault kinds a link can be ordered to exhibit.
NET_FAULT_KINDS = (
    "partition",
    "drop",
    "half_open",
    "reorder",
    "duplicate",
    "delay",
)

#: Kinds that sever a byte stream outright (the serve layer's view: a
#: duplicated or delayed frame cannot happen on one healthy TCP stream,
#: but a cut connection can).
CUT_KINDS = frozenset({"partition", "drop", "half_open", "reorder"})


@dataclass(frozen=True)
class NetFaultSpec:
    """One chaos behaviour for a network link.

    Attributes:
        kind: one of :data:`NET_FAULT_KINDS`.
        rate: probability per (link, epoch) draw.
        at_epochs: exact epoch indices to fire at (overrides ``rate``).
        link: restrict to one link id (None = all links).
        duration: how many *attempts* of the same (link, epoch)
            round-trip the fault keeps firing for before the link heals.
            1 means a transient blip the first retry survives; a value
            at or beyond the supervisor's poison limit models a
            partition that outlives the ladder (the adopt path).
        latency: injected one-way delay in seconds (``delay`` kind only).
    """

    kind: str
    rate: float = 0.0
    at_epochs: frozenset[int] | None = None
    link: int | None = None
    duration: int = 1
    latency: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in NET_FAULT_KINDS:
            raise ConfigError(
                f"unknown net fault kind {self.kind!r} "
                f"(have: {', '.join(NET_FAULT_KINDS)})"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.at_epochs is not None:
            object.__setattr__(self, "at_epochs", frozenset(self.at_epochs))
            if any(e < 0 for e in self.at_epochs):
                raise ConfigError("at_epochs indices must be >= 0")
        if self.link is not None and self.link < 0:
            raise ConfigError("link id must be >= 0")
        if self.duration < 1:
            raise ConfigError(f"duration must be >= 1, got {self.duration}")
        if self.latency < 0:
            raise ConfigError(f"latency must be >= 0, got {self.latency}")
        if self.kind != "delay" and self.latency:
            raise ConfigError(
                f"latency only applies to 'delay' faults, not {self.kind!r}"
            )


def default_net_specs(intensity: float = 1.0) -> tuple[NetFaultSpec, ...]:
    """The stock network-chaos mix.

    Mostly transient single-message losses (cheap: one restart each),
    some two-attempt partitions (the heal path), a sprinkle of the
    split-brain shapes (half-open and duplicate) because those are the
    ones fencing exists for.
    """
    if intensity < 0:
        raise ConfigError(f"chaos intensity must be >= 0, got {intensity}")
    cap = 1.0 / len(NET_FAULT_KINDS)

    def r(rate: float) -> float:
        return min(rate * intensity, cap)

    return (
        NetFaultSpec("partition", rate=r(0.03), duration=2),
        NetFaultSpec("drop", rate=r(0.03)),
        NetFaultSpec("half_open", rate=r(0.02)),
        NetFaultSpec("reorder", rate=r(0.015)),
        NetFaultSpec("duplicate", rate=r(0.02)),
        NetFaultSpec("delay", rate=r(0.02), latency=0.002),
    )


@dataclass(frozen=True)
class NetChaosPlan:
    """A seeded, stateless schedule of link faults.

    Decisions hash ``(seed, link, epoch)`` through crc32 into one
    uniform variate walked across the rate specs (exactly the
    :class:`repro.perf.faults.FaultPlan` shape), so at most one fault
    fires per (link, epoch) and the schedule for one link is
    independent of every other link's.
    """

    seed: int
    specs: tuple[NetFaultSpec, ...]

    def __post_init__(self) -> None:
        total = sum(s.rate for s in self.specs if s.at_epochs is None)
        if total > 1.0 + 1e-9:
            raise ConfigError(
                f"net fault rates sum to {total:.3f} > 1; they partition "
                "one uniform draw and cannot overlap"
            )

    @classmethod
    def from_seed(cls, seed: int, intensity: float = 1.0) -> "NetChaosPlan":
        return cls(seed=seed, specs=default_net_specs(intensity))

    def _unit(self, link: int, epoch: int) -> float:
        # crc32 is linear, so keys differing in one mid-string character
        # (adjacent links) land on correlated values; feeding the first
        # digest through a second crc32 restores avalanche while staying
        # platform-stable and hash()-free.
        key = f"{self.seed}:net:{link}:{epoch}"
        inner = zlib.crc32(key.encode())
        return zlib.crc32(str(inner).encode()) / 2**32

    def _pick(self, link: int, epoch: int) -> NetFaultSpec | None:
        """The spec (if any) scheduled for this (link, epoch)."""
        for spec in self.specs:
            if spec.at_epochs is None:
                continue
            if spec.link is not None and spec.link != link:
                continue
            if epoch in spec.at_epochs:
                return spec
        u = self._unit(link, epoch)
        edge = 0.0
        for spec in self.specs:
            if spec.at_epochs is not None:
                continue
            if spec.link is not None and spec.link != link:
                continue
            edge += spec.rate
            if u < edge:
                return spec
        return None

    def decide(self, link: int, epoch: int, attempt: int) -> str | None:
        """The fault (if any) this link exhibits on this round-trip.

        ``attempt`` counts retries of the same (link, epoch) round-trip
        (0 on the first try); a fault stops firing once ``attempt``
        reaches its ``duration`` — that is the heal schedule. The
        *choice* of fault depends only on ``(seed, link, epoch)``, so
        recovery activity on other links can never shift it.
        """
        spec = self._pick(link, epoch)
        if spec is None or attempt >= spec.duration:
            return None
        return spec.kind

    def latency_of(self, link: int, epoch: int) -> float:
        """The injected latency when :meth:`decide` said ``"delay"``."""
        spec = self._pick(link, epoch)
        return spec.latency if spec is not None else 0.0

    def cut(self, link: int, epoch: int, attempt: int) -> bool:
        """Does this (link, epoch) round-trip lose its connection?

        The serve daemon's stream layer asks this per (client link,
        frame seq): a True severs the socket before the frame is
        written, and the client must reconnect and resume.
        """
        return self.decide(link, epoch, attempt) in CUT_KINDS
