"""The TipTop application object and its hosts.

A *host* bundles what the tool needs from its environment: a perf backend,
a /proc provider, and a way to let time pass. :class:`SimHost` wraps a
:class:`~repro.sim.machine.SimMachine` (sleeping advances the virtual
clock); :class:`RealHost` wraps the live kernel (sleeping sleeps). The
:class:`TipTop` object itself is host-agnostic — precisely the property the
paper's design gets from building on ``perf_event``.
"""

from __future__ import annotations

import sys
import time
from collections.abc import Callable, Iterator
from typing import Protocol

from repro.core import formatter
from repro.core.columns import HEALTH_COLUMN, ColumnKind
from repro.core.options import Options
from repro.core.recorder import Recorder
from repro.core.sampler import Sampler, Snapshot
from repro.core.screen import Screen, get_screen
from repro.errors import PerfNotSupportedError
from repro.perf.counter import Backend
from repro.perf.faults import FaultPlan
from repro.perf.simbackend import SimBackend
from repro.perf.syscall import RealBackend, kernel_supports_perf_events
from repro.procfs.model import TaskProvider
from repro.procfs.reader import ProcReader
from repro.procfs.simproc import SimProcReader
from repro.sim.machine import SimMachine


class Host(Protocol):
    """Environment the tool runs against."""

    backend: Backend
    tasks: TaskProvider

    def sleep(self, seconds: float) -> None:
        """Let ``seconds`` of (virtual or wall) time pass."""
        ...


class SimHost:
    """Host over a simulated machine.

    Args:
        machine: the node to monitor.
        monitor_uid: uid tiptop runs as (0 = may watch everyone; see the
            paper's footnote 1 on unprivileged monitoring).
        faults: optional seeded fault plan the backend executes (chaos
            mode); None models a well-behaved kernel.
    """

    def __init__(
        self,
        machine: SimMachine,
        monitor_uid: int = 0,
        *,
        faults: FaultPlan | None = None,
    ) -> None:
        self.machine = machine
        self.backend: Backend = SimBackend(machine, monitor_uid, faults=faults)
        self.tasks: TaskProvider = SimProcReader(machine)

    def sleep(self, seconds: float) -> None:
        """Advance the virtual clock."""
        self.machine.run_for(seconds)


class RealHost:
    """Host over the running Linux kernel.

    Raises:
        PerfNotSupportedError: at construction when the kernel has no
            usable PMU (as in this reproduction's container), unless
            ``probe=False``.
    """

    def __init__(self, probe: bool = True) -> None:
        if probe and not kernel_supports_perf_events():
            raise PerfNotSupportedError(
                "this kernel exposes no usable PMU; use SimHost "
                "(perf_event_open probe failed)"
            )
        self.backend: Backend = RealBackend()
        self.tasks: TaskProvider = ProcReader()

    def sleep(self, seconds: float) -> None:
        """Wall-clock sleep."""
        time.sleep(seconds)


class TipTop:
    """The monitor: hardware performance counters for the masses.

    Args:
        host: a :class:`SimHost` or :class:`RealHost`.
        options: tool options.
        screen: a Screen object (overrides ``options.screen`` by name).
    """

    def __init__(
        self,
        host: Host,
        options: Options | None = None,
        screen: Screen | None = None,
    ) -> None:
        self.host = host
        self.options = options or Options()
        screen = screen or get_screen(self.options.screen)
        if self.options.chaos is not None:
            # Chaos mode: seed the backend's fault plan (unless the host
            # already carries one) and surface per-task lifecycle state
            # as a HEALTH column. Both derive from the one seed, so a
            # rerun with the same options replays byte-identically.
            backend = host.backend
            if isinstance(backend, SimBackend) and backend.faults is None:
                backend.faults = FaultPlan.from_seed(self.options.chaos)
            if not any(
                c.kind is ColumnKind.HEALTH for c in screen.columns
            ):
                screen = screen.with_columns(HEALTH_COLUMN)
        self.screen = screen
        self.sampler = Sampler(
            host.backend, host.tasks, self.screen, self.options
        )
        self._advance_seconds = 0.0

    def snapshots(self, iterations: int | None = None) -> Iterator[Snapshot]:
        """Yield snapshots forever (or ``iterations`` times).

        The first snapshot attaches counters and establishes baselines; the
        paper's semantics hold: only events after tiptop starts are seen.
        Each subsequent snapshot follows one refresh delay.
        """
        limit = iterations if iterations is not None else self.options.iterations
        count = 0
        # Baseline pass: attach counters, zero-length interval.
        yield self.sampler.sample()
        while limit is None or count < limit:
            t0 = time.perf_counter()
            self.host.sleep(self.options.delay)
            self._advance_seconds = time.perf_counter() - t0
            yield self.sampler.sample()
            count += 1

    def _emit_profile(self, render_seconds: float) -> None:
        """One ``--profile`` line per refresh: where the wall time went.

        ``advance`` is the host sleep (virtual-machine simulation time for
        a SimHost, idle wall time for a RealHost); ``read``/``eval``/
        ``refresh`` come from the sampler's timing of counter+/proc reads,
        frame building with derived-metric evaluation, and process-list
        maintenance; ``render`` is text formatting. The paper's §2.5
        overhead claim is about exactly this breakdown.
        """
        if not self.options.profile:
            return
        timing = self.sampler.last_timing
        if timing is None:
            return
        # Simulated hosts expose the node's RateCache; its hit rate is the
        # leading indicator for batched-advance regressions.
        cache = ""
        machine = getattr(self.host, "machine", None)
        rate_cache = getattr(machine, "_rate_cache", None)
        if rate_cache is not None:
            cache = f" rate_cache={rate_cache.hits}/{rate_cache.misses}"
        print(
            f"profile: advance={self._advance_seconds * 1e3:8.2f}ms "
            f"read={timing.read_seconds * 1e3:7.2f}ms "
            f"eval={timing.eval_seconds * 1e3:7.2f}ms "
            f"refresh={timing.refresh_seconds * 1e3:7.2f}ms "
            f"render={render_seconds * 1e3:7.2f}ms "
            f"tasks={timing.tasks}{cache}",
            file=sys.stderr,
        )

    def run_collect(self, iterations: int, recorder: Recorder | None = None) -> Recorder:
        """Sample ``iterations`` intervals into a :class:`Recorder`.

        The baseline snapshot is taken but not recorded (its interval is
        empty).
        """
        recorder = recorder or Recorder()
        for i, snapshot in enumerate(self.snapshots(iterations)):
            if i == 0:
                continue
            recorder.record(snapshot)
            self._emit_profile(0.0)
        return recorder

    def run_batch(
        self,
        iterations: int,
        write: Callable[[str], object] | None = None,
    ) -> list[str]:
        """Batch mode: stream one text block per interval (like ``top -b``).

        Args:
            iterations: number of intervals.
            write: sink for each block (default: stdout).

        Returns:
            The emitted blocks.
        """
        sink = write or (lambda s: sys.stdout.write(s + "\n"))
        blocks: list[str] = []
        for i, snapshot in enumerate(self.snapshots(iterations)):
            if i == 0:
                continue
            t0 = time.perf_counter()
            block = formatter.render_batch(self.screen, snapshot)
            self._emit_profile(time.perf_counter() - t0)
            blocks.append(block)
            sink(block)
        return blocks

    def run_live(
        self,
        iterations: int,
        paint: Callable[[str], object] | None = None,
    ) -> list[str]:
        """Live mode: repaint a full frame each interval.

        Without a real terminal the frames go to ``paint`` (default: stdout
        preceded by an ANSI clear), and are returned for inspection.
        """
        def default_paint(frame: str) -> None:
            sys.stdout.write("\x1b[H\x1b[2J" + frame + "\n")
            sys.stdout.flush()

        sink = paint or default_paint
        frames: list[str] = []
        for i, snapshot in enumerate(self.snapshots(iterations)):
            if i == 0:
                continue
            t0 = time.perf_counter()
            frame = formatter.render_frame(
                self.screen, snapshot, idle_threshold=self.options.idle_threshold
            )
            self._emit_profile(time.perf_counter() - t0)
            frames.append(frame)
            sink(frame)
        return frames

    def close(self) -> None:
        """Detach all counters."""
        self.sampler.close()

    def __enter__(self) -> "TipTop":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
