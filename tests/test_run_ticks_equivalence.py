"""Property tests: ``run_ticks(n)`` is bitwise-identical to n scalar steps.

The batched tick path exists purely for speed — its memo caches (rate
cache, contention cache, idle-clock folding) must return the very values
the scalar per-tick path computes, including every float rounding step and
every RNG draw. These tests drive two identically-built machines, one via
``n`` scalar ``_step`` calls and one via ``run_ticks(n)``, and require the
*entire* observable state to match exactly: thread progress, scheduler
bookkeeping, every counter's value and both kernel clocks, multiplexing
rotation, and the virtual clock.

Scenarios cover the regimes the batching logic special-cases: seeds, tick
sizes, oversubscription, SMT co-runs pinned to sibling hardware threads,
duty-cycled tasks (per-tick RNG draws), multi-threaded processes with nice
levels, sampling-mode counters, multiplexed counters beyond the PMU width,
timers that spawn and kill mid-run, and interleaving batched with scalar
advancement.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.sim.arch import NEHALEM
from repro.sim.events import Event
from repro.sim.machine import SimMachine
from repro.sim.workloads import synthetic

EVENTS = (Event.INSTRUCTIONS, Event.CYCLES, Event.CACHE_MISSES)


def machine_state(machine: SimMachine) -> dict:
    """Every observable the two paths must agree on, exactly."""
    state: dict = {"now": machine.now}
    for tid, thread in machine._threads.items():
        state[("thread", tid)] = (
            thread.retired,
            thread.cycles,
            thread.cpu_time,
            thread.vruntime,
            thread.context_switches,
            thread.state,
            thread.alive,
            thread.last_pu,
        )
    for cid, counter in machine.counters._by_id.items():
        state[("counter", cid)] = (
            counter.value,
            counter.time_enabled,
            counter.time_running,
            counter.samples,
            counter._carry,
            counter.enabled,
        )
    state["rotation"] = dict(machine.counters._rotation)
    state["last_assignment"] = {
        pu: t.tid for pu, t in machine.scheduler._last_assignment.items()
    }
    state["alive_pids"] = sorted(p.pid for p in machine.live_processes())
    return state


def assert_paths_equal(build, n: int) -> None:
    scalar = build()
    batched = build()
    for _ in range(n):
        scalar._step(scalar.tick)
    batched.run_ticks(n)
    a, b = machine_state(scalar), machine_state(batched)
    assert a.keys() == b.keys()
    mismatched = [key for key in a if a[key] != b[key]]
    assert not mismatched, (
        f"{len(mismatched)} state entries diverge after {n} ticks, "
        f"first: {mismatched[0]!r} -> {a[mismatched[0]]} != {b[mismatched[0]]}"
    )


def populate(machine: SimMachine, count: int, *, spec_seed: int,
             events=EVENTS, **spawn_kwargs) -> None:
    for spec in synthetic.generate_specs(count, seed=spec_seed):
        proc = machine.spawn(spec.name, synthetic.build(spec, machine.arch, seed=11),
                             **spawn_kwargs)
        for event in events:
            machine.counters.open(event, proc.pid, 0)


class TestOversubscribed:
    """More runnable tasks than PUs: the memo caches' bread and butter."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("n", [1, 17, 60])
    def test_seeds_and_lengths(self, seed, n):
        def build():
            machine = SimMachine(
                NEHALEM, sockets=1, cores_per_socket=2, tick=0.1, seed=seed
            )
            populate(machine, 12, spec_seed=seed + 10)
            return machine

        assert_paths_equal(build, n)

    @pytest.mark.parametrize("tick", [0.05, 0.25, 1.0])
    def test_tick_sizes(self, tick):
        def build():
            machine = SimMachine(
                NEHALEM, sockets=1, cores_per_socket=2, tick=tick, seed=5
            )
            populate(machine, 10, spec_seed=2)
            return machine

        assert_paths_equal(build, 40)


class TestSchedulingShapes:
    def test_smt_corun_pinned_to_sibling_threads(self):
        """Two tasks forced onto one physical core's hardware threads
        (the paper's §3.4 taskset scenario) plus unpinned neighbours."""

        def build():
            machine = SimMachine(
                NEHALEM, sockets=1, cores_per_socket=2, tick=0.1, seed=9
            )
            specs = synthetic.generate_specs(6, seed=4)
            for i, spec in enumerate(specs):
                affinity = frozenset({0, 1}) if i < 2 else None
                proc = machine.spawn(
                    spec.name,
                    synthetic.build(spec, NEHALEM, seed=11),
                    affinity=affinity,
                )
                for event in EVENTS:
                    machine.counters.open(event, proc.pid, 0)
            return machine

        assert_paths_equal(build, 50)

    def test_duty_cycles_draw_identical_rng_streams(self):
        def build():
            machine = SimMachine(
                NEHALEM, sockets=1, cores_per_socket=2, tick=0.1, seed=3
            )
            populate(machine, 8, spec_seed=6, duty_cycle=0.6)
            return machine

        assert_paths_equal(build, 50)

    def test_multithreaded_and_nice(self):
        def build():
            machine = SimMachine(
                NEHALEM, sockets=1, cores_per_socket=2, tick=0.1, seed=13
            )
            specs = synthetic.generate_specs(5, seed=8)
            for i, spec in enumerate(specs):
                proc = machine.spawn(
                    spec.name,
                    synthetic.build(spec, NEHALEM, seed=11),
                    nthreads=1 + i % 3,
                    nice=(i % 3) - 1,
                )
                for event in EVENTS:
                    machine.counters.open(event, proc.pid, 0)
            return machine

        assert_paths_equal(build, 45)


class TestCounterModes:
    def test_sampling_mode_counters(self):
        """Sampling counters draw from the table RNG; draw order and
        carry arithmetic must survive batching."""

        def build():
            machine = SimMachine(
                NEHALEM, sockets=1, cores_per_socket=2, tick=0.1, seed=21
            )
            specs = synthetic.generate_specs(6, seed=5)
            for spec in specs:
                proc = machine.spawn(
                    spec.name, synthetic.build(spec, NEHALEM, seed=11)
                )
                machine.counters.open(
                    Event.INSTRUCTIONS, proc.pid, 0, sample_period=100_000
                )
                machine.counters.open(Event.CYCLES, proc.pid, 0)
            return machine

        assert_paths_equal(build, 50)

    def test_multiplexing_beyond_pmu_width(self):
        """With pmu_width=2 and three counters per task the rotation
        window moves every tick — including the batched idle bump."""
        narrow = replace(NEHALEM, pmu_width=2)

        def build():
            machine = SimMachine(
                narrow, sockets=1, cores_per_socket=2, tick=0.1, seed=17
            )
            populate(machine, 9, spec_seed=7)
            return machine

        assert_paths_equal(build, 50)


class TestTimersAndLifecycles:
    def test_timers_spawn_and_kill_mid_run(self):
        def build():
            machine = SimMachine(
                NEHALEM, sockets=1, cores_per_socket=2, tick=0.1, seed=29
            )
            populate(machine, 6, spec_seed=9)
            victim = next(iter(machine.processes))
            extra = synthetic.generate_specs(8, seed=12)[-1]

            def arrive():
                proc = machine.spawn(
                    "latecomer", synthetic.build(extra, NEHALEM, seed=11)
                )
                for event in EVENTS:
                    machine.counters.open(event, proc.pid, 0)

            machine.at(1.05, arrive)
            machine.at(2.35, lambda: machine.kill(victim))
            return machine

        assert_paths_equal(build, 40)

    def test_timer_kills_and_respawns_at_same_boundary(self):
        """One timer instant kills a task and spawns its replacement.

        The ``synced`` arrears bookkeeping is the edge here: the dead
        task's counters must be brought current *before* the callback runs
        (the kill freezes them mid-batch), and the replacement — ingested
        at the same batch index the victim vacated — must start its
        arrears at the current tick, not at zero, or ``advance_idle``
        would fold phantom idle ticks into its fresh counters.
        """

        def build():
            machine = SimMachine(
                NEHALEM, sockets=1, cores_per_socket=2, tick=0.1, seed=53
            )
            populate(machine, 5, spec_seed=21)
            victim = next(iter(machine.processes))
            spec = synthetic.generate_specs(9, seed=33)[-1]

            def churn():
                machine.kill(victim)
                proc = machine.spawn(
                    "respawn", synthetic.build(spec, NEHALEM, seed=11)
                )
                for event in EVENTS:
                    machine.counters.open(event, proc.pid, 0)

            machine.at(1.5, churn)
            # A second churn deeper into the batch: arrears are larger and
            # the replacement's tid reuses nothing (tids are monotonic).
            machine.at(3.1, lambda: machine.kill(1001))
            return machine

        assert_paths_equal(build, 60)

    def test_workloads_complete_and_reap(self):
        """Short-budget workloads finish mid-batch; dead tasks must
        freeze their counters at the same instant on both paths."""

        def build():
            machine = SimMachine(
                NEHALEM, sockets=1, cores_per_socket=2, tick=0.25, seed=31
            )
            populate(machine, 8, spec_seed=14)
            return machine

        # Long enough that some synthetic workloads run to completion.
        assert_paths_equal(build, 200)


class TestInterleaving:
    def test_batched_and_scalar_interleave(self):
        def build():
            machine = SimMachine(
                NEHALEM, sockets=1, cores_per_socket=2, tick=0.1, seed=37
            )
            populate(machine, 10, spec_seed=3)
            return machine

        scalar = build()
        mixed = build()
        for _ in range(30):
            scalar._step(scalar.tick)
        mixed.run_ticks(11)
        for _ in range(5):
            mixed._step(mixed.tick)
        mixed.run_ticks(14)
        a, b = machine_state(scalar), machine_state(mixed)
        assert a == b

    def test_zero_and_negative(self):
        machine = SimMachine(NEHALEM, tick=0.1, seed=1)
        before = machine_state(machine)
        machine.run_ticks(0)
        assert machine_state(machine) == before
        with pytest.raises(Exception):
            machine.run_ticks(-1)
