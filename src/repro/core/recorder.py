"""Time-series capture of sampled metrics.

The paper's figures are all time series of per-interval metrics (IPC every
5 s, misses per 100 instructions every 10 s...). :class:`Recorder`
accumulates :class:`~repro.core.frame.SnapshotFrame` blocks — one per
snapshot — and exposes exactly the series the figures plot, computed with
numpy masks over concatenated columns rather than per-sample Python loops:
by pid, by command, against time or against cumulative instructions
(Fig. 8's x-axis).

The legacy :class:`Sample` surface is kept as an adapter:
``recorder.samples`` materialises (and caches) the same flat sample list
the old recorder stored, and ``Recorder(samples=[...])`` lifts such a list
back into frames, so existing call sites and tests are unchanged.

CSV persistence round-trips losslessly through the frames: counter deltas,
NaN metric cells, non-ASCII command names, tids/uids/processors and the
screen column layout all survive ``to_csv`` -> ``from_csv`` bit-for-bit
(floats are serialised with ``repr``). The reader also accepts the older
five-fixed-columns format that carried deltas only.
"""

from __future__ import annotations

import csv
import io
import math
from dataclasses import dataclass

import numpy as np

from repro.core.frame import INTRINSIC_KINDS, SnapshotFrame
from repro.core.sampler import Snapshot

_FIXED = ["time", "pid", "comm", "user", "cpu_pct"]
_EXTENDED = ["tid", "uid", "cpu_time", "processor", "interval"]
_METRIC_PREFIX = "value:"
_LABEL_PREFIX = "label:"
_COLSPEC = "screen_columns"


@dataclass(frozen=True)
class Sample:
    """One (task, interval) measurement."""

    time: float
    pid: int
    comm: str
    user: str
    cpu_pct: float
    deltas: dict[str, float]
    values: dict[str, float | str | int]


class Recorder:
    """Accumulates snapshot frames; serves series from columnar storage.

    Args:
        samples: optional legacy flat sample list to lift into frames
            (consecutive samples with equal timestamps group into one
            frame).
    """

    def __init__(self, samples: list[Sample] | None = None) -> None:
        self._frames: list[SnapshotFrame] = []
        self._samples_cache: list[Sample] | None = None
        self._index: _Index | None = None
        if samples:
            self._frames.extend(_frames_from_samples(samples))

    # -- ingestion ----------------------------------------------------------
    def record(self, snapshot: Snapshot) -> None:
        """Fold one snapshot in (uses its frame; lifts rows if absent)."""
        frame = snapshot.frame
        if frame is None:
            frame = SnapshotFrame.from_rows(
                snapshot.time, snapshot.interval, snapshot.rows
            )
        self.record_frame(frame)

    def record_frame(self, frame: SnapshotFrame) -> None:
        """Fold one columnar frame in (empty frames are dropped)."""
        if len(frame) == 0:
            return
        self._frames.append(frame)
        self._samples_cache = None
        self._index = None

    # -- legacy adapter surface ---------------------------------------------
    @property
    def frames(self) -> list[SnapshotFrame]:
        """The recorded frames, in record order."""
        return list(self._frames)

    @property
    def samples(self) -> list[Sample]:
        """Flat per-task samples (materialised from the frames, cached)."""
        if self._samples_cache is None:
            flat: list[Sample] = []
            for frame in self._frames:
                flat.extend(_samples_from_frame(frame))
            self._samples_cache = flat
        return self._samples_cache

    def pids(self) -> list[int]:
        """All pids seen, sorted."""
        return sorted(set(self._get_index().pids.tolist()))

    def for_pid(self, pid: int) -> list[Sample]:
        """Samples of one process in time order."""
        return [s for s in self.samples if s.pid == pid]

    def for_command(self, comm: str) -> list[Sample]:
        """Samples of all processes with this command name."""
        return [s for s in self.samples if s.comm == comm]

    # -- columnar queries ---------------------------------------------------
    def _get_index(self) -> "_Index":
        if self._index is None:
            self._index = _Index(self._frames)
        return self._index

    def series(
        self, pid: int, header: str, *, drop_nan: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        """(times, values) of one derived column for one pid."""
        idx = self._get_index()
        values, present = idx.metric(header)
        mask = (idx.pids == pid) & present
        if drop_nan:
            mask = mask & ~np.isnan(values)
        return idx.times[mask], values[mask]

    def series_vs_instructions(
        self, pid: int, header: str
    ) -> tuple[np.ndarray, np.ndarray]:
        """(cumulative instructions, values) — Fig. 8's x-axis.

        Requires the screen to have counted ``instructions``.
        """
        idx = self._get_index()
        mask = idx.pids == pid
        instr = idx.events.get("instructions")
        if instr is None:
            totals = np.zeros(int(mask.sum()))
        else:
            totals = np.cumsum(instr[mask])
        values, present = idx.metric(header)
        picked = values[mask]
        ok = present[mask] & ~np.isnan(picked)
        return totals[ok], picked[ok]

    def mean(self, pid: int, header: str) -> float:
        """Time-average of a derived column for one pid (NaN if empty)."""
        _, values = self.series(pid, header)
        return float(np.mean(values)) if len(values) else math.nan

    def total_delta(self, pid: int, event_name: str) -> float:
        """Sum of an event's deltas over the whole recording."""
        idx = self._get_index()
        column = idx.events.get(event_name)
        if column is None:
            return 0.0
        return float(column[idx.pids == pid].sum())

    # -- persistence --------------------------------------------------------
    def to_csv(self) -> str:
        """Serialise the recording as CSV (one line per task-interval).

        Columns: the five legacy fixed columns (time, pid, comm, user,
        cpu_pct), every counter delta (union across frames, sorted), the
        extended identity columns (tid, uid, cpu_time, processor,
        interval), one ``value:<header>`` column per derived metric, one
        ``label:<header>`` column per string column, and finally the
        per-frame screen layout. Floats are written with ``repr`` so the
        round trip is lossless, including NaN cells; the csv module quotes
        commas and preserves non-ASCII command names.
        """
        events = sorted({name for f in self._frames for name in f.deltas})
        metric_headers = sorted({h for f in self._frames for h in f.metrics})
        label_headers = sorted({h for f in self._frames for h in f.labels})
        header = [
            *_FIXED,
            *events,
            *_EXTENDED,
            *(_METRIC_PREFIX + h for h in metric_headers),
            *(_LABEL_PREFIX + h for h in label_headers),
            _COLSPEC,
        ]
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(header)
        for f in self._frames:
            colspec = ";".join(f"{kind}:{name}" for name, kind in f.columns)
            for i in range(len(f)):
                row = [
                    repr(f.time),
                    str(int(f.pids[i])),
                    f.comms[i],
                    f.users[i],
                    repr(float(f.cpu_pct[i])),
                ]
                for e in events:
                    col = f.deltas.get(e)
                    row.append(repr(float(col[i])) if col is not None else "0.0")
                row.extend(
                    [
                        str(int(f.tids[i])),
                        str(int(f.uids[i])),
                        repr(float(f.cpu_time[i])),
                        str(int(f.processors[i])),
                        repr(f.interval),
                    ]
                )
                for h in metric_headers:
                    col = f.metrics.get(h)
                    row.append(repr(float(col[i])) if col is not None else "")
                for h in label_headers:
                    col = f.labels.get(h)
                    row.append(col[i] if col is not None else "")
                row.append(colspec)
                writer.writerow(row)
        return buffer.getvalue()

    @classmethod
    def from_csv(cls, text: str) -> "Recorder":
        """Rebuild a recording from :meth:`to_csv` output.

        Also accepts the legacy format (five fixed columns plus deltas
        only); such rows group into frames by equal consecutive
        timestamps with zero intervals and unknown tids/uids/processors.

        Raises:
            ValueError: malformed header or rows.
        """
        rows = [r for r in csv.reader(io.StringIO(text)) if r]
        if not rows:
            return cls()
        header = rows[0]
        if header[: len(_FIXED)] != _FIXED:
            raise ValueError(f"unexpected CSV header {header[:5]}")
        for row in rows[1:]:
            if len(row) != len(header):
                raise ValueError(f"row arity mismatch: {','.join(row)!r}")
        recorder = cls()
        if header[-1] == _COLSPEC:
            recorder._frames.extend(_frames_from_extended_csv(header, rows[1:]))
        else:
            events = header[len(_FIXED):]
            samples = [
                Sample(
                    time=float(row[0]),
                    pid=int(row[1]),
                    comm=row[2],
                    user=row[3],
                    cpu_pct=float(row[4]),
                    deltas={
                        e: float(v)
                        for e, v in zip(events, row[len(_FIXED):])
                    },
                    values={},
                )
                for row in rows[1:]
            ]
            recorder._frames.extend(_frames_from_samples(samples))
        return recorder


class _Index:
    """Concatenated columns over a frame list (built lazily, cached)."""

    def __init__(self, frames: list[SnapshotFrame]) -> None:
        self._frames = frames
        n = sum(len(f) for f in frames)
        if frames:
            self.times = np.concatenate(
                [np.full(len(f), f.time) for f in frames]
            )
            self.pids = np.concatenate([f.pids for f in frames])
        else:
            self.times = np.empty(0)
            self.pids = np.empty(0, dtype=np.int64)
        event_names: list[str] = []
        for f in frames:
            for name in f.deltas:
                if name not in event_names:
                    event_names.append(name)
        self.events = {
            name: np.concatenate(
                [
                    f.deltas.get(name, np.zeros(len(f)))
                    for f in frames
                ]
            )
            if frames
            else np.empty(0)
            for name in event_names
        }
        self._n = n
        self._metric_cache: dict[str, tuple[np.ndarray, np.ndarray]] = {}

    def metric(self, header: str) -> tuple[np.ndarray, np.ndarray]:
        """(values, present) for one numeric column across all frames.

        ``present`` is False where a frame does not carry the column (the
        old per-sample ``values.get(header)`` miss), NaN cells stay NaN.
        """
        cached = self._metric_cache.get(header)
        if cached is not None:
            return cached
        values_parts: list[np.ndarray] = []
        present_parts: list[np.ndarray] = []
        for f in self._frames:
            column = f.numeric_column(header)
            if column is None:
                values_parts.append(np.full(len(f), math.nan))
                present_parts.append(np.zeros(len(f), dtype=bool))
            else:
                values_parts.append(column)
                present_parts.append(np.ones(len(f), dtype=bool))
        if values_parts:
            result = (
                np.concatenate(values_parts),
                np.concatenate(present_parts),
            )
        else:
            result = (np.empty(0), np.empty(0, dtype=bool))
        self._metric_cache[header] = result
        return result


# -- Sample <-> frame adapters ----------------------------------------------
def _samples_from_frame(frame: SnapshotFrame) -> list[Sample]:
    event_names = tuple(frame.deltas)
    return [
        Sample(
            time=frame.time,
            pid=int(frame.pids[i]),
            comm=frame.comms[i],
            user=frame.users[i],
            cpu_pct=float(frame.cpu_pct[i]),
            deltas={name: float(frame.deltas[name][i]) for name in event_names},
            values={
                header: frame.value_at(header, kind, i)
                for header, kind in frame.columns
            },
        )
        for i in range(len(frame))
    ]


def _frames_from_samples(samples: list[Sample]) -> list[SnapshotFrame]:
    """Group consecutive equal-time samples into frames (order-preserving)."""
    frames: list[SnapshotFrame] = []
    group: list[Sample] = []
    for s in samples:
        if group and s.time != group[0].time:
            frames.append(_frame_from_group(group))
            group = []
        group.append(s)
    if group:
        frames.append(_frame_from_group(group))
    return frames


def _numeric_or(value, fallback: float) -> float:
    return float(value) if isinstance(value, (int, float)) else fallback


def _frame_from_group(group: list[Sample]) -> SnapshotFrame:
    n = len(group)
    columns: list[tuple[str, str]] = []
    for header, value in group[0].values.items():
        kind = INTRINSIC_KINDS.get(header)
        if kind is None:
            kind = "expr" if isinstance(value, (int, float)) else "label"
        columns.append((header, kind))
    event_names: list[str] = []
    for s in group:
        for name in s.deltas:
            if name not in event_names:
                event_names.append(name)
    metrics: dict[str, np.ndarray] = {}
    labels: dict[str, tuple[str, ...]] = {}
    for header, kind in columns:
        if kind == "expr":
            metrics[header] = np.fromiter(
                (
                    _numeric_or(s.values.get(header), math.nan)
                    for s in group
                ),
                dtype=float,
                count=n,
            )
        elif kind == "label":
            labels[header] = tuple(str(s.values.get(header, "")) for s in group)
    return SnapshotFrame(
        time=group[0].time,
        interval=0.0,
        pids=np.fromiter((s.pid for s in group), dtype=np.int64, count=n),
        tids=np.fromiter((s.pid for s in group), dtype=np.int64, count=n),
        uids=np.full(n, -1, dtype=np.int64),
        users=tuple(s.user for s in group),
        comms=tuple(s.comm for s in group),
        cpu_pct=np.fromiter((s.cpu_pct for s in group), dtype=float, count=n),
        cpu_time=np.fromiter(
            (_numeric_or(s.values.get("TIME+"), 0.0) for s in group),
            dtype=float,
            count=n,
        ),
        processors=np.fromiter(
            (int(_numeric_or(s.values.get("P"), -1)) for s in group),
            dtype=np.int64,
            count=n,
        ),
        deltas={
            name: np.fromiter(
                (s.deltas.get(name, 0.0) for s in group), dtype=float, count=n
            )
            for name in event_names
        },
        metrics=metrics,
        labels=labels,
        columns=tuple(columns),
    )


# -- extended CSV decoding ---------------------------------------------------
def _frames_from_extended_csv(
    header: list[str], rows: list[list[str]]
) -> list[SnapshotFrame]:
    n_fixed = len(_FIXED)
    split = None
    for i in range(n_fixed, len(header)):
        if header[i : i + len(_EXTENDED)] == _EXTENDED:
            split = i
            break
    if split is None:
        raise ValueError(f"CSV header lacks the extended columns {_EXTENDED}")
    events = header[n_fixed:split]
    tail = header[split + len(_EXTENDED) : -1]
    metric_headers = [
        h[len(_METRIC_PREFIX):] for h in tail if h.startswith(_METRIC_PREFIX)
    ]
    label_headers = [
        h[len(_LABEL_PREFIX):] for h in tail if h.startswith(_LABEL_PREFIX)
    ]

    frames: list[SnapshotFrame] = []
    group: list[list[str]] = []

    def group_key(row: list[str]) -> tuple[str, str, str]:
        return (row[0], row[split + 4], row[-1])  # time, interval, colspec

    def flush() -> None:
        if not group:
            return
        frames.append(
            _frame_from_csv_group(
                group, split, events, metric_headers, label_headers
            )
        )
        group.clear()

    for row in rows:
        if group and group_key(row) != group_key(group[0]):
            flush()
        group.append(row)
    flush()
    return frames


def _frame_from_csv_group(
    group: list[list[str]],
    split: int,
    events: list[str],
    metric_headers: list[str],
    label_headers: list[str],
) -> SnapshotFrame:
    n = len(group)
    colspec = group[0][-1]
    columns: tuple[tuple[str, str], ...] = ()
    if colspec:
        columns = tuple(
            (name, kind)
            for kind, name in (
                entry.split(":", 1) for entry in colspec.split(";")
            )
        )
    kinds = dict(columns)
    n_fixed = len(_FIXED)
    metric_base = split + len(_EXTENDED)
    metrics: dict[str, np.ndarray] = {}
    for j, h in enumerate(metric_headers):
        if kinds.get(h) != "expr":
            continue
        metrics[h] = np.fromiter(
            (float(row[metric_base + j]) for row in group), dtype=float, count=n
        )
    labels: dict[str, tuple[str, ...]] = {}
    label_base = metric_base + len(metric_headers)
    for j, h in enumerate(label_headers):
        # "health" columns (chaos mode's HEALTH) are string-valued and
        # round-trip through label storage like any other label.
        if kinds.get(h) not in ("label", "health"):
            continue
        labels[h] = tuple(row[label_base + j] for row in group)
    return SnapshotFrame(
        time=float(group[0][0]),
        interval=float(group[0][split + 4]),
        pids=np.fromiter((int(r[1]) for r in group), dtype=np.int64, count=n),
        tids=np.fromiter(
            (int(r[split]) for r in group), dtype=np.int64, count=n
        ),
        uids=np.fromiter(
            (int(r[split + 1]) for r in group), dtype=np.int64, count=n
        ),
        users=tuple(r[3] for r in group),
        comms=tuple(r[2] for r in group),
        cpu_pct=np.fromiter((float(r[4]) for r in group), dtype=float, count=n),
        cpu_time=np.fromiter(
            (float(r[split + 2]) for r in group), dtype=float, count=n
        ),
        processors=np.fromiter(
            (int(r[split + 3]) for r in group), dtype=np.int64, count=n
        ),
        deltas={
            e: np.fromiter(
                (float(r[n_fixed + j]) for r in group), dtype=float, count=n
            )
            for j, e in enumerate(events)
        },
        metrics=metrics,
        labels=labels,
        columns=columns,
    )
