"""perf_event substrate: the Linux counter API, real and simulated.

Tiptop is built on the ``perf_event_open(2)`` system call (§2.1/§2.3). This
package provides:

* :mod:`repro.perf.abi` — the ``perf_event_attr`` structure and constants,
  faithful to ``linux/perf_event.h``.
* :mod:`repro.perf.syscall` — the real backend (ctypes syscall + read +
  ioctls), used when the kernel exposes a PMU.
* :mod:`repro.perf.simbackend` — the same API over a
  :class:`~repro.sim.machine.SimMachine` (this container has no PMU:
  ``perf_event_open`` returns ENOENT, so all experiments run here).
* :mod:`repro.perf.events` — portable event names and per-architecture
  resolution (generic events vs vendor-manual raw events, §2.2).
* :mod:`repro.perf.counter` — high-level ``Counter``/``CounterGroup``
  objects with delta reads and multiplex scaling.
* :mod:`repro.perf.faults` — seeded, replayable fault-injection plans
  (ESRCH/EMFILE/EINTR/EAGAIN, corrupt reads, multiplex starvation) the
  sim backend executes natively, so every robustness claim has a
  deterministic test.
"""

from repro.perf.counter import Backend, Counter, CounterGroup, Reading
from repro.perf.events import EventSpec, resolve_event
from repro.perf.faults import FaultPlan, FaultSpec, default_specs
from repro.perf.simbackend import SimBackend
from repro.perf.syscall import RealBackend, kernel_supports_perf_events

__all__ = [
    "Backend",
    "Counter",
    "CounterGroup",
    "EventSpec",
    "FaultPlan",
    "FaultSpec",
    "Reading",
    "RealBackend",
    "SimBackend",
    "default_specs",
    "kernel_supports_perf_events",
    "resolve_event",
]
