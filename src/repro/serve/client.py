"""The thin subscriber side of the collector/client split.

:class:`ServeClient` performs the handshake, then yields ``(seq, frame)``
pairs exactly as the daemon published them — the frame object is rebuilt
bitwise from the column block, so everything downstream of the solo
pipeline (screen rendering, the CSV recorder, analysis) runs unchanged
on served frames. The client checks what the protocol guarantees:
sequence numbers strictly increase, and a gap after a resume means
frames aged out of the daemon's retention (reported, not invented).

With ``reconnect=True`` a cut connection (reset, mid-message EOF, a
clean EOF that never carried the server's BYE) is survived instead of
surfaced: the client redials on a shared
:class:`~repro.util.backoff.BackoffPolicy` ladder and resumes from its
last fully received sequence, so the reassembled stream is bitwise
identical to an uninterrupted subscriber's — or, when the daemon's
retention ring rotated past the resume point while the link was down, a
typed :class:`~repro.errors.ResumeGapError` says exactly which frames
are gone rather than silently splicing a lossy stream.
"""

from __future__ import annotations

import asyncio

from repro.core.frame import SnapshotFrame
from repro.errors import (
    ResumeGapError,
    SessionError,
    WireError,
    WireSequenceError,
)
from repro.serve import protocol
from repro.serve.session import Subscription
from repro.serve.stream import MessageStream
from repro.util.backoff import BackoffPolicy

#: Distinguishes "resume from None" (fresh stream) from "not given".
_UNSET = object()


class ServeClient:
    """One subscription to a collector daemon.

    Attributes (populated as the stream progresses):
        hello: the server's HELLO body (version, events, columns,
            retained range, next sequence).
        bye: the server's BYE body — per-client accounting — once the
            stream ends (None if the connection died without one).
        last_seq: highest sequence received (-1 before the first frame).
        gaps: count of sequence discontinuities observed (non-zero only
            after drops or a resume past retention).
        reconnects: redials performed (0 on an uninterrupted stream).

    Args (beyond the obvious):
        reconnect: survive cut connections by redialing and resuming
            from ``last_seq`` (False keeps the old die-on-cut shape).
        backoff: retry ladder shared with the grid supervisor (None =
            the stock :class:`~repro.util.backoff.BackoffPolicy`).
        max_reconnects: total redial budget for the stream's lifetime —
            outages and failed dials both count — before giving up with
            :class:`~repro.errors.SessionError`.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        client_id: str | None = None,
        subscription: Subscription | None = None,
        resume_from: int | None = None,
        reconnect: bool = False,
        backoff: BackoffPolicy | None = None,
        max_reconnects: int = 8,
    ) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self.subscription = subscription or Subscription()
        self.resume_from = resume_from
        self.reconnect = reconnect
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.max_reconnects = max_reconnects
        self.hello: dict | None = None
        self.bye: dict | None = None
        #: Next sequence promised by the FIRST HELLO — the resume floor
        #: for a client cut before it received any frame at all.
        self._first_seq: int | None = None
        self.last_seq = -1
        self.gaps = 0
        self.reconnects = 0
        self._stream: MessageStream | None = None

    async def connect(
        self, *, resume_from: object = _UNSET, takeover: bool = False
    ) -> dict:
        """Dial, handshake, subscribe; returns the server's HELLO body.

        ``resume_from`` overrides the constructor's resume point for
        this dial (the reconnect path passes ``last_seq`` here).
        ``takeover`` claims the client id even if the server still
        holds a session for it — the redial-after-cut case, where the
        old connection is dead but its handler may not have unwound
        yet. Without the claim a duplicate id is rejected.

        Raises :class:`~repro.errors.SessionError` when the server
        rejects the subscription (its BYE ``error`` becomes the message).
        """
        resume = (
            self.resume_from if resume_from is _UNSET else resume_from
        )
        hello: dict = {"client": self.client_id, "resume": resume}
        if takeover:
            hello["takeover"] = True
        reader, writer = await asyncio.open_connection(self.host, self.port)
        self._stream = MessageStream(reader, writer)
        self._stream.send(
            protocol.encode_control(protocol.MSG_HELLO, hello)
        )
        self._stream.send(
            protocol.encode_control(
                protocol.MSG_SUBSCRIBE, self.subscription.to_dict()
            )
        )
        await self._stream.drain()
        msg = await self._stream.recv()
        if msg is None or msg[0] != protocol.MSG_HELLO:
            raise SessionError("server did not answer HELLO")
        self.hello = msg[1]
        if self._first_seq is None:
            self._first_seq = int(self.hello.get("seq", 0))
        return self.hello

    async def frames(self):
        """Async iterator of ``(seq, frame)`` until the server's BYE.

        An early server BYE carrying ``error`` raises
        :class:`~repro.errors.SessionError`; a connection that dies
        mid-message propagates the transport's
        :class:`~repro.errors.WireError` — unless ``reconnect`` is on,
        in which case the client redials, resumes from ``last_seq``,
        and the iterator keeps yielding as if the cut never happened.
        A duplicated or reordered delivery raises
        :class:`~repro.errors.WireSequenceError`.
        """
        if self._stream is None:
            raise SessionError("not connected")
        if self.resume_from is not None:
            self.last_seq = self.resume_from
        while True:
            try:
                msg = await self._stream.recv()
            except (WireError, ConnectionError, OSError):
                if not self.reconnect:
                    raise
                await self._reconnect()
                continue
            if msg is None:
                # EOF between messages. Without the server's BYE this
                # is a cut, not an ending — the daemon always accounts
                # for a stream it finished.
                if self.reconnect and self.bye is None:
                    await self._reconnect()
                    continue
                break
            msg_type, obj = msg
            if msg_type == protocol.MSG_BYE:
                self.bye = obj
                if "error" in obj:
                    raise SessionError(str(obj["error"]))
                break
            if msg_type != protocol.MSG_FRAME:
                raise SessionError(f"unexpected message type {msg_type}")
            seq, frame = obj
            if seq <= self.last_seq:
                raise WireSequenceError(
                    f"sequence went backwards: {seq} after {self.last_seq}",
                    expected=self.last_seq + 1,
                    actual=seq,
                )
            if self.last_seq >= 0 and seq != self.last_seq + 1:
                self.gaps += 1
            self.last_seq = seq
            yield seq, frame

    async def _reconnect(self) -> None:
        """Redial and resume after a cut, on the backoff ladder.

        Raises :class:`~repro.errors.ResumeGapError` when the server's
        HELLO shows the retention ring rotated past our resume point
        (the stream can no longer be reassembled exactly), and
        :class:`~repro.errors.SessionError` when the redial budget is
        exhausted.
        """
        await self.close()
        if self.last_seq >= 0:
            resume = self.last_seq
        elif self.resume_from is not None:
            resume = self.resume_from
        elif self._first_seq is not None:
            # Cut before the first frame arrived: resume from the
            # position the original HELLO promised, not from "live" —
            # the daemon may have published the whole backlog since.
            resume = self._first_seq - 1
        else:
            resume = None
        attempt = 0
        while True:
            self.reconnects += 1
            if self.reconnects > self.max_reconnects:
                raise SessionError(
                    f"gave up after {self.max_reconnects} reconnects "
                    f"(last seq {self.last_seq})"
                )
            attempt += 1
            delay = self.backoff.delay(attempt)
            if delay:
                await asyncio.sleep(delay)
            try:
                hello = await self.connect(resume_from=resume, takeover=True)
            except (ConnectionError, OSError):
                continue  # server not back yet: climb the ladder
            break
        if resume is not None:
            retained = hello.get("retained")
            oldest = retained[0] if retained else hello["seq"]
            if oldest > resume + 1:
                raise ResumeGapError(
                    f"retention rotated past resume: asked to resume "
                    f"after {resume}, oldest retained is {oldest}",
                    requested=resume,
                    oldest=oldest,
                )

    async def leave(self) -> None:
        """Tell the server we are done (it answers with accounting)."""
        if self._stream is not None:
            try:
                self._stream.send(
                    protocol.encode_control(protocol.MSG_BYE, {})
                )
                await self._stream.drain()
            except (ConnectionError, OSError):
                pass  # the link died first; closing is all that is left

    async def close(self) -> None:
        if self._stream is not None:
            await self._stream.close()
            self._stream = None


async def collect(
    host: str,
    port: int,
    *,
    client_id: str | None = None,
    subscription: Subscription | None = None,
    resume_from: int | None = None,
    limit: int | None = None,
    reconnect: bool = False,
    backoff: BackoffPolicy | None = None,
    max_reconnects: int = 8,
) -> tuple[list[tuple[int, SnapshotFrame]], ServeClient]:
    """Subscribe and gather the whole stream (or the first ``limit``
    frames); returns the frames plus the client for its accounting."""
    client = ServeClient(
        host,
        port,
        client_id=client_id,
        subscription=subscription,
        resume_from=resume_from,
        reconnect=reconnect,
        backoff=backoff,
        max_reconnects=max_reconnects,
    )
    await client.connect()
    received: list[tuple[int, SnapshotFrame]] = []
    left = False
    try:
        async for seq, frame in client.frames():
            if limit is None or len(received) < limit:
                received.append((seq, frame))
            if limit is not None and len(received) >= limit and not left:
                left = True  # keep reading: in-flight frames, then BYE
                await client.leave()
    except WireError:
        pass  # a dead daemon ends the stream; accounting stays partial
    finally:
        await client.close()
    return received, client
