"""The data-center grid of §3.4: nodes, queues, and an SGE-like dispatcher.

The paper's environment: "about 100 nodes. Each node is a bi-Intel Xeon.
Configurations include dual-cores and quad-cores, and clock frequencies
range from 1.6 GHz to 3.4 GHz... The scheduler is based on Sun Grid Engine
6.2u5. It defines sixteen queues for jobs of different wall-clock run time,
memory requirements, and urgency (ASAP vs. overnight). Jobs are spawned in
order in each queue, the number of concurrently running jobs is limited by
the number of logical cores of each node... heuristics apply, such as
increasing priority of short running processes, dedicating some nodes for
long running tasks... A sensible rule of thumb is to load a node with as
many jobs as there are logical cores, and to keep memory usage below the
available physical memory."

:class:`Grid` implements exactly that: heterogeneous :class:`SimMachine`
nodes sharing one virtual clock, FIFO queues with priorities, per-node
logical-core and memory admission limits, wall-clock kill, and node
dedication. Tiptop attaches to any node via ``SimHost(grid.node(i))`` —
which is how Figures 1 and 10 were captured in production.

Execution is delegated to an engine from :mod:`repro.sim.parallel`. Nodes
only couple through the dispatcher, and the dispatcher only has work when
a job arrives or a slot frees, so the grid advances the whole fleet in
**dispatch epochs**: the span to the next wallclock-kill boundary or the
earliest *possible* job exit (a sound lower bound from the CPI model) runs
in one batched :meth:`SimMachine.run_ticks` call per node — or one message
round-trip per worker shard with ``workers=N``. Job states, finish times
and per-node counter tables are identical across engines.
"""

from __future__ import annotations

import itertools
import math
import sys
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import SimulationError
from repro.sim.arch import ArchModel, WESTMERE_E5640
from repro.sim.machine import SimMachine
from repro.sim.parallel import (
    TRANSPORT_NAMES,
    PreemptCmd,
    SpawnCmd,
    create_engine,
    workload_exit_lb,
)
from repro.sim.process import SimProcess
from repro.sim.workload import Workload

if TYPE_CHECKING:
    from repro.sim.netchaos import NetChaosPlan
    from repro.sim.supervisor import GridFaultPlan, Supervision


@dataclass(frozen=True)
class QueueSpec:
    """One submission queue.

    Attributes:
        name: queue name ("short-2g-asap").
        max_wallclock: job kill limit in seconds (inf = none).
        memory_limit: per-job memory in bytes.
        priority: higher dispatches first (the paper's short-job boost).
        dedicated_only: jobs of this queue may only run on nodes dedicated
            to it (long-running queues get their own nodes).
        preempting: when no slot is free, a job in this queue may evict a
            strictly lower-priority running job (compared on
            ``(queue priority, job priority)``); the victim is requeued
            and redispatched later. Off by default — the stock SGE
            layout never preempts.
    """

    name: str
    max_wallclock: float
    memory_limit: int
    priority: int = 0
    dedicated_only: bool = False
    preempting: bool = False


def sge_queues() -> list[QueueSpec]:
    """The sixteen-queue layout: wallclock x memory x urgency.

    Four wall-clock classes, two memory classes, two urgencies. Shorter
    queues get higher priority (the paper's heuristic); the 'eternal'
    queues are dedicated-node only.
    """
    queues = []
    wallclocks = [
        ("short", 3600.0, 3),
        ("day", 12 * 3600.0, 2),
        ("long", 48 * 3600.0, 1),
        ("eternal", float("inf"), 0),
    ]
    memories = [("2g", 2 * 1024**3), ("8g", 8 * 1024**3)]
    urgencies = [("asap", 1), ("overnight", 0)]
    for wname, wlimit, wprio in wallclocks:
        for mname, mbytes in memories:
            for uname, uprio in urgencies:
                queues.append(
                    QueueSpec(
                        name=f"{wname}-{mname}-{uname}",
                        max_wallclock=wlimit,
                        memory_limit=mbytes,
                        priority=2 * wprio + uprio,
                        dedicated_only=(wname == "eternal"),
                    )
                )
    return queues


@dataclass(frozen=True)
class NodeSpec:
    """One node's configuration.

    The paper's fleet mixes dual/quad-core bi-Xeons at 1.6-3.4 GHz.
    """

    name: str
    arch: ArchModel = WESTMERE_E5640
    sockets: int = 2
    cores_per_socket: int = 4
    memory_bytes: int = 24 * 1024**3
    dedicated_queue: str | None = None

    @property
    def n_pus(self) -> int:
        """Logical cores, derivable without building the machine (the
        sharded engine's nodes live in worker processes)."""
        return self.sockets * self.cores_per_socket * self.arch.smt_per_core


@dataclass
class Job:
    """A submitted job.

    Attributes:
        job_id: grid-assigned id.
        name: command name.
        user: owner.
        workload: what it runs.
        queue: target queue name.
        memory_bytes: declared memory need (admission only).
        submitted_at: submission time.
        process: the spawned process, when it lives in this process
            (legacy/serial engines; None under the sharded engine, whose
            processes live in workers — use ``pid``).
        pid: pid on the target node once dispatched.
        node: the node name it landed on.
        started_at / finished_at: dispatch / completion times (a
            preempted job's ``started_at`` is its most recent dispatch).
        killed: True when the wall-clock limit fired.
        priority: within-queue job priority (higher dispatches first;
            ties break FIFO by job id).
        preemptions: times this job was evicted by a preempting queue.
    """

    job_id: int
    name: str
    user: str
    workload: Workload
    queue: str
    memory_bytes: int
    submitted_at: float
    process: SimProcess | None = None
    pid: int | None = None
    node: str | None = None
    started_at: float | None = None
    finished_at: float | None = None
    killed: bool = False
    priority: int = 0
    preemptions: int = 0

    @property
    def state(self) -> str:
        """pending / running / done."""
        if self.started_at is None:
            return "pending"
        if self.finished_at is not None:
            return "done"
        if self.process is not None and not self.process.alive:
            return "done"
        return "running"


class Grid:
    """A fleet of simulated nodes behind an SGE-like dispatcher.

    Args:
        node_specs: the fleet (defaults to a small mixed fleet).
        queues: queue layout (defaults to the sixteen SGE queues).
        tick: node scheduler tick.
        seed: base seed (each node gets seed+index).
        workers: 1 (default) runs every node in-process through the
            epoch-batched serial engine; N > 1 shards the fleet over N
            persistent worker processes under supervision.
        engine: explicit engine override ("legacy", "serial", "sharded",
            "supervised", "fleet"); None derives it — "fleet" when
            ``hosts`` is given, "supervised" when workers/chaos/
            supervision/transport ask for worker processes, "serial"
            otherwise (worker processes are only trusted behind the
            supervision tree; "sharded" remains as the unsupervised
            baseline). "legacy" is the pre-epoch per-tick loop, kept as
            the reference and benchmark baseline.
        profile: print per-epoch engine timings, message counts, wire
            bytes and RateCache statistics to stderr (plus restart/
            replay/degrade counters under the supervised engines).
        grid_chaos: seeded worker-fault injection — an int seed (stock
            fault mix) or a prebuilt
            :class:`~repro.sim.supervisor.GridFaultPlan`. Requires (and
            defaults the engine to) "supervised".
        supervision: :class:`~repro.sim.supervisor.Supervision` policy
            override for the supervised engines.
        transport: how shards talk to workers — "inproc" (serial,
            zero-copy), "fork" (multiprocessing pipes, the default) or
            "socket" (length-prefixed binary frames over a persistent
            socket per worker). A pure performance knob: digests are
            transport-invariant.
        hosts: partition the worker pool into this many host groups,
            each a full supervised engine under fleet-level supervision
            (host death resurrects the whole group by journal replay).
            Implies the "fleet" engine.
        net_chaos: seeded network-fault injection on the shard links —
            an int seed (stock partition/drop/half-open/duplicate/delay
            mix) or a prebuilt :class:`~repro.sim.netchaos.NetChaosPlan`.
            Requires (and defaults the engine to) "supervised": the
            recovery ladder plus epoch fencing is what keeps digests
            bitwise-equal under message loss.
    """

    def __init__(
        self,
        node_specs: list[NodeSpec] | None = None,
        queues: list[QueueSpec] | None = None,
        *,
        tick: float = 1.0,
        seed: int = 1,
        workers: int = 1,
        engine: str | None = None,
        profile: bool = False,
        grid_chaos: "int | GridFaultPlan | None" = None,
        supervision: "Supervision | None" = None,
        transport: str | None = None,
        hosts: int | None = None,
        net_chaos: "int | NetChaosPlan | None" = None,
    ) -> None:
        self.queues = {
            q.name: q for q in (sge_queues() if queues is None else queues)
        }
        if not self.queues:
            raise SimulationError("a grid needs at least one queue")
        specs = node_specs if node_specs is not None else default_fleet()
        if not specs:
            raise SimulationError("a grid needs at least one node")
        if workers < 1:
            raise SimulationError(f"workers must be >= 1, got {workers}")
        self.specs = specs
        self._spec_by_name = {spec.name: spec for spec in specs}
        if len(self._spec_by_name) != len(specs):
            raise SimulationError("node names must be unique")
        chaos = grid_chaos
        if isinstance(chaos, int):
            from repro.sim.supervisor import GridFaultPlan

            chaos = GridFaultPlan.from_seed(chaos)
        netchaos = net_chaos
        if isinstance(netchaos, int):
            from repro.sim.netchaos import NetChaosPlan

            netchaos = NetChaosPlan.from_seed(netchaos)
        if transport is not None and transport not in TRANSPORT_NAMES:
            raise SimulationError(
                f"unknown shard transport {transport!r} "
                f"(have: {', '.join(TRANSPORT_NAMES)})"
            )
        if hosts is not None and hosts < 1:
            raise SimulationError(f"hosts must be >= 1, got {hosts}")
        if engine is None:
            if hosts is not None:
                engine = "fleet"
            elif (
                workers > 1
                or chaos is not None
                or netchaos is not None
                or supervision is not None
                or transport is not None
            ):
                engine = "supervised"
            else:
                engine = "serial"
        self.engine = create_engine(
            engine, specs, tick, seed, workers,
            chaos=chaos, supervision=supervision,
            transport=transport, hosts=hosts,
            net_chaos=netchaos,
        )
        self._legacy = self.engine.name == "legacy"
        self._pending: dict[str, list[Job]] = {
            name: [] for name in self.queues
        }
        self._jobs: list[Job] = []
        self._by_id: dict[int, Job] = {}
        self._ids = itertools.count(1)
        self.now = 0.0
        self.tick = tick
        self.seed = seed
        self.profile = profile
        # Epoch bookkeeping, all in *machine* time on the job's node:
        # where each node's clock stood after the last engine round-trip,
        # when each running job's wallclock kill comes due, and before
        # when each running job provably cannot exit.
        self._node_now: dict[str, float] = {spec.name: 0.0 for spec in specs}
        self._kill_due: dict[int, float] = {}
        self._exit_after: dict[int, float] = {}
        self._pending_cmds: list[SpawnCmd] = []
        self.stats: dict[str, Any] = {
            "epochs": 0,
            "ticks": 0,
            "messages": 0,
            "shard_wall": 0.0,
            "rate_cache_hits": 0,
            "rate_cache_misses": 0,
            "preemptions": 0,
            "bytes_sent": 0,
            "bytes_received": 0,
        }
        if self.engine.name in ("supervised", "fleet"):
            self.stats.update(
                restarts=0,
                replayed_epochs=0,
                adopted_shards=0,
                worker_failures=0,
                degraded=False,
            )
        if self.engine.name == "fleet":
            self.stats["host_restarts"] = 0

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Shut down worker processes (no-op for in-process engines)."""
        self.engine.close()

    def __enter__(self) -> "Grid":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- submission ----------------------------------------------------------
    def submit(
        self,
        name: str,
        workload: Workload,
        *,
        user: str = "user",
        queue: str,
        memory_bytes: int = 1 * 1024**3,
        priority: int = 0,
    ) -> Job:
        """Queue a job.

        Raises:
            SimulationError: unknown queue, or a memory request over the
                queue's limit.
        """
        spec = self.queues.get(queue)
        if spec is None:
            raise SimulationError(
                f"unknown queue {queue!r} (have: {sorted(self.queues)})"
            )
        if memory_bytes > spec.memory_limit:
            raise SimulationError(
                f"job {name!r} wants {memory_bytes} bytes; queue {queue} "
                f"caps at {spec.memory_limit}"
            )
        job = Job(
            job_id=next(self._ids),
            name=name,
            user=user,
            workload=workload,
            queue=queue,
            memory_bytes=memory_bytes,
            submitted_at=self.now,
            priority=priority,
        )
        self._pending[queue].append(job)
        self._jobs.append(job)
        self._by_id[job.job_id] = job
        return job

    # -- admission -----------------------------------------------------------
    def _node_load(self, node_name: str) -> tuple[int, int]:
        """(running jobs, committed memory) on one node."""
        running = [
            j for j in self._jobs
            if j.node == node_name and j.state == "running"
        ]
        return len(running), sum(j.memory_bytes for j in running)

    def _eligible_node(self, job: Job) -> str | None:
        queue = self.queues[job.queue]
        best: tuple[float, str] | None = None
        for spec in self.specs:
            if queue.dedicated_only and spec.dedicated_queue != job.queue:
                continue
            if not queue.dedicated_only and spec.dedicated_queue is not None:
                continue
            running, committed = self._node_load(spec.name)
            if running >= spec.n_pus:
                continue  # the rule of thumb: jobs <= logical cores
            if committed + job.memory_bytes > spec.memory_bytes:
                continue  # keep memory below physical
            load = running / spec.n_pus
            if best is None or load < best[0]:
                best = (load, spec.name)
        return best[1] if best else None

    def _dispatch(self) -> None:
        order = sorted(
            self.queues.values(), key=lambda q: q.priority, reverse=True
        )
        for queue in order:
            pending = self._pending[queue.name]
            while pending:
                # Highest job priority first; FIFO by id within a level
                # (priority 0 everywhere = the classic in-order queue).
                job = min(pending, key=lambda j: (-j.priority, j.job_id))
                node_name = self._eligible_node(job)
                if node_name is None and queue.preempting:
                    node_name = self._preempt_for(job, queue)
                if node_name is None:
                    break  # jobs are spawned in order within each queue
                pending.remove(job)
                job.node = node_name
                job.started_at = self.now
                if self._legacy:
                    machine = self.nodes[node_name]
                    job.process = machine.spawn(
                        job.name, job.workload, user=job.user
                    )
                    job.pid = job.process.pid
                    if queue.max_wallclock != float("inf"):
                        self._arm_wallclock_kill(job, queue.max_wallclock)
                    continue
                limit = (
                    queue.max_wallclock
                    if queue.max_wallclock != float("inf")
                    else None
                )
                self._pending_cmds.append(
                    SpawnCmd(
                        job_id=job.job_id,
                        node=node_name,
                        command=job.name,
                        user=job.user,
                        workload=job.workload,
                        wallclock_limit=limit,
                    )
                )
                # Epoch-boundary inputs, known at dispatch: the shard arms
                # the kill at machine.now + limit — the same float
                # expression computed here — and a fresh job cannot exit
                # before its whole workload's penalty-CPI floor elapses.
                node_now = self._node_now[node_name]
                if limit is not None:
                    self._kill_due[job.job_id] = node_now + limit
                spec = self._spec_by_name[node_name]
                lb = workload_exit_lb(spec.arch, job.workload)
                if lb is not None:
                    self._exit_after[job.job_id] = node_now + lb

    def _preempt_for(self, job: Job, queue: QueueSpec) -> str | None:
        """Evict one strictly weaker running job to make room for ``job``.

        A victim qualifies only when ``(its queue priority, its job
        priority)`` is strictly below the contender's pair — strict
        ordering is what rules out preempt-back cycles: every eviction
        chain descends the priority lattice, so it terminates. Among
        qualifying victims the weakest goes first, ties broken by most
        recent dispatch then highest job id (evicting the youngest loses
        the least completed work). Returns the freed node, or None.
        """
        best: tuple[tuple, Job] | None = None
        for spec in self.specs:
            if queue.dedicated_only and spec.dedicated_queue != job.queue:
                continue
            if not queue.dedicated_only and spec.dedicated_queue is not None:
                continue
            _, committed = self._node_load(spec.name)
            for victim in self._jobs:
                if victim.node != spec.name or victim.state != "running":
                    continue
                vq = self.queues[victim.queue]
                if not (
                    (vq.priority, victim.priority)
                    < (queue.priority, job.priority)
                ):
                    continue
                if (
                    committed - victim.memory_bytes + job.memory_bytes
                    > spec.memory_bytes
                ):
                    continue
                key = (
                    vq.priority, victim.priority,
                    -victim.started_at, -victim.job_id,
                )
                if best is None or key < best[0]:
                    best = (key, victim)
        if best is None:
            return None
        victim = best[1]
        node_name = victim.node
        self._preempt(victim)
        return node_name

    def _preempt(self, victim: Job) -> None:
        """Kill a running job's process and requeue the job as pending."""
        victim.preemptions += 1
        self.stats["preemptions"] += 1
        if self._legacy:
            if victim.process is not None and victim.process.alive:
                self.nodes[victim.node].kill(  # type: ignore[index]
                    victim.process.pid
                )
        else:
            # Rides the same epoch command list as spawns, in list order:
            # the shard evicts before the boundary's new spawns apply.
            self._pending_cmds.append(PreemptCmd(victim.job_id, victim.node))
        victim.process = None
        victim.pid = None
        victim.node = None
        victim.started_at = None
        self._kill_due.pop(victim.job_id, None)
        self._exit_after.pop(victim.job_id, None)
        self._pending[victim.queue].append(victim)

    def _arm_wallclock_kill(self, job: Job, limit: float) -> None:
        machine = self.nodes[job.node]  # type: ignore[index]
        # Capture the process at arm time: a preempted job's restart gets
        # a NEW process (possibly on another node) that this stale timer
        # must never touch.
        proc = job.process

        def kill() -> None:
            if proc is not None and proc.alive:
                machine.kill(proc.pid)
                if job.process is proc:
                    job.killed = True

        machine.at(machine.now + limit, kill)

    # -- time ------------------------------------------------------------------
    def run_for(self, seconds: float) -> None:
        """Advance every node in lockstep, dispatching as slots free up."""
        if self._legacy:
            remaining = seconds
            while remaining > 1e-12:
                step = min(self.tick, remaining)
                self._dispatch()
                for machine in self.nodes.values():
                    machine.run_for(step)
                self.now += step
                remaining -= step
                self._reap()
            self._dispatch()
            return

        # Same step ladder as the legacy loop: whole ticks by repeated
        # subtraction, then at most one fractional step.
        self._sync_node_now()
        remaining = seconds
        n_ticks = 0
        while remaining > 1e-12 and remaining >= self.tick:
            n_ticks += 1
            remaining -= self.tick
        frac = remaining if remaining > 1e-12 else 0.0
        while n_ticks > 0:
            self._dispatch()
            n = self._epoch_ticks(n_ticks)
            self._run_epoch(n, 0.0)
            n_ticks -= n
        if frac > 0.0:
            self._dispatch()
            self._run_epoch(0, frac)
        self._dispatch()
        if self._pending_cmds:
            # The trailing dispatch spawns immediately under the legacy
            # engine; flush with a zero-length epoch so end-of-run node
            # state is identical across engines.
            self._run_epoch(0, 0.0)

    def _sync_node_now(self) -> None:
        """Refresh machine clocks from in-process nodes (a tiptop attached
        via ``node()`` may have advanced one between runs)."""
        for name, machine in self.engine.nodes.items():
            self._node_now[name] = machine.now

    def _epoch_ticks(self, remaining: int) -> int:
        """Whole ticks the fleet may advance before the dispatcher could
        possibly have work.

        With an empty backlog, dispatch can have nothing to do until the
        run ends. Otherwise a slot can only free when a running job dies —
        at its wallclock-kill boundary (known exactly) or its natural exit
        (bounded below by the model's penalty-CPI floor) — so the epoch
        runs to the earliest such boundary. Over-conservative is harmless
        (the boundary dispatch is a no-op); the bound never overshoots.
        """
        if not any(self._pending.values()):
            return remaining
        bound = remaining
        for job in self._jobs:
            if job.state != "running":
                continue
            node_now = self._node_now[job.node]  # type: ignore[index]
            for due in (
                self._kill_due.get(job.job_id),
                self._exit_after.get(job.job_id),
            ):
                if due is None:
                    continue
                ticks = math.ceil((due - node_now) / self.tick - 1e-9)
                bound = min(bound, max(1, ticks))
        return max(1, min(bound, remaining))

    def _run_epoch(self, n_ticks: int, frac: float) -> None:
        """One engine round-trip: ship queued spawns, advance every shard
        by ``n_ticks`` whole ticks (plus ``frac``), merge the reports."""
        commands, self._pending_cmds = self._pending_cmds, []
        msgs_before = getattr(self.engine, "messages", 0)
        sent_before = getattr(self.engine, "bytes_sent", 0)
        recv_before = getattr(self.engine, "bytes_received", 0)
        t0 = time.perf_counter()
        reports = self.engine.advance(commands, n_ticks, frac)
        wall = time.perf_counter() - t0
        # The grid clock advances by the same repeated-addition ladder as
        # the legacy loop; boundary values are kept so finish times can be
        # backfilled bitwise-identically to the per-tick reaper.
        boundaries: list[float] = []
        for _ in range(n_ticks):
            self.now += self.tick
            boundaries.append(self.now)
        if frac > 1e-12:
            self.now += frac

        start_now: dict[str, float] = {}
        deaths: dict[int, float] = {}
        killed: set[int] = set()
        shard_walls: list[float] = []
        hits = misses = 0
        for rep in reports:
            start_now.update(rep["start_now"])
            self._node_now.update(rep["end_now"])
            for job_id, pid in rep["spawned"].items():
                job = self._by_id[job_id]
                job.pid = pid
                proc = self.engine.process_of(job_id)
                if proc is not None:
                    job.process = proc
            killed.update(rep["killed"])
            deaths.update(rep["deaths"])
            self._exit_after.update(rep["bounds"])
            shard_walls.append(rep["wall"])
            hits += rep["cache_hits"]
            misses += rep["cache_misses"]
        for job_id in killed:
            self._by_id[job_id].killed = True
        for job_id, observed in deaths.items():
            job = self._by_id[job_id]
            # The machine stamped the first tick boundary at which the
            # death was observable; map it onto the grid's boundary ladder
            # (the k-th boundary of this epoch) to land on the exact float
            # the per-tick reaper would have written.
            k = round((observed - start_now[job.node]) / self.tick)
            if 1 <= k <= n_ticks:
                job.finished_at = boundaries[k - 1]
            elif n_ticks >= 1 and k < 1:
                job.finished_at = boundaries[0]
            else:
                job.finished_at = self.now
            self._kill_due.pop(job_id, None)
            self._exit_after.pop(job_id, None)

        msgs = getattr(self.engine, "messages", 0) - msgs_before
        sent = getattr(self.engine, "bytes_sent", 0)
        recv = getattr(self.engine, "bytes_received", 0)
        self.stats["epochs"] += 1
        self.stats["ticks"] += n_ticks
        self.stats["messages"] += msgs
        self.stats["shard_wall"] += sum(shard_walls)
        self.stats["rate_cache_hits"] = hits
        self.stats["rate_cache_misses"] = misses
        self.stats["bytes_sent"] = sent
        self.stats["bytes_received"] = recv
        supervised = self.engine.name in ("supervised", "fleet")
        if supervised:
            sup = self.engine.stats
            self.stats["restarts"] = sup["restarts"]
            self.stats["replayed_epochs"] = sup["replayed_epochs"]
            self.stats["adopted_shards"] = sup["adopted_shards"]
            self.stats["worker_failures"] = sum(sup["failures"].values())
            self.stats["degraded"] = sup["degraded"]
            if self.engine.name == "fleet":
                self.stats["host_restarts"] = sup["host_restarts"]
        if self.profile:
            walls = ",".join(f"{w * 1000:.2f}" for w in shard_walls)
            extra = ""
            if supervised:
                extra = (
                    f" restarts={self.stats['restarts']}"
                    f" replayed={self.stats['replayed_epochs']}"
                    f" adopted={self.stats['adopted_shards']}"
                    f" degraded={int(self.stats['degraded'])}"
                )
            print(
                f"grid-profile: epoch={self.stats['epochs']}"
                f" ticks={n_ticks} frac={frac:g} spawns={len(commands)}"
                f" deaths={len(deaths)} wall_ms=[{walls}] msgs={msgs}"
                f" bytes={sent - sent_before}/{recv - recv_before}"
                f" rate_cache={hits}/{misses}" + extra,
                file=sys.stderr,
            )

    def _reap(self) -> None:
        for job in self._jobs:
            if (
                job.process is not None
                and job.finished_at is None
                and not job.process.alive
            ):
                job.finished_at = self.now

    # -- introspection -----------------------------------------------------------
    @property
    def nodes(self) -> dict[str, SimMachine]:
        """In-process machines by name (empty under the sharded engine)."""
        return self.engine.nodes

    def node(self, name: str) -> SimMachine:
        """A node's machine (attach tiptop via ``SimHost``).

        Raises:
            SimulationError: unknown node, or a sharded grid (machines
                live in worker processes; use ``workers=1`` to attach).
        """
        if name not in self._spec_by_name:
            raise SimulationError(f"no node {name!r}")
        machine = self.engine.nodes.get(name)
        if machine is None:
            raise SimulationError(
                f"node {name!r} lives in a worker process under the "
                "sharded engine; build the grid with workers=1 to attach"
            )
        return machine

    def snapshot(self, name: str) -> dict[str, Any]:
        """Exact observable state of one node (works on every engine —
        the sharded engine fetches it from the owning worker)."""
        if name not in self._spec_by_name:
            raise SimulationError(f"no node {name!r}")
        return self.engine.snapshot(name)

    def conformance_digest(self) -> dict[str, Any]:
        """Every cross-engine observable of the whole grid, exactly.

        The engines-agree oracle demands this value be identical across
        every engine and shard transport for one scenario: job lifecycles
        with their exact dispatch/finish floats, every node's full
        snapshot (clocks, processes, counter tables), and the
        utilisation map.
        """
        # One batched snapshot round-trip (one message per worker), then
        # re-keyed into spec order so serialisations compare bytewise.
        snaps = self.engine.snapshot_many([spec.name for spec in self.specs])
        return {
            "now": self.now,
            "jobs": [
                {
                    "job_id": j.job_id,
                    "name": j.name,
                    "user": j.user,
                    "queue": j.queue,
                    "memory_bytes": j.memory_bytes,
                    "submitted_at": j.submitted_at,
                    "node": j.node,
                    "pid": j.pid,
                    "state": j.state,
                    "started_at": j.started_at,
                    "finished_at": j.finished_at,
                    "killed": j.killed,
                    "priority": j.priority,
                    "preemptions": j.preemptions,
                }
                for j in self._jobs
            ],
            "nodes": {spec.name: snaps[spec.name] for spec in self.specs},
            "utilisation": self.utilisation(),
        }

    def kernel_stats(self) -> dict[str, dict[str, int]]:
        """Columnar-kernel health per in-process node.

        Observability only, never part of :meth:`conformance_digest`:
        fast-vs-fallback slice counts depend on which advance path ran,
        which is exactly the engine-specific detail digests must ignore.
        Sharded grids return an empty map (their machines live in worker
        processes); serial and legacy engines report every node.
        """
        return {
            name: machine.kernel_stats()
            for name, machine in self.engine.nodes.items()
        }

    @property
    def supervisor_events(self) -> list[dict[str, Any]]:
        """The supervised engine's deterministic recovery log (empty for
        the other engines): failures observed, restarts with replay
        depth, adoptions, and the degrade transition, in order."""
        return list(getattr(self.engine, "events", []))

    def jobs(self, state: str | None = None) -> list[Job]:
        """All jobs, optionally filtered by state."""
        if state is None:
            return list(self._jobs)
        return [j for j in self._jobs if j.state == state]

    def utilisation(self) -> dict[str, float]:
        """Running jobs / logical cores per node."""
        out = {}
        for spec in self.specs:
            running, _ = self._node_load(spec.name)
            out[spec.name] = running / spec.n_pus
        return out


def default_fleet(n_standard: int = 4, n_dedicated: int = 1) -> list[NodeSpec]:
    """A small mixed fleet in the paper's spirit: quad- and dual-core
    bi-Xeons, plus node(s) dedicated to the eternal queues."""
    from repro.sim.arch import NEHALEM

    fleet: list[NodeSpec] = []
    for i in range(n_standard):
        if i % 2 == 0:
            fleet.append(NodeSpec(name=f"node{i:02d}"))
        else:
            fleet.append(
                NodeSpec(
                    name=f"node{i:02d}",
                    arch=NEHALEM,
                    sockets=2,
                    cores_per_socket=2,
                    memory_bytes=16 * 1024**3,
                )
            )
    for i in range(n_dedicated):
        fleet.append(
            NodeSpec(
                name=f"longnode{i:02d}",
                dedicated_queue="eternal-8g-overnight",
                memory_bytes=48 * 1024**3,
            )
        )
    return fleet
