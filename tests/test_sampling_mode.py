"""Counting vs sampling mode (§2.5/§4, Moore [29]).

Tiptop uses counting — exact but requiring a read per task per event.
Sampling reconstructs the count from PMU interrupts every N events: cheap
but statistical. The simulated kernel implements both; these tests pin the
semantics the ablation bench measures.
"""

import pytest

from repro.errors import CounterStateError
from repro.perf.counter import Counter
from repro.perf.events import resolve_event
from repro.perf.simbackend import SimBackend
from repro.sim.counters import CounterTable
from repro.sim.events import Event


class TestKernelSampling:
    def _accrue(self, table, counter, total, per_tick=1000.0):
        ticks = int(total / per_tick)
        for _ in range(ticks):
            table.accrue(
                counter.tid,
                {counter.event: per_tick},
                wall_dt=1.0,
                scheduled_dt=1.0,
                alive=True,
            )

    def test_value_is_period_quantised(self):
        table = CounterTable(pmu_width=4, seed=1)
        c = table.open(Event.INSTRUCTIONS, 1, 0, sample_period=997)
        self._accrue(table, c, 100_000.0)
        assert c.value % 997 == 0

    def test_estimate_tracks_truth(self):
        table = CounterTable(pmu_width=4, seed=1)
        c = table.open(Event.INSTRUCTIONS, 1, 0, sample_period=1000)
        self._accrue(table, c, 1_000_000.0)
        assert c.value == pytest.approx(1_000_000.0, rel=0.02)

    def test_sampling_loses_some_interrupts(self):
        """The statistical mode systematically undercounts a little."""
        table = CounterTable(pmu_width=4, seed=5)
        c = table.open(Event.INSTRUCTIONS, 1, 0, sample_period=100)
        self._accrue(table, c, 10_000_000.0)
        assert c.value < 10_000_000.0
        assert c.value == pytest.approx(10_000_000.0, rel=0.01)

    def test_counting_mode_is_exact(self):
        table = CounterTable(pmu_width=4, seed=5)
        c = table.open(Event.INSTRUCTIONS, 1, 0)
        self._accrue(table, c, 10_000_000.0)
        assert c.value == pytest.approx(10_000_000.0, abs=1e-6)

    def test_bad_period_rejected(self):
        table = CounterTable(pmu_width=4)
        with pytest.raises(CounterStateError):
            table.open(Event.CYCLES, 1, 0, sample_period=0)

    def test_carry_preserved_across_ticks(self):
        """Sub-period deltas accumulate instead of vanishing."""
        table = CounterTable(pmu_width=4, seed=1)
        c = table.open(Event.INSTRUCTIONS, 1, 0, sample_period=1000)
        for _ in range(999):
            table.accrue(
                1, {Event.INSTRUCTIONS: 1.0}, wall_dt=1.0, scheduled_dt=1.0,
                alive=True,
            )
        assert c.value == 0  # still below one period
        table.accrue(
            1, {Event.INSTRUCTIONS: 1.0}, wall_dt=1.0, scheduled_dt=1.0, alive=True
        )
        assert c.value == 1000


class TestBackendSampling:
    def test_sampled_counter_through_stack(self, coarse_machine, endless_workload):
        proc = coarse_machine.spawn("j", endless_workload)
        backend = SimBackend(coarse_machine)
        exact = Counter(backend, resolve_event("instructions"), proc.pid)
        sampled = Counter(
            backend, resolve_event("instructions"), proc.pid, sample_period=100_000
        )
        coarse_machine.run_for(10.0)
        d_exact = exact.delta()
        d_sampled = sampled.delta()
        assert d_sampled == pytest.approx(d_exact, rel=0.01)
        assert d_sampled != d_exact  # but not *equal*: it is an estimate

    def test_small_period_more_accurate_than_large(
        self, coarse_machine, endless_workload
    ):
        proc = coarse_machine.spawn("j", endless_workload)
        backend = SimBackend(coarse_machine)
        exact = Counter(backend, resolve_event("instructions"), proc.pid)
        fine = Counter(
            backend, resolve_event("instructions"), proc.pid, sample_period=10_000
        )
        coarse = Counter(
            backend,
            resolve_event("instructions"),
            proc.pid,
            sample_period=1_000_000_000,
        )
        coarse_machine.run_for(5.0)
        truth = exact.delta()
        err_fine = abs(fine.delta() - truth) / truth
        err_coarse = abs(coarse.delta() - truth) / truth
        assert err_fine < err_coarse


class TestMemLatencyEvent:
    """§3.4's outlook: memory-latency counters detect DRAM contention."""

    def test_latency_metric_solo(self, coarse_machine):
        from repro.sim.workloads import spec
        from repro.sim.workload import Workload

        phase = spec.workload("429.mcf").phases[2].with_budget(float("inf"))
        proc = coarse_machine.spawn("mcf", Workload("mcf", (phase,)))
        backend = SimBackend(coarse_machine)
        lat = Counter(backend, resolve_event("mem-latency-cycles"), proc.pid)
        miss = Counter(backend, resolve_event("cache-misses"), proc.pid)
        coarse_machine.run_for(10.0)
        avg_latency = lat.delta() / miss.delta()
        from repro.sim import NEHALEM

        # Near the uncontended DRAM latency when running alone.
        assert avg_latency == pytest.approx(NEHALEM.mem_latency, rel=0.15)

    def test_latency_rises_under_contention(self, endless_workload):
        from repro.sim import NEHALEM, SimMachine
        from repro.sim.workload import Workload
        from repro.sim.workloads import spec

        def avg_latency(n_copies):
            machine = SimMachine(NEHALEM, tick=0.5, seed=8)
            phase = spec.workload("429.mcf").phases[2].with_budget(float("inf"))
            procs = [
                machine.spawn(f"m{i}", Workload("mcf", (phase,)), affinity={i})
                for i in range(n_copies)
            ]
            backend = SimBackend(machine)
            lat = Counter(
                backend, resolve_event("mem-latency-cycles"), procs[0].pid
            )
            miss = Counter(backend, resolve_event("cache-misses"), procs[0].pid)
            machine.run_for(20.0)
            return lat.delta() / miss.delta()

        assert avg_latency(3) > 1.05 * avg_latency(1)

    def test_core2_pmu_lacks_the_counter(self, endless_workload):
        from repro.errors import EventError
        from repro.sim import CORE2, SimMachine

        machine = SimMachine(CORE2, tick=0.5)
        proc = machine.spawn("j", endless_workload)
        backend = SimBackend(machine)
        with pytest.raises(EventError):
            Counter(backend, resolve_event("mem-latency-cycles"), proc.pid)
