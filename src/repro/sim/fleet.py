"""Two-level supervision: a fleet of supervised hosts.

One :class:`~repro.sim.supervisor.SupervisedShardedEngine` already keeps
a handful of shard workers honest — deadline-checked round-trips,
journal-replay restarts, in-process adoption. At fleet scale (hundreds
to a thousand simulated nodes) a single supervisor becomes both a
bottleneck and a single failure domain, so :class:`FleetEngine` stacks a
second level on top: nodes partition across *hosts*, each host is a full
supervised engine with its own workers and restart budget, and the fleet
supervisor watches the hosts themselves. A host whose own ladder is
exhausted (the engine degraded to serial) is torn down and resurrected
wholesale from the fleet's epoch journal — every epoch since t=0 is
replayed through a fresh supervised engine, whose epoch counters then
start *past* the replayed history so seeded chaos that already fired can
never refire.

Determinism is unchanged from the single-host engines: node *i* maps to
global worker ``i % total_workers`` with seed ``base_seed + i``
regardless of how nodes group into hosts, so the fleet digest is bitwise
identical to the serial engine's. Worker ids are globally numbered
(``host * workers_per_host + slot``) so chaos schedules and event logs
stay host-invariant too.

Epochs pipeline across hosts: the fleet calls every host's
``begin_advance`` before any ``finish_advance``, so all hosts' workers
run the epoch concurrently — the wall-clock cost of an epoch is the
slowest host, not the sum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import SimulationError
from repro.sim.supervisor import SupervisedShardedEngine, Supervision

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.grid import NodeSpec
    from repro.sim.netchaos import NetChaosPlan
    from repro.sim.supervisor import GridFaultPlan

__all__ = ["FleetEngine", "FleetSupervision"]


@dataclass(frozen=True)
class FleetSupervision:
    """Fleet-level policy knobs (host tier of the supervision tree).

    Attributes:
        host_restart_budget: how many times a degraded host engine is
            torn down and resurrected from the fleet journal before the
            fleet stops restarting it and leaves it degraded-but-correct.
    """

    host_restart_budget: int = 4

    def __post_init__(self) -> None:
        if self.host_restart_budget < 0:
            raise SimulationError(
                "host_restart_budget must be >= 0, got"
                f" {self.host_restart_budget}"
            )


@dataclass
class _Host:
    """One supervised engine plus the state needed to resurrect it."""

    index: int
    specs: list = field(default_factory=list)
    seeds: list[int] = field(default_factory=list)
    engine: SupervisedShardedEngine | None = None
    #: Full epoch history for this host (its slice of every fleet epoch),
    #: the replay source for host-level resurrection.
    journal: list[tuple[list, int, float]] = field(default_factory=list)
    restarts: int = 0


class FleetEngine:
    """Hosts-of-workers engine: ``hosts`` supervised engines side by side.

    Bitwise identical to every other engine for the same fleet and seed;
    ``hosts`` and ``transport`` are pure performance/failure-domain
    knobs, like ``workers``.
    """

    name = "fleet"

    def __init__(
        self,
        specs: list["NodeSpec"],
        tick: float,
        seed: int,
        workers: int,
        *,
        hosts: int = 2,
        transport: str = "fork",
        chaos: "GridFaultPlan | None" = None,
        config: Supervision | None = None,
        seeds: list[int] | None = None,
        fleet: FleetSupervision | None = None,
        netchaos: "NetChaosPlan | None" = None,
    ) -> None:
        if hosts < 1:
            raise SimulationError(f"fleet needs >= 1 host, got {hosts}")
        if workers < 1:
            raise SimulationError(
                f"fleet engine needs >= 1 worker, got {workers}"
            )
        #: Shared-nothing, like every multi-process engine.
        self.nodes: dict[str, Any] = {}
        self.tick = tick
        self.transport_name = transport
        self.chaos = chaos
        self.netchaos = netchaos
        self.config = config if config is not None else Supervision()
        self.fleet_config = fleet if fleet is not None else FleetSupervision()
        self.hosts = min(hosts, len(specs)) if specs else hosts
        self.host_workers = max(1, workers // self.hosts)
        self._node_host: dict[str, int] = {}
        #: Stats of engines retired by host restarts, folded in so the
        #: aggregate survives resurrection.
        self._retired_stats: dict[str, Any] = {
            "restarts": 0,
            "replayed_epochs": 0,
            "adopted_shards": 0,
            "failures": {
                "crash": 0, "hang": 0, "garbled": 0, "unreachable": 0,
            },
        }
        self._retired_bytes = [0, 0]  # sent, received
        self._retired_messages = 0
        self._retired_fenced = 0
        self._retired_net_faults = 0
        #: Host-tagged events from retired engines + fleet-level events,
        #: in emission order; current engines' events append after these.
        self._event_base: list[dict[str, Any]] = []
        self._fleet_degraded = False
        self._hosts: list[_Host] = [_Host(index=h) for h in range(self.hosts)]
        for i, spec in enumerate(specs):
            host = self._hosts[i % self.hosts]
            host.specs.append(spec)
            host.seeds.append(seeds[i] if seeds is not None else seed + i)
            self._node_host[spec.name] = host.index
        for host in self._hosts:
            host.engine = self._build_engine(host)

    def _build_engine(self, host: _Host) -> SupervisedShardedEngine:
        return SupervisedShardedEngine(
            host.specs, self.tick, 0,
            workers=self.host_workers,
            seeds=host.seeds,
            transport=self.transport_name,
            chaos=self.chaos,
            config=self.config,
            worker_base=host.index * self.host_workers,
            prior_epochs=list(host.journal),
            netchaos=self.netchaos,
        )

    # -- engine protocol ----------------------------------------------------
    def advance(
        self, commands: list, n_ticks: int, frac: float
    ) -> list[dict[str, Any]]:
        by_host: dict[int, list] = {}
        for cmd in commands:
            by_host.setdefault(self._node_host[cmd.node], []).append(cmd)
        for host in self._hosts:
            host.journal.append(
                (by_host.get(host.index, []), n_ticks, frac)
            )
        # Pipeline: start every host before collecting any.
        for host in self._hosts:
            host.engine.begin_advance(*host.journal[-1])
        reports: list[dict[str, Any]] = []
        for host in self._hosts:
            reports.extend(host.engine.finish_advance())
        # Host-death check runs *after* collecting: a freshly degraded
        # host still returned correct serial reports for this epoch, so
        # the resurrection costs nothing observable.
        for host in self._hosts:
            if host.engine.degraded:
                self._restart_host(host)
        return reports

    def _restart_host(self, host: _Host) -> None:
        if host.restarts >= self.fleet_config.host_restart_budget:
            if not self._fleet_degraded:
                self._fleet_degraded = True
                self._event_base.append(
                    {"event": "fleet-degrade", "host": host.index,
                     "epoch": len(host.journal)}
                )
            return  # degraded-but-correct: adopted shards keep serving.
        self._retire(host)
        host.engine.close()
        host.restarts += 1
        host.engine = self._build_engine(host)
        self._event_base.append(
            {"event": "host-restart", "host": host.index,
             "epoch": len(host.journal),
             "replayed": len(host.journal),
             "restarts": host.restarts}
        )

    def _retire(self, host: _Host) -> None:
        """Fold a doomed engine's counters/events into the fleet base."""
        engine = host.engine
        for key in ("restarts", "replayed_epochs", "adopted_shards"):
            self._retired_stats[key] += engine.stats[key]
        for kind, n in engine.stats["failures"].items():
            self._retired_stats["failures"][kind] += n
        self._retired_bytes[0] += engine.bytes_sent
        self._retired_bytes[1] += engine.bytes_received
        self._retired_messages += engine.messages
        self._retired_fenced += engine.fenced_replies()
        self._retired_net_faults += engine.net_faults()
        for event in engine.events:
            self._event_base.append({**event, "host": host.index})

    def process_of(self, job_id: int) -> None:
        return None

    def snapshot(self, node: str) -> dict[str, Any]:
        if node not in self._node_host:
            raise SimulationError(f"no node {node!r}")
        return self.snapshot_many([node])[node]

    def snapshot_many(self, names: list[str]) -> dict[str, dict[str, Any]]:
        by_host: dict[int, list[str]] = {}
        for name in names:
            host = self._node_host.get(name)
            if host is None:
                raise SimulationError(f"no node {name!r}")
            by_host.setdefault(host, []).append(name)
        out: dict[str, dict[str, Any]] = {}
        for h, group in by_host.items():
            out.update(self._hosts[h].engine.snapshot_many(group))
        return out

    # -- introspection / lifecycle ------------------------------------------
    @property
    def stats(self) -> dict[str, Any]:
        agg = {
            "restarts": self._retired_stats["restarts"],
            "replayed_epochs": self._retired_stats["replayed_epochs"],
            "adopted_shards": self._retired_stats["adopted_shards"],
            "degraded": any(h.engine.degraded for h in self._hosts),
            "failures": dict(self._retired_stats["failures"]),
            "host_restarts": sum(h.restarts for h in self._hosts),
        }
        for host in self._hosts:
            for key in ("restarts", "replayed_epochs", "adopted_shards"):
                agg[key] += host.engine.stats[key]
            for kind, n in host.engine.stats["failures"].items():
                agg["failures"][kind] += n
        return agg

    @property
    def events(self) -> list[dict[str, Any]]:
        out = list(self._event_base)
        for host in self._hosts:
            for event in host.engine.events:
                out.append({**event, "host": host.index})
        return out

    @property
    def degraded(self) -> bool:
        return any(h.engine.degraded for h in self._hosts)

    @property
    def messages(self) -> int:
        return self._retired_messages + sum(
            h.engine.messages for h in self._hosts
        )

    @property
    def bytes_sent(self) -> int:
        return self._retired_bytes[0] + sum(
            h.engine.bytes_sent for h in self._hosts
        )

    @property
    def bytes_received(self) -> int:
        return self._retired_bytes[1] + sum(
            h.engine.bytes_received for h in self._hosts
        )

    @property
    def _procs(self) -> list:
        return [p for h in self._hosts for p in h.engine._procs]

    def live_workers(self) -> int:
        return sum(h.engine.live_workers() for h in self._hosts)

    def fenced_replies(self) -> int:
        """Stale replies rejected across every host, including hosts
        since retired — the fleet-wide split-brain rejection count."""
        return self._retired_fenced + sum(
            h.engine.fenced_replies() for h in self._hosts
        )

    def net_faults(self) -> int:
        """Net-chaos faults injected across every host's links."""
        return self._retired_net_faults + sum(
            h.engine.net_faults() for h in self._hosts
        )

    def close(self) -> None:
        for host in self._hosts:
            host.engine.close()
