"""Data-center node populations (§3.4, Figures 1 and 10).

The paper's compute grid is ~100 bi-Xeon nodes behind Sun Grid Engine.
Two snapshots appear in the paper:

* **Figure 1** — a bi-Xeon E5640 node (16 logical cores) carrying eleven
  processes of three users with IPCs from 0.66 to 2.36; one process shows
  43.7 %CPU (it waits on something), one shows DMIS 0.9 (cache-missy).
* **Figure 10** — a node where ``user1`` has two long jobs (IPC ~1.3 and
  ~1.0); ``user2`` suddenly gets five jobs scheduled for roughly an hour,
  and the shared last-level cache drags both of user1's jobs down ~20 %
  (1.3 -> 1.05, 1.0 -> 0.8) while %CPU stays above 99.3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sim.arch import WESTMERE_E5640
from repro.sim.branch import BranchBehavior
from repro.sim.cache import MemoryBehavior
from repro.sim.core import calibrate_phase
from repro.sim.isa import InstructionMix
from repro.sim.machine import SimMachine
from repro.sim.process import SimProcess
from repro.sim.workload import Phase, Workload

_CPU_MIX = InstructionMix.of(
    int_alu=0.45, load=0.22, store=0.06, branch=0.15, fp_sse=0.12
)

_CACHE_FRIENDLY = MemoryBehavior(
    working_set=1 * 1024 * 1024,
    level_hit_ratios=(0.96, 0.99, 0.998),
    mlp=2.0,
)

#: LLC-resident working set: sensitive to losing L3 share (Fig. 10 victims).
_LLC_SENSITIVE = MemoryBehavior(
    working_set=10 * 1024 * 1024,
    level_hit_ratios=(0.95, 0.965, 0.996),
    miss_amplification=(0.3, 0.3, 1.35),
    mlp=2.0,
)

#: Cache-hungry streaming-ish jobs (Fig. 10 aggressors; Fig. 1's process6).
_LLC_HUNGRY = MemoryBehavior(
    working_set=200 * 1024 * 1024,
    level_hit_ratios=(0.94, 0.955, 0.97),
    miss_amplification=(0.3, 0.3, 0.3),
    mlp=4.0,
)


def compute_job(
    name: str,
    target_ipc: float,
    *,
    memory: MemoryBehavior = _CACHE_FRIENDLY,
    duration_hint: float = math.inf,
    noise: float = 0.03,
) -> Workload:
    """A generic batch job calibrated to ``target_ipc`` solo on the node.

    Args:
        name: workload name (shows up as the COMMAND column).
        target_ipc: solo IPC on the E5640 node.
        memory: memory behaviour class of the job.
        duration_hint: approximate solo run time in seconds
            (``inf`` = runs until killed).
        noise: per-tick execution jitter.
    """
    arch = WESTMERE_E5640
    if math.isinf(duration_hint):
        budget = math.inf
    else:
        budget = target_ipc * arch.freq_hz * duration_hint
    seed = Phase(
        name="main",
        instructions=budget,
        mix=_CPU_MIX,
        memory=memory,
        branches=BranchBehavior(mispredict_ratio=0.02),
        noise=noise,
    )
    return Workload(name=name, phases=(calibrate_phase(arch, seed, target_ipc),))


def make_node(*, tick: float = 1.0, seed: int = 7) -> SimMachine:
    """A bi-Xeon E5640 node: 2 sockets x 4 cores x 2 SMT = 16 PUs."""
    return SimMachine(
        WESTMERE_E5640,
        sockets=2,
        cores_per_socket=4,
        memory_bytes=24 * 1024**3,
        tick=tick,
        seed=seed,
    )


@dataclass(frozen=True)
class Fig1Row:
    """Expected identity of one Figure 1 process."""

    user: str
    command: str
    ipc: float
    dmis: float = 0.0
    duty_cycle: float = 1.0


#: The eleven processes of Figure 1 (users anonymised as in the paper).
FIG1_ROWS: tuple[Fig1Row, ...] = (
    Fig1Row("user1", "process1", 1.97),
    Fig1Row("user3", "process2", 1.32),
    Fig1Row("user1", "process3", 2.27),
    Fig1Row("user1", "process4", 2.36),
    Fig1Row("user3", "process5", 1.17),
    Fig1Row("user2", "process6", 0.66, dmis=0.9),
    Fig1Row("user1", "process7", 1.73),
    Fig1Row("user1", "process8", 1.44),
    Fig1Row("user1", "process9", 1.39),
    Fig1Row("user1", "process10", 1.39),
    Fig1Row("user1", "process11", 1.62, duty_cycle=0.437),
)


def populate_fig1(machine: SimMachine) -> list[SimProcess]:
    """Spawn the Figure 1 population onto ``machine``.

    Eleven mostly CPU-bound jobs; ``process6`` misses in the LLC (DMIS 0.9)
    and ``process11`` runs at ~43.7 %CPU.
    """
    procs = []
    for row in FIG1_ROWS:
        memory = _LLC_HUNGRY if row.dmis > 0 else _CACHE_FRIENDLY
        wl = compute_job(row.command, row.ipc, memory=memory)
        procs.append(
            machine.spawn(
                row.command, wl, user=row.user, duty_cycle=row.duty_cycle
            )
        )
    return procs


#: Fig. 10 script timing (seconds of virtual time; the paper's plot ticks
#: are 10 s). user2's burst lasts ~an hour; the quoted 20 % IPC drop is
#: measured over the first 38 minutes of the overlap.
FIG10_BURST_START = 600.0
FIG10_BURST_DURATION = 3600.0


def populate_fig10(
    machine: SimMachine,
    *,
    burst_start: float = FIG10_BURST_START,
    burst_duration: float = FIG10_BURST_DURATION,
) -> dict[str, list[SimProcess]]:
    """Script the Figure 10 scenario onto ``machine``.

    ``user1`` gets two endless LLC-sensitive jobs immediately; at
    ``burst_start`` ``user2``'s five cache-hungry jobs arrive and run for
    ``burst_duration`` seconds each (they are sized to finish then).

    Returns:
        ``{"user1": [...], "user2": [...]}`` — user2's list is filled when
        the burst fires (after the machine reaches ``burst_start``).
    """
    jobs: dict[str, list[SimProcess]] = {"user1": [], "user2": []}
    jobs["user1"].append(
        machine.spawn(
            "sim-A", compute_job("sim-A", 1.30, memory=_LLC_SENSITIVE), user="user1"
        )
    )
    jobs["user1"].append(
        machine.spawn(
            "sim-B", compute_job("sim-B", 1.00, memory=_LLC_SENSITIVE), user="user1"
        )
    )

    def burst() -> None:
        for i in range(5):
            wl = compute_job(
                f"batch-{i}",
                0.90,
                memory=_LLC_HUNGRY,
                duration_hint=burst_duration,
            )
            jobs["user2"].append(machine.spawn(f"batch-{i}", wl, user="user2"))

    machine.at(burst_start, burst)
    return jobs


def populate_grid(grid, *, n_jobs: int = 12) -> list:
    """Submit a Fig. 10-flavoured batch mix to a :class:`~repro.sim.grid.Grid`.

    Finite compute jobs spread over the short/day queues (a mix of
    cache-friendly and cache-hungry behaviours, like the §3.4 fleet's
    churn), plus one endless service on the dedicated eternal queue.
    Deterministic: the same call produces the same submission sequence.

    Returns:
        The submitted :class:`~repro.sim.grid.Job` objects, in order.
    """
    submitted = []
    for i in range(n_jobs):
        queue = "short-2g-asap" if i % 3 else "day-2g-overnight"
        wl = compute_job(
            f"batch-{i:02d}",
            0.9 + 0.05 * (i % 4),
            memory=_LLC_HUNGRY if i % 4 == 0 else _CACHE_FRIENDLY,
            duration_hint=20.0 + 5.0 * i,
        )
        submitted.append(
            grid.submit(
                f"batch-{i:02d}", wl, user=f"user{i % 3 + 1}", queue=queue
            )
        )
    service = compute_job("eternal-svc", 1.20, memory=_LLC_SENSITIVE)
    submitted.append(
        grid.submit(
            "eternal-svc",
            service,
            user="ops",
            queue="eternal-8g-overnight",
            memory_bytes=4 * 1024**3,
        )
    )
    return submitted
