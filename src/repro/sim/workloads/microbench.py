"""The Figure 4/5 floating-point micro-benchmark.

The paper's loop compiles to exactly four instructions per iteration
(Fig. 5)::

    .L16:  addq $1, %rax        # int ALU
           fadd %st, %st(1)     # x87 FP  (or addsd %xmm1, %xmm0 for SSE)
           cmpq %rbx, %rax      # int ALU
           jne  .L16            # perfectly predicted loop branch

so the instruction mix is 50 % integer ALU, 25 % FP, 25 % branch, with no
memory traffic (both operands live in registers) and essentially zero
mispredicts. With finite operands the loop sustains IPC 1.33 (four
instructions in three cycles, bound by the FP-add dependency chain). With
Inf/NaN operands every x87 add takes a micro-code assist; Table 1 reports
IPC 0.015 and 25 assists per 100 instructions — an 87x slowdown. The SSE
build is unaffected.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.sim.branch import BranchBehavior
from repro.sim.cache import MemoryBehavior
from repro.sim.isa import InstructionMix, OperandProfile
from repro.sim.workload import Phase, Workload

#: Instructions per loop iteration (Fig. 5).
INSTRUCTIONS_PER_ITERATION = 4

#: Execution CPI of the loop with finite operands: 3 cycles per 4-instruction
#: iteration (FP-add latency-bound), i.e. IPC = 1.33.
FINITE_EXEC_CPI = 0.75

#: The two FP instruction sets GCC can target (-mfpmath=387 / -mfpmath=sse).
ISAS = ("x87", "sse")

#: Operand initialisations of Figure 4.
OPERAND_CLASSES = ("finite", "inf", "nan")


def _operands(operand_class: str) -> OperandProfile:
    if operand_class == "finite":
        return OperandProfile()
    if operand_class in ("inf", "nan"):
        # Every iteration's fadd touches the non-finite accumulator.
        return OperandProfile(nonfinite=1.0)
    raise WorkloadError(
        f"operand_class must be one of {OPERAND_CLASSES}, got {operand_class!r}"
    )


def fp_microbench(
    isa: str = "x87",
    operand_class: str = "finite",
    iterations: float = 2.5e9,
) -> Workload:
    """Build the micro-benchmark workload.

    Args:
        isa: ``"x87"`` (gcc -mfpmath=387) or ``"sse"`` (gcc -mfpmath=sse).
        operand_class: ``"finite"``, ``"inf"`` or ``"nan"`` — which
            ``init_XXX`` of Figure 4 ran before the loop.
        iterations: loop trip count (instruction budget / 4).

    Returns:
        A single-phase workload named ``fp-<isa>-<operand_class>``.
    """
    if isa == "x87":
        mix = InstructionMix.of(int_alu=0.5, fp_x87=0.25, branch=0.25)
    elif isa == "sse":
        mix = InstructionMix.of(int_alu=0.5, fp_sse=0.25, branch=0.25)
    else:
        raise WorkloadError(f"isa must be one of {ISAS}, got {isa!r}")
    if iterations <= 0:
        raise WorkloadError(f"iterations must be positive, got {iterations}")
    phase = Phase(
        name=f"fp-loop-{isa}-{operand_class}",
        instructions=iterations * INSTRUCTIONS_PER_ITERATION,
        mix=mix,
        # x and y are two globals: everything stays in one L1 line.
        memory=MemoryBehavior(working_set=64),
        branches=BranchBehavior(mispredict_ratio=0.0),
        operands=_operands(operand_class),
        exec_cpi=FINITE_EXEC_CPI,
        noise=0.0,
    )
    return Workload(name=f"fp-{isa}-{operand_class}", phases=(phase,))
