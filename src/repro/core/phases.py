"""App-level phase tracking: recorder series -> detected phases.

Thin glue between :mod:`repro.core.recorder` and
:mod:`repro.analysis.phase_detect`, so a monitoring script can go from a
live recording to "the workload changed behaviour at t=4765 s" in one call
(the §3.1 workflow).
"""

from __future__ import annotations

from repro.analysis.phase_detect import PhaseSegment, detect_phases
from repro.analysis.timeseries import MetricSeries
from repro.core.recorder import Recorder


def pid_metric_series(recorder: Recorder, pid: int, header: str) -> MetricSeries:
    """A recorded column as a :class:`MetricSeries` (x = time)."""
    times, values = recorder.series(pid, header)
    return MetricSeries(times, values, label=f"pid {pid} {header}")


def detect_pid_phases(
    recorder: Recorder,
    pid: int,
    header: str = "IPC",
    *,
    window: int = 10,
    threshold: float = 0.3,
) -> list[PhaseSegment]:
    """Detected phases of one task's recorded metric."""
    return detect_phases(
        pid_metric_series(recorder, pid, header),
        window=window,
        threshold=threshold,
    )
