"""The matrix planner: a spec unfolds into an ordered list of cells.

The canonical order is the full factorial sweep in declaration order —
configs outermost, then workloads, then seeds — and every cell carries
its canonical ``index``. Execution may run cells in any order and on any
number of workers; artifacts are always assembled by index, which is why
``--jobs N`` and shuffled execution cannot change a single output byte.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.spec import CellConfig, ExperimentSpec


@dataclass(frozen=True)
class Cell:
    """One point of the sweep: (config, workload reference, seed)."""

    index: int
    config: CellConfig
    workload: str
    seed: int

    @property
    def label(self) -> str:
        return f"{self.config.name}/{self.workload}/s{self.seed}"


def plan(spec: ExperimentSpec) -> list[Cell]:
    """Unfold the spec into its cells, in canonical order."""
    cells = []
    index = 0
    for config in spec.configs:
        for workload in spec.workloads:
            for seed in spec.seeds:
                cells.append(Cell(index, config, workload, seed))
                index += 1
    return cells
