"""Legacy setuptools shim.

The offline build environment has no ``wheel`` package, so PEP 517/660
editable installs (which shell out to ``bdist_wheel``) fail; this shim lets
``pip install -e .`` take the classic ``setup.py develop`` path. All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
