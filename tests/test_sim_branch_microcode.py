"""Branch predictor and FP-assist micro-code models."""

import pytest

from repro.errors import WorkloadError
from repro.sim import CORE2, NEHALEM, PPC970
from repro.sim.branch import (
    BranchBehavior,
    mispredict_cpi,
    mispredicts_per_instruction,
    random_jump_ratio,
)
from repro.sim.isa import InstructionMix, OperandProfile
from repro.sim.microcode import ASSIST_UOPS, assist_outcome


class TestBranch:
    def test_default_is_modest(self):
        assert BranchBehavior().mispredict_ratio == pytest.approx(0.02)

    def test_bounds(self):
        with pytest.raises(WorkloadError):
            BranchBehavior(mispredict_ratio=1.5)

    def test_mispredicts_per_instruction(self):
        b = BranchBehavior(mispredict_ratio=0.1)
        assert mispredicts_per_instruction(b, 0.2) == pytest.approx(0.02)

    def test_cpi_contribution(self):
        b = BranchBehavior(mispredict_ratio=0.1)
        assert mispredict_cpi(b, 0.2, 17.0) == pytest.approx(0.34)

    def test_random_jump_ratio(self):
        """The §2.4 validation micro-kernels: random indirect jumps."""
        assert random_jump_ratio(1) == 0.0
        assert random_jump_ratio(4) == pytest.approx(0.75)

    def test_random_jump_needs_targets(self):
        with pytest.raises(WorkloadError):
            random_jump_ratio(0)


class TestMicrocode:
    X87_MIX = InstructionMix.of(int_alu=0.5, fp_x87=0.25, branch=0.25)
    SSE_MIX = InstructionMix.of(int_alu=0.5, fp_sse=0.25, branch=0.25)
    NONFINITE = OperandProfile(nonfinite=1.0)

    def test_finite_operands_no_assist(self):
        out = assist_outcome(NEHALEM, self.X87_MIX, OperandProfile())
        assert out.assists_per_instruction == 0.0
        assert out.cpi_tax == 0.0

    def test_x87_nonfinite_assists(self):
        """Table 1: 25 assists per 100 instructions on the x87 build."""
        out = assist_outcome(NEHALEM, self.X87_MIX, self.NONFINITE)
        assert out.assists_per_instruction == pytest.approx(0.25)
        assert out.cpi_tax == pytest.approx(0.25 * NEHALEM.fp_assist_penalty)
        assert out.extra_uops_per_instruction == pytest.approx(0.25 * ASSIST_UOPS)

    def test_sse_nonfinite_no_assist(self):
        """Table 1: the SSE build is unaffected."""
        out = assist_outcome(NEHALEM, self.SSE_MIX, self.NONFINITE)
        assert out.assists_per_instruction == 0.0

    def test_ppc970_has_no_mechanism(self):
        """Fig. 3d: the PowerPC handles Inf/NaN in hardware."""
        assert not PPC970.has_fp_assist
        out = assist_outcome(PPC970, self.X87_MIX, self.NONFINITE)
        assert out.cpi_tax == 0.0

    def test_core2_also_assists(self):
        out = assist_outcome(CORE2, self.X87_MIX, self.NONFINITE)
        assert out.cpi_tax > 0

    def test_partial_nonfinite_scales(self):
        half = assist_outcome(NEHALEM, self.X87_MIX, OperandProfile(nonfinite=0.5))
        full = assist_outcome(NEHALEM, self.X87_MIX, self.NONFINITE)
        assert half.cpi_tax == pytest.approx(full.cpi_tax / 2)

    def test_denormals_also_assist(self):
        out = assist_outcome(NEHALEM, self.X87_MIX, OperandProfile(denormal=1.0))
        assert out.assists_per_instruction == pytest.approx(0.25)
