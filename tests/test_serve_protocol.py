"""Wire-protocol fuzz battery: round-trip exactness and typed failure.

Two properties carry the collector/client split:

* **Lossless**: ``encode -> decode`` reproduces any frame bitwise —
  NaN payloads, infinities, -0.0, int64 extremes, unicode command
  names, zero-row frames, compression on or off.
* **Never hang, never over-read**: any truncation, garbling or hostile
  length prefix raises a typed :class:`~repro.errors.WireError`
  subclass; no input makes the decoder read past its payload or makes
  the reassembler buffer unbounded garbage.
"""

from __future__ import annotations

import math
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.frame import SnapshotFrame
from repro.errors import (
    WireCorruptError,
    WireError,
    WireOversizeError,
    WireTruncatedError,
    WireVersionError,
)
from repro.serve.protocol import (
    MAX_MESSAGE,
    MSG_BYE,
    MSG_FRAME,
    MSG_HELLO,
    MessageReader,
    decode_message,
    encode_control,
    encode_frame,
    frame_block,
    frame_digest,
    pack_message,
)

# -- frame strategy -----------------------------------------------------------

_names = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), min_size=1, max_size=12
)
_cells = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=16
)
_f64 = st.floats(allow_nan=True, allow_infinity=True, width=64)
_i64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)


@st.composite
def frames(draw) -> SnapshotFrame:
    n = draw(st.integers(min_value=0, max_value=12))

    def i64_col():
        return np.array(
            draw(st.lists(_i64, min_size=n, max_size=n)), dtype=np.int64
        )

    def f64_col():
        return np.array(
            draw(st.lists(_f64, min_size=n, max_size=n)), dtype=np.float64
        )

    def str_col():
        return tuple(draw(st.lists(_cells, min_size=n, max_size=n)))

    deltas = {
        name: f64_col()
        for name in draw(st.lists(_names, max_size=3, unique=True))
    }
    metrics = {
        name: f64_col()
        for name in draw(st.lists(_names, max_size=3, unique=True))
    }
    labels = {
        name: str_col()
        for name in draw(st.lists(_names, max_size=2, unique=True))
    }
    layout = tuple(
        (header, draw(st.sampled_from(["pid", "cpu", "expr", "label"])))
        for header in draw(st.lists(_names, max_size=4, unique=True))
    )
    return SnapshotFrame(
        time=draw(_f64),
        interval=draw(_f64),
        pids=i64_col(),
        tids=i64_col(),
        uids=i64_col(),
        users=str_col(),
        comms=str_col(),
        cpu_pct=f64_col(),
        cpu_time=f64_col(),
        processors=i64_col(),
        deltas=deltas,
        metrics=metrics,
        labels=labels,
        columns=layout,
    )


def _decode_frame(message: bytes) -> tuple[int, SnapshotFrame]:
    msg_type, obj = decode_message(message[4:])
    assert msg_type == MSG_FRAME
    return obj


# -- round-trip properties ----------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(frame=frames(), seq=st.integers(min_value=0, max_value=2**64 - 1),
       compress=st.none() | st.booleans())
def test_roundtrip_bitwise(frame, seq, compress):
    got_seq, got = _decode_frame(encode_frame(frame, seq, compress=compress))
    assert got_seq == seq
    assert frame.bitwise_equal(got)
    assert got.bitwise_equal(frame)
    assert frame_digest(frame) == frame_digest(got)


@settings(max_examples=40, deadline=None)
@given(frame=frames())
def test_compression_is_invisible(frame):
    """Compressed and uncompressed wire forms decode to the same frame."""
    _, plain = _decode_frame(encode_frame(frame, 1, compress=False))
    _, squeezed = _decode_frame(encode_frame(frame, 1, compress=True))
    assert plain.bitwise_equal(squeezed)


def test_roundtrip_hostile_values():
    """The paper-shaped nasties, pinned explicitly."""
    frame = SnapshotFrame(
        time=0.1,
        interval=-0.0,
        pids=np.array([2**63 - 1, -(2**63)], dtype=np.int64),
        tids=np.array([1, 2], dtype=np.int64),
        uids=np.array([-1, 0], dtype=np.int64),
        users=("røöt", ""),
        comms=("wörker-☃", "a" * 300),
        cpu_pct=np.array([math.nan, math.inf]),
        cpu_time=np.array([-math.inf, -0.0]),
        processors=np.array([-1, 15], dtype=np.int64),
        deltas={"cycles": np.array([math.nan, 1e308])},
        metrics={"IPC": np.array([-0.0, math.nan])},
        labels={"HEALTH": ("ok", "réttry")},
        columns=(("PID", "pid"), ("HEALTH", "label")),
    )
    _, got = _decode_frame(encode_frame(frame, 0))
    assert frame.bitwise_equal(got)
    # NaN round-trips by bit pattern, not just by isnan.
    assert got.cpu_pct.tobytes() == frame.cpu_pct.tobytes()


def test_roundtrip_zero_rows():
    frame = SnapshotFrame.empty(5.0, 1.0)
    _, got = _decode_frame(encode_frame(frame, 3))
    assert frame.bitwise_equal(got)
    assert len(got) == 0


def test_control_roundtrip_unicode():
    body = {"client": "zuschauer-über", "resume": None}
    msg_type, got = decode_message(
        encode_control(MSG_HELLO, body)[4:]
    )
    assert msg_type == MSG_HELLO and got == body


# -- typed failure: truncation ------------------------------------------------

def _small_frame() -> SnapshotFrame:
    return SnapshotFrame(
        time=1.0,
        interval=0.5,
        pids=np.array([10, 20], dtype=np.int64),
        tids=np.array([10, 20], dtype=np.int64),
        uids=np.array([0, 7], dtype=np.int64),
        users=("root", "u"),
        comms=("init", "wörk"),
        cpu_pct=np.array([1.0, math.nan]),
        cpu_time=np.array([2.0, 3.0]),
        processors=np.array([0, 1], dtype=np.int64),
        deltas={"cycles": np.array([1.0, 2.0])},
        metrics={"IPC": np.array([0.5, math.nan])},
        labels={"NOTE": ("a", "b")},
        columns=(("PID", "pid"), ("IPC", "expr")),
    )


def test_truncation_at_every_offset_raises_typed():
    """Chopping the payload anywhere raises a WireError, never hangs,
    never returns a frame silently missing data."""
    payload = encode_frame(_small_frame(), 9, compress=False)[4:]
    for cut in range(len(payload)):
        with pytest.raises(WireError):
            decode_message(payload[:cut])


def test_truncated_control_raises_typed():
    payload = encode_control(MSG_BYE, {"stats": {"published": 3}})[4:]
    for cut in range(1, len(payload)):
        if cut == len(payload):
            continue
        with pytest.raises(WireError):
            decode_message(payload[:cut])


def test_block_truncation_is_truncated_error():
    """Cutting inside the column block (past the crc) is detected by the
    checksum, typed as corruption."""
    block = frame_block(_small_frame())
    payload = pack_message(
        MSG_FRAME, struct.pack("!QBI", 0, 0, 0) + block
    )[4:]
    with pytest.raises(WireCorruptError):
        decode_message(payload)  # crc of 0 never matches


# -- typed failure: garbling --------------------------------------------------

def test_bad_magic_and_version():
    good = encode_frame(_small_frame(), 1)[4:]
    with pytest.raises(WireCorruptError):
        decode_message(b"XXXX" + bytes(good[4:]))
    with pytest.raises(WireVersionError):
        decode_message(good[:4] + b"\xff" + bytes(good[5:]))


def test_unknown_message_type():
    payload = pack_message(MSG_HELLO, b"{}")[4:]
    garbled = payload[:5] + b"\x7f" + payload[6:]
    with pytest.raises(WireCorruptError):
        decode_message(garbled)


def test_garbled_block_fails_checksum():
    """Flipping any byte of the column block raises, never mis-decodes."""
    payload = bytearray(encode_frame(_small_frame(), 5, compress=False)[4:])
    body_start = 6 + struct.calcsize("!QBI")  # head + frame head
    for offset in range(body_start, len(payload)):
        garbled = bytearray(payload)
        garbled[offset] ^= 0xA5
        with pytest.raises(WireError):
            decode_message(bytes(garbled))


def test_garbled_compressed_block():
    payload = bytearray(encode_frame(_small_frame(), 5, compress=True)[4:])
    payload[-1] ^= 0xFF
    with pytest.raises(WireCorruptError):
        decode_message(bytes(payload))


def test_control_garbage_json():
    with pytest.raises(WireCorruptError):
        decode_message(pack_message(MSG_HELLO, b"\xff\xfe not json")[4:])
    with pytest.raises(WireCorruptError):
        decode_message(pack_message(MSG_HELLO, b"[1, 2]")[4:])


@settings(max_examples=60, deadline=None)
@given(junk=st.binary(min_size=0, max_size=200))
def test_arbitrary_bytes_never_hang(junk):
    """decode_message on random bytes either raises a typed WireError or
    (vanishingly unlikely) decodes; anything else is a bug."""
    try:
        decode_message(junk)
    except WireError:
        pass


# -- the reassembler ----------------------------------------------------------

def test_reader_reassembles_byte_by_byte():
    frame = _small_frame()
    wire = encode_frame(frame, 2) + encode_control(MSG_BYE, {}) * 2
    reader = MessageReader()
    out = []
    for i in range(len(wire)):
        out.extend(reader.feed(wire[i : i + 1]))
    assert len(out) == 3
    seq, got = decode_message(out[0])[1]
    assert seq == 2 and frame.bitwise_equal(got)
    assert reader.pending == 0


def test_reader_oversized_prefix_rejected_before_buffering():
    reader = MessageReader()
    hostile = struct.pack("!I", MAX_MESSAGE + 1)
    with pytest.raises(WireOversizeError):
        reader.feed(hostile)
    # Nothing of the claimed 64MiB+ body was ever stored.
    assert reader.pending <= len(hostile)


def test_reader_undersized_prefix_rejected():
    reader = MessageReader()
    with pytest.raises(WireCorruptError):
        reader.feed(struct.pack("!I", 2) + b"xx")


def test_reader_partial_message_stays_pending():
    wire = encode_frame(_small_frame(), 1)
    reader = MessageReader()
    assert reader.feed(wire[:10]) == []
    assert reader.pending == 10
    out = reader.feed(wire[10:])
    assert len(out) == 1 and reader.pending == 0


def test_oversize_encode_rejected():
    with pytest.raises(WireOversizeError):
        pack_message(MSG_HELLO, b"x" * (MAX_MESSAGE + 1))


def test_cursor_never_overreads():
    """A block whose header promises more rows than the payload carries
    raises WireTruncatedError from the bounds-checked cursor."""
    block = bytearray(frame_block(_small_frame()))
    # Inflate nrows (offset 16 in the !ddI block head) to 2**31-ish.
    struct.pack_into("!I", block, 16, 1_000_000)
    import zlib

    payload = pack_message(
        MSG_FRAME,
        struct.pack("!QBI", 0, 0, zlib.crc32(bytes(block))) + bytes(block),
    )[4:]
    with pytest.raises(WireTruncatedError):
        decode_message(payload)
