"""Online statistics helpers used by the sampler and the analysis layer."""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

import numpy as np


class OnlineStats:
    """Welford online mean/variance accumulator.

    Numerically stable single-pass computation; used to summarise per-task
    metric streams (e.g. average IPC over a run) without storing samples.
    """

    __slots__ = ("_n", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, x: float) -> None:
        """Fold one sample into the accumulator."""
        self._n += 1
        delta = x - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (x - self._mean)
        self._min = min(self._min, x)
        self._max = max(self._max, x)

    def add_many(self, xs: Iterable[float]) -> None:
        """Fold every sample of ``xs``."""
        for x in xs:
            self.add(x)

    @property
    def count(self) -> int:
        """Number of samples folded so far."""
        return self._n

    @property
    def mean(self) -> float:
        """Arithmetic mean (NaN when empty)."""
        return self._mean if self._n else math.nan

    @property
    def variance(self) -> float:
        """Sample variance with Bessel correction (NaN for n < 2)."""
        return self._m2 / (self._n - 1) if self._n > 1 else math.nan

    @property
    def stddev(self) -> float:
        """Sample standard deviation (NaN for n < 2)."""
        v = self.variance
        return math.sqrt(v) if not math.isnan(v) else math.nan

    @property
    def min(self) -> float:
        """Smallest sample (inf when empty)."""
        return self._min

    @property
    def max(self) -> float:
        """Largest sample (-inf when empty)."""
        return self._max

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Return a new accumulator equivalent to folding both inputs."""
        out = OnlineStats()
        if self._n == 0:
            out._n, out._mean, out._m2 = other._n, other._mean, other._m2
        elif other._n == 0:
            out._n, out._mean, out._m2 = self._n, self._mean, self._m2
        else:
            n = self._n + other._n
            delta = other._mean - self._mean
            out._n = n
            out._mean = self._mean + delta * other._n / n
            out._m2 = self._m2 + other._m2 + delta * delta * self._n * other._n / n
        out._min = min(self._min, other._min)
        out._max = max(self._max, other._max)
        return out


def ewma(samples: Sequence[float], alpha: float) -> np.ndarray:
    """Exponentially weighted moving average of ``samples``.

    Args:
        samples: input series.
        alpha: smoothing weight in (0, 1]; 1 reproduces the input.

    Returns:
        Array of the same length where ``out[i] = alpha*x[i] + (1-alpha)*out[i-1]``.
    """
    if not 0 < alpha <= 1:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    x = np.asarray(samples, dtype=float)
    out = np.empty_like(x)
    acc = 0.0
    for i, v in enumerate(x):
        acc = v if i == 0 else alpha * v + (1 - alpha) * acc
        out[i] = acc
    return out


def median_of_runs(runs: Sequence[float]) -> float:
    """Median of repeated measurements, as SPEC reporting rules require (§2.5)."""
    if not runs:
        raise ValueError("median_of_runs() requires at least one run")
    return float(np.median(np.asarray(runs, dtype=float)))
