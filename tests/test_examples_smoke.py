"""Every example script runs to completion (scripts are documentation —
they must never rot)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate what they show"


def test_example_inventory():
    """The README promises at least these examples."""
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "phase_analysis.py",
        "compiler_compare.py",
        "interference_study.py",
        "datacenter_monitor.py",
        "grid_operations.py",
        "roofline_selection.py",
    } <= names
