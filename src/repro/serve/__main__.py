"""``python -m repro.serve``: daemon self-checks.

``--smoke`` is the CI gate: serve a seeded simulated node to three
concurrent clients (one total, one row-filtered, one with a server-side
derived column), then run the identical node solo through the same
cadence and require every client's reassembled stream to match the solo
frames bitwise (by canonical frame digest). Exact backpressure
accounting is asserted on the way out.

``--partition-smoke`` is the same bar under network failure: the daemon
runs with a seeded :class:`~repro.sim.netchaos.NetChaosPlan` that cuts
one client's connection mid-stream (abort, not close — bytes in flight
are lost), while a second client's link never fires. The cut client
auto-reconnects and resumes by sequence against the retention ring; both
clients' reassembled streams must match the solo run bitwise, and the
smoke asserts the cuts actually happened (a schedule that fired nothing
would vacuously pass).
"""

from __future__ import annotations

import argparse
import asyncio
import itertools
import sys
import zlib

from repro.core.app import SimHost
from repro.core.options import Options
from repro.core.sampler import Sampler
from repro.core.screen import get_screen
from repro.serve.client import collect
from repro.serve.daemon import CollectorDaemon
from repro.serve.protocol import frame_digest
from repro.serve.session import Subscription, subscription_view
from repro.sim.workloads import datacenter

_DELAY = 0.5
_ITERATIONS = 4
_SEED = 7
#: Partition smoke: enough frames that a cut lands mid-stream, and a
#: chaos intensity high enough that the searched-for client ids (one
#: that gets cut, one that never does) are found within a few tries.
_PARTITION_ITERATIONS = 6
_PARTITION_INTENSITY = 6.0


def _solo_frames(delay: float, iterations: int) -> list:
    """The reference: one sampler, no daemon, same node and cadence."""
    machine = datacenter.make_node(tick=min(0.5, delay / 4), seed=_SEED)
    datacenter.populate_fig1(machine)
    host = SimHost(machine)
    sampler = Sampler(
        host.backend, host.tasks, get_screen("default"), Options(delay=delay)
    )
    frames = []
    sampler.sample_frame()  # baseline
    for _ in range(iterations):
        host.sleep(delay)
        frames.append(sampler.sample_frame())
    sampler.close()
    return frames


async def _serve_smoke(delay: float, iterations: int) -> int:
    machine = datacenter.make_node(tick=min(0.5, delay / 4), seed=_SEED)
    datacenter.populate_fig1(machine)
    host = SimHost(machine)
    sampler = Sampler(
        host.backend, host.tasks, get_screen("default"), Options(delay=delay)
    )
    daemon = CollectorDaemon(
        sampler,
        advance=lambda: host.sleep(delay),
        iterations=iterations,
        min_clients=3,
    )
    port = await daemon.start()
    subs = {
        "total": Subscription(),
        "filtered": Subscription(comms=frozenset({"process1", "process2"})),
        "derived": Subscription(
            exprs=(("GIPS", "instructions / delta_t / 1e9"),)
        ),
    }
    results, _ = await asyncio.gather(
        asyncio.gather(
            *(
                collect("127.0.0.1", port, client_id=name, subscription=sub)
                for name, sub in subs.items()
            )
        ),
        daemon.run(),
    )
    await daemon.close()

    solo = _solo_frames(delay, iterations)
    failures = []
    for (name, sub), (received, client) in zip(subs.items(), results):
        expect = [
            frame_digest(subscription_view(frame, sub)) for frame in solo
        ]
        got = [frame_digest(frame) for _, frame in received]
        if got != expect:
            failures.append(f"{name}: stream digests diverge from solo run")
        stats = (client.bye or {}).get("stats", {})
        if stats.get("published") != stats.get("delivered", 0) + stats.get(
            "dropped", 0
        ) + stats.get("lag", 0):
            failures.append(f"{name}: accounting identity violated: {stats}")
        if [seq for seq, _ in received] != sorted(
            {seq for seq, _ in received}
        ):
            failures.append(f"{name}: sequence numbers not monotonic")
    for line in failures:
        print(f"serve smoke: FAIL {line}", file=sys.stderr)
    if not failures:
        print(
            f"serve smoke: OK {len(subs)} clients x {iterations} frames, "
            "bitwise-equal to solo run"
        )
    return 1 if failures else 0


def _chaos_client_ids(plan, iterations: int) -> tuple[str, str]:
    """Deterministically pick one client id the plan cuts within the
    run and one it never touches (link = crc32 of the id, like the
    daemon derives it)."""

    def cuts(client_id: str) -> int:
        link = zlib.crc32(client_id.encode()) & 0x7FFFFFFF
        return sum(1 for s in range(iterations) if plan.cut(link, s, 0))

    chaos = next(
        f"chaos-{i}" for i in itertools.count() if cuts(f"chaos-{i}")
    )
    steady = next(
        f"steady-{i}" for i in itertools.count() if not cuts(f"steady-{i}")
    )
    return chaos, steady


async def _partition_smoke(delay: float, iterations: int) -> int:
    from repro.sim.netchaos import NetChaosPlan
    from repro.util.backoff import BackoffPolicy

    plan = NetChaosPlan.from_seed(_SEED, intensity=_PARTITION_INTENSITY)
    chaos_id, steady_id = _chaos_client_ids(plan, iterations)
    machine = datacenter.make_node(tick=min(0.5, delay / 4), seed=_SEED)
    datacenter.populate_fig1(machine)
    host = SimHost(machine)
    sampler = Sampler(
        host.backend, host.tasks, get_screen("default"), Options(delay=delay)
    )
    daemon = CollectorDaemon(
        sampler,
        advance=lambda: host.sleep(delay),
        iterations=iterations,
        min_clients=2,
        netchaos=plan,
    )
    port = await daemon.start()
    ladder = BackoffPolicy(base=0.0)  # in-process: no wall-clock to wait out
    results, _ = await asyncio.gather(
        asyncio.gather(
            collect(
                "127.0.0.1", port, client_id=chaos_id,
                reconnect=True, backoff=ladder, max_reconnects=32,
            ),
            collect("127.0.0.1", port, client_id=steady_id),
        ),
        daemon.run(),
    )
    await daemon.close()

    solo = [frame_digest(f) for f in _solo_frames(delay, iterations)]
    (chaos_frames, chaos_client), (steady_frames, steady_client) = results
    failures = []
    for name, frames in (
        (chaos_id, chaos_frames), (steady_id, steady_frames)
    ):
        got = [frame_digest(frame) for _, frame in frames]
        if got != solo:
            failures.append(
                f"{name}: reassembled stream diverges from solo run "
                f"({len(got)}/{len(solo)} frames)"
            )
    if daemon.net_cuts < 1:
        failures.append("schedule fired no cuts: the smoke tested nothing")
    if chaos_client.reconnects < 1:
        failures.append(f"{chaos_id}: never reconnected despite cuts")
    if steady_client.reconnects != 0:
        failures.append(f"{steady_id}: reconnected on an uncut link")
    if chaos_client.gaps or steady_client.gaps:
        failures.append("resume left sequence gaps; retention should hold")
    for line in failures:
        print(f"partition smoke: FAIL {line}", file=sys.stderr)
    if not failures:
        print(
            f"partition smoke: OK {daemon.net_cuts} cut(s), "
            f"{chaos_client.reconnects} reconnect(s), both streams "
            "bitwise-equal to solo run"
        )
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.serve")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="daemon + 3 clients + digest compare against a solo run",
    )
    parser.add_argument(
        "--partition-smoke",
        action="store_true",
        help="seeded link cuts + auto-reconnect resume vs a solo run",
    )
    parser.add_argument("--delay", type=float, default=_DELAY)
    parser.add_argument("--iterations", type=int, default=None)
    args = parser.parse_args(argv)
    if args.partition_smoke:
        return asyncio.run(
            _partition_smoke(
                args.delay, args.iterations or _PARTITION_ITERATIONS
            )
        )
    if not args.smoke:
        parser.print_help()
        return 2
    return asyncio.run(_serve_smoke(args.delay, args.iterations or _ITERATIONS))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
