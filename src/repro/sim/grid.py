"""The data-center grid of §3.4: nodes, queues, and an SGE-like dispatcher.

The paper's environment: "about 100 nodes. Each node is a bi-Intel Xeon.
Configurations include dual-cores and quad-cores, and clock frequencies
range from 1.6 GHz to 3.4 GHz... The scheduler is based on Sun Grid Engine
6.2u5. It defines sixteen queues for jobs of different wall-clock run time,
memory requirements, and urgency (ASAP vs. overnight). Jobs are spawned in
order in each queue, the number of concurrently running jobs is limited by
the number of logical cores of each node... heuristics apply, such as
increasing priority of short running processes, dedicating some nodes for
long running tasks... A sensible rule of thumb is to load a node with as
many jobs as there are logical cores, and to keep memory usage below the
available physical memory."

:class:`Grid` implements exactly that: heterogeneous :class:`SimMachine`
nodes sharing one virtual clock, FIFO queues with priorities, per-node
logical-core and memory admission limits, wall-clock kill, and node
dedication. Tiptop attaches to any node via ``SimHost(grid.node(i))`` —
which is how Figures 1 and 10 were captured in production.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.sim.arch import ArchModel, WESTMERE_E5640
from repro.sim.machine import SimMachine
from repro.sim.process import SimProcess
from repro.sim.workload import Workload


@dataclass(frozen=True)
class QueueSpec:
    """One submission queue.

    Attributes:
        name: queue name ("short-2g-asap").
        max_wallclock: job kill limit in seconds (inf = none).
        memory_limit: per-job memory in bytes.
        priority: higher dispatches first (the paper's short-job boost).
        dedicated_only: jobs of this queue may only run on nodes dedicated
            to it (long-running queues get their own nodes).
    """

    name: str
    max_wallclock: float
    memory_limit: int
    priority: int = 0
    dedicated_only: bool = False


def sge_queues() -> list[QueueSpec]:
    """The sixteen-queue layout: wallclock x memory x urgency.

    Four wall-clock classes, two memory classes, two urgencies. Shorter
    queues get higher priority (the paper's heuristic); the 'eternal'
    queues are dedicated-node only.
    """
    queues = []
    wallclocks = [
        ("short", 3600.0, 3),
        ("day", 12 * 3600.0, 2),
        ("long", 48 * 3600.0, 1),
        ("eternal", float("inf"), 0),
    ]
    memories = [("2g", 2 * 1024**3), ("8g", 8 * 1024**3)]
    urgencies = [("asap", 1), ("overnight", 0)]
    for wname, wlimit, wprio in wallclocks:
        for mname, mbytes in memories:
            for uname, uprio in urgencies:
                queues.append(
                    QueueSpec(
                        name=f"{wname}-{mname}-{uname}",
                        max_wallclock=wlimit,
                        memory_limit=mbytes,
                        priority=2 * wprio + uprio,
                        dedicated_only=(wname == "eternal"),
                    )
                )
    return queues


@dataclass(frozen=True)
class NodeSpec:
    """One node's configuration.

    The paper's fleet mixes dual/quad-core bi-Xeons at 1.6-3.4 GHz.
    """

    name: str
    arch: ArchModel = WESTMERE_E5640
    sockets: int = 2
    cores_per_socket: int = 4
    memory_bytes: int = 24 * 1024**3
    dedicated_queue: str | None = None


@dataclass
class Job:
    """A submitted job.

    Attributes:
        job_id: grid-assigned id.
        name: command name.
        user: owner.
        workload: what it runs.
        queue: target queue name.
        memory_bytes: declared memory need (admission only).
        submitted_at: submission time.
        process: the spawned process once dispatched.
        node: the node name it landed on.
        started_at / finished_at: dispatch / completion times.
        killed: True when the wall-clock limit fired.
    """

    job_id: int
    name: str
    user: str
    workload: Workload
    queue: str
    memory_bytes: int
    submitted_at: float
    process: SimProcess | None = None
    node: str | None = None
    started_at: float | None = None
    finished_at: float | None = None
    killed: bool = False

    @property
    def state(self) -> str:
        """pending / running / done."""
        if self.process is None:
            return "pending"
        if self.finished_at is None and self.process.alive:
            return "running"
        return "done"


class Grid:
    """A fleet of simulated nodes behind an SGE-like dispatcher.

    Args:
        node_specs: the fleet (defaults to a small mixed fleet).
        queues: queue layout (defaults to the sixteen SGE queues).
        tick: node scheduler tick.
        seed: base seed (each node gets seed+index).
    """

    def __init__(
        self,
        node_specs: list[NodeSpec] | None = None,
        queues: list[QueueSpec] | None = None,
        *,
        tick: float = 1.0,
        seed: int = 1,
    ) -> None:
        self.queues = {
            q.name: q for q in (sge_queues() if queues is None else queues)
        }
        if not self.queues:
            raise SimulationError("a grid needs at least one queue")
        specs = node_specs if node_specs is not None else default_fleet()
        if not specs:
            raise SimulationError("a grid needs at least one node")
        self.specs = specs
        self.nodes: dict[str, SimMachine] = {}
        for index, spec in enumerate(specs):
            self.nodes[spec.name] = SimMachine(
                spec.arch,
                sockets=spec.sockets,
                cores_per_socket=spec.cores_per_socket,
                memory_bytes=spec.memory_bytes,
                tick=tick,
                seed=seed + index,
            )
        self._pending: dict[str, deque[Job]] = {
            name: deque() for name in self.queues
        }
        self._jobs: list[Job] = []
        self._ids = itertools.count(1)
        self.now = 0.0
        self.tick = tick

    # -- submission ----------------------------------------------------------
    def submit(
        self,
        name: str,
        workload: Workload,
        *,
        user: str = "user",
        queue: str,
        memory_bytes: int = 1 * 1024**3,
    ) -> Job:
        """Queue a job.

        Raises:
            SimulationError: unknown queue, or a memory request over the
                queue's limit.
        """
        spec = self.queues.get(queue)
        if spec is None:
            raise SimulationError(
                f"unknown queue {queue!r} (have: {sorted(self.queues)})"
            )
        if memory_bytes > spec.memory_limit:
            raise SimulationError(
                f"job {name!r} wants {memory_bytes} bytes; queue {queue} "
                f"caps at {spec.memory_limit}"
            )
        job = Job(
            job_id=next(self._ids),
            name=name,
            user=user,
            workload=workload,
            queue=queue,
            memory_bytes=memory_bytes,
            submitted_at=self.now,
        )
        self._pending[queue].append(job)
        self._jobs.append(job)
        return job

    # -- admission -----------------------------------------------------------
    def _node_load(self, node_name: str) -> tuple[int, int]:
        """(running jobs, committed memory) on one node."""
        machine = self.nodes[node_name]
        running = [
            j for j in self._jobs
            if j.node == node_name and j.state == "running"
        ]
        return len(running), sum(j.memory_bytes for j in running)

    def _eligible_node(self, job: Job) -> str | None:
        queue = self.queues[job.queue]
        best: tuple[float, str] | None = None
        for spec in self.specs:
            if queue.dedicated_only and spec.dedicated_queue != job.queue:
                continue
            if not queue.dedicated_only and spec.dedicated_queue is not None:
                continue
            machine = self.nodes[spec.name]
            running, committed = self._node_load(spec.name)
            if running >= machine.topology.n_pus:
                continue  # the rule of thumb: jobs <= logical cores
            if committed + job.memory_bytes > spec.memory_bytes:
                continue  # keep memory below physical
            load = running / machine.topology.n_pus
            if best is None or load < best[0]:
                best = (load, spec.name)
        return best[1] if best else None

    def _dispatch(self) -> None:
        order = sorted(
            self.queues.values(), key=lambda q: q.priority, reverse=True
        )
        for queue in order:
            pending = self._pending[queue.name]
            while pending:
                job = pending[0]
                node_name = self._eligible_node(job)
                if node_name is None:
                    break  # jobs are spawned in order within each queue
                pending.popleft()
                machine = self.nodes[node_name]
                job.process = machine.spawn(
                    job.name, job.workload, user=job.user
                )
                job.node = node_name
                job.started_at = self.now
                if queue.max_wallclock != float("inf"):
                    self._arm_wallclock_kill(job, queue.max_wallclock)

    def _arm_wallclock_kill(self, job: Job, limit: float) -> None:
        machine = self.nodes[job.node]  # type: ignore[index]

        def kill() -> None:
            if job.process is not None and job.process.alive:
                machine.kill(job.process.pid)
                job.killed = True

        machine.at(machine.now + limit, kill)

    # -- time ------------------------------------------------------------------
    def run_for(self, seconds: float) -> None:
        """Advance every node in lockstep, dispatching as slots free up."""
        remaining = seconds
        while remaining > 1e-12:
            step = min(self.tick, remaining)
            self._dispatch()
            for machine in self.nodes.values():
                machine.run_for(step)
            self.now += step
            remaining -= step
            self._reap()
        self._dispatch()

    def _reap(self) -> None:
        for job in self._jobs:
            if (
                job.process is not None
                and job.finished_at is None
                and not job.process.alive
            ):
                job.finished_at = self.now

    # -- introspection -----------------------------------------------------------
    def node(self, name: str) -> SimMachine:
        """A node's machine (attach tiptop via ``SimHost``).

        Raises:
            SimulationError: unknown node.
        """
        try:
            return self.nodes[name]
        except KeyError as exc:
            raise SimulationError(f"no node {name!r}") from exc

    def jobs(self, state: str | None = None) -> list[Job]:
        """All jobs, optionally filtered by state."""
        if state is None:
            return list(self._jobs)
        return [j for j in self._jobs if j.state == state]

    def utilisation(self) -> dict[str, float]:
        """Running jobs / logical cores per node."""
        out = {}
        for spec in self.specs:
            running, _ = self._node_load(spec.name)
            out[spec.name] = running / self.nodes[spec.name].topology.n_pus
        return out


def default_fleet(n_standard: int = 4, n_dedicated: int = 1) -> list[NodeSpec]:
    """A small mixed fleet in the paper's spirit: quad- and dual-core
    bi-Xeons, plus node(s) dedicated to the eternal queues."""
    from repro.sim.arch import NEHALEM

    fleet: list[NodeSpec] = []
    for i in range(n_standard):
        if i % 2 == 0:
            fleet.append(NodeSpec(name=f"node{i:02d}"))
        else:
            fleet.append(
                NodeSpec(
                    name=f"node{i:02d}",
                    arch=NEHALEM,
                    sockets=2,
                    cores_per_socket=2,
                    memory_bytes=16 * 1024**3,
                )
            )
    for i in range(n_dedicated):
        fleet.append(
            NodeSpec(
                name=f"longnode{i:02d}",
                dedicated_queue="eternal-8g-overnight",
                memory_bytes=48 * 1024**3,
            )
        )
    return fleet
