"""Figure 11: cross-core interference for 429.mcf on quad-core Nehalem.

Paper panels:
(a) IPC with 1, 2, 3 co-running copies on distinct physical cores: IPC
    declines with copies — up to ~30 % slowdown at three — while CPU usage
    stays above 99.3 %.
(b) L3 misses per 100 instructions rise with the number of copies
    (shared LLC contention).
(c) the machine topology (hwloc): one socket, shared 8 MB L3, per-core
    256 KB L2 / 32 KB L1, PU#i and PU#(i+4) per core.
(d) two copies pinned to *the same* physical core (PUs 0 and 4): L3
    misses similar to the different-core case, L2 misses explode, and the
    victims run ~2x slower.
"""

import numpy as np
import pytest
from _harness import endless_slice, once, save_artifact

from repro import Options, SimHost, TipTop
from repro.core.screen import get_screen
from repro.sim import NEHALEM, SimMachine
from repro.sim.cpu_topology import Topology
from repro.sim.workload import Workload

RUN_SECONDS = 240.0


def _mcf_endless() -> Workload:
    # A steady mcf slice (its dominant pricing phase), endless so every
    # configuration measures the same code region.
    return endless_slice("429.mcf", 2, name="mcf")


def _corun(affinities: list[set[int]]) -> dict[str, float]:
    machine = SimMachine(NEHALEM, sockets=1, cores_per_socket=4, tick=1.0, seed=19)
    procs = [
        machine.spawn(f"mcf{i}", _mcf_endless(), affinity=aff)
        for i, aff in enumerate(affinities)
    ]
    app = TipTop(SimHost(machine), Options(delay=10.0), get_screen("cache"))
    with app:
        recorder = app.run_collect(int(RUN_SECONDS / 10.0))
    ipcs, l2s, l3s, cpus = [], [], [], []
    for p in procs:
        ipcs.append(recorder.mean(p.pid, "IPC"))
        l2s.append(recorder.mean(p.pid, "L2MIS"))
        l3s.append(recorder.mean(p.pid, "L3MIS"))
        cpus.append(np.mean([s.cpu_pct for s in recorder.for_pid(p.pid)]))
    return {
        "ipc": float(np.mean(ipcs)),
        "l2": float(np.mean(l2s)),
        "l3": float(np.mean(l3s)),
        "cpu": float(np.mean(cpus)),
    }


def _run_all():
    return {
        "1 copy": _corun([{0}]),
        "2 copies (cores 0,1)": _corun([{0}, {1}]),
        "3 copies (cores 0,1,2)": _corun([{0}, {1}, {2}]),
        "2 copies same core (PU0,PU4)": _corun([{0}, {4}]),
    }


def test_fig11_mcf_interference(benchmark):
    results = once(benchmark, _run_all)

    lines = [
        "Fig 11: 429.mcf co-run interference on quad-core Nehalem",
        f"{'configuration':32s} {'IPC':>6s} {'L2/100':>7s} {'L3/100':>7s} {'%CPU':>6s}",
    ]
    for name, r in results.items():
        lines.append(
            f"{name:32s} {r['ipc']:6.3f} {r['l2']:7.2f} {r['l3']:7.2f} {r['cpu']:6.1f}"
        )
    solo = results["1 copy"]
    three = results["3 copies (cores 0,1,2)"]
    same = results["2 copies same core (PU0,PU4)"]
    diff2 = results["2 copies (cores 0,1)"]
    lines.append(
        f"3-copy slowdown: {100 * (1 - three['ipc'] / solo['ipc']):.1f} % "
        "(paper: up to 30 %)"
    )
    lines.append(
        f"same-core slowdown factor: {solo['ipc'] / same['ipc']:.2f}x (paper: 2x)"
    )
    lines.append("")
    lines.append(Topology(NEHALEM, 1, 4).render(memory_bytes=5965 * 1024 * 1024))
    save_artifact("fig11_mcf_interference", "\n".join(lines))

    # (a) IPC declines with copies; ~30 % at three; CPU stays pegged.
    assert solo["ipc"] > diff2["ipc"] > three["ipc"]
    slow3 = 1 - three["ipc"] / solo["ipc"]
    assert 0.2 < slow3 < 0.45
    for r in results.values():
        assert r["cpu"] > 99.3

    # (b) L3 misses/100 instr rise with the number of copies.
    assert solo["l3"] < diff2["l3"] < three["l3"]
    assert solo["l3"] == pytest.approx(2.8, abs=0.8)

    # (d) same-core: L3 similar to different-core, L2 explodes, ~2x slower.
    assert same["l3"] == pytest.approx(diff2["l3"], rel=0.15)
    assert same["l2"] > 3 * diff2["l2"]
    factor = solo["ipc"] / same["ipc"]
    assert factor == pytest.approx(2.0, abs=0.35)


def test_fig11c_topology_rendering():
    """Panel (c): the hwloc drawing of the quad-core Nehalem."""
    text = Topology(NEHALEM, 1, 4).render(memory_bytes=5965 * 1024 * 1024)
    assert "L3 (8192KB)" in text
    assert text.count("L2 (256KB)") == 4
    assert text.count("L1 (32KB)") == 4
    # PU#0 and PU#4 share core 0 — the pinning target of panel (d).
    lines = text.splitlines()
    core0 = lines.index("      Core#0")
    assert lines[core0 + 1].strip() == "PU#0"
    assert lines[core0 + 2].strip() == "PU#4"
