"""Machine topology: sockets, cores, hardware threads (PUs).

Mirrors what hwloc reports for the paper's machines, including the Linux PU
numbering convention visible in Figure 11(c): on a quad-core Nehalem with
hyper-threading, core *i* hosts PU *i* and PU *i+4* — so binding two
processes to "logical cores 0 and 4" (§3.4) puts them on the same physical
core. :meth:`Topology.render` reproduces the hwloc-style ASCII drawing of
Fig. 11(c).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.sim.arch import ArchModel, CacheScope
from repro.util.units import format_size


@dataclass(frozen=True)
class PU:
    """A processing unit (hardware thread / logical CPU)."""

    pu_id: int
    core_id: int
    socket_id: int
    smt_index: int  # 0 for the first hardware thread of the core


class Topology:
    """Socket/core/PU layout of a simulated machine.

    Args:
        arch: micro-architecture (supplies SMT width).
        sockets: number of sockets.
        cores_per_socket: physical cores per socket.

    PU numbering follows Linux/x86 convention: PUs 0..C-1 are the first
    hardware thread of each core in order, PUs C..2C-1 the second, etc.,
    where C is the total core count.
    """

    def __init__(self, arch: ArchModel, sockets: int = 1, cores_per_socket: int = 4):
        if sockets <= 0 or cores_per_socket <= 0:
            raise SimulationError("topology needs >= 1 socket and core")
        self.arch = arch
        self.sockets = sockets
        self.cores_per_socket = cores_per_socket
        total_cores = sockets * cores_per_socket
        self.pus: list[PU] = []
        for smt in range(arch.smt_per_core):
            for core in range(total_cores):
                self.pus.append(
                    PU(
                        pu_id=smt * total_cores + core,
                        core_id=core,
                        socket_id=core // cores_per_socket,
                        smt_index=smt,
                    )
                )
        self.pus.sort(key=lambda p: p.pu_id)
        self._by_id = {p.pu_id: p for p in self.pus}

    @property
    def n_pus(self) -> int:
        """Number of logical CPUs."""
        return len(self.pus)

    @property
    def n_cores(self) -> int:
        """Number of physical cores."""
        return self.sockets * self.cores_per_socket

    def pu(self, pu_id: int) -> PU:
        """Look up a PU by id.

        Raises:
            SimulationError: for an id outside the machine.
        """
        try:
            return self._by_id[pu_id]
        except KeyError as exc:
            raise SimulationError(f"no PU {pu_id} on this machine") from exc

    def pus_of_core(self, core_id: int) -> list[PU]:
        """All hardware threads of one physical core, by smt index."""
        return sorted(
            (p for p in self.pus if p.core_id == core_id), key=lambda p: p.smt_index
        )

    def siblings(self, pu_id: int) -> list[PU]:
        """The other hardware threads sharing this PU's physical core."""
        me = self.pu(pu_id)
        return [p for p in self.pus_of_core(me.core_id) if p.pu_id != pu_id]

    def pu_to_core(self) -> dict[int, int]:
        """Mapping PU id -> core id (input to the cache hierarchy)."""
        return {p.pu_id: p.core_id for p in self.pus}

    def core_to_socket(self) -> dict[int, int]:
        """Mapping core id -> socket id."""
        return {p.core_id: p.socket_id for p in self.pus}

    def render(self, memory_bytes: int | None = None) -> str:
        """hwloc-style ASCII rendering (cf. Fig. 11c).

        One line per machine/socket/shared-cache, then per-core blocks with
        their private caches and PU list.
        """
        lines: list[str] = []
        if memory_bytes is not None:
            lines.append(f"Machine ({memory_bytes // (1024 * 1024)}MB)")
        else:
            lines.append("Machine")
        shared = [c for c in self.arch.cache_levels if c.scope is CacheScope.PER_SOCKET]
        private = [c for c in self.arch.cache_levels if c.scope is not CacheScope.PER_SOCKET]
        for socket in range(self.sockets):
            lines.append(f"  Socket#{socket}")
            for cache in reversed(shared):
                lines.append(f"    {cache.name} ({format_size(cache.size)})")
            for core in range(
                socket * self.cores_per_socket, (socket + 1) * self.cores_per_socket
            ):
                for cache in reversed(private):
                    lines.append(f"      {cache.name} ({format_size(cache.size)})")
                lines.append(f"      Core#{core}")
                for p in self.pus_of_core(core):
                    lines.append(f"        PU#{p.pu_id}")
        return "\n".join(lines)
