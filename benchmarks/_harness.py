"""Shared experiment harness for the per-figure/per-table benchmarks.

Each benchmark file reproduces one table or figure of the paper: it builds
the workload(s) on the right simulated machine, monitors them with the
actual tiptop tool (full stack), renders the paper-shaped output (an ASCII
curve or a table), saves it under ``benchmarks/out/``, and asserts the
paper's quantitative shape with tolerances. EXPERIMENTS.md indexes the
artefacts.
"""

from __future__ import annotations

from pathlib import Path

from repro import Options, SimHost, TipTop
from repro.analysis.timeseries import MetricSeries
from repro.core.phases import pid_metric_series
from repro.core.recorder import Recorder
from repro.core.screen import Screen, get_screen
from repro.sim.arch import ArchModel
from repro.sim.machine import SimMachine
from repro.sim.arch import NEHALEM
from repro.sim.process import SimProcess
from repro.sim.workload import Workload
from repro.sim.workloads import spec as speclib

OUT_DIR = Path(__file__).parent / "out"


def endless_slice(
    benchmark: str, phase_index: int = 0, *, name: str | None = None
) -> Workload:
    """One phase of a SPEC model pinned to an infinite budget.

    The standard steady job of the ablations and interference figures:
    every configuration measures the same code region for as long as the
    experiment runs (mirrors the runner's ``NAME#i`` references).
    """
    phase = speclib.workload(benchmark).phases[phase_index]
    return Workload(name or benchmark, (phase.with_budget(float("inf")),))


def steady_machine(
    *,
    benchmark: str = "456.hmmer",
    phase_index: int = 0,
    seed: int = 3,
    tick: float = 0.5,
    command: str = "job",
    sockets: int = 1,
    cores: int = 4,
    nthreads: int = 1,
) -> tuple[SimMachine, SimProcess]:
    """A one-job Nehalem node running an endless steady SPEC slice."""
    machine = SimMachine(
        NEHALEM, sockets=sockets, cores_per_socket=cores, tick=tick, seed=seed
    )
    proc = machine.spawn(
        command,
        endless_slice(benchmark, phase_index, name=command),
        nthreads=nthreads,
    )
    return machine, proc


def save_artifact(name: str, text: str) -> Path:
    """Write one experiment's rendered output under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def monitor_workload(
    arch: ArchModel,
    workload: Workload,
    *,
    delay: float = 5.0,
    tick: float = 1.0,
    screen: Screen | None = None,
    seed: int = 1,
    max_samples: int = 50_000,
    cores: int = 4,
    command: str | None = None,
) -> tuple[Recorder, SimProcess]:
    """Run one workload to completion under tiptop; return the recording.

    The monitoring loop stops as soon as the process exits (like watching a
    benchmark finish in the paper's figures).
    """
    machine = SimMachine(arch, sockets=1, cores_per_socket=cores, tick=tick, seed=seed)
    proc = machine.spawn(command or workload.name, workload)
    app = TipTop(
        SimHost(machine),
        Options(delay=delay),
        screen or get_screen("default"),
    )
    recorder = Recorder()
    with app:
        for i, snapshot in enumerate(app.snapshots()):
            if i > 0:
                recorder.record(snapshot)
            if not proc.alive or i >= max_samples:
                break
    return recorder, proc


def ipc_series(recorder: Recorder, proc: SimProcess, label: str) -> MetricSeries:
    """The recorded IPC-versus-time series of one process."""
    series = pid_metric_series(recorder, proc.pid, "IPC")
    return MetricSeries(series.x, series.y, label)


def ipc_vs_instructions(
    recorder: Recorder, proc: SimProcess, label: str
) -> MetricSeries:
    """IPC against cumulative instructions retired (Fig. 8's axes)."""
    xs, ys = recorder.series_vs_instructions(proc.pid, "IPC")
    return MetricSeries(xs, ys, label)


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic; a single round both times them and
    produces the figure data.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
