"""Supervision for the sharded grid engine: deadlines, restarts, replay.

The :class:`~repro.sim.parallel.ShardedEngine` trusts its workers
completely — a hung worker blocks ``advance`` forever and a crashed one
aborts the run. This module wraps the same worker protocol in a
supervision tree so that coarse monitoring infrastructure *degrades,
never deadlocks* (the paper's operational premise, applied to the grid
layer the ROADMAP's heavy-traffic north-star rides on):

1. **Detect** — every worker round-trip gets an epoch deadline
   (poll-with-timeout recv) and a liveness check (exitcode / pipe
   state). Crashes, hangs and garbled replies surface as a typed
   :class:`~repro.errors.WorkerFailure` instead of raw pipe errors.
2. **Restart + replay** — the supervisor journals each epoch's
   ``(commands, n_ticks, frac)`` per shard. A dead worker is restarted
   with bounded exponential backoff and its shard resurrected
   deterministically: rebuilt from ``spec + seed`` and the journal
   replayed. Machine evolution is a pure function of spec, seed, tick
   and the timed command sequence, so resurrection is bitwise-equivalent
   to a never-crashed run (asserted via ``Grid.conformance_digest``).
3. **Adopt** — a shard that keeps killing its worker on the *same*
   epoch (a poison epoch) is adopted by an in-process
   :class:`~repro.sim.parallel.Shard` owned by the supervisor; the run
   continues with serial semantics for that shard only.
4. **Degrade** — when the global restart budget is exhausted the whole
   engine degrades to serial semantics (every shard adopted) instead of
   failing the run.

Chaos. :class:`GridFaultPlan` mirrors PR 2's ``repro.perf.faults``: a
seeded, stateless, picklable plan executed *inside* the worker loop.
``decide(worker, epoch, incarnation)`` hashes its arguments (crc32, like
``FaultPlan``) so the schedule is a pure function of the seed —
``--grid-chaos SEED`` replays byte-identically. Rate faults draw a fresh
variate per incarnation, so a restarted worker normally survives the
retry (transient faults); ``at_epochs`` faults marked ``persistent``
refire on every incarnation, which is exactly the poison-epoch path.

Network chaos. :class:`~repro.sim.netchaos.NetChaosPlan` breaks the
*links* instead of the workers: requests lost to a partition surface as
``WorkerFailure(kind="unreachable")`` and walk the same
restart/replay/adopt/degrade ladder — a partition that outlives
``poison_limit`` attempts is adopted exactly like a poison epoch. The
split-brain hazard (a half-open link where the old agent *applied* the
epoch before the supervisor retried it through a new incarnation) is
closed by epoch fencing in the transport layer: the stale reply is
rejected by its ``(incarnation, epoch)`` token, counted in
:meth:`SupervisedShardedEngine.fenced_replies`, and the conformance
digest stays bitwise-equal to the serial engine's.

Determinism of the event log. Supervisor events carry only values that
are pure functions of (scenario, seed, chaos plan): worker index, epoch
number, failure kind, incarnation, replayed-epoch counts, configured
backoff. Wall-clock times and OS exit codes are kept out so two runs of
the same chaos seed produce identical logs.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import ConfigError, SimulationError, WorkerFailure
from repro.sim.parallel import Shard, _entry_list
from repro.sim.transport import CRASH_EXIT, make_transport
from repro.util.backoff import BackoffPolicy

if TYPE_CHECKING:
    from repro.sim.grid import NodeSpec
    from repro.sim.netchaos import NetChaosPlan

__all__ = [
    "CRASH_EXIT",
    "GRID_FAULT_KINDS",
    "GridFaultPlan",
    "GridFaultSpec",
    "Supervision",
    "SupervisedShardedEngine",
    "default_grid_specs",
]

#: Fault kinds a worker can be ordered to exhibit.
GRID_FAULT_KINDS = ("crash", "hang", "garble")


@dataclass(frozen=True)
class GridFaultSpec:
    """One chaos behaviour for grid workers.

    Attributes:
        kind: ``"crash"`` (worker exits before advancing), ``"hang"``
            (worker ignores SIGTERM and stops replying), or ``"garble"``
            (worker replies with a malformed report without advancing).
            Every kind fires *before* the shard advances, so a faulted
            epoch is never half-applied and journal replay is exact.
        rate: probability per (worker, epoch, incarnation) draw.
        at_epochs: exact epoch indices to fire at (overrides ``rate``).
        worker: restrict to one worker index (None = all workers).
        persistent: ``at_epochs`` faults refire on every incarnation
            (the poison-epoch path); rate faults always redraw.
    """

    kind: str
    rate: float = 0.0
    at_epochs: frozenset[int] | None = None
    worker: int | None = None
    persistent: bool = False

    def __post_init__(self) -> None:
        if self.kind not in GRID_FAULT_KINDS:
            raise ConfigError(
                f"unknown grid fault kind {self.kind!r} "
                f"(have: {', '.join(GRID_FAULT_KINDS)})"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.at_epochs is not None:
            object.__setattr__(self, "at_epochs", frozenset(self.at_epochs))
            if any(e < 0 for e in self.at_epochs):
                raise ConfigError("at_epochs indices must be >= 0")
        if self.worker is not None and self.worker < 0:
            raise ConfigError("worker index must be >= 0")


def default_grid_specs(intensity: float = 1.0) -> tuple[GridFaultSpec, ...]:
    """The stock chaos mix: mostly crashes, some garbled replies, rare
    hangs (hangs cost a full deadline each, so they stay cheapest)."""
    if intensity < 0:
        raise ConfigError(f"chaos intensity must be >= 0, got {intensity}")
    cap = 1.0 / len(GRID_FAULT_KINDS)
    return (
        GridFaultSpec("crash", rate=min(0.05 * intensity, cap)),
        GridFaultSpec("hang", rate=min(0.02 * intensity, cap)),
        GridFaultSpec("garble", rate=min(0.03 * intensity, cap)),
    )


@dataclass(frozen=True)
class GridFaultPlan:
    """A seeded, stateless schedule of worker faults.

    Like :class:`repro.perf.faults.FaultPlan`, decisions hash
    ``(seed, worker, epoch, incarnation)`` through crc32 into a uniform
    variate, so the schedule is platform-stable, picklable into workers,
    and independent per worker — faults on one shard never shift
    another's schedule.
    """

    seed: int
    specs: tuple[GridFaultSpec, ...]

    @classmethod
    def from_seed(cls, seed: int, intensity: float = 1.0) -> "GridFaultPlan":
        return cls(seed=seed, specs=default_grid_specs(intensity))

    def _unit(self, worker: int, epoch: int, incarnation: int) -> float:
        key = f"{self.seed}:{worker}:{epoch}:{incarnation}"
        return zlib.crc32(key.encode()) / 2**32

    def decide(self, worker: int, epoch: int, incarnation: int) -> str | None:
        """The fault (if any) this worker exhibits on this epoch advance.

        ``incarnation`` counts restarts of the worker: exact-epoch faults
        fire on the first incarnation only unless ``persistent``; rate
        faults draw fresh per incarnation so retries normally succeed.
        """
        for spec in self.specs:
            if spec.at_epochs is None:
                continue
            if spec.worker is not None and spec.worker != worker:
                continue
            if epoch in spec.at_epochs and (spec.persistent or incarnation == 0):
                return spec.kind
        u = self._unit(worker, epoch, incarnation)
        edge = 0.0
        for spec in self.specs:
            if spec.at_epochs is not None:
                continue
            if spec.worker is not None and spec.worker != worker:
                continue
            edge += spec.rate
            if u < edge:
                return spec.kind
        return None


@dataclass(frozen=True)
class Supervision:
    """Supervisor policy knobs.

    Attributes:
        deadline: seconds a worker may take to answer one round-trip
            before it is declared hung.
        restart_budget: total restarts across all workers before the
            engine degrades to serial semantics.
        poison_limit: consecutive failures on one epoch before the shard
            is adopted in-process instead of restarted again.
        backoff_base: first restart's backoff sleep; doubles per
            consecutive failure on the same epoch.
        backoff_cap: upper bound on any single backoff sleep.
    """

    deadline: float = 30.0
    restart_budget: int = 8
    poison_limit: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 1.0

    def __post_init__(self) -> None:
        if self.deadline <= 0:
            raise ConfigError(f"deadline must be > 0, got {self.deadline}")
        if self.restart_budget < 0:
            raise ConfigError("restart_budget must be >= 0")
        if self.poison_limit < 1:
            raise ConfigError("poison_limit must be >= 1")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigError("backoff values must be >= 0")

    def policy(self) -> BackoffPolicy:
        """The restart ladder as the shared retry shape.

        The supervisor, the fleet and the serve client all sleep through
        :class:`~repro.util.backoff.BackoffPolicy`, so the ladders cannot
        drift apart; the values recorded in the event log are exactly
        ``policy().delay(attempt)``.
        """
        return BackoffPolicy(
            base=self.backoff_base, factor=2.0, cap=self.backoff_cap
        )


#: Keys every well-formed epoch report carries (garble detection).
_REPORT_KEYS = frozenset(
    {
        "spawned",
        "deaths",
        "killed",
        "bounds",
        "start_now",
        "end_now",
        "wall",
        "cache_hits",
        "cache_misses",
    }
)


@dataclass
class _WorkerState:
    """Supervisor-side bookkeeping for one worker slot."""

    index: int
    entries: list[tuple["NodeSpec", int]]
    transport: Any = None
    incarnation: int = 0
    #: Every epoch ever dispatched to this shard, in order.
    journal: list[tuple[list, int, float]] = field(default_factory=list)
    #: In-process shard once adopted (poison epoch or degrade).
    shard: Shard | None = None
    sent: bool = False


class SupervisedShardedEngine:
    """The sharded engine under a supervision tree.

    Same node-to-worker assignment and per-epoch message protocol as
    :class:`~repro.sim.parallel.ShardedEngine` — and therefore the same
    bitwise results — but every round-trip is deadline-checked and every
    failure walks the detect → restart/replay → adopt → degrade ladder.
    ``Grid.run_for`` never deadlocks and never aborts on a worker death.
    """

    name = "supervised"

    def __init__(
        self,
        specs: list["NodeSpec"],
        tick: float,
        seed: int,
        workers: int,
        *,
        chaos: GridFaultPlan | None = None,
        config: Supervision | None = None,
        transport: str = "fork",
        seeds: list[int] | None = None,
        prior_epochs: list[tuple[list, int, float]] | None = None,
        worker_base: int = 0,
        netchaos: "NetChaosPlan | None" = None,
    ) -> None:
        if workers < 1:
            raise SimulationError(
                f"supervised engine needs >= 1 worker, got {workers}"
            )
        self.workers = min(workers, len(specs))
        self.config = config if config is not None else Supervision()
        self.chaos = chaos
        self.netchaos = netchaos
        self.tick = tick
        self.transport_name = transport
        self._policy = self.config.policy()
        #: Offset added to each slot index to form the *global* worker id
        #: (a fleet supervisor numbers workers across hosts): chaos
        #: schedules, failure messages and event logs all use global ids,
        #: so per-host logs stay distinct and transport-invariant.
        self.worker_base = worker_base
        #: Shared-nothing like the sharded engine: no in-process machines
        #: are exposed, even for adopted shards (the public surface must
        #: not depend on the failure history).
        self.nodes: dict[str, Any] = {}
        self._node_worker: dict[str, int] = {}
        self.messages = 0
        #: Deterministic recovery log (no wall-times, no OS exit codes).
        self.events: list[dict[str, Any]] = []
        self.stats: dict[str, Any] = {
            "restarts": 0,
            "replayed_epochs": 0,
            "adopted_shards": 0,
            "degraded": False,
            "failures": {
                "crash": 0, "hang": 0, "garbled": 0, "unreachable": 0,
            },
        }
        self.degraded = False
        self._send_failures: dict[int, WorkerFailure] = {}
        entry_list = _entry_list(specs, seed, seeds)
        self._states: list[_WorkerState] = []
        for w in range(self.workers):
            entries = []
            for index, entry in enumerate(entry_list):
                if index % self.workers == w:
                    entries.append(entry)
                    self._node_worker[entry[0].name] = w
            state = _WorkerState(index=w, entries=entries)
            state.transport = make_transport(
                transport, worker_base + w, entries, tick, chaos, netchaos
            )
            self._states.append(state)
        # A fleet supervisor resurrecting a whole host passes the host's
        # epoch history: split it into the per-shard journals *before*
        # spawning, so every worker replays its past silently and its
        # epoch counter starts beyond it — chaos that already fired can
        # never refire during a host-level replay.
        if prior_epochs:
            for commands, n_ticks, frac in prior_epochs:
                by_worker: dict[int, list] = {}
                for cmd in commands:
                    by_worker.setdefault(
                        self._node_worker[cmd.node], []
                    ).append(cmd)
                for state in self._states:
                    state.journal.append(
                        (by_worker.get(state.index, []), n_ticks, frac)
                    )
        for state in self._states:
            self._spawn(state, replay=list(state.journal))
        for state in self._states:
            try:
                self._await_ready(state, replayed=len(state.journal))
            except WorkerFailure as fail:
                # Startup failure (not chaos-injected — chaos only fires
                # on advance): recover immediately, no report pending.
                self._recover(state, fail, need_report=False)

    # -- worker lifecycle ---------------------------------------------------
    def _gid(self, state: _WorkerState) -> int:
        """Global worker id of one slot (fleet-wide numbering)."""
        return self.worker_base + state.index

    def _spawn(self, state: _WorkerState, replay: list) -> None:
        state.transport.spawn(replay, state.incarnation)

    def _reap(self, state: _WorkerState) -> None:
        """Tear one worker down for good (terminate → kill ladder — a
        hung worker ignores SIGTERM); the transport keeps whatever it
        needs to spawn a fresh incarnation."""
        state.transport.reap()

    def _await_ready(self, state: _WorkerState, replayed: int) -> None:
        # Replay costs real simulation work; scale the handshake deadline
        # with the journal length so resurrection is never misread as a
        # hang.
        timeout = max(self.config.deadline, 1.0) * (1 + replayed)
        payload = self._recv(state, timeout)
        if payload != "ready":
            raise WorkerFailure(
                f"grid worker {self._gid(state)} sent a bad ready handshake: "
                f"{payload!r}",
                worker=self._gid(state),
                kind="garbled",
            )

    # -- guarded round-trips ------------------------------------------------
    def _send(self, state: _WorkerState, msg: tuple) -> None:
        state.transport.send(msg)
        self.messages += 1

    def _recv(self, state: _WorkerState, timeout: float) -> Any:
        """One reply under a deadline. The transport enforces liveness
        and shape; this layer interprets the protocol tags."""
        tag, payload = state.transport.recv(timeout)
        if tag == "error":
            # A worker-side programming error, not a process failure:
            # surface it, don't "recover" it.
            raise SimulationError(f"grid worker failed: {payload}")
        if tag != "ok":
            raise WorkerFailure(
                f"grid worker {self._gid(state)} sent unknown tag {tag!r}",
                worker=self._gid(state),
                kind="garbled",
            )
        return payload

    def _recv_report(self, state: _WorkerState) -> dict[str, Any]:
        payload = self._recv(state, self.config.deadline)
        if not (isinstance(payload, dict) and _REPORT_KEYS <= payload.keys()):
            raise WorkerFailure(
                f"grid worker {self._gid(state)} sent a garbled epoch report",
                worker=self._gid(state),
                kind="garbled",
            )
        return payload

    # -- the recovery ladder ------------------------------------------------
    def _note_failure(self, fail: WorkerFailure, epoch: int) -> None:
        self.stats["failures"][fail.kind] += 1
        self.events.append(
            {"event": fail.kind, "worker": fail.worker, "epoch": epoch}
        )

    def _degrade(self, worker: int, epoch: int) -> None:
        if not self.degraded:
            self.degraded = True
            self.stats["degraded"] = True
            self.events.append(
                {"event": "degrade", "worker": worker, "epoch": epoch}
            )

    def _adopt(
        self, state: _WorkerState, need_report: bool, reason: str
    ) -> dict[str, Any] | None:
        """Resurrect the shard in-process and retire its worker slot.

        Rebuilds from (spec, seed) and replays the journal — every epoch
        if the journal is fully collected, all but the last when the
        failing epoch's report is still owed (it is then advanced live
        and its report returned).
        """
        self._reap(state)
        shard = Shard(state.entries, self.tick)
        replay = state.journal[:-1] if need_report else state.journal
        for commands, n_ticks, frac in replay:
            shard.advance(commands, n_ticks, frac)
        state.shard = shard
        self.stats["replayed_epochs"] += len(replay)
        self.stats["adopted_shards"] += 1
        self.events.append(
            {
                "event": "adopt",
                "worker": self._gid(state),
                "epoch": len(replay),
                "reason": reason,
                "replayed": len(replay),
            }
        )
        if need_report:
            commands, n_ticks, frac = state.journal[-1]
            return shard.advance(commands, n_ticks, frac)
        return None

    def _recover(
        self, state: _WorkerState, fail: WorkerFailure, need_report: bool
    ) -> dict[str, Any] | None:
        """Walk the ladder for one failed round-trip.

        Restart with journal replay under exponential backoff; adopt the
        shard in-process after ``poison_limit`` consecutive failures on
        this same epoch; degrade the whole engine once the global restart
        budget is spent. Always returns a usable epoch report when one is
        owed — this method cannot fail the run.
        """
        epoch = len(state.journal) - 1 if need_report else len(state.journal)
        attempts = 0
        while True:
            attempts += 1
            self._note_failure(fail, epoch)
            self._reap(state)
            if attempts >= self.config.poison_limit:
                self.events.append(
                    {
                        "event": "poison",
                        "worker": self._gid(state),
                        "epoch": epoch,
                        "attempts": attempts,
                    }
                )
                return self._adopt(state, need_report, reason="poison")
            if self.stats["restarts"] >= self.config.restart_budget:
                self._degrade(self._gid(state), epoch)
                return self._adopt(state, need_report, reason="degrade")
            backoff = self._policy.sleep(attempts)
            self.stats["restarts"] += 1
            state.incarnation += 1
            replay = state.journal[:-1] if need_report else list(state.journal)
            self.stats["replayed_epochs"] += len(replay)
            self.events.append(
                {
                    "event": "restart",
                    "worker": self._gid(state),
                    "epoch": epoch,
                    "incarnation": state.incarnation,
                    "replayed": len(replay),
                    "backoff": backoff,
                }
            )
            try:
                self._spawn(state, replay=replay)
                self._await_ready(state, replayed=len(replay))
                if not need_report:
                    return None
                commands, n_ticks, frac = state.journal[-1]
                self._send(state, ("advance", commands, n_ticks, frac))
                return self._recv_report(state)
            except WorkerFailure as next_fail:
                fail = next_fail

    # -- engine protocol ----------------------------------------------------
    def begin_advance(self, commands: list, n_ticks: int, frac: float) -> None:
        """Journal the epoch and ship it to every live worker.

        Split from :meth:`finish_advance` so a fleet supervisor can start
        *all* hosts' workers on an epoch before collecting any of them —
        without the split, hosts would advance serially and the two-level
        tree would forfeit the fan-out.
        """
        if self.degraded:
            # Serial semantics: every shard in-process from here on.
            for state in self._states:
                if state.shard is None:
                    self._adopt(state, need_report=False, reason="degrade")
        by_worker: dict[int, list] = {}
        for cmd in commands:
            by_worker.setdefault(self._node_worker[cmd.node], []).append(cmd)
        for state in self._states:
            state.journal.append((by_worker.get(state.index, []), n_ticks, frac))
        # Send to every live worker first so shards advance concurrently.
        self._send_failures = {}
        for state in self._states:
            if state.shard is not None:
                state.sent = False
                continue
            try:
                self._send(state, ("advance",) + state.journal[-1])
                state.sent = True
            except WorkerFailure as fail:
                state.sent = False
                self._send_failures[state.index] = fail

    def finish_advance(self) -> list[dict[str, Any]]:
        """Collect every worker's epoch report, recovering as needed.

        Adopted shards advance here, between the send and the recv
        phases, so their work overlaps the workers' like a shard's would.
        Reports have disjoint job/node keys; order is immaterial to the
        grid's merge.
        """
        reports: list[dict[str, Any]] = []
        for state in self._states:
            if state.shard is not None:
                cmds, nt, fr = state.journal[-1]
                reports.append(state.shard.advance(cmds, nt, fr))
                continue
            if not state.sent:
                reports.append(
                    self._recover(
                        state, self._send_failures[state.index],
                        need_report=True,
                    )
                )
                continue
            try:
                reports.append(self._recv_report(state))
            except WorkerFailure as fail:
                reports.append(self._recover(state, fail, need_report=True))
        return reports

    def advance(
        self, commands: list, n_ticks: int, frac: float
    ) -> list[dict[str, Any]]:
        self.begin_advance(commands, n_ticks, frac)
        return self.finish_advance()

    def process_of(self, job_id: int) -> None:
        return None

    def snapshot(self, node: str) -> dict[str, Any]:
        if node not in self._node_worker:
            raise SimulationError(f"no node {node!r}")
        return self.snapshot_many([node])[node]

    def snapshot_many(self, names: list[str]) -> dict[str, dict[str, Any]]:
        """Snapshots for several nodes: one message per worker, not one
        per node. A failed worker is adopted and serves from the replayed
        shard — the journal is fully collected between epochs, so
        adoption resurrects the exact current state."""
        by_worker: dict[int, list[str]] = {}
        for name in names:
            worker = self._node_worker.get(name)
            if worker is None:
                raise SimulationError(f"no node {name!r}")
            by_worker.setdefault(worker, []).append(name)
        out: dict[str, dict[str, Any]] = {}
        for worker, group in by_worker.items():
            state = self._states[worker]
            if state.shard is not None:
                out.update(state.shard.snapshot_many(group))
                continue
            try:
                self._send(state, ("snapshot", group))
                out.update(self._recv(state, self.config.deadline))
            except WorkerFailure as fail:
                self._note_failure(fail, epoch=len(state.journal))
                self._adopt(state, need_report=False, reason="snapshot")
                out.update(state.shard.snapshot_many(group))
        return out

    # -- introspection / lifecycle ------------------------------------------
    @property
    def bytes_sent(self) -> int:
        return sum(s.transport.bytes_sent for s in self._states)

    @property
    def bytes_received(self) -> int:
        return sum(s.transport.bytes_received for s in self._states)

    @property
    def _procs(self) -> list:
        """Live worker process handles (leak tests poke at these)."""
        return [
            s.transport.proc
            for s in self._states
            if s.transport.proc is not None
        ]

    def live_workers(self) -> int:
        """Worker slots still served by a live agent (not adopted)."""
        return sum(
            1
            for s in self._states
            if s.shard is None and s.transport.is_alive()
        )

    def fenced_replies(self) -> int:
        """Stale replies rejected by their incarnation/epoch fence.

        Each one is a split-brain straggler — an answer computed behind a
        healed partition by a superseded incarnation — that without
        fencing would have been merged as a second application of its
        epoch."""
        return sum(s.transport.fenced_rejected for s in self._states)

    def net_faults(self) -> int:
        """Round-trips the net-chaos plan faulted across all links."""
        return sum(s.transport.net_faults for s in self._states)

    def close(self) -> None:
        for state in self._states:
            state.transport.request_close()
        for state in self._states:
            state.transport.finish_close(grace=2.0)
