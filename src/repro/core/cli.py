"""Command-line entry point: the ``tiptop`` command.

Mirrors the original tool's interface (``-b`` batch, ``-d`` delay, ``-n``
iterations, screen selection) with one addition forced by this
reproduction's environment: ``--sim`` runs against a demo simulated node,
because the container's kernel exposes no PMU. On real hardware the same
command monitors live processes through ``perf_event_open``.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.app import RealHost, SimHost, TipTop
from repro.core.options import Options
from repro.core.screen import builtin_screens, get_screen
from repro.errors import PerfNotSupportedError, ReproError
from repro.sim.workloads import datacenter


def build_parser() -> argparse.ArgumentParser:
    """The tiptop argument parser."""
    parser = argparse.ArgumentParser(
        prog="tiptop",
        description="Hardware performance counters for the masses "
        "(reproduction of Rohou, ICPP 2012)",
    )
    parser.add_argument("-b", "--batch", action="store_true",
                        help="batch mode: stream text (like top -b)")
    parser.add_argument("-d", "--delay", type=float, default=2.0,
                        help="refresh delay in seconds (default 2)")
    parser.add_argument("-n", "--iterations", type=int, default=10,
                        help="number of refreshes (default 10)")
    parser.add_argument("-H", "--threads", action="store_true",
                        help="count per thread instead of per process")
    parser.add_argument("-u", "--uid", type=int, default=None,
                        help="only watch processes of this uid")
    parser.add_argument("-p", "--pid", type=int, action="append", default=[],
                        help="only watch this pid (repeatable)")
    parser.add_argument("-S", "--screen", default="default",
                        help="screen name (see --list-screens)")
    parser.add_argument("-W", "--screen-file", default=None,
                        help="JSON file with user-defined screens "
                             "(tiptop's XML config equivalent)")
    parser.add_argument("--list-screens", action="store_true",
                        help="list built-in screens and exit")
    parser.add_argument("--sim", action="store_true",
                        help="monitor a demo simulated node instead of the "
                             "real kernel (required where no PMU exists)")
    parser.add_argument("--profile", action="store_true",
                        help="print per-refresh wall-time breakdown "
                             "(advance/read/eval/render) to stderr")
    parser.add_argument("--grid-workers", type=int, default=None, metavar="N",
                        help="simulate the whole SGE datacenter grid "
                             "instead of one node, sharding the fleet over "
                             "N worker processes (1 = in-process serial "
                             "engine; results are identical at any N; "
                             "requires --sim)")
    parser.add_argument("--grid-chaos", type=int, default=None, metavar="SEED",
                        help="inject a seeded schedule of grid-worker faults "
                             "(crashes, hangs, garbled replies) under the "
                             "supervised engine; the same seed replays the "
                             "same failures and recoveries byte-for-byte "
                             "(requires --sim and --grid-workers)")
    parser.add_argument("--net-chaos", type=int, default=None, metavar="SEED",
                        help="inject a seeded schedule of network faults "
                             "(partitions, dropped/duplicated messages, "
                             "half-open links, delay) at the grid's shard "
                             "transport boundary; epoch fencing keeps the "
                             "output byte-identical to an unpartitioned "
                             "run, and the same seed replays the same "
                             "cuts and heals byte-for-byte (requires "
                             "--sim and --grid-workers)")
    parser.add_argument("--grid-transport", default=None,
                        metavar="{inproc,fork,socket}",
                        help="how grid shards talk to their workers: inproc "
                             "(serial, zero-copy), fork (multiprocessing "
                             "pipes, the default) or socket (binary frames "
                             "over a persistent socket per worker); output "
                             "is identical across transports (requires "
                             "--sim and --grid-workers)")
    parser.add_argument("--grid-hosts", type=int, default=None, metavar="N",
                        help="split the grid's workers into N supervised "
                             "host groups under fleet-level supervision; a "
                             "dead host is resurrected wholesale by journal "
                             "replay (requires --sim and --grid-workers)")
    parser.add_argument("--chaos", type=int, default=None, metavar="SEED",
                        help="inject a seeded schedule of kernel faults "
                             "(ESRCH/EMFILE/EINTR/EAGAIN, corrupt reads, "
                             "multiplex starvation) and show a HEALTH "
                             "column; the same seed replays the same "
                             "failures byte-for-byte (requires --sim)")
    parser.add_argument("--serve", type=int, default=None, metavar="PORT",
                        help="run as a collector daemon on this TCP port "
                             "(0 = ephemeral): one sampler, any number of "
                             "--connect viewers; sampling cost is O(1) in "
                             "client count (requires --sim)")
    parser.add_argument("--connect", default=None, metavar="HOST:PORT",
                        help="subscribe to a collector daemon instead of "
                             "sampling locally; frames arrive bitwise-"
                             "identical and drive the normal screen")
    parser.add_argument("--replay", default=None, metavar="FILE",
                        help="re-execute a conformance repro artifact "
                             "(verify/repro-<hash>.json) through the "
                             "oracle registry and exit (see "
                             "python -m repro.verify)")
    return parser


def _run_grid(options: Options) -> int:
    """The --grid-workers path: drive the §3.4 SGE grid for the requested
    span and print a dispatch summary (engine timings go to stderr with
    --profile). Results are identical at any worker count."""
    from repro.sim.grid import Grid

    span = options.delay * (options.iterations or 10)
    supervision = None
    if options.grid_chaos is not None or options.net_chaos is not None:
        from repro.sim.supervisor import Supervision

        # Chaos runs recover many times; a tight deadline and no backoff
        # sleep keep the run fast while staying byte-identical.
        supervision = Supervision(deadline=2.0, backoff_base=0.0)
    with Grid(
        tick=1.0,
        seed=1,
        workers=options.grid_workers,
        profile=options.profile,
        grid_chaos=options.grid_chaos,
        net_chaos=options.net_chaos,
        supervision=supervision,
        transport=options.grid_transport,
        hosts=options.grid_hosts,
    ) as grid:
        jobs = datacenter.populate_grid(grid)
        grid.run_for(span)
        engine = grid.engine.name
        print(
            f"grid: {len(grid.specs)} nodes, engine={engine} "
            f"workers={options.grid_workers}, ran {span:g}s "
            f"in {grid.stats['epochs']} epochs"
        )
        for job in jobs:
            when = (
                f"finished={job.finished_at:g}" if job.finished_at is not None
                else f"state={job.state}"
            )
            print(
                f"  job {job.job_id:3d} {job.name:12s} "
                f"queue={job.queue:20s} node={job.node or '-':10s} {when}"
            )
        print("utilisation:")
        for node, load in sorted(grid.utilisation().items()):
            print(f"  {node:10s} {load:6.1%}")
        if options.grid_chaos is not None:
            stats = grid.stats
            print(
                f"supervisor: failures={stats['worker_failures']} "
                f"restarts={stats['restarts']} "
                f"replayed={stats['replayed_epochs']} "
                f"adopted={stats['adopted_shards']} "
                f"degraded={'yes' if stats['degraded'] else 'no'}"
            )
            for event in grid.supervisor_events:
                fields = " ".join(
                    f"{k}={event[k]}" for k in sorted(event) if k != "event"
                )
                print(f"  {event['event']:8s} {fields}")
        if options.net_chaos is not None:
            # The whole point of --net-chaos is that stdout stays
            # byte-identical to an unpartitioned run (CI diffs it), so
            # the recovery summary goes to stderr.
            engine_obj = grid.engine
            stats = grid.stats
            print(
                f"netchaos: faults={engine_obj.net_faults()} "
                f"failures={stats['worker_failures']} "
                f"fenced={engine_obj.fenced_replies()} "
                f"restarts={stats['restarts']} "
                f"adopted={stats['adopted_shards']} "
                f"degraded={'yes' if stats['degraded'] else 'no'}",
                file=sys.stderr,
            )
        if options.profile:
            stats = grid.stats
            print(
                f"grid-profile: total epochs={stats['epochs']} "
                f"ticks={stats['ticks']} msgs={stats['messages']} "
                f"shard_wall={stats['shard_wall'] * 1000:.1f}ms "
                f"rate_cache={stats['rate_cache_hits']}"
                f"/{stats['rate_cache_misses']}",
                file=sys.stderr,
            )
    return 0


def _run_serve(args: argparse.Namespace, options: Options, screen) -> int:
    """The --serve path: collector daemon over the demo simulated node.

    Binds, prints the bound address (flushed, so scripts can scrape an
    ephemeral port), waits for the first subscriber, then publishes
    ``--iterations`` refreshes and says BYE to everyone.
    """
    import asyncio

    from repro.core.sampler import Sampler
    from repro.serve.daemon import CollectorDaemon

    machine = datacenter.make_node(tick=min(0.5, args.delay / 4))
    datacenter.populate_fig1(machine)
    host = SimHost(machine)
    sampler = Sampler(host.backend, host.tasks, screen, options)
    daemon = CollectorDaemon(
        sampler,
        advance=lambda: host.sleep(args.delay),
        iterations=args.iterations,
        min_clients=1,
        profile=(
            (lambda line: print(line, file=sys.stderr))
            if args.profile
            else None
        ),
    )

    async def go() -> None:
        port = await daemon.start(port=args.serve)
        print(f"tiptop: serving on 127.0.0.1:{port}", flush=True)
        await daemon.run()
        await daemon.close()

    asyncio.run(go())
    return 0


def _run_connect(args: argparse.Namespace, options: Options) -> int:
    """The --connect path: the viewer side of the collector split.

    Served frames are bitwise-identical to local sampling, so they feed
    the ordinary batch renderer (and the server names its screen in
    HELLO, so columns always match what the daemon counts).
    """
    import asyncio

    from repro.core import formatter
    from repro.core.sampler import Snapshot
    from repro.serve.client import ServeClient

    host_name, _, port_text = options.connect.rpartition(":")

    async def go() -> int:
        client = ServeClient(host_name, int(port_text), client_id="tiptop")
        hello = await client.connect()
        screen = get_screen(hello.get("screen", "default"))
        shown = 0
        try:
            async for _seq, frame in client.frames():
                snapshot = Snapshot(
                    time=frame.time,
                    interval=frame.interval,
                    rows=(),
                    frame=frame,
                )
                sys.stdout.write(formatter.render_batch(screen, snapshot) + "\n")
                shown += 1
                if args.iterations is not None and shown >= args.iterations:
                    await client.leave()
        finally:
            await client.close()
        if args.profile and client.bye and "stats" in client.bye:
            print(f"tiptop: serve stats {client.bye['stats']}", file=sys.stderr)
        return 0

    return asyncio.run(go())


def main(argv: list[str] | None = None) -> int:
    """Entry point. Returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_screens:
        for screen in builtin_screens():
            print(f"{screen.name:10s} {screen.description}")
        return 0
    if args.replay is not None:
        from repro.verify.cli import main as verify_main

        return verify_main(["--replay", args.replay])
    if args.chaos is not None and not args.sim:
        print(
            "tiptop: --chaos injects faults into the simulated kernel "
            "and requires --sim",
            file=sys.stderr,
        )
        return 2
    if args.grid_workers is not None and not args.sim:
        print(
            "tiptop: --grid-workers runs the simulated datacenter grid "
            "and requires --sim",
            file=sys.stderr,
        )
        return 2
    if args.serve is not None and not args.sim:
        print(
            "tiptop: --serve runs the collector daemon over the simulated "
            "node and requires --sim",
            file=sys.stderr,
        )
        return 2
    if args.serve is not None and args.connect is not None:
        print(
            "tiptop: --serve and --connect are mutually exclusive",
            file=sys.stderr,
        )
        return 2
    if args.grid_chaos is not None and (
        not args.sim or args.grid_workers is None
    ):
        print(
            "tiptop: --grid-chaos injects worker faults into the "
            "simulated grid and requires --sim and --grid-workers",
            file=sys.stderr,
        )
        return 2
    if args.net_chaos is not None and (
        not args.sim or args.grid_workers is None
    ):
        print(
            "tiptop: --net-chaos injects network faults into the "
            "simulated grid and requires --sim and --grid-workers",
            file=sys.stderr,
        )
        return 2
    if args.grid_transport is not None and args.grid_transport not in (
        "inproc", "fork", "socket"
    ):
        print(
            "tiptop: --grid-transport must be one of inproc, fork, socket; "
            f"got {args.grid_transport!r}",
            file=sys.stderr,
        )
        return 2
    if args.grid_transport is not None and (
        not args.sim or args.grid_workers is None
    ):
        print(
            "tiptop: --grid-transport selects the shard transport of the "
            "simulated grid and requires --sim and --grid-workers",
            file=sys.stderr,
        )
        return 2
    if args.grid_hosts is not None and (
        not args.sim or args.grid_workers is None
    ):
        print(
            "tiptop: --grid-hosts groups the simulated grid's workers "
            "into hosts and requires --sim and --grid-workers",
            file=sys.stderr,
        )
        return 2
    try:
        options = Options(
            delay=args.delay,
            batch=args.batch,
            iterations=args.iterations,
            per_thread=args.threads,
            watch_uid=args.uid,
            watch_pids=frozenset(args.pid),
            screen=args.screen,
            profile=args.profile,
            chaos=args.chaos,
            grid_workers=args.grid_workers or 1,
            grid_chaos=args.grid_chaos,
            net_chaos=args.net_chaos,
            grid_transport=args.grid_transport,
            grid_hosts=args.grid_hosts,
            serve_port=args.serve,
            connect=args.connect,
        )
        if args.grid_workers is not None:
            return _run_grid(options)
        if args.connect is not None:
            return _run_connect(args, options)
        if args.screen_file:
            from repro.core.config_file import find_screen, load_screens

            screen = find_screen(load_screens(args.screen_file), args.screen)
        else:
            screen = get_screen(args.screen)
        if args.serve is not None:
            return _run_serve(args, options, screen)
        if args.sim:
            machine = datacenter.make_node(tick=min(0.5, args.delay / 4))
            datacenter.populate_fig1(machine)
            host = SimHost(machine)
        else:
            host = RealHost()
        with TipTop(host, options, screen) as app:
            if args.batch:
                app.run_batch(args.iterations)
            else:
                app.run_live(args.iterations)
    except PerfNotSupportedError as exc:
        print(f"tiptop: {exc}", file=sys.stderr)
        print("tiptop: hint: re-run with --sim", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"tiptop: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
