"""RingBuffer behaviour."""

import pytest

from repro.util.ringbuffer import RingBuffer


class TestBasics:
    def test_empty(self):
        rb = RingBuffer(4)
        assert len(rb) == 0
        assert not rb.full
        assert rb.capacity == 4

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RingBuffer(0)

    def test_append_and_iterate_in_order(self):
        rb = RingBuffer(4)
        rb.extend([1, 2, 3])
        assert list(rb) == [1, 2, 3]

    def test_latest(self):
        rb = RingBuffer(3)
        rb.extend(["a", "b"])
        assert rb.latest() == "b"

    def test_latest_empty_raises(self):
        with pytest.raises(IndexError):
            RingBuffer(2).latest()


class TestEviction:
    def test_overwrite_oldest(self):
        rb = RingBuffer(3)
        rb.extend([1, 2, 3, 4, 5])
        assert list(rb) == [3, 4, 5]
        assert rb.full

    def test_len_capped(self):
        rb = RingBuffer(3)
        rb.extend(range(100))
        assert len(rb) == 3

    def test_wrap_many_times(self):
        rb = RingBuffer(2)
        for i in range(1001):
            rb.append(i)
        assert list(rb) == [999, 1000]


class TestIndexing:
    def test_positive_index(self):
        rb = RingBuffer(3)
        rb.extend([10, 20, 30, 40])
        assert rb[0] == 20
        assert rb[2] == 40

    def test_negative_index(self):
        rb = RingBuffer(3)
        rb.extend([10, 20, 30])
        assert rb[-1] == 30

    def test_out_of_range(self):
        rb = RingBuffer(3)
        rb.append(1)
        with pytest.raises(IndexError):
            rb[1]

    def test_slice_rejected(self):
        rb = RingBuffer(3)
        rb.append(1)
        with pytest.raises(TypeError):
            rb[0:1]


class TestClear:
    def test_clear_resets(self):
        rb = RingBuffer(3)
        rb.extend([1, 2, 3])
        rb.clear()
        assert len(rb) == 0
        rb.append(9)
        assert list(rb) == [9]
