"""Kernel counter table: accrual, enabled/running time, multiplexing."""

import pytest

from repro.errors import CounterStateError
from repro.sim.counters import CounterTable
from repro.sim.events import Event


@pytest.fixture
def table():
    return CounterTable(pmu_width=4)


class TestOpenClose:
    def test_open_returns_distinct_handles(self, table):
        a = table.open(Event.CYCLES, 1, 0)
        b = table.open(Event.INSTRUCTIONS, 1, 0)
        assert a.counter_id != b.counter_id
        assert table.open_count() == 2

    def test_get_unknown_raises(self, table):
        with pytest.raises(CounterStateError):
            table.get(12345)

    def test_close_releases(self, table):
        c = table.open(Event.CYCLES, 1, 0)
        table.close(c.counter_id)
        assert table.open_count() == 0
        with pytest.raises(CounterStateError):
            table.get(c.counter_id)

    def test_read_closed_raises(self, table):
        c = table.open(Event.CYCLES, 1, 0)
        table.close(c.counter_id)
        with pytest.raises(CounterStateError):
            c.reading()

    def test_bad_width(self):
        with pytest.raises(CounterStateError):
            CounterTable(0)


class TestAccrual:
    def test_scheduled_accrues_value_and_times(self, table):
        c = table.open(Event.CYCLES, 1, 0)
        table.accrue(1, {Event.CYCLES: 100.0}, wall_dt=1.0, scheduled_dt=1.0, alive=True)
        value, enabled, running = c.reading()
        assert value == 100
        assert enabled == 1.0
        assert running == 1.0

    def test_unscheduled_advances_enabled_only(self, table):
        c = table.open(Event.CYCLES, 1, 0)
        table.accrue(1, {}, wall_dt=1.0, scheduled_dt=0.0, alive=True)
        value, enabled, running = c.reading()
        assert value == 0
        assert enabled == 1.0
        assert running == 0.0

    def test_disabled_counter_frozen(self, table):
        c = table.open(Event.CYCLES, 1, 0)
        c.enabled = False
        table.accrue(1, {Event.CYCLES: 50.0}, wall_dt=1.0, scheduled_dt=1.0, alive=True)
        assert c.reading() == (0, 0.0, 0.0)

    def test_dead_task_frozen(self, table):
        c = table.open(Event.CYCLES, 1, 0)
        table.accrue(1, {Event.CYCLES: 50.0}, wall_dt=1.0, scheduled_dt=1.0, alive=False)
        assert c.reading() == (0, 0.0, 0.0)

    def test_accrue_unmonitored_tid_is_noop(self, table):
        table.accrue(999, {Event.CYCLES: 1.0}, wall_dt=1.0, scheduled_dt=1.0, alive=True)

    def test_only_matching_event_accrues(self, table):
        c = table.open(Event.CYCLES, 1, 0)
        i = table.open(Event.INSTRUCTIONS, 1, 0)
        table.accrue(
            1,
            {Event.CYCLES: 10.0, Event.INSTRUCTIONS: 30.0},
            wall_dt=1.0,
            scheduled_dt=1.0,
            alive=True,
        )
        assert c.reading()[0] == 10
        assert i.reading()[0] == 30


class TestMultiplexing:
    def test_within_width_all_run(self, table):
        counters = [
            table.open(e, 1, 0)
            for e in (Event.CYCLES, Event.INSTRUCTIONS, Event.CACHE_MISSES)
        ]
        table.accrue(1, {e.event: 1.0 for e in counters}, wall_dt=1.0,
                     scheduled_dt=1.0, alive=True)
        for c in counters:
            assert c.reading()[2] == 1.0  # time_running == scheduled

    def test_over_width_rotates(self, table):
        events = [
            Event.CYCLES,
            Event.INSTRUCTIONS,
            Event.CACHE_MISSES,
            Event.CACHE_REFERENCES,
            Event.BRANCH_MISSES,
            Event.BRANCH_INSTRUCTIONS,
        ]
        counters = [table.open(e, 1, 0) for e in events]
        ticks = 60
        for _ in range(ticks):
            table.accrue(1, {e: 1.0 for e in events}, wall_dt=1.0,
                         scheduled_dt=1.0, alive=True)
        for c in counters:
            value, enabled, running = c.reading()
            assert enabled == ticks
            assert running < ticks  # multiplexed off part of the time
            # Scaling recovers the true count within rotation granularity.
            scaled = value * enabled / running
            assert scaled == pytest.approx(ticks, rel=0.1)

    def test_rotation_is_fair(self, table):
        events = [
            Event.CYCLES,
            Event.INSTRUCTIONS,
            Event.CACHE_MISSES,
            Event.CACHE_REFERENCES,
            Event.BRANCH_MISSES,
            Event.BRANCH_INSTRUCTIONS,
            Event.BUS_CYCLES,
            Event.LOADS,
        ]
        counters = [table.open(e, 1, 0) for e in events]
        for _ in range(80):
            table.accrue(1, {e: 1.0 for e in events}, wall_dt=1.0,
                         scheduled_dt=1.0, alive=True)
        runnings = [c.reading()[2] for c in counters]
        assert max(runnings) - min(runnings) <= 2.0
