"""Shared fixtures: machines, phases, workloads."""

from __future__ import annotations

import math

import pytest

from repro.sim import NEHALEM, SimMachine
from repro.sim.branch import BranchBehavior
from repro.sim.cache import MemoryBehavior
from repro.sim.isa import InstructionMix
from repro.sim.workload import Phase, Workload


@pytest.fixture
def basic_mix() -> InstructionMix:
    """A plausible integer-code mix."""
    return InstructionMix.of(
        int_alu=0.5, load=0.2, store=0.05, branch=0.15, fp_sse=0.1
    )


@pytest.fixture
def basic_phase(basic_mix) -> Phase:
    """A noise-free steady phase (~10 s of work at IPC ~1.5)."""
    return Phase(
        name="steady",
        instructions=3.07e9 * 10,
        mix=basic_mix,
        memory=MemoryBehavior(working_set=1 * 1024 * 1024),
        branches=BranchBehavior(mispredict_ratio=0.02),
        exec_cpi=0.5,
        noise=0.0,
    )


@pytest.fixture
def endless_phase(basic_phase) -> Phase:
    """The same phase, never ending."""
    return basic_phase.with_budget(math.inf)


@pytest.fixture
def basic_workload(basic_phase) -> Workload:
    """Single-phase finite workload."""
    return Workload("steady", (basic_phase,))


@pytest.fixture
def endless_workload(endless_phase) -> Workload:
    """Single-phase endless workload."""
    return Workload("endless", (endless_phase,))


@pytest.fixture
def nehalem_machine() -> SimMachine:
    """Quad-core Nehalem with SMT, 0.1 s ticks, fixed seed."""
    return SimMachine(NEHALEM, sockets=1, cores_per_socket=4, tick=0.1, seed=11)


@pytest.fixture
def coarse_machine() -> SimMachine:
    """Same machine with 0.5 s ticks for longer runs."""
    return SimMachine(NEHALEM, sockets=1, cores_per_socket=4, tick=0.5, seed=11)
