"""Parse batch-mode output back into structured data.

Batch mode exists for "further processing, in the spirit of UNIX filters
such as sed, awk" (§2.1). This module is the awk side: it parses a stream
of batch blocks back into typed records, so downstream tooling (and our
tests) can round-trip the text format. The parser is deliberately strict —
a format drift between renderer and parser should fail loudly.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass

import numpy as np

from repro.core.frame import INTRINSIC_KINDS, SnapshotFrame
from repro.errors import ReproError

_STAMP_RE = re.compile(
    r"^--- t=(?P<time>[0-9.]+)s interval=(?P<interval>[0-9.]+)s ---$"
)


@dataclass(frozen=True)
class BatchRow:
    """One parsed task row.

    Numeric cells are floats; NaN cells ("-") become None; PID is int.
    """

    pid: int
    cells: dict[str, float | str | None]

    def __getitem__(self, header: str) -> float | str | None:
        return self.cells[header]


@dataclass(frozen=True)
class BatchBlock:
    """One parsed refresh block."""

    time: float
    interval: float
    headers: tuple[str, ...]
    rows: tuple[BatchRow, ...]

    def row_for(self, pid: int) -> BatchRow | None:
        """Row of one pid, or None."""
        for row in self.rows:
            if row.pid == pid:
                return row
        return None


def _parse_cell(text: str) -> float | str | None:
    if text == "-":
        return None
    try:
        return float(text)
    except ValueError:
        return text


def parse_blocks(stream: str) -> list[BatchBlock]:
    """Parse a concatenation of batch blocks.

    The format is fixed-width columns, so splitting on whitespace is only
    safe because the renderer never emits spaces inside numeric cells and
    COMMAND (the only free-text column) comes last.

    Raises:
        ReproError: malformed stamps, missing headers, or rows whose cell
            count disagrees with the header.
    """
    blocks: list[BatchBlock] = []
    lines = stream.splitlines()
    i = 0
    while i < len(lines):
        line = lines[i].strip()
        if not line:
            i += 1
            continue
        match = _STAMP_RE.match(line)
        if not match:
            raise ReproError(f"expected a block stamp, got {line!r}")
        time = float(match.group("time"))
        interval = float(match.group("interval"))
        i += 1
        if i >= len(lines):
            raise ReproError(f"block at t={time} has no header line")
        headers = tuple(lines[i].split())
        if not headers or headers[0] != "PID":
            raise ReproError(f"unexpected header line {lines[i]!r}")
        i += 1
        rows: list[BatchRow] = []
        while i < len(lines):
            row_line = lines[i]
            if not row_line.strip() or _STAMP_RE.match(row_line.strip()):
                break
            parts = row_line.split(None, len(headers) - 1)
            if len(parts) != len(headers):
                raise ReproError(
                    f"row has {len(parts)} cells for {len(headers)} headers: "
                    f"{row_line!r}"
                )
            cells = {h: _parse_cell(p) for h, p in zip(headers, parts)}
            pid_cell = cells.get("PID")
            if not isinstance(pid_cell, float):
                raise ReproError(f"non-numeric PID in {row_line!r}")
            rows.append(BatchRow(pid=int(pid_cell), cells=cells))
            i += 1
        blocks.append(
            BatchBlock(
                time=time,
                interval=interval,
                headers=headers,
                rows=tuple(rows),
            )
        )
    return blocks


def frames_from_blocks(blocks: list[BatchBlock]) -> list[SnapshotFrame]:
    """Lift parsed batch blocks into columnar SnapshotFrames.

    Column kinds are recovered from the intrinsic headers; every other
    header becomes an ``expr`` column when its cells are numeric (NaN for
    "-" cells) and a ``label`` column otherwise. Counter deltas are not
    part of the batch format, so ``deltas`` is empty; uids are unknown.
    """
    frames: list[SnapshotFrame] = []
    for block in blocks:
        n = len(block.rows)

        def cells(header: str) -> list:
            return [row.cells.get(header) for row in block.rows]

        def numeric(header: str, fallback: float) -> np.ndarray:
            return np.fromiter(
                (
                    v if isinstance(v, float) else fallback
                    for v in cells(header)
                ),
                dtype=float,
                count=n,
            )

        columns: list[tuple[str, str]] = []
        metrics: dict[str, np.ndarray] = {}
        labels: dict[str, tuple[str, ...]] = {}
        for header in block.headers:
            kind = INTRINSIC_KINDS.get(header)
            if kind is None:
                values = cells(header)
                if any(isinstance(v, str) for v in values):
                    kind = "label"
                    labels[header] = tuple(
                        v if isinstance(v, str) else "" for v in values
                    )
                else:
                    kind = "expr"
                    metrics[header] = np.fromiter(
                        (
                            v if isinstance(v, float) else math.nan
                            for v in values
                        ),
                        dtype=float,
                        count=n,
                    )
            columns.append((header, kind))

        pids = np.fromiter(
            (row.pid for row in block.rows), dtype=np.int64, count=n
        )
        frames.append(
            SnapshotFrame(
                time=block.time,
                interval=block.interval,
                pids=pids,
                tids=pids.copy(),
                uids=np.full(n, -1, dtype=np.int64),
                users=tuple(
                    v if isinstance(v, str) else "" for v in cells("USER")
                ),
                comms=tuple(
                    v if isinstance(v, str) else "" for v in cells("COMMAND")
                ),
                cpu_pct=numeric("%CPU", math.nan),
                cpu_time=numeric("TIME+", 0.0),
                processors=numeric("P", -1).astype(np.int64),
                deltas={},
                metrics=metrics,
                labels=labels,
                columns=tuple(columns),
            )
        )
    return frames


def series_from_blocks(
    blocks: list[BatchBlock], pid: int, header: str
) -> tuple[list[float], list[float]]:
    """(times, values) of one column for one pid — the awk one-liner."""
    times: list[float] = []
    values: list[float] = []
    for block in blocks:
        row = block.row_for(pid)
        if row is None:
            continue
        value = row[header]
        if isinstance(value, float):
            times.append(block.time)
            values.append(value)
    return times, values
