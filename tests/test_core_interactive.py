"""Interactive live-mode commands."""

import pytest

from repro import Options, SimHost
from repro.core.interactive import InteractiveSession, help_frame
from repro.errors import ConfigError


class Keys:
    """A scripted input source: one list of commands per refresh."""

    def __init__(self, *per_refresh):
        self.queues = list(per_refresh)

    def __call__(self):
        return self.queues.pop(0) if self.queues else []


@pytest.fixture
def host(coarse_machine, endless_workload):
    coarse_machine.spawn("busy", endless_workload, uid=1000)
    coarse_machine.spawn("other", endless_workload, uid=1001, duty_cycle=0.02)
    return SimHost(coarse_machine)


def _session(host, keys, **opt):
    return InteractiveSession(
        host, Options(delay=2.0, **opt), input_source=keys
    )


class TestCommands:
    def test_quit_stops_loop(self, host):
        session = _session(host, Keys([], ["q"]))
        frames = session.run(max_iterations=50)
        assert len(frames) == 1  # one refresh before the quit

    def test_delay_change(self, host):
        session = _session(host, Keys(["d 7"], ["q"]))
        session.run()
        assert session.options.delay == 7.0
        assert host.machine.now == pytest.approx(7.0)

    def test_delay_bad_argument_reports(self, host):
        session = _session(host, Keys(["d soon"], ["q"]))
        frames = session.run()
        assert any("needs a number" in f for f in frames)

    def test_screen_switch_reattaches(self, host):
        session = _session(host, Keys(["s cache"], ["q"]))
        frames = session.run()
        assert "L2MIS" in frames[-1]
        assert host.machine.counters.open_count() == 0  # closed at exit

    def test_unknown_screen_reports(self, host):
        session = _session(host, Keys(["s warp"], ["q"]))
        frames = session.run()
        assert any("unknown screen" in f for f in frames)

    def test_thread_toggle(self, host):
        session = _session(host, Keys(["H"], ["q"]))
        session.run()
        assert session.options.per_thread

    def test_idle_toggle_hides_rows(self, host):
        noisy = _session(host, Keys([], ["q"]))
        visible = noisy.run()[-1]
        assert "other" in visible

        host2_frames = _session(host, Keys(["i"], ["q"])).run()
        assert "other" not in host2_frames[-1]
        assert "busy" in host2_frames[-1]

    def test_uid_filter_and_clear(self, host):
        session = _session(host, Keys(["u 1000"], [], ["u"], [], ["q"]))
        frames = session.run()
        assert "other" not in frames[0]
        assert "other" in frames[-1]

    def test_help(self, host):
        session = _session(host, Keys(["h"], ["q"]))
        frames = session.run()
        assert any("interactive commands" in f for f in frames)

    def test_unknown_command_reports(self, host):
        session = _session(host, Keys(["z"], ["q"]))
        frames = session.run()
        assert any("unknown command" in f for f in frames)

    def test_handle_raises_directly(self, host):
        session = _session(host, Keys())
        with pytest.raises(ConfigError):
            session.handle("d never")
        session.close()

    def test_empty_command_ignored(self, host):
        session = _session(host, Keys(["", "  "], ["q"]))
        frames = session.run()
        assert len(frames) == 1

    def test_max_iterations_bound(self, host):
        session = _session(host, Keys())
        frames = session.run(max_iterations=3)
        assert len(frames) == 3


class TestHelpFrame:
    def test_lists_screens(self):
        text = help_frame()
        for name in ("default", "cache", "fpassist", "latency"):
            assert name in text
