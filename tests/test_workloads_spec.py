"""SPEC benchmark models (Figs. 6-9, 11)."""

import pytest

from repro.errors import WorkloadError
from repro.sim import CORE2, NEHALEM, PPC970
from repro.sim.core import solo_rates
from repro.sim.workloads import spec


class TestRegistry:
    def test_available(self):
        names = spec.available()
        for expected in (
            "429.mcf",
            "473.astar",
            "410.bwaves",
            "435.gromacs",
            "456.hmmer",
            "482.sphinx3",
            "464.h264ref",
            "433.milc",
        ):
            assert expected in names

    def test_unknown_benchmark(self):
        with pytest.raises(WorkloadError):
            spec.workload("999.nothing")

    def test_unknown_compiler_variant(self):
        with pytest.raises(WorkloadError):
            spec.workload("429.mcf", "icc")

    def test_fig9_benchmarks_have_both_compilers(self):
        for name in ("456.hmmer", "482.sphinx3", "464.h264ref", "433.milc"):
            assert set(spec.compilers(name)) == {"gcc", "icc"}

    def test_cache_returns_same_object(self):
        assert spec.workload("429.mcf") is spec.workload("429.mcf")


class TestCalibration:
    def test_every_phase_hits_its_target(self):
        """Calibration is exact by construction on the reference machine."""
        for name in spec.available():
            for comp in spec.compilers(name):
                for phase in spec.workload(name, comp).phases:
                    ipc = solo_rates(NEHALEM, phase).ipc
                    assert 0.2 < ipc < 3.0, (name, comp, phase.name, ipc)

    def test_mcf_is_memory_bound(self):
        w = spec.workload("429.mcf")
        r = solo_rates(NEHALEM, w.phases[0])
        assert r.cpi_memory > r.cpi_exec

    def test_hmmer_is_compute_bound(self):
        w = spec.workload("456.hmmer")
        r = solo_rates(NEHALEM, w.phases[0])
        assert r.cpi_exec > r.cpi_memory

    def test_arch_ordering_for_astar(self):
        """Fig. 6b: Nehalem fastest, PPC970 slowest, for every phase."""
        w = spec.workload("473.astar")
        for phase in w.phases:
            neh = solo_rates(NEHALEM, phase).ipc
            ppc = solo_rates(PPC970, phase).ipc
            assert ppc < neh


class TestFig9Shapes:
    def _run_time(self, name, compiler):
        from repro.pin.inscount import native_run_time

        return native_run_time(NEHALEM, spec.workload(name, compiler))

    def _mean_ipc(self, name, compiler):
        w = spec.workload(name, compiler)
        weights = [p.instructions for p in w.phases]
        ipcs = [solo_rates(NEHALEM, p).ipc for p in w.phases]
        cycles = sum(n / i for n, i in zip(weights, ipcs))
        return sum(weights) / cycles

    def test_hmmer_higher_ipc_wins(self):
        """Fig. 9a."""
        assert self._mean_ipc("456.hmmer", "icc") > self._mean_ipc("456.hmmer", "gcc")
        assert self._run_time("456.hmmer", "icc") < self._run_time("456.hmmer", "gcc")

    def test_sphinx3_lower_ipc_wins(self):
        """Fig. 9b: icc's IPC is lower yet it finishes first."""
        assert self._mean_ipc("482.sphinx3", "icc") < self._mean_ipc(
            "482.sphinx3", "gcc"
        )
        assert self._run_time("482.sphinx3", "icc") < self._run_time(
            "482.sphinx3", "gcc"
        )

    def test_h264ref_inversion(self):
        """Fig. 9c: gcc leads in phase 1, trails in phase 2; times close."""
        gcc = spec.workload("464.h264ref", "gcc")
        icc = spec.workload("464.h264ref", "icc")
        gcc_p1 = solo_rates(NEHALEM, gcc.phases[0]).ipc
        icc_p1 = solo_rates(NEHALEM, icc.phases[0]).ipc
        gcc_p2 = solo_rates(NEHALEM, gcc.phases[1]).ipc
        icc_p2 = solo_rates(NEHALEM, icc.phases[1]).ipc
        assert gcc_p1 > icc_p1
        assert gcc_p2 < icc_p2
        t_gcc = self._run_time("464.h264ref", "gcc")
        t_icc = self._run_time("464.h264ref", "icc")
        assert abs(t_gcc - t_icc) / t_gcc < 0.1

    def test_milc_same_speed_different_ipc(self):
        """Fig. 9d: identical wall time, gcc IPC constantly higher."""
        t_gcc = self._run_time("433.milc", "gcc")
        t_icc = self._run_time("433.milc", "icc")
        assert t_gcc == pytest.approx(t_icc, rel=0.03)
        assert self._mean_ipc("433.milc", "gcc") > self._mean_ipc("433.milc", "icc")


class TestGromacs:
    def test_ripples_on_nehalem_only(self):
        """Fig. 7b: hi/lo alternation visible on Nehalem, flat elsewhere."""
        w = spec.workload("435.gromacs")
        hi, lo = w.phases[0], w.phases[1]
        neh_ratio = solo_rates(NEHALEM, hi).ipc / solo_rates(NEHALEM, lo).ipc
        core_ratio = solo_rates(CORE2, hi).ipc / solo_rates(CORE2, lo).ipc
        assert neh_ratio > 1.05
        assert core_ratio == pytest.approx(1.0, abs=0.02)


class TestPpcBuild:
    def test_ppc_binary_has_more_instructions(self):
        """Fig. 8: the PPC curve shifts right (different binary)."""
        intel = spec.workload("473.astar")
        ppc = spec.ppc_workload("473.astar")
        assert ppc.total_instructions > intel.total_instructions
        assert len(ppc.phases) == len(intel.phases)
