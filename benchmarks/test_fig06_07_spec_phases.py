"""Figures 6 and 7: SPEC 2006 phase profiles across architectures.

Paper: IPC-versus-time curves (1 s samples) for 429.mcf and 473.astar
(Fig. 6) and 410.bwaves and 435.gromacs (Fig. 7) on Nehalem, Core 2 and
PPC970. The benchmarks keep their phase *shapes* across architectures;
the absolute IPC and total run time differ. gromacs additionally shows
small ripples on Nehalem only; astar's last phases shift on the PPC970.
"""

import numpy as np
import pytest
from _harness import ipc_series, monitor_workload, once, save_artifact

from repro.sim import CORE2, NEHALEM, PPC970
from repro.sim.workloads import spec

ARCHES = {"nehalem": NEHALEM, "core2": CORE2, "ppc970": PPC970}


def _profile(bench: str):
    out = {}
    for arch_name, arch in ARCHES.items():
        workload = (
            spec.ppc_workload(bench) if arch_name == "ppc970" else spec.workload(bench)
        )
        recorder, proc = monitor_workload(
            arch, workload, delay=5.0, tick=2.5, seed=13, command=bench
        )
        out[arch_name] = ipc_series(recorder, proc, f"{bench} on {arch_name}")
    return out


def _segment_means(series, k=6):
    chunks = np.array_split(series.y, k)
    return [float(np.mean(c)) for c in chunks]


@pytest.mark.parametrize("bench", ["429.mcf", "473.astar"])
def test_fig06_phase_profiles(benchmark, bench):
    profiles = once(benchmark, lambda: _profile(bench))
    art = "\n\n".join(profiles[a].ascii_plot() for a in ARCHES)
    save_artifact(f"fig06_{bench.replace('.', '_')}", art)

    neh, core, ppc = (profiles[a] for a in ("nehalem", "core2", "ppc970"))
    # Ordering: Nehalem fastest (highest mean IPC), PPC slowest + longest.
    assert neh.mean() > core.mean() > ppc.mean()
    assert ppc.x[-1] > neh.x[-1]

    # Phase shape similarity across the Intel machines: the per-segment
    # profile correlates strongly.
    a = _segment_means(neh)
    b = _segment_means(core)
    assert np.corrcoef(a, b)[0, 1] > 0.9

    # Visible phases exist at all (the figures' point).
    assert max(a) / min(a) > 1.2


@pytest.mark.parametrize("bench", ["410.bwaves", "435.gromacs"])
def test_fig07_phase_profiles(benchmark, bench):
    profiles = once(benchmark, lambda: _profile(bench))
    art = "\n\n".join(profiles[a].ascii_plot() for a in ARCHES)
    save_artifact(f"fig07_{bench.replace('.', '_')}", art)

    neh, core, ppc = (profiles[a] for a in ("nehalem", "core2", "ppc970"))
    assert neh.mean() > ppc.mean()
    assert ppc.x[-1] > neh.x[-1]

    if bench == "435.gromacs":
        # Ripples visible on Nehalem only (§3.2): the hi/lo alternation
        # leaves a larger coefficient of variation there.
        cv = lambda s: float(np.std(s.y) / np.mean(s.y))
        assert cv(neh) > 1.8 * cv(core)
    else:
        # bwaves: steady high-ish IPC with dips.
        assert neh.mean() == pytest.approx(1.33, abs=0.1)
