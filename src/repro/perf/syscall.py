"""Real perf_event backend: the actual Linux system call via ctypes.

This is the backend the paper's tool uses on a physical machine. It is
fully implemented — attr construction, the syscall, ``read(2)`` of the
counter fd with TOTAL_TIME_ENABLED|RUNNING read format, and the
enable/disable/reset ioctls — and degrades cleanly: on kernels/containers
without a PMU (``perf_event_open`` -> ENOENT, or ``perf_event_paranoid``
locked down), :func:`kernel_supports_perf_events` returns False and
:class:`RealBackend` raises :class:`~repro.errors.PerfNotSupportedError`
at open time, letting callers fall back to the simulated backend.
"""

from __future__ import annotations

import ctypes
import errno
import os
import struct

from repro.errors import (
    CorruptReadError,
    FdLimitError,
    NoSuchTaskError,
    PerfBusyError,
    PerfError,
    PerfInterruptedError,
    PerfNotSupportedError,
    PerfPermissionError,
)
from repro.perf import abi
from repro.perf.counter import Reading
from repro.perf.events import EventSpec

_libc: ctypes.CDLL | None = None


def _get_libc() -> ctypes.CDLL:
    global _libc
    if _libc is None:
        _libc = ctypes.CDLL(None, use_errno=True)
    return _libc


def perf_event_open(
    attr: abi.PerfEventAttr,
    pid: int,
    cpu: int = -1,
    group_fd: int = -1,
    flags: int = 0,
) -> int:
    """Invoke the raw system call (Fig. 2's prototype).

    Tiptop sets ``cpu = -1`` to count per task rather than per CPU (§2.3);
    ``group_fd`` and ``flags`` are unused.

    Returns:
        The counter file descriptor.

    Raises:
        PerfNotSupportedError / PerfPermissionError / NoSuchTaskError /
        FdLimitError / PerfInterruptedError / PerfBusyError / PerfError:
        mapped from the syscall's errno.
    """
    libc = _get_libc()
    fd = libc.syscall(
        abi.SYSCALL_NR_X86_64,
        ctypes.byref(attr),
        pid,
        cpu,
        group_fd,
        flags,
    )
    if fd >= 0:
        return fd
    raise _errno_error(ctypes.get_errno(), f"perf_event_open on task {pid}")


def _errno_error(err: int, what: str) -> PerfError:
    """Map one errno to the library's exception taxonomy.

    The retry/quarantine machinery keys off these classes, so the mapping
    is the contract: transient errnos (EINTR, EAGAIN, EBUSY) must come
    back as :class:`TransientPerfError` subclasses, resource exhaustion
    (EMFILE/ENFILE) as :class:`FdLimitError`, task death as
    :class:`NoSuchTaskError` — exactly what the simulated backend's fault
    plans inject.
    """
    strerror = os.strerror(err)
    if err in (errno.ENOENT, errno.ENOSYS, errno.EOPNOTSUPP):
        return PerfNotSupportedError(
            f"{what} failed: {strerror} (no usable PMU on this kernel)"
        )
    if err in (errno.EPERM, errno.EACCES):
        return PerfPermissionError(
            f"{what} denied: {strerror} "
            "(non-privileged users can only watch their own tasks)"
        )
    if err == errno.ESRCH:
        return NoSuchTaskError(f"{what} failed: no such task")
    if err in (errno.EMFILE, errno.ENFILE):
        return FdLimitError(f"{what} failed: {strerror} (fd table full)")
    if err == errno.EINTR:
        return PerfInterruptedError(f"{what} interrupted: {strerror}")
    if err in (errno.EAGAIN, errno.EBUSY):
        return PerfBusyError(f"{what} busy: {strerror}")
    return PerfError(f"{what} failed: {strerror}")


def paranoid_level() -> int | None:
    """Current ``kernel.perf_event_paranoid``, or None when unreadable."""
    try:
        with open("/proc/sys/kernel/perf_event_paranoid") as fh:
            return int(fh.read().strip())
    except (OSError, ValueError):
        return None


def kernel_supports_perf_events() -> bool:
    """Probe whether a trivial self-monitoring counter can be opened."""
    attr = abi.counting_attr(
        abi.PerfTypeId.HARDWARE, int(abi.HardwareEventId.INSTRUCTIONS)
    )
    try:
        fd = perf_event_open(attr, pid=0)
    except PerfError:
        return False
    os.close(fd)
    return True


#: read(2) layout with TOTAL_TIME_ENABLED|TOTAL_TIME_RUNNING: three u64s.
_READ_STRUCT = struct.Struct("=QQQ")


class RealBackend:
    """perf backend talking to the running Linux kernel.

    Implements :class:`repro.perf.counter.Backend`; handles are real file
    descriptors. Time values from the kernel are nanoseconds and converted
    to seconds in :class:`Reading`.
    """

    def __init__(self) -> None:
        self._open_fds: set[int] = set()

    def open(
        self,
        event: EventSpec,
        tid: int,
        *,
        inherit: bool = False,
        sample_period: int | None = None,
    ) -> int:
        """Open ``event`` on ``tid`` (see protocol docs for raises)."""
        if sample_period is None:
            attr = abi.counting_attr(event.type_id, event.config, inherit=inherit)
        else:
            attr = abi.sampling_attr(
                event.type_id, event.config, sample_period, inherit=inherit
            )
        fd = perf_event_open(attr, pid=tid)
        self._open_fds.add(fd)
        return fd

    def read(self, handle: int) -> Reading:
        """Read value/time_enabled/time_running from the counter fd.

        ``os.read`` already restarts EINTR (PEP 475); remaining OSErrors
        are mapped through the errno taxonomy so the caller's retry logic
        sees EAGAIN as :class:`~repro.errors.PerfBusyError` rather than a
        terminal failure. A short read means the kernel handed back a torn
        value — :class:`~repro.errors.CorruptReadError`, which is
        retryable.
        """
        try:
            data = os.read(handle, _READ_STRUCT.size)
        except OSError as exc:
            raise _errno_error(
                exc.errno or errno.EIO, f"read on counter fd {handle}"
            ) from exc
        if len(data) < _READ_STRUCT.size:
            raise CorruptReadError(
                f"short read ({len(data)} bytes) on counter fd {handle}"
            )
        value, enabled_ns, running_ns = _READ_STRUCT.unpack(data)
        return Reading(value, enabled_ns / 1e9, running_ns / 1e9)

    def _ioctl(self, handle: int, request: int) -> None:
        libc = _get_libc()
        while libc.ioctl(handle, request, 0) < 0:
            err = ctypes.get_errno()
            if err == errno.EINTR:
                # Restart interrupted ioctls ourselves; ctypes does not.
                continue
            raise _errno_error(err, f"ioctl {request:#x} on fd {handle}")

    def enable(self, handle: int) -> None:
        """ioctl PERF_EVENT_IOC_ENABLE."""
        self._ioctl(handle, abi.IOCTL_ENABLE)

    def disable(self, handle: int) -> None:
        """ioctl PERF_EVENT_IOC_DISABLE."""
        self._ioctl(handle, abi.IOCTL_DISABLE)

    def reset(self, handle: int) -> None:
        """ioctl PERF_EVENT_IOC_RESET."""
        self._ioctl(handle, abi.IOCTL_RESET)

    def close(self, handle: int) -> None:
        """Close the counter fd.

        On Linux the fd is released even when ``close(2)`` returns EINTR,
        so an interrupted close is swallowed — retrying it could close an
        unrelated, freshly reused descriptor.
        """
        self._open_fds.discard(handle)
        try:
            os.close(handle)
        except OSError as exc:
            if exc.errno != errno.EINTR:
                raise _errno_error(
                    exc.errno or errno.EIO, f"close of counter fd {handle}"
                ) from exc

    def close_all(self) -> None:
        """Release every fd this backend still holds (cleanup helper)."""
        for fd in list(self._open_fds):
            self.close(fd)
