"""Backpressure properties: exact accounting under slow readers.

These tests run the :class:`~repro.serve.session.FanoutHub` directly —
no sockets, no event loop — because the invariants are pure queue
algebra and should hold for *any* interleaving of publishes and pops:

* ``published == delivered + dropped + lag`` at every instant;
* delivered sequences are strictly increasing per client;
* a full queue drops the *oldest* pending frame, never a newer one;
* a reconnect with ``resume_from`` replays exactly the retained frames
  the client has not seen.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.frame import SnapshotFrame
from repro.errors import SessionError
from repro.serve.protocol import decode_message
from repro.serve.session import ClientSession, FanoutHub, Subscription


def _frame(step: int, n: int = 3) -> SnapshotFrame:
    """A tiny distinguishable frame (time encodes the step)."""
    return SnapshotFrame(
        time=float(step),
        interval=1.0,
        pids=np.arange(n, dtype=np.int64) + 100,
        tids=np.arange(n, dtype=np.int64) + 100,
        uids=np.zeros(n, dtype=np.int64),
        users=("root",) * n,
        comms=tuple(f"task{i}" for i in range(n)),
        cpu_pct=np.full(n, 50.0),
        cpu_time=np.full(n, float(step)),
        processors=np.zeros(n, dtype=np.int64),
        deltas={"cycles": np.full(n, 1000.0 * (step + 1))},
        metrics={},
        labels={},
        columns=(("PID", "pid"), ("cycles", "delta")),
    )


def _seq_of(payload: bytes) -> int:
    _, (seq, _frame_obj) = decode_message(payload[4:])
    return seq


def _check_identity(session: ClientSession) -> None:
    stats = session.stats()
    assert stats["published"] == (
        stats["delivered"] + stats["dropped"] + stats["lag"]
    ), stats


# -- the accounting identity, deterministically -------------------------------

def test_identity_holds_at_every_step_seeded():
    """A seeded slow-reader schedule: after every publish and every pop,
    published == delivered + dropped + lag, and drops only ever happen
    when the queue was full."""
    rng = random.Random(1234)
    hub = FanoutHub(queue_limit=4, retention=16)
    fast = hub.add_session("fast")
    slow = hub.add_session("slow")
    popped: dict[str, list[int]] = {"fast": [], "slow": []}

    for step in range(60):
        hub.publish(_frame(step))
        _check_identity(fast)
        _check_identity(slow)
        # The fast client drains fully; the slow one pops 0-1 frames.
        while (item := fast.pop()) is not None:
            popped["fast"].append(item[0])
            _check_identity(fast)
        if rng.random() < 0.4:
            item = slow.pop()
            if item is not None:
                popped["slow"].append(item[0])
            _check_identity(slow)

    assert fast.dropped == 0
    assert fast.delivered == 60
    assert slow.dropped > 0  # the schedule really was slow
    assert slow.published == 60
    assert slow.published == slow.delivered + slow.dropped + slow.lag
    # Monotonic delivery on both sides.
    for seqs in popped.values():
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)


def test_drop_oldest_not_newest():
    session = ClientSession("s", Subscription(), queue_limit=2)
    session.offer(0, b"a")
    session.offer(1, b"b")
    dropped = session.offer(2, b"c")
    assert dropped is True and session.dropped == 1
    # Seq 0 (the oldest) went; 1 and 2 survive in order.
    assert session.pop() == (1, b"b")
    assert session.pop() == (2, b"c")
    assert session.pop() is None
    _check_identity(session)


def test_offer_rejects_non_monotonic_seq():
    session = ClientSession("s", Subscription(), queue_limit=4)
    session.offer(5, b"x")
    with pytest.raises(SessionError):
        session.offer(5, b"y")
    with pytest.raises(SessionError):
        session.offer(3, b"z")


def test_duplicate_client_id_rejected():
    hub = FanoutHub()
    hub.add_session("dash")
    with pytest.raises(SessionError):
        hub.add_session("dash")
    hub.remove_session("dash")
    hub.add_session("dash")  # free again after removal


def test_queue_limit_must_be_positive():
    with pytest.raises(SessionError):
        ClientSession("s", Subscription(), queue_limit=0)


# -- resume-after-drop --------------------------------------------------------

def test_resume_replays_from_last_seen():
    """Disconnect after seq 2, publish on, resume: the client gets
    exactly the retained frames with seq > 2, in order."""
    hub = FanoutHub(queue_limit=8, retention=16)
    session = hub.add_session("viewer")
    for step in range(3):
        hub.publish(_frame(step))
    seen = []
    while (item := session.pop()) is not None:
        seen.append(item[0])
    assert seen == [0, 1, 2]

    hub.remove_session("viewer")
    for step in range(3, 7):
        hub.publish(_frame(step))  # published while disconnected

    revived = hub.add_session("viewer", resume_from=2)
    replayed = []
    while (item := revived.pop()) is not None:
        replayed.append(item[0])
    assert replayed == [3, 4, 5, 6]
    _check_identity(revived)


def test_resume_beyond_retention_loses_oldest():
    """Frames that aged out of the retention ring cannot be replayed:
    the resumed stream starts at the oldest retained frame."""
    hub = FanoutHub(queue_limit=64, retention=4)
    for step in range(10):
        hub.publish(_frame(step))
    assert hub.retained_range() == (6, 9)
    late = hub.add_session("late", resume_from=0)
    got = []
    while (item := late.pop()) is not None:
        got.append(item[0])
    assert got == [6, 7, 8, 9]


def test_resume_payloads_decode_to_subscription_view():
    """Replayed frames honour the (filtered) subscription, same as live."""
    hub = FanoutHub(retention=8)
    hub.publish(_frame(0))
    hub.publish(_frame(1))
    sub = Subscription(comms=frozenset({"task0"}))
    session = hub.add_session("narrow", sub, resume_from=-1)
    item = session.pop()
    assert item is not None
    _, (seq, frame) = decode_message(item[1][4:])
    assert seq == 0
    assert tuple(frame.comms) == ("task0",)


# -- hypothesis: random schedules ---------------------------------------------

@settings(max_examples=50, deadline=None)
@given(
    schedule=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3)),
        min_size=1,
        max_size=40,
    ),
    queue_limit=st.integers(min_value=1, max_value=5),
)
def test_identity_under_arbitrary_schedules(schedule, queue_limit):
    """For any interleaving of (publishes, pops) and any queue bound:
    the identity holds, delivered seqs are strictly increasing, and
    nothing is ever delivered twice."""
    hub = FanoutHub(queue_limit=queue_limit, retention=8)
    session = hub.add_session("c")
    delivered: list[int] = []
    step = 0
    for publishes, pops in schedule:
        for _ in range(publishes):
            hub.publish(_frame(step))
            step += 1
            _check_identity(session)
        for _ in range(pops):
            item = session.pop()
            if item is not None:
                delivered.append(item[0])
            _check_identity(session)
    assert delivered == sorted(delivered)
    assert len(set(delivered)) == len(delivered)
    assert session.published == step
    assert session.lag <= queue_limit


@settings(max_examples=25, deadline=None)
@given(
    drop_point=st.integers(min_value=1, max_value=6),
    extra=st.integers(min_value=0, max_value=6),
)
def test_resume_after_drop_replays_correct_frame(drop_point, extra):
    """Whatever the drop/disconnect point, resuming from the last popped
    seq yields the immediately-following retained frame first."""
    hub = FanoutHub(queue_limit=2, retention=32)
    session = hub.add_session("c")
    for step in range(drop_point):
        hub.publish(_frame(step))
    item = session.pop()
    if item is None:
        return
    last_seen = item[0]
    hub.remove_session("c")
    for step in range(drop_point, drop_point + extra):
        hub.publish(_frame(step))
    # A roomy queue so the replay itself doesn't re-drop (that behaviour
    # is pinned separately by the drop-oldest tests).
    revived = hub.add_session("c", resume_from=last_seen, queue_limit=64)
    got = []
    while (it := revived.pop()) is not None:
        got.append(it[0])
    assert got == list(range(last_seen + 1, drop_point + extra))
    # The replayed payloads carry the right sequence numbers on the wire.
    _check_identity(revived)


# -- encode cache -------------------------------------------------------------

def test_encode_cache_one_miss_for_identical_subs():
    hub = FanoutHub(queue_limit=4)
    for i in range(50):
        hub.add_session(f"dash-{i}")  # all total subscriptions
    hub.publish(_frame(0))
    assert hub.encode_misses == 1
    assert hub.encode_hits == 49
    payloads = {s.pop()[1] for s in hub.sessions.values()}
    assert len(payloads) == 1  # byte-identical fanout


def test_encode_cache_distinct_subs_encode_separately():
    hub = FanoutHub(queue_limit=4)
    hub.add_session("all")
    hub.add_session("narrow", Subscription(comms=frozenset({"task1"})))
    hub.add_session("narrow2", Subscription(comms=frozenset({"task1"})))
    hub.publish(_frame(0))
    assert hub.encode_misses == 2  # total + narrow, shared by narrow2
    assert hub.encode_hits == 1
    wide = decode_message(hub.sessions["all"].pop()[1][4:])[1][1]
    thin = decode_message(hub.sessions["narrow"].pop()[1][4:])[1][1]
    assert len(wide) == 3 and len(thin) == 1


def test_hub_stats_shape():
    hub = FanoutHub(queue_limit=2)
    hub.add_session("a")
    hub.add_session("b")
    for step in range(5):
        hub.publish(_frame(step))
    stats = hub.stats()
    assert stats["published_seqs"] == 5
    assert stats["clients"] == 2
    assert stats["dropped_total"] == sum(
        s["dropped"] for s in stats["sessions"]
    )
    assert stats["lag_max"] == 2
    for s in stats["sessions"]:
        assert s["published"] == s["delivered"] + s["dropped"] + s["lag"]
