"""Columnar snapshot container: the pipeline's shared interchange type.

The paper's promise is monitoring at negligible overhead (§2.5), and the
ROADMAP's north star is "as fast as the hardware allows". Per-task ``Row``
objects made every pipeline stage — sampling, recording, rendering,
analysis — re-walk Python lists and rebuild dicts per interval.
:class:`SnapshotFrame` replaces that interchange with one numpy-backed
columnar block per refresh: identity columns (pids, tids, uids, users,
commands), /proc-derived columns (%CPU, cumulative CPU time, last
processor), one float64 array per counter event, and one float64 array per
derived screen column. Downstream stages slice arrays instead of looping.

``Row``/``Sample`` remain as thin adapters: :meth:`to_rows` materialises
the exact objects the scalar pipeline used to build (same values, same
dict ordering), and :meth:`from_rows` lifts legacy row lists back into a
frame, so pre-existing call sites and tests keep working unchanged.

The ``columns`` field records the screen layout as ``(header, kind)``
pairs (kind is a :class:`~repro.core.columns.ColumnKind` value string), so
a frame is self-describing: renderers and the CSV codec can reconstruct
any row value without consulting the screen that produced it.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.sampler import Row

#: header -> ColumnKind.value for the intrinsic screen columns.
INTRINSIC_KINDS = {
    "PID": "pid",
    "USER": "user",
    "%CPU": "cpu",
    "TIME+": "time",
    "COMMAND": "command",
    "P": "processor",
}


@dataclass(frozen=True)
class SnapshotFrame:
    """One refresh as a column block (all arrays share one row axis).

    Attributes:
        time: snapshot timestamp (seconds since boot).
        interval: seconds since the previous snapshot (0.0 on the first).
        pids: process ids, int64.
        tids: monitored task ids (== pids unless per-thread mode), int64.
        uids: owner uids, int64 (-1 when unknown, e.g. lifted from rows).
        users: owner login names.
        comms: command names.
        cpu_pct: %CPU over the interval, float64.
        cpu_time: cumulative CPU seconds, float64.
        processors: CPU each task last ran on, int64 (-1 when unknown).
        deltas: scaled counter deltas, one float64 array per event name.
        metrics: derived column values, one float64 array per header.
        labels: non-intrinsic string columns (rare; kept for losslessness).
        columns: screen layout as (header, kind-value) pairs.
    """

    time: float
    interval: float
    pids: np.ndarray
    tids: np.ndarray
    uids: np.ndarray
    users: tuple[str, ...]
    comms: tuple[str, ...]
    cpu_pct: np.ndarray
    cpu_time: np.ndarray
    processors: np.ndarray
    deltas: dict[str, np.ndarray]
    metrics: dict[str, np.ndarray]
    labels: dict[str, tuple[str, ...]] = field(default_factory=dict)
    columns: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        n = len(self.pids)
        for name in ("tids", "uids", "cpu_pct", "cpu_time", "processors",
                     "users", "comms"):
            if len(getattr(self, name)) != n:
                raise ReproError(
                    f"frame column {name!r} has {len(getattr(self, name))} "
                    f"entries for {n} tasks"
                )
        for group_name in ("deltas", "metrics", "labels"):
            for key, col in getattr(self, group_name).items():
                if len(col) != n:
                    raise ReproError(
                        f"frame {group_name} column {key!r} has {len(col)} "
                        f"entries for {n} tasks"
                    )

    def __len__(self) -> int:
        return len(self.pids)

    # -- constructors -------------------------------------------------------
    @classmethod
    def empty(cls, time: float = 0.0, interval: float = 0.0) -> "SnapshotFrame":
        """A zero-task frame."""
        return cls(
            time=time,
            interval=interval,
            pids=np.empty(0, dtype=np.int64),
            tids=np.empty(0, dtype=np.int64),
            uids=np.empty(0, dtype=np.int64),
            users=(),
            comms=(),
            cpu_pct=np.empty(0),
            cpu_time=np.empty(0),
            processors=np.empty(0, dtype=np.int64),
            deltas={},
            metrics={},
        )

    @classmethod
    def from_rows(
        cls, time: float, interval: float, rows: "tuple[Row, ...] | list[Row]"
    ) -> "SnapshotFrame":
        """Lift legacy :class:`~repro.core.sampler.Row` objects into a frame.

        Column kinds are inferred: known intrinsic headers keep their kind,
        numeric values become ``expr`` columns, strings become ``label``
        columns. Uids are not part of ``Row`` and read as -1.
        """
        n = len(rows)
        if n == 0:
            return cls.empty(time, interval)
        columns: list[tuple[str, str]] = []
        for header, value in rows[0].values.items():
            kind = INTRINSIC_KINDS.get(header)
            if kind is None:
                kind = "expr" if isinstance(value, (int, float)) else "label"
            columns.append((header, kind))
        event_names: list[str] = []
        for row in rows:
            for name in row.deltas:
                if name not in event_names:
                    event_names.append(name)
        metrics: dict[str, np.ndarray] = {}
        labels: dict[str, tuple[str, ...]] = {}
        for header, kind in columns:
            if kind == "expr":
                metrics[header] = np.fromiter(
                    (
                        v if isinstance((v := row.values.get(header)), (int, float))
                        else math.nan
                        for row in rows
                    ),
                    dtype=float,
                    count=n,
                )
            elif kind == "label":
                labels[header] = tuple(
                    str(row.values.get(header, "")) for row in rows
                )
        return cls(
            time=time,
            interval=interval,
            pids=np.fromiter((r.pid for r in rows), dtype=np.int64, count=n),
            tids=np.fromiter((r.tid for r in rows), dtype=np.int64, count=n),
            uids=np.full(n, -1, dtype=np.int64),
            users=tuple(r.user for r in rows),
            comms=tuple(r.comm for r in rows),
            cpu_pct=np.fromiter((r.cpu_pct for r in rows), dtype=float, count=n),
            cpu_time=np.fromiter((r.cpu_time for r in rows), dtype=float, count=n),
            processors=np.full(n, -1, dtype=np.int64),
            deltas={
                name: np.fromiter(
                    (r.deltas.get(name, 0.0) for r in rows), dtype=float, count=n
                )
                for name in event_names
            },
            metrics=metrics,
            labels=labels,
            columns=tuple(columns),
        )

    # -- reshaping ----------------------------------------------------------
    def take(self, order: "list[int] | np.ndarray") -> "SnapshotFrame":
        """Frame with rows permuted/selected by integer index."""
        idx = np.asarray(order, dtype=np.intp)
        picks = idx.tolist()
        return replace(
            self,
            pids=self.pids[idx],
            tids=self.tids[idx],
            uids=self.uids[idx],
            users=tuple(self.users[i] for i in picks),
            comms=tuple(self.comms[i] for i in picks),
            cpu_pct=self.cpu_pct[idx],
            cpu_time=self.cpu_time[idx],
            processors=self.processors[idx],
            deltas={k: v[idx] for k, v in self.deltas.items()},
            metrics={k: v[idx] for k, v in self.metrics.items()},
            labels={
                k: tuple(v[i] for i in picks) for k, v in self.labels.items()
            },
        )

    def select(self, mask: np.ndarray) -> "SnapshotFrame":
        """Frame with only the rows where ``mask`` is true."""
        return self.take(np.flatnonzero(mask))

    # -- codec hooks --------------------------------------------------------
    def wire_columns(self):
        """Canonical column enumeration for binary codecs.

        Yields ``(group, name, values)`` triples in the fixed wire order:
        the six identity/``/proc`` arrays first (group ``"fixed"``), the
        two intrinsic string tuples (group ``"strings"``), then the
        ``deltas``, ``metrics`` and ``labels`` dictionaries in their own
        insertion order. :mod:`repro.serve.protocol` serialises exactly
        this sequence, so two frames that compare bitwise-equal encode to
        identical bytes and vice versa.
        """
        yield "fixed", "pids", self.pids
        yield "fixed", "tids", self.tids
        yield "fixed", "uids", self.uids
        yield "fixed", "cpu_pct", self.cpu_pct
        yield "fixed", "cpu_time", self.cpu_time
        yield "fixed", "processors", self.processors
        yield "strings", "users", self.users
        yield "strings", "comms", self.comms
        for name, col in self.deltas.items():
            yield "deltas", name, col
        for name, col in self.metrics.items():
            yield "metrics", name, col
        for name, col in self.labels.items():
            yield "labels", name, col

    def bitwise_equal(self, other: "SnapshotFrame") -> bool:
        """Exact equality: every scalar, array element (NaN included, by
        bit pattern), string and the column layout must match."""
        if not isinstance(other, SnapshotFrame):
            return False
        # Scalars compare by bit pattern too: a NaN interval (a frame
        # sampled before any time passed) must equal its own round trip.
        pack = struct.Struct("<dd").pack
        if (
            pack(self.time, self.interval) != pack(other.time, other.interval)
            or len(self) != len(other)
            or self.columns != other.columns
            or tuple(self.deltas) != tuple(other.deltas)
            or tuple(self.metrics) != tuple(other.metrics)
            or tuple(self.labels) != tuple(other.labels)
        ):
            return False
        for (group_a, name_a, col_a), (group_b, name_b, col_b) in zip(
            self.wire_columns(), other.wire_columns(), strict=True
        ):
            if group_a != group_b or name_a != name_b:
                return False
            if isinstance(col_a, np.ndarray):
                if not isinstance(col_b, np.ndarray):
                    return False
                if col_a.dtype != col_b.dtype:
                    return False
                if col_a.tobytes() != col_b.tobytes():
                    return False
            elif col_a != col_b:
                return False
        return True

    # -- access -------------------------------------------------------------
    def column_kind(self, header: str) -> str | None:
        """Kind-value of a screen column (None when absent)."""
        for name, kind in self.columns:
            if name == header:
                return kind
        return None

    def numeric_column(self, header: str) -> np.ndarray | None:
        """Float view of a numeric screen column (None for string columns
        or headers this frame does not carry)."""
        kind = self.column_kind(header)
        if kind == "pid":
            return self.pids.astype(float)
        if kind == "cpu":
            return self.cpu_pct
        if kind == "time":
            return self.cpu_time
        if kind == "processor":
            return self.processors.astype(float)
        if kind == "expr":
            return self.metrics[header]
        if kind is None and header in self.metrics:
            return self.metrics[header]
        return None

    def value_at(self, header: str, kind: str, i: int):
        """One cell as the exact scalar the row pipeline produced."""
        if kind == "pid":
            return int(self.pids[i])
        if kind == "user":
            return self.users[i]
        if kind == "cpu":
            return float(self.cpu_pct[i])
        if kind == "time":
            return float(self.cpu_time[i])
        if kind == "command":
            return self.comms[i]
        if kind == "processor":
            return int(self.processors[i])
        if kind == "expr":
            return float(self.metrics[header][i])
        return self.labels[header][i]

    # -- adapters -----------------------------------------------------------
    def to_rows(self) -> "tuple[Row, ...]":
        """Materialise legacy :class:`~repro.core.sampler.Row` objects.

        Values and dict orderings match what the scalar per-row pipeline
        produced, so everything downstream of the old API is unchanged.
        """
        from repro.core.sampler import Row

        event_names = tuple(self.deltas)
        rows = []
        for i in range(len(self)):
            rows.append(
                Row(
                    pid=int(self.pids[i]),
                    tid=int(self.tids[i]),
                    user=self.users[i],
                    comm=self.comms[i],
                    cpu_pct=float(self.cpu_pct[i]),
                    cpu_time=float(self.cpu_time[i]),
                    deltas={k: float(self.deltas[k][i]) for k in event_names},
                    values={
                        header: self.value_at(header, kind, i)
                        for header, kind in self.columns
                    },
                )
            )
        return tuple(rows)
