"""Real /proc parser.

Parses ``/proc/<pid>/stat`` (state, utime/stime, starttime, processor),
``/proc/<pid>/status`` (uid, name), ``/proc/<pid>/task`` (thread ids) and
``/proc/uptime``. Exercised in tests against the test process's own
``/proc/self`` — the container has a real procfs even though it has no PMU.
"""

from __future__ import annotations

import os
import pwd
from pathlib import Path

from repro.errors import ProcfsError
from repro.procfs.model import ProcessInfo


class ProcReader:
    """Task provider over the real /proc.

    Args:
        root: procfs mount point (overridable for tests with a fake tree).
        clock_ticks: kernel USER_HZ (``stat`` reports times in ticks).
    """

    def __init__(self, root: str = "/proc", clock_ticks: int | None = None) -> None:
        self.root = Path(root)
        self.clock_ticks = clock_ticks or os.sysconf("SC_CLK_TCK")

    def uptime(self) -> float:
        """Seconds since boot, from /proc/uptime."""
        try:
            text = (self.root / "uptime").read_text()
            return float(text.split()[0])
        except (OSError, ValueError, IndexError) as exc:
            raise ProcfsError(f"cannot read uptime from {self.root}: {exc}") from exc

    def _read_stat(self, pid: int) -> list[str]:
        try:
            text = (self.root / str(pid) / "stat").read_text()
        except OSError as exc:
            raise ProcfsError(f"no /proc entry for pid {pid}: {exc}") from exc
        # comm may contain spaces/parens; fields are after the last ')'.
        rparen = text.rfind(")")
        if rparen < 0:
            raise ProcfsError(f"malformed stat for pid {pid}")
        head, tail = text[:rparen], text[rparen + 1 :]
        lparen = head.find("(")
        comm = head[lparen + 1 :] if lparen >= 0 else "?"
        fields = [head.split()[0], comm, *tail.split()]
        if len(fields) < 40:
            raise ProcfsError(
                f"stat for pid {pid} has only {len(fields)} fields"
            )
        return fields

    def _read_uid(self, pid: int) -> int:
        try:
            for line in (self.root / str(pid) / "status").read_text().splitlines():
                if line.startswith("Uid:"):
                    return int(line.split()[1])
        except OSError as exc:
            raise ProcfsError(f"no status for pid {pid}: {exc}") from exc
        raise ProcfsError(f"no Uid line in status of pid {pid}")

    def _tids(self, pid: int) -> tuple[int, ...]:
        task_dir = self.root / str(pid) / "task"
        try:
            return tuple(sorted(int(t) for t in os.listdir(task_dir)))
        except (OSError, ValueError):
            return (pid,)

    @staticmethod
    def _user_name(uid: int) -> str:
        try:
            return pwd.getpwuid(uid).pw_name
        except KeyError:
            return str(uid)

    def process(self, pid: int) -> ProcessInfo:
        """Full :class:`ProcessInfo` for one pid.

        Raises:
            ProcfsError: when the pid has no /proc entry (exited).
        """
        fields = self._read_stat(pid)
        # stat(5) field numbers (1-based): 2 comm, 3 state, 14 utime,
        # 15 stime, 22 starttime, 39 processor.
        comm = fields[1]
        state = fields[2]
        utime = int(fields[13])
        stime = int(fields[14])
        starttime = int(fields[21])
        processor = int(fields[38])
        uid = self._read_uid(pid)
        return ProcessInfo(
            pid=pid,
            tids=self._tids(pid),
            uid=uid,
            user=self._user_name(uid),
            comm=comm,
            state=state,
            cpu_seconds=(utime + stime) / self.clock_ticks,
            start_time=starttime / self.clock_ticks,
            processor=processor,
        )

    def list_processes(self) -> list[ProcessInfo]:
        """Every live process visible in /proc (races tolerated)."""
        out: list[ProcessInfo] = []
        try:
            entries = os.listdir(self.root)
        except OSError as exc:
            raise ProcfsError(f"cannot list {self.root}: {exc}") from exc
        for entry in entries:
            if not entry.isdigit():
                continue
            try:
                out.append(self.process(int(entry)))
            except ProcfsError:
                continue  # process exited between listdir and read
        return out
