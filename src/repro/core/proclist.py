"""Tracked-task set: discover, attach, detach.

Each refresh, tiptop rescans the process list: new tasks get counters
attached (monitoring can start at any time — no restart needed, §2.2), and
tasks that exited are detached and their counters closed. Attach failures
from permission (other users' processes under an unprivileged monitor) are
remembered so they are not retried on every refresh.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.options import Options
from repro.errors import NoSuchTaskError, PerfError, PerfPermissionError
from repro.perf.counter import Backend, CounterGroup
from repro.perf.events import EventSpec
from repro.procfs.model import ProcessInfo, TaskProvider


@dataclass
class TrackedTask:
    """One monitored task and its counters.

    ``tid`` is the process pid in per-process mode, or an individual thread
    id in per-thread mode (§2.2).
    """

    pid: int
    tid: int
    group: CounterGroup
    last_info: ProcessInfo | None = None
    first_seen: float = 0.0


@dataclass
class ProcessList:
    """The set of currently monitored tasks.

    Args:
        backend: perf backend for counter attach/close.
        tasks: /proc provider.
        events: counter events each task gets.
        options: watch filters and per-thread mode.
    """

    backend: Backend
    tasks: TaskProvider
    events: list[EventSpec]
    options: Options
    tracked: dict[int, TrackedTask] = field(default_factory=dict)
    denied: set[int] = field(default_factory=set)
    attach_errors: int = 0

    def refresh(self) -> tuple[list[TrackedTask], list[int]]:
        """Rescan /proc; attach new tasks, drop dead ones.

        Returns:
            (attached, detached_tids) for this refresh.
        """
        now = self.tasks.uptime()
        visible = {}
        for info in self.tasks.list_processes():
            if not self.options.wants(pid=info.pid, uid=info.uid, comm=info.comm):
                continue
            if self.options.per_thread:
                for tid in info.tids:
                    visible[tid] = info
            else:
                visible[info.pid] = info

        attached: list[TrackedTask] = []
        for tid, info in visible.items():
            if tid in self.tracked or tid in self.denied:
                continue
            if len(self.tracked) >= self.options.max_tasks:
                break
            try:
                group = CounterGroup(
                    self.backend,
                    self.events,
                    tid,
                    inherit=not self.options.per_thread,
                )
            except PerfPermissionError:
                self.denied.add(tid)
                continue
            except (NoSuchTaskError, PerfError):
                self.attach_errors += 1
                continue
            task = TrackedTask(pid=info.pid, tid=tid, group=group, first_seen=now)
            self.tracked[tid] = task
            attached.append(task)

        detached: list[int] = []
        for tid in list(self.tracked):
            if tid not in visible:
                self.tracked[tid].group.close()
                del self.tracked[tid]
                detached.append(tid)
        return attached, detached

    def close(self) -> None:
        """Detach everything (shutdown)."""
        for task in self.tracked.values():
            task.group.close()
        self.tracked.clear()
