"""Ablations of the design choices DESIGN.md §5 calls out.

Not figures from the paper, but measurements of the trade-offs the paper
*argues* about in §2.5/§2.6/§4:

* counting vs sampling accuracy (Moore [29]; tiptop chose counting);
* counter multiplexing error when the events requested exceed the PMU
  width (the Xeon W3550 has sixteen counters — §2.6);
* refresh period: coarser sampling is cheaper but blurs phase boundaries;
* per-thread vs per-process counting (§2.2 supports both);
* the §3.4 outlook, implemented: memory-latency counters expose DRAM-level
  contention that plain miss counts understate.
"""

import numpy as np
import pytest
from _harness import once, save_artifact

from repro import Options, SimHost, TipTop
from repro.analysis.phase_detect import transition_points
from repro.core.phases import pid_metric_series
from repro.core.screen import get_screen, screen_from_config
from repro.perf.counter import Counter
from repro.perf.events import event_names, resolve_event
from repro.perf.simbackend import SimBackend
from repro.sim import NEHALEM, SimMachine
from repro.sim.workload import Workload
from repro.sim.workloads import datacenter, revolve, spec


def _steady_machine(seed=3):
    machine = SimMachine(NEHALEM, tick=0.5, seed=seed)
    phase = spec.workload("456.hmmer").phases[0].with_budget(float("inf"))
    proc = machine.spawn("job", Workload("job", (phase,)))
    return machine, proc


# ---------------------------------------------------------------------------
# Ablation 1: counting vs sampling
# ---------------------------------------------------------------------------
def _counting_vs_sampling():
    rows = []
    # The last period exceeds the events produced in the window: the
    # estimate collapses to its quantisation floor.
    for period in (1_000, 100_000, 10_000_000, 100_000_000_000):
        machine, proc = _steady_machine()
        backend = SimBackend(machine)
        exact = Counter(backend, resolve_event("instructions"), proc.pid)
        sampled = Counter(
            backend, resolve_event("instructions"), proc.pid, sample_period=period
        )
        machine.run_for(30.0)
        truth = exact.delta()
        estimate = sampled.delta()
        rows.append((period, truth, estimate, abs(estimate - truth) / truth))
    return rows


def test_ablation_counting_vs_sampling(benchmark):
    rows = once(benchmark, _counting_vs_sampling)
    lines = ["Ablation: counting vs sampling (30 s of a steady job)",
             f"{'period':>12s} {'counted':>14s} {'sampled':>14s} {'rel err':>10s}"]
    for period, truth, estimate, err in rows:
        lines.append(f"{period:12d} {truth:14.4g} {estimate:14.4g} {err:10.2e}")
    save_artifact("ablation_counting_vs_sampling", "\n".join(lines))

    # Counting is the reference; sampling always errs. At practical
    # periods the error is the (constant-rate) interrupt loss, well under
    # a percent; once the period exceeds the event count the estimate
    # collapses to the quantisation floor.
    errs = [err for *_, err in rows]
    assert all(e > 0 for e in errs)
    assert all(e < 0.01 for e in errs[:-1])
    assert errs[-1] > 0.3


# ---------------------------------------------------------------------------
# Ablation 2: multiplexing error vs requested events
# ---------------------------------------------------------------------------
def _multiplexing_error():
    from dataclasses import replace

    supported = [
        n for n in event_names()
        if NEHALEM.supports_event(resolve_event(n).sim_event)
    ]
    supported.remove("instructions")
    supported.insert(0, "instructions")
    rows = []
    for n_events in (4, 12, 16, len(supported)):
        machine = SimMachine(NEHALEM, tick=0.5, seed=9)
        # A *jittery* workload: multiplexing error comes from extrapolating
        # the rotated-out intervals, which only bites when rates vary.
        phase = replace(
            spec.workload("456.hmmer").phases[0].with_budget(float("inf")),
            noise=0.15,
        )
        proc = machine.spawn("jittery", Workload("jittery", (phase,)))
        backend = SimBackend(machine)
        counters = [
            Counter(backend, resolve_event(name), proc.pid)
            for name in supported[:n_events]
        ]
        machine.run_for(2.0)
        for c in counters:
            c.delta()  # baseline
        before = proc.threads[0].retired
        machine.run_for(60.0)
        truth = proc.threads[0].retired - before
        estimate = counters[0].delta()
        rows.append((n_events, truth, estimate, abs(estimate - truth) / truth))
    return rows


def test_ablation_multiplexing(benchmark):
    rows = once(benchmark, _multiplexing_error)
    lines = [
        "Ablation: instruction-count error vs number of simultaneous events",
        f"(PMU width {NEHALEM.pmu_width}; beyond it the kernel multiplexes "
        "and user space scales by enabled/running)",
        f"{'events':>8s} {'true instr':>14s} {'scaled est.':>14s} {'rel err':>10s}",
    ]
    for n, truth, est, err in rows:
        lines.append(f"{n:8d} {truth:14.4g} {est:14.4g} {err:10.2e}")
    save_artifact("ablation_multiplexing", "\n".join(lines))

    within = [r for r in rows if r[0] <= NEHALEM.pmu_width]
    beyond = [r for r in rows if r[0] > NEHALEM.pmu_width]
    # Within the PMU width the count is exact.
    assert all(err < 1e-9 for *_, err in within)
    # Beyond it, scaling recovers the truth within a few percent.
    assert beyond, "the event list must exceed the PMU width"
    assert all(err < 0.05 for *_, err in beyond)
    assert any(err > 1e-6 for *_, err in beyond)


# ---------------------------------------------------------------------------
# Ablation 3: refresh period vs phase visibility
# ---------------------------------------------------------------------------
def _refresh_sweep():
    results = []
    for delay in (1.0, 5.0, 20.0, 60.0):
        workload = Workload(
            "revolve-small",
            tuple(
                p.with_budget(p.instructions / 20)
                for p in revolve.original().phases
            ),
        )
        machine = SimMachine(NEHALEM, tick=0.5, seed=12)
        proc = machine.spawn("R", workload)
        app = TipTop(SimHost(machine), Options(delay=delay))
        recorder = app.run_collect(0)
        with app:
            for i, snap in enumerate(app.snapshots()):
                if i > 0:
                    recorder.record(snap)
                if not proc.alive:
                    break
        series = pid_metric_series(recorder, proc.pid, "IPC")
        cuts = transition_points(series, window=4, threshold=0.5)
        true_transition = 953 * revolve.STEP_INSTRUCTIONS / 20 / (
            1.0 * NEHALEM.freq_hz
        )  # seconds, at IPC 1.0
        detected = series.x[cuts[0]] if cuts else float("nan")
        error = abs(detected - true_transition)
        reads_per_hour = 3600.0 / delay
        results.append((delay, len(series), detected, true_transition, error,
                        reads_per_hour))
    return results


def test_ablation_refresh_period(benchmark):
    rows = once(benchmark, _refresh_sweep)
    lines = [
        "Ablation: refresh period vs phase-boundary resolution",
        f"{'delay s':>8s} {'samples':>8s} {'detected s':>11s} {'true s':>8s} "
        f"{'error s':>8s} {'reads/h':>8s}",
    ]
    for delay, n, detected, truth, error, reads in rows:
        lines.append(
            f"{delay:8.0f} {n:8d} {detected:11.0f} {truth:8.0f} "
            f"{error:8.1f} {reads:8.0f}"
        )
    save_artifact("ablation_refresh_period", "\n".join(lines))

    # Every delay up to 20 s still finds the transition; error grows with
    # the period, cost (reads/hour) shrinks.
    finite = [r for r in rows if not np.isnan(r[2])]
    assert len(finite) >= 3
    errors = [r[4] for r in finite]
    assert errors[0] < errors[-1] + 1e-9
    assert all(r[4] <= 2.5 * r[0] + 5.0 for r in finite)  # ~sampling quantum


# ---------------------------------------------------------------------------
# Ablation 4: per-thread vs per-process counting
# ---------------------------------------------------------------------------
def _thread_vs_process():
    def run(per_thread: bool):
        machine = SimMachine(NEHALEM, tick=0.5, seed=15)
        phase = spec.workload("456.hmmer").phases[0].with_budget(float("inf"))
        machine.spawn("mt", Workload("mt", (phase,)), nthreads=3)
        app = TipTop(
            SimHost(machine),
            Options(delay=5.0, per_thread=per_thread),
        )
        with app:
            recorder = app.run_collect(4)
        return recorder

    return run(False), run(True)


def test_ablation_thread_vs_process(benchmark):
    by_process, by_thread = once(benchmark, _thread_vs_process)
    proc_rows = {s.pid for s in by_process.samples}
    thread_rows = {
        (s.pid, tuple(sorted(s.deltas))) for s in by_thread.samples
    }
    per_proc_instr = by_process.total_delta(
        next(iter(proc_rows)), "instructions"
    )
    lines = [
        "Ablation: per-process vs per-thread counting (3-thread process)",
        f"  per-process rows per refresh: 1 (inherit folds {3} threads)",
        f"  per-thread rows per refresh: 3",
        f"  per-process instructions: {per_proc_instr:.4g}",
    ]
    save_artifact("ablation_thread_vs_process", "\n".join(lines))

    # One row per process vs three rows per refresh.
    assert len(proc_rows) == 1
    n_thread_rows = len({s.values["PID"] for s in by_thread.samples})
    assert n_thread_rows == 1  # same pid...
    tids = {
        s.pid for s in by_thread.samples
    }
    assert len(by_thread.samples) == 3 * len(by_process.samples)
    # The folded count matches the sum of the thread counts (within the
    # sampling alignment of the two separate runs).
    total_threads = sum(
        s.deltas["instructions"] for s in by_thread.samples
    )
    assert per_proc_instr == pytest.approx(total_threads, rel=0.05)


# ---------------------------------------------------------------------------
# Ablation 5: simulation tick size (fidelity vs speed)
# ---------------------------------------------------------------------------
def _tick_sweep():
    import time as _time

    results = []
    for tick in (0.1, 0.5, 2.0):
        machine = SimMachine(NEHALEM, sockets=1, cores_per_socket=4,
                             tick=tick, seed=33)
        phase = spec.workload("429.mcf").phases[2].with_budget(float("inf"))
        procs = [
            machine.spawn(f"m{i}", Workload("mcf", (phase,)), affinity={i})
            for i in range(3)
        ]
        backend = SimBackend(machine)
        counters = [
            (Counter(backend, resolve_event("instructions"), p.pid),
             Counter(backend, resolve_event("cycles"), p.pid))
            for p in procs
        ]
        start = _time.perf_counter()
        machine.run_for(120.0)
        wall = _time.perf_counter() - start
        ipc = np.mean([ci.delta() / cc.delta() for ci, cc in counters])
        results.append((tick, float(ipc), wall))
    return results


def test_ablation_tick_size(benchmark):
    rows = once(benchmark, _tick_sweep)
    lines = [
        "Ablation: scheduler tick vs fidelity (3 mcf copies, 120 s)",
        f"{'tick s':>8s} {'mean IPC':>9s} {'wall s':>8s}",
    ]
    for tick, ipc, wall in rows:
        lines.append(f"{tick:8.1f} {ipc:9.3f} {wall:8.3f}")
    save_artifact("ablation_tick_size", "\n".join(lines))

    # Coarser ticks change the contended IPC by well under the figures'
    # tolerance bands, while cutting wall time substantially.
    ipcs = [ipc for _, ipc, _ in rows]
    assert max(ipcs) - min(ipcs) < 0.03 * ipcs[0]
    walls = [wall for *_, wall in rows]
    assert walls[-1] < walls[0]


# ---------------------------------------------------------------------------
# Ablation 6 (extension): the §3.4 memory-latency outlook, implemented
# ---------------------------------------------------------------------------
def _latency_observation():
    machine = datacenter.make_node(tick=2.0, seed=21)
    jobs = datacenter.populate_fig10(machine, burst_start=300.0, burst_duration=900.0)
    victim = jobs["user1"][0]
    app = TipTop(SimHost(machine), Options(delay=10.0), get_screen("latency"))
    with app:
        recorder = app.run_collect(int(1500 / 10))
    series = pid_metric_series(recorder, victim.pid, "MEMLAT")
    return series


def test_ablation_memlat_extension(benchmark):
    series = once(benchmark, _latency_observation)
    save_artifact(
        "ablation_memlat_extension",
        "Extension (§3.4 outlook): observed memory latency of a victim job\n"
        + series.ascii_plot(),
    )
    solo = series.window(0, 290).mean()
    corun = series.window(360, 1140).mean()
    # The DRAM/LLC contention is directly visible as latency inflation.
    assert corun > 1.02 * solo
