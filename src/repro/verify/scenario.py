"""Declarative conformance scenarios and their seeded generator.

A :class:`Scenario` is the *complete* input of one conformance run: the
node (or fleet) shape, the workload population with its spawn/kill churn,
the fault plan, the tool options, and — for grid scenarios — the queue
layout and engine set. Everything downstream (:mod:`repro.verify.runner`,
the oracles, the shrinker) is a pure function of this one value, which is
what makes a failing case replayable from its JSON form alone.

Determinism rules baked into the generator:

* Clock floats are binary-friendly: ticks come from {0.125, 0.25, 0.5}
  (or {0.5, 1.0} for grids), refresh delays and every timed event
  (spawn_at / kill_at / submit_at) are exact integer multiples of the
  tick. ``SimMachine.run_for`` and ``run_ticks`` then walk identical
  float ladders, so the advance-equivalence oracle can demand *bitwise*
  equality.
* Workloads are described by (archetype, target_ipc, duration) and
  materialised via :mod:`repro.sim.workloads.synthetic` with the scenario
  seed — two runs of one scenario build identical phase objects.
* The generator draws from one ``numpy`` Generator seeded by the scenario
  seed only; ``generate(seed)`` twice returns equal scenarios.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass, replace

import numpy as np

from repro.errors import ConfigError
from repro.perf.faults import ERROR_CLASSES, OPS
from repro.sim.netchaos import NET_FAULT_KINDS
from repro.sim.supervisor import GRID_FAULT_KINDS
from repro.sim.workloads.synthetic import ARCHETYPES, _ipc_range

#: Schema tag written into serialised scenarios and artifacts.
SCHEMA_VERSION = 1

#: Binary-exact ticks: sums and integer multiples stay exact in floats,
#: which the bitwise advance-equivalence oracle depends on.
TOOL_TICKS = (0.125, 0.25, 0.5)
GRID_TICKS = (0.5, 1.0)

GiB = 1024**3


@dataclass(frozen=True)
class TaskPlan:
    """One monitored process of a tool scenario.

    Attributes:
        name: command name (also seeds the workload materialisation).
        archetype: one of :data:`~repro.sim.workloads.synthetic.ARCHETYPES`.
        target_ipc: calibration target for the workload.
        duration: solo seconds of work (inf = a service that never exits).
        nthreads: thread count (threads share the workload).
        duty_cycle: fraction of ticks the threads want the CPU.
        uid: owner uid (None = derived from the user name, as the
            machine does).
        spawn_at: virtual time of the spawn (0 = before monitoring
            starts); a tick multiple.
        kill_at: virtual time of an external kill (None = none); a tick
            multiple strictly after ``spawn_at``.
    """

    name: str
    archetype: str
    target_ipc: float
    duration: float
    nthreads: int = 1
    duty_cycle: float = 1.0
    uid: int | None = None
    spawn_at: float = 0.0
    kill_at: float | None = None

    def __post_init__(self) -> None:
        if self.archetype not in ARCHETYPES:
            raise ConfigError(f"unknown archetype {self.archetype!r}")
        if self.kill_at is not None and self.kill_at <= self.spawn_at:
            raise ConfigError(
                f"task {self.name!r}: kill_at {self.kill_at} must be "
                f"after spawn_at {self.spawn_at}"
            )


@dataclass(frozen=True)
class FaultClause:
    """One explicit fault rule (mirrors
    :class:`~repro.perf.faults.FaultSpec`, JSON-serialisable)."""

    op: str
    error: str
    rate: float = 0.0
    at_calls: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.op != "*" and self.op not in OPS:
            raise ConfigError(f"unknown fault op {self.op!r}")
        if self.error not in ERROR_CLASSES:
            raise ConfigError(f"unknown fault error {self.error!r}")


@dataclass(frozen=True)
class GridFaultClause:
    """One explicit grid-worker fault rule (mirrors
    :class:`~repro.sim.supervisor.GridFaultSpec`, JSON-serialisable)."""

    kind: str
    rate: float = 0.0
    at_epochs: tuple[int, ...] | None = None
    worker: int | None = None
    persistent: bool = False

    def __post_init__(self) -> None:
        if self.kind not in GRID_FAULT_KINDS:
            raise ConfigError(f"unknown grid fault kind {self.kind!r}")
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigError(f"grid fault rate must be in [0, 1], got {self.rate}")


@dataclass(frozen=True)
class NetFaultClause:
    """One explicit network-fault rule (mirrors
    :class:`~repro.sim.netchaos.NetFaultSpec`, JSON-serialisable)."""

    kind: str
    rate: float = 0.0
    at_epochs: tuple[int, ...] | None = None
    link: int | None = None
    duration: int = 1
    latency: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in NET_FAULT_KINDS:
            raise ConfigError(f"unknown net fault kind {self.kind!r}")
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigError(
                f"net fault rate must be in [0, 1], got {self.rate}"
            )
        if self.duration < 1:
            raise ConfigError(f"duration must be >= 1, got {self.duration}")


@dataclass(frozen=True)
class QueuePlan:
    """One grid queue (subset of :class:`~repro.sim.grid.QueueSpec`)."""

    name: str
    max_wallclock: float
    memory_limit: int
    priority: int = 0
    preempting: bool = False


@dataclass(frozen=True)
class JobPlan:
    """One submitted grid job."""

    name: str
    archetype: str
    target_ipc: float
    duration: float
    queue: str
    submit_at: float = 0.0
    memory_bytes: int = 1 * GiB
    priority: int = 0

    def __post_init__(self) -> None:
        if self.archetype not in ARCHETYPES:
            raise ConfigError(f"unknown archetype {self.archetype!r}")


@dataclass(frozen=True)
class Scenario:
    """One whole-system conformance case (see the module docstring).

    ``kind`` selects the shape: a ``"tool"`` scenario monitors one node
    with the sampler through several differential runs; a ``"grid"``
    scenario drives the §3.4 dispatcher over every engine in
    ``engines``. Fields of the other kind are ignored.
    """

    kind: str
    seed: int
    arch: str = "nehalem"
    sockets: int = 1
    cores_per_socket: int = 2
    pmu_width: int | None = None
    tick: float = 0.25
    delay: float = 1.0
    iterations: int = 3
    screen: str = "default"
    per_thread: bool = False
    monitor_uid: int = 0
    chaos_seed: int | None = None
    chaos_intensity: float = 1.0
    faults: tuple[FaultClause, ...] = ()
    tasks: tuple[TaskPlan, ...] = ()
    #: Tool-only: additionally run the scenario through the serve daemon
    #: (collector + subscribers over localhost TCP) so the served-stream
    #: oracle can demand bitwise agreement with the solo run.
    serve: bool = False
    # grid-only fields
    n_nodes: int = 2
    workers: int = 2
    engines: tuple[str, ...] = ("legacy", "serial")
    span: float = 16.0
    queues: tuple[QueuePlan, ...] = ()
    jobs: tuple[JobPlan, ...] = ()
    # grid worker chaos (applies to the "supervised" engine run only)
    grid_chaos_seed: int | None = None
    grid_chaos_intensity: float = 1.0
    grid_faults: tuple[GridFaultClause, ...] = ()
    epoch_deadline: float = 2.0
    restart_budget: int = 8
    #: Extra shard-transport sweep: each listed transport re-runs the
    #: sharded engine through Grid(transport=...) and its digest joins
    #: the engines-agree comparison (the transport-invariance oracle).
    transports: tuple[str, ...] = ()
    #: Network chaos. Grid scenarios: the supervised engine's shard
    #: links run under a seeded NetChaosPlan (partitions, lost/duplicate
    #: messages, half-open links); the clean engines are the recovery
    #: reference. Tool scenarios with ``serve``: the daemon's client
    #: links are cut mid-stream and every subscriber auto-reconnects.
    net_chaos_seed: int | None = None
    net_chaos_intensity: float = 1.0
    net_faults: tuple[NetFaultClause, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("tool", "grid"):
            raise ConfigError(f"unknown scenario kind {self.kind!r}")
        if self.tick <= 0:
            raise ConfigError(f"tick must be positive, got {self.tick}")
        k = self.delay / self.tick
        if self.kind == "tool" and abs(k - round(k)) > 1e-9:
            raise ConfigError(
                f"delay {self.delay} must be a whole multiple of "
                f"tick {self.tick}"
            )

    @property
    def chaotic(self) -> bool:
        """Whether any kernel-level fault injection is configured."""
        return self.chaos_seed is not None or bool(self.faults)

    @property
    def grid_chaotic(self) -> bool:
        """Whether grid-worker fault injection is configured (executed
        by the supervised engine's workers only)."""
        return self.grid_chaos_seed is not None or bool(self.grid_faults)

    @property
    def net_chaotic(self) -> bool:
        """Whether network-fault injection is configured (shard links
        of the supervised engine, or the serve daemon's client links)."""
        return self.net_chaos_seed is not None or bool(self.net_faults)

    # -- serialisation ------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data form (JSON-ready; inf survives via ``Infinity``)."""
        d = asdict(self)
        d["schema"] = SCHEMA_VERSION
        # Net-chaos fields appeared after the corpus was cut; at their
        # defaults they are omitted so pre-netchaos scenario files and
        # digests stay byte-stable.
        if (
            self.net_chaos_seed is None
            and not self.net_faults
            and self.net_chaos_intensity == 1.0
        ):
            del d["net_chaos_seed"]
            del d["net_chaos_intensity"]
            del d["net_faults"]
        return d

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        """Inverse of :meth:`to_dict` (round-trips exactly)."""
        d = dict(data)
        schema = d.pop("schema", SCHEMA_VERSION)
        if schema != SCHEMA_VERSION:
            raise ConfigError(f"unknown scenario schema {schema!r}")
        d["faults"] = tuple(
            FaultClause(
                op=f["op"],
                error=f["error"],
                rate=f.get("rate", 0.0),
                at_calls=(
                    tuple(f["at_calls"])
                    if f.get("at_calls") is not None
                    else None
                ),
            )
            for f in d.get("faults", ())
        )
        d["tasks"] = tuple(TaskPlan(**t) for t in d.get("tasks", ()))
        d["queues"] = tuple(QueuePlan(**q) for q in d.get("queues", ()))
        d["jobs"] = tuple(JobPlan(**j) for j in d.get("jobs", ()))
        d["engines"] = tuple(d.get("engines", ("legacy", "serial")))
        d["grid_faults"] = tuple(
            GridFaultClause(
                kind=f["kind"],
                rate=f.get("rate", 0.0),
                at_epochs=(
                    tuple(f["at_epochs"])
                    if f.get("at_epochs") is not None
                    else None
                ),
                worker=f.get("worker"),
                persistent=f.get("persistent", False),
            )
            for f in d.get("grid_faults", ())
        )
        d["transports"] = tuple(d.get("transports", ()))
        d["net_faults"] = tuple(
            NetFaultClause(
                kind=f["kind"],
                rate=f.get("rate", 0.0),
                at_epochs=(
                    tuple(f["at_epochs"])
                    if f.get("at_epochs") is not None
                    else None
                ),
                link=f.get("link"),
                duration=f.get("duration", 1),
                latency=f.get("latency", 0.0),
            )
            for f in d.get("net_faults", ())
        )
        return cls(**d)

    def to_json(self) -> str:
        """Canonical JSON text (sorted keys; ``repr``-exact floats)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        """Parse :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def digest(self) -> str:
        """Short content hash naming replay artifacts."""
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode()).hexdigest()[:12]


# -- generation ---------------------------------------------------------------

def _tick_multiple(rng: np.random.Generator, tick: float, lo: int, hi: int) -> float:
    """A uniform tick multiple in [lo, hi] ticks (exact float)."""
    return tick * int(rng.integers(lo, hi + 1))


def _gen_tasks(
    rng: np.random.Generator, tick: float, span: float, monitor_uid: int
) -> tuple[TaskPlan, ...]:
    n_tasks = int(rng.integers(1, 7))
    span_ticks = max(2, int(round(span / tick)))
    tasks = []
    for i in range(n_tasks):
        archetype = str(rng.choice(ARCHETYPES))
        ipc_lo, ipc_hi = _ipc_range(archetype)
        target_ipc = float(round(rng.uniform(ipc_lo, ipc_hi), 3))
        # Half the population are endless services; the rest are finite
        # jobs sized to die anywhere around the monitored span.
        duration = (
            math.inf
            if rng.random() < 0.5
            else float(round(rng.uniform(0.3, 1.5) * span, 3))
        )
        spawn_at = 0.0
        if rng.random() < 0.3:
            spawn_at = _tick_multiple(rng, tick, 1, max(1, span_ticks // 2))
        kill_at = None
        if rng.random() < 0.25:
            lo = int(round(spawn_at / tick)) + 1
            if lo < span_ticks:
                kill_at = _tick_multiple(rng, tick, lo, span_ticks)
        uid = None
        if monitor_uid != 0:
            # Mixed ownership: most tasks belong to the monitor (visible),
            # the rest to someone else (EPERM at attach).
            uid = monitor_uid if rng.random() < 0.7 else monitor_uid + 1
        tasks.append(
            TaskPlan(
                name=f"{archetype}{i}",
                archetype=archetype,
                target_ipc=target_ipc,
                duration=duration,
                nthreads=int(rng.choice([1, 1, 1, 2])),
                duty_cycle=float(rng.choice([1.0, 1.0, 1.0, 0.5])),
                uid=uid,
                spawn_at=spawn_at,
                kill_at=kill_at,
            )
        )
    return tuple(tasks)


def _gen_tool(rng: np.random.Generator, seed: int) -> Scenario:
    tick = float(rng.choice(TOOL_TICKS))
    delay = _tick_multiple(rng, tick, 2, 8)
    iterations = int(rng.integers(2, 5))
    span = delay * iterations
    monitor_uid = 7 if rng.random() < 0.15 else 0
    chaos_seed = None
    chaos_intensity = 1.0
    if rng.random() < 0.45:
        chaos_seed = int(rng.integers(0, 2**31))
        chaos_intensity = float(rng.choice([0.5, 1.0, 2.0]))
    pmu_width = None
    if rng.random() < 0.25:
        # Multiplexing pressure: squeeze the PMU below the screen's event
        # count so the rotation/scaling paths are exercised.
        pmu_width = int(rng.integers(2, 4))
    cores_per_socket = int(rng.integers(1, 3))
    screen = str(rng.choice(["default", "cache", "branch", "mix"]))
    per_thread = bool(rng.random() < 0.2)
    tasks = _gen_tasks(rng, tick, span, monitor_uid)
    # Drawn last so every earlier field keeps its pre-serve value for a
    # given seed (the corpus and the generator-shape tests rely on it).
    serve = bool(rng.random() < 0.25)
    # Same append-only rule: the net-chaos draws come after everything
    # above, so pre-partition seeds keep their exact scenarios. Served
    # streams under link cuts exercise the reconnect/resume path; the
    # solo comparison bar is unchanged.
    net_chaos_seed = None
    net_chaos_intensity = 1.0
    if serve and rng.random() < 0.4:
        net_chaos_seed = int(rng.integers(0, 2**31))
        net_chaos_intensity = float(rng.choice([2.0, 4.0, 6.0]))
    return Scenario(
        kind="tool",
        seed=seed,
        arch="nehalem",
        sockets=1,
        cores_per_socket=cores_per_socket,
        pmu_width=pmu_width,
        tick=tick,
        delay=delay,
        iterations=iterations,
        screen=screen,
        per_thread=per_thread,
        monitor_uid=monitor_uid,
        chaos_seed=chaos_seed,
        chaos_intensity=chaos_intensity,
        tasks=tasks,
        serve=serve,
        net_chaos_seed=net_chaos_seed,
        net_chaos_intensity=net_chaos_intensity,
    )


def _gen_grid(rng: np.random.Generator, seed: int) -> Scenario:
    tick = float(rng.choice(GRID_TICKS))
    span = _tick_multiple(rng, tick, 12, 32)
    engines = ["legacy", "serial"]
    if rng.random() < 0.15:
        engines.append("sharded")
    queues = (
        QueuePlan(
            name="fast",
            max_wallclock=_tick_multiple(rng, tick, 4, 12),
            memory_limit=8 * GiB,
            priority=2,
        ),
        QueuePlan(
            name="batch",
            max_wallclock=math.inf,
            memory_limit=8 * GiB,
            priority=1,
        ),
    )
    n_jobs = int(rng.integers(2, 9))
    jobs = []
    for i in range(n_jobs):
        archetype = str(rng.choice(ARCHETYPES))
        ipc_lo, ipc_hi = _ipc_range(archetype)
        duration = (
            math.inf
            if rng.random() < 0.25
            else float(round(rng.uniform(2.0, span), 3))
        )
        jobs.append(
            JobPlan(
                name=f"job{i}",
                archetype=archetype,
                target_ipc=float(round(rng.uniform(ipc_lo, ipc_hi), 3)),
                duration=duration,
                queue=str(rng.choice(["fast", "fast", "batch"])),
                submit_at=_tick_multiple(
                    rng, tick, 0, max(1, int(round(span / tick)) // 2)
                ),
                # Big-memory jobs force queueing on the 16 GiB nodes.
                memory_bytes=int(rng.choice([1, 1, 1, 6])) * GiB,
            )
        )
    # Supervised-engine coverage: sometimes run the supervision tree
    # clean (pure equivalence), sometimes under worker chaos — seeded
    # rate faults, or a targeted fault clause aimed at one (worker,
    # epoch) so the poison/adopt and degrade ladders get exercised.
    grid_chaos_seed = None
    grid_chaos_intensity = 1.0
    grid_faults: tuple[GridFaultClause, ...] = ()
    restart_budget = 8
    if rng.random() < 0.4:
        engines.append("supervised")
        mode = rng.random()
        if mode < 0.45:
            grid_chaos_seed = int(rng.integers(0, 2**31))
            grid_chaos_intensity = float(rng.choice([2.0, 4.0, 8.0]))
        elif mode < 0.85:
            grid_faults = (
                GridFaultClause(
                    kind=str(rng.choice(["crash", "crash", "garble"])),
                    at_epochs=(int(rng.integers(0, 3)),),
                    worker=int(rng.integers(0, 2)),
                    persistent=bool(rng.random() < 0.3),
                ),
            )
        if (grid_chaos_seed is not None or grid_faults) and rng.random() < 0.2:
            restart_budget = int(rng.integers(0, 2))  # force the degrade path
    # Everything below draws *after* every pre-existing field, so old
    # seeds keep their old scenarios (corpus stability — same trick as
    # the tool generator's serve flag).
    transports: tuple[str, ...] = ()
    if rng.random() < 0.25:
        transports = ("inproc", "fork", "socket")
    if rng.random() < 0.15:
        engines.append("fleet")
    if rng.random() < 0.2:
        # Preemption churn: the fast queue may evict batch jobs, and jobs
        # carry mixed priorities so within-queue ordering is exercised.
        queues = (replace(queues[0], preempting=True),) + queues[1:]
        jobs = [
            replace(job, priority=int(rng.integers(0, 3))) for job in jobs
        ]
    # Network chaos (append-only draws, like the transports sweep above):
    # partitions/drops/half-opens on the supervised engine's shard links.
    # A scenario may carry both worker chaos and link chaos — crashes on
    # a partitioned grid are exactly the split-brain shape fencing is
    # for. The supervised engine is added when absent so the schedule
    # has a recovery ladder to run against.
    net_chaos_seed = None
    net_chaos_intensity = 1.0
    if rng.random() < 0.3:
        net_chaos_seed = int(rng.integers(0, 2**31))
        net_chaos_intensity = float(rng.choice([1.0, 2.0, 4.0]))
        if "supervised" not in engines:
            engines.append("supervised")
    return Scenario(
        kind="grid",
        seed=seed,
        arch="nehalem",
        sockets=1,
        cores_per_socket=2,
        tick=tick,
        span=span,
        n_nodes=int(rng.integers(2, 4)),
        workers=2,
        engines=tuple(engines),
        queues=queues,
        jobs=tuple(jobs),
        grid_chaos_seed=grid_chaos_seed,
        grid_chaos_intensity=grid_chaos_intensity,
        grid_faults=grid_faults,
        epoch_deadline=1.0,
        restart_budget=restart_budget,
        transports=transports,
        net_chaos_seed=net_chaos_seed,
        net_chaos_intensity=net_chaos_intensity,
    )


def generate(seed: int) -> Scenario:
    """The seeded scenario generator: one deterministic scenario per seed.

    Roughly three in four seeds produce tool scenarios (sampler-level
    differential runs on one node); the rest produce grid scenarios
    (engine-level differential runs over the fleet).
    """
    rng = np.random.default_rng((0x7E57, seed))
    if rng.random() < 0.25:
        return _gen_grid(rng, seed)
    return _gen_tool(rng, seed)
