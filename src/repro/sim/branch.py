"""Branch predictor model.

The coarse metric the paper surfaces is branch *misprediction ratio*
(mispredicts per branch) and its cycle cost. A phase declares how
predictable its branches are; the architecture declares the mispredict
penalty. The validation micro-kernels of §2.4 used "random or periodic
indirect jumps to well known locations" — i.e. workloads with a *known*
misprediction ratio — which this model makes directly expressible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError


@dataclass(frozen=True)
class BranchBehavior:
    """Per-phase branch behaviour.

    Attributes:
        mispredict_ratio: fraction of retired branches that mispredict,
            in [0, 1]. A well-behaved loop is ~0.01; random indirect jumps
            approach ``1 - 1/n_targets``.
    """

    mispredict_ratio: float = 0.02

    def __post_init__(self) -> None:
        if not 0 <= self.mispredict_ratio <= 1:
            raise WorkloadError(
                f"mispredict_ratio must be in [0, 1], got {self.mispredict_ratio}"
            )


def mispredicts_per_instruction(
    behavior: BranchBehavior, branches_per_instruction: float
) -> float:
    """Branch mispredicts per retired instruction."""
    return behavior.mispredict_ratio * branches_per_instruction


def mispredict_cpi(
    behavior: BranchBehavior,
    branches_per_instruction: float,
    penalty_cycles: float,
) -> float:
    """CPI contribution of branch mispredictions."""
    return mispredicts_per_instruction(behavior, branches_per_instruction) * penalty_cycles


def random_jump_ratio(n_targets: int) -> float:
    """Expected mispredict ratio of a uniformly random indirect jump.

    With ``n_targets`` equally likely targets, a BTB-style predictor guesses
    the last target and is right with probability 1/n. Used by the §2.4
    validation micro-kernels.
    """
    if n_targets <= 0:
        raise WorkloadError(f"n_targets must be positive, got {n_targets}")
    return 1.0 - 1.0 / n_targets
