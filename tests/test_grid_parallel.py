"""Engine equivalence and epoch semantics for the parallel grid.

The contract under test: the legacy per-tick loop, the in-process serial
epoch engine, and the sharded multi-process engine produce *bitwise
identical* grids — job states, dispatch/finish times, per-node counter
tables — for any fleet, seed and churn script. Determinism is what makes
``workers=N`` a pure performance knob.
"""

import math
import random

import pytest

from repro.errors import SimulationError
from repro.sim.core import RateCache
from repro.sim.grid import Grid, NodeSpec, QueueSpec
from repro.sim.machine import SimMachine
from repro.sim.parallel import (
    ENGINE_NAMES,
    node_snapshot,
    proc_exit_lb,
    workload_exit_lb,
)
from repro.sim.workloads import datacenter

ENGINES = [("legacy", 1), ("serial", 1), ("sharded", 2), ("supervised", 2)]


def _job(seconds=60.0, ipc=1.2, name="job"):
    return datacenter.compute_job(name, ipc, duration_hint=seconds)


def _endless(name="svc"):
    return datacenter.compute_job(name, 1.2)


def _small_fleet():
    from repro.sim.arch import NEHALEM

    return [
        NodeSpec(name="a0", sockets=1, cores_per_socket=1,
                 memory_bytes=4 * 1024**3),
        NodeSpec(name="a1", arch=NEHALEM, sockets=1, cores_per_socket=2,
                 memory_bytes=4 * 1024**3),
        NodeSpec(name="a2", sockets=1, cores_per_socket=1,
                 memory_bytes=2 * 1024**3),
        NodeSpec(name="pin", sockets=1, cores_per_socket=1,
                 dedicated_queue="pin", memory_bytes=8 * 1024**3),
    ]


def _small_queues():
    return [
        QueueSpec("quick", max_wallclock=9.0, memory_limit=2 * 1024**3,
                  priority=2),
        QueueSpec("slow", max_wallclock=float("inf"),
                  memory_limit=4 * 1024**3, priority=1),
        QueueSpec("pin", max_wallclock=float("inf"),
                  memory_limit=8 * 1024**3, dedicated_only=True),
    ]


def _churn(grid: Grid, seed: int) -> None:
    """A seeded submit/run script that overloads the fleet: queueing,
    wallclock kills, natural exits and fractional-tick tails all occur."""
    rng = random.Random(seed)
    for segment in range(3):
        n = rng.randint(2, 4)
        for i in range(n):
            kind = rng.random()
            name = f"s{segment}j{i}"
            if kind < 0.3:
                grid.submit(name, _endless(name), queue="quick",
                            memory_bytes=1024**3)
            elif kind < 0.8:
                grid.submit(
                    name,
                    _job(seconds=rng.choice([3.0, 6.0, 14.0]),
                         ipc=rng.choice([0.9, 1.2]), name=name),
                    queue=rng.choice(["quick", "slow"]),
                    memory_bytes=rng.choice([1, 2]) * 1024**3,
                )
            else:
                grid.submit(name, _endless(name), queue="pin",
                            memory_bytes=4 * 1024**3)
        # Dyadic durations keep the legacy and epoch float ladders equal.
        grid.run_for(rng.choice([4.0, 6.5, 10.25]))


def _fingerprint(grid: Grid):
    return [
        (j.job_id, j.queue, j.node, j.started_at, j.finished_at,
         j.killed, j.pid, j.state)
        for j in grid.jobs()
    ]


def _observables(grid: Grid):
    return (
        _fingerprint(grid),
        {spec.name: grid.snapshot(spec.name) for spec in grid.specs},
        grid.utilisation(),
        grid.now,
    )


class TestEngineEquivalence:
    @pytest.mark.parametrize("seed", range(24))
    def test_three_engines_bitwise_identical_under_churn(self, seed):
        results = {}
        for engine, workers in ENGINES:
            with Grid(_small_fleet(), _small_queues(), tick=1.0,
                      seed=seed, workers=workers, engine=engine) as grid:
                _churn(grid, seed)
                results[engine] = _observables(grid)
        assert results["legacy"] == results["serial"]
        assert results["serial"] == results["sharded"]
        assert results["sharded"] == results["supervised"]

    def test_worker_count_does_not_change_results(self):
        results = []
        for workers in (1, 2, 3, 4):
            with Grid(_small_fleet(), _small_queues(), tick=1.0, seed=11,
                      workers=workers,
                      engine="sharded" if workers > 1 else "serial") as grid:
                _churn(grid, 11)
                results.append(_observables(grid))
        assert all(r == results[0] for r in results[1:])

    def test_fractional_tail_equivalence(self):
        results = {}
        for engine, workers in ENGINES:
            with Grid([NodeSpec(name="n", sockets=1, cores_per_socket=1)],
                      tick=1.0, seed=4, workers=workers,
                      engine=engine) as grid:
                grid.submit("j", _job(seconds=5.0), queue="short-2g-asap")
                grid.run_for(3.25)
                grid.run_for(0.5)
                grid.run_for(7.25)
                results[engine] = _observables(grid)
        assert (
            results["legacy"] == results["serial"]
            == results["sharded"] == results["supervised"]
        )


class TestEpochSemantics:
    @pytest.mark.parametrize("engine,workers", ENGINES)
    def test_wallclock_kill_lands_mid_epoch(self, engine, workers):
        """A kill due inside a long run must land on its exact boundary
        even though no dispatch epoch boundary was scheduled there."""
        queues = [QueueSpec("blink", max_wallclock=10.0,
                            memory_limit=2 * 1024**3)]
        with Grid([NodeSpec(name="n")], queues, tick=1.0, seed=2,
                  workers=workers, engine=engine) as grid:
            job = grid.submit("svc", _endless(), queue="blink")
            grid.run_for(30.0)
            assert job.state == "done"
            assert job.killed
            assert job.finished_at == 10.0

    @pytest.mark.parametrize("engine,workers", ENGINES)
    def test_utilisation_after_reap(self, engine, workers):
        with Grid([NodeSpec(name="n", sockets=1, cores_per_socket=1)],
                  tick=1.0, seed=2, workers=workers, engine=engine) as grid:
            grid.submit("j", _job(seconds=4.0, ipc=1.0), queue="short-2g-asap")
            grid.run_for(1.0)
            assert grid.utilisation()["n"] == 0.5
            grid.run_for(30.0)
            assert grid.utilisation()["n"] == 0.0
            assert grid.jobs("running") == []

    @pytest.mark.parametrize("engine,workers", ENGINES)
    def test_full_fleet_queues_until_slot_frees(self, engine, workers):
        with Grid([NodeSpec(name="n", sockets=1, cores_per_socket=1)],
                  tick=1.0, seed=2, workers=workers, engine=engine) as grid:
            a = grid.submit("a", _job(seconds=6.0, ipc=1.0),
                            queue="short-2g-asap")
            b = grid.submit("b", _endless("b"), queue="short-2g-asap")
            c = grid.submit("c", _job(seconds=5.0, ipc=1.0),
                            queue="short-2g-asap")
            grid.run_for(2.0)
            assert (a.state, b.state, c.state) == \
                ("running", "running", "pending")
            grid.run_for(30.0)
            # c dispatches at the exact boundary where a's exit freed the
            # slot: the epoch engine may not discover it late.
            assert a.state == "done"
            assert c.started_at == a.finished_at
            assert c.state in ("running", "done")

    @pytest.mark.parametrize("engine,workers", ENGINES)
    def test_job_state_transitions(self, engine, workers):
        with Grid([NodeSpec(name="n")], tick=1.0, seed=2,
                  workers=workers, engine=engine) as grid:
            job = grid.submit("j", _job(seconds=5.0, ipc=1.0),
                              queue="short-2g-asap")
            assert job.state == "pending"
            assert grid.jobs("pending") == [job]
            grid.run_for(1.0)
            assert job.state == "running"
            assert grid.jobs("running") == [job]
            assert job.pid is not None
            grid.run_for(30.0)
            assert job.state == "done"
            assert grid.jobs("done") == [job]
            assert job.finished_at is not None and not job.killed

    def test_idle_backlog_runs_in_one_epoch(self):
        """With an empty backlog nothing can need dispatch, so the whole
        run collapses into a single engine round-trip."""
        with Grid([NodeSpec(name="n")], tick=1.0, seed=2) as grid:
            grid.submit("svc", _endless(), queue="short-2g-asap")
            grid.run_for(50.0)
            epochs_before = grid.stats["epochs"]
            grid.run_for(100.0)
            assert grid.stats["epochs"] == epochs_before + 1


class TestExitBoundSoundness:
    """The epoch rule is only correct if the exit bound never overshoots."""

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("ipc", [0.8, 1.3])
    def test_lower_bound_never_exceeds_actual_exit(self, seed, ipc):
        machine = SimMachine(
            datacenter.WESTMERE_E5640, sockets=1, cores_per_socket=2,
            tick=0.5, seed=seed,
        )
        wl = _job(seconds=6.0, ipc=ipc)
        proc = machine.spawn("j", wl)
        lb = workload_exit_lb(machine.arch, wl)
        assert lb is not None and lb > 0.0
        while proc.alive and machine.now < 120.0:
            running = proc_exit_lb(machine, proc)
            assert running is not None
            machine.run_ticks(1)
            if not proc.alive:
                died_at = machine.death_observed[proc.pid]
                # Death can only be observed at/after the bound's tick.
                assert died_at >= lb - machine.tick
                assert died_at + machine.tick >= running
        assert not proc.alive

    def test_endless_workload_has_no_bound(self):
        assert workload_exit_lb(
            datacenter.WESTMERE_E5640, _endless()
        ) is None

    def test_noise_free_bound_includes_exec_and_stays_sound(self):
        """With noise == 0 the lognormal multiplier is exactly 1 and issue
        sharing can only raise exec CPI, so the bound prices in the full
        solo CPI — strictly tighter than the noisy penalty-only floor —
        and must still never overshoot, even under SMT contention."""
        arch = datacenter.WESTMERE_E5640
        noisy = datacenter.compute_job("n", 1.0, duration_hint=6.0)
        exact = datacenter.compute_job("d", 1.0, duration_hint=6.0, noise=0.0)
        lb_noisy = workload_exit_lb(arch, noisy)
        lb_exact = workload_exit_lb(arch, exact)
        assert lb_noisy is not None and lb_exact is not None
        assert lb_exact > lb_noisy
        # Two deterministic jobs time-share one core: both exits must
        # still land at/after the solo bound's tick.
        machine = SimMachine(arch, sockets=1, cores_per_socket=1,
                             tick=0.5, seed=7)
        procs = [
            machine.spawn(f"d{i}",
                          datacenter.compute_job(
                              f"d{i}", 1.0, duration_hint=6.0, noise=0.0))
            for i in range(2)
        ]
        while any(p.alive for p in procs) and machine.now < 120.0:
            machine.run_ticks(1)
        for proc in procs:
            assert not proc.alive
            assert machine.death_observed[proc.pid] >= lb_exact - machine.tick


class TestBatchedPathRouting:
    def test_serial_engine_shares_one_rate_cache(self):
        with Grid(_small_fleet(), _small_queues(), tick=1.0, seed=1) as grid:
            caches = {
                id(machine._rate_cache) for machine in grid.nodes.values()
            }
            assert len(caches) == 1

    def test_epoch_advance_exercises_rate_cache(self):
        with Grid([NodeSpec(name="n", sockets=1, cores_per_socket=2)],
                  tick=1.0, seed=1) as grid:
            grid.submit("a", _endless("a"), queue="short-2g-asap")
            grid.submit("b", _endless("b"), queue="short-2g-asap")
            grid.run_for(40.0)
            hits = grid.stats["rate_cache_hits"]
            misses = grid.stats["rate_cache_misses"]
            assert misses > 0
            # Steady state replays memoised rates (most repeats are
            # absorbed by the contention cache one layer up, so only the
            # residual reaches the RateCache — but it must hit there).
            assert hits > 0

    def test_epoch_batching_matches_scalar_node(self):
        """`test_run_ticks_equivalence` style, at grid granularity: a
        serial-engine node is bitwise equal to a scalar-stepped machine
        driven by the same spawn schedule."""
        with Grid([NodeSpec(name="n", sockets=1, cores_per_socket=1)],
                  tick=1.0, seed=9) as grid:
            grid.submit("j", _job(seconds=7.0, ipc=1.0),
                        queue="short-2g-asap")
            grid.run_for(20.0)
            batched = grid.snapshot("n")

        scalar = SimMachine(
            datacenter.WESTMERE_E5640, sockets=1, cores_per_socket=1,
            memory_bytes=24 * 1024**3, tick=1.0, seed=9,
        )
        scalar.spawn("j", _job(seconds=7.0, ipc=1.0))
        for _ in range(20):
            scalar.run_for(1.0)
        assert node_snapshot(scalar) == batched


class TestShardedEngineSurface:
    def test_node_access_requires_in_process_engine(self):
        with Grid(_small_fleet(), _small_queues(), tick=1.0, seed=1,
                  workers=2) as grid:
            with pytest.raises(SimulationError):
                grid.node("a0")
            with pytest.raises(SimulationError):
                grid.node("missing")
            # Snapshots still work: fetched from the owning worker.
            snap = grid.snapshot("a0")
            assert snap["now"] == 0.0

    def test_close_is_idempotent_and_workers_die(self):
        grid = Grid(_small_fleet(), _small_queues(), tick=1.0, seed=1,
                    workers=2)
        procs = list(grid.engine._procs)
        assert all(p.is_alive() for p in procs)
        grid.close()
        grid.close()
        assert all(not p.is_alive() for p in procs)

    def test_worker_error_surfaces_as_simulation_error(self):
        with Grid(_small_fleet(), _small_queues(), tick=1.0, seed=1,
                  workers=2) as grid:
            with pytest.raises(SimulationError):
                grid.engine.snapshot("nope")

    def test_invalid_engine_and_workers_rejected(self):
        with pytest.raises(SimulationError):
            Grid(_small_fleet(), _small_queues(), engine="warp")
        with pytest.raises(SimulationError):
            Grid(_small_fleet(), _small_queues(), workers=0)
        assert set(ENGINE_NAMES) == {
            "legacy", "serial", "sharded", "supervised", "fleet"
        }

    def test_more_workers_than_nodes_is_clamped(self):
        with Grid([NodeSpec(name="n", sockets=1, cores_per_socket=1)],
                  tick=1.0, seed=1, workers=8) as grid:
            assert grid.engine.workers == 1
            grid.submit("j", _job(seconds=3.0, ipc=1.0),
                        queue="short-2g-asap")
            grid.run_for(10.0)
            assert grid.jobs("done")


class TestProfileObservability:
    def test_grid_profile_lines_on_stderr(self, capsys):
        with Grid([NodeSpec(name="n")], tick=1.0, seed=2,
                  profile=True) as grid:
            grid.submit("j", _job(seconds=4.0, ipc=1.0),
                        queue="short-2g-asap")
            grid.run_for(10.0)
        err = capsys.readouterr().err
        assert "grid-profile:" in err
        assert "wall_ms=" in err
        assert "rate_cache=" in err

    def test_stats_accumulate(self):
        with Grid(_small_fleet(), _small_queues(), tick=1.0, seed=3,
                  workers=2) as grid:
            _churn(grid, 3)
            assert grid.stats["epochs"] >= 3
            assert grid.stats["ticks"] >= 10
            # One message per worker per epoch round-trip.
            assert grid.stats["messages"] >= 2 * grid.stats["epochs"]
            assert grid.stats["shard_wall"] > 0.0


class TestDeathObservation:
    def test_kill_records_boundary_time(self):
        machine = SimMachine(datacenter.WESTMERE_E5640, tick=1.0, seed=1)
        proc = machine.spawn("j", _endless())
        machine.run_for(3.0)
        machine.kill(proc.pid)
        assert machine.death_observed[proc.pid] == machine.now
        machine.kill(proc.pid)  # second kill must not move the record
        assert machine.death_observed[proc.pid] == 3.0

    def test_natural_death_records_next_boundary(self):
        machine = SimMachine(
            datacenter.WESTMERE_E5640, sockets=1, cores_per_socket=1,
            tick=1.0, seed=1,
        )
        proc = machine.spawn("j", _job(seconds=4.0, ipc=1.0))
        machine.run_ticks(30)
        assert not proc.alive
        observed = machine.death_observed[proc.pid]
        assert observed == math.floor(observed)  # a whole-tick boundary
        assert 1.0 <= observed <= 30.0


class TestSharedRateCacheInjection:
    def test_machines_accept_shared_cache(self):
        shared = RateCache()
        machines = [
            SimMachine(datacenter.WESTMERE_E5640, sockets=1,
                       cores_per_socket=1, tick=1.0, seed=s,
                       rate_cache=shared)
            for s in (1, 2)
        ]
        for machine in machines:
            machine.spawn("j", _job(seconds=5.0, ipc=1.0))
            machine.run_ticks(3)
        assert shared.hits + shared.misses > 0
        assert all(m._rate_cache is shared for m in machines)
