"""``python -m repro.serve``: daemon self-checks.

``--smoke`` is the CI gate: serve a seeded simulated node to three
concurrent clients (one total, one row-filtered, one with a server-side
derived column), then run the identical node solo through the same
cadence and require every client's reassembled stream to match the solo
frames bitwise (by canonical frame digest). Exact backpressure
accounting is asserted on the way out.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.core.app import SimHost
from repro.core.options import Options
from repro.core.sampler import Sampler
from repro.core.screen import get_screen
from repro.serve.client import collect
from repro.serve.daemon import CollectorDaemon
from repro.serve.protocol import frame_digest
from repro.serve.session import Subscription, subscription_view
from repro.sim.workloads import datacenter

_DELAY = 0.5
_ITERATIONS = 4
_SEED = 7


def _solo_frames(delay: float, iterations: int) -> list:
    """The reference: one sampler, no daemon, same node and cadence."""
    machine = datacenter.make_node(tick=min(0.5, delay / 4), seed=_SEED)
    datacenter.populate_fig1(machine)
    host = SimHost(machine)
    sampler = Sampler(
        host.backend, host.tasks, get_screen("default"), Options(delay=delay)
    )
    frames = []
    sampler.sample_frame()  # baseline
    for _ in range(iterations):
        host.sleep(delay)
        frames.append(sampler.sample_frame())
    sampler.close()
    return frames


async def _serve_smoke(delay: float, iterations: int) -> int:
    machine = datacenter.make_node(tick=min(0.5, delay / 4), seed=_SEED)
    datacenter.populate_fig1(machine)
    host = SimHost(machine)
    sampler = Sampler(
        host.backend, host.tasks, get_screen("default"), Options(delay=delay)
    )
    daemon = CollectorDaemon(
        sampler,
        advance=lambda: host.sleep(delay),
        iterations=iterations,
        min_clients=3,
    )
    port = await daemon.start()
    subs = {
        "total": Subscription(),
        "filtered": Subscription(comms=frozenset({"process1", "process2"})),
        "derived": Subscription(
            exprs=(("GIPS", "instructions / delta_t / 1e9"),)
        ),
    }
    results, _ = await asyncio.gather(
        asyncio.gather(
            *(
                collect("127.0.0.1", port, client_id=name, subscription=sub)
                for name, sub in subs.items()
            )
        ),
        daemon.run(),
    )
    await daemon.close()

    solo = _solo_frames(delay, iterations)
    failures = []
    for (name, sub), (received, client) in zip(subs.items(), results):
        expect = [
            frame_digest(subscription_view(frame, sub)) for frame in solo
        ]
        got = [frame_digest(frame) for _, frame in received]
        if got != expect:
            failures.append(f"{name}: stream digests diverge from solo run")
        stats = (client.bye or {}).get("stats", {})
        if stats.get("published") != stats.get("delivered", 0) + stats.get(
            "dropped", 0
        ) + stats.get("lag", 0):
            failures.append(f"{name}: accounting identity violated: {stats}")
        if [seq for seq, _ in received] != sorted(
            {seq for seq, _ in received}
        ):
            failures.append(f"{name}: sequence numbers not monotonic")
    for line in failures:
        print(f"serve smoke: FAIL {line}", file=sys.stderr)
    if not failures:
        print(
            f"serve smoke: OK {len(subs)} clients x {iterations} frames, "
            "bitwise-equal to solo run"
        )
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.serve")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="daemon + 3 clients + digest compare against a solo run",
    )
    parser.add_argument("--delay", type=float, default=_DELAY)
    parser.add_argument("--iterations", type=int, default=_ITERATIONS)
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.print_help()
        return 2
    return asyncio.run(_serve_smoke(args.delay, args.iterations))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
