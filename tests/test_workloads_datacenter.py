"""Data-center node populations (Figs. 1, 10)."""

import math

import pytest

from repro.sim.events import Event
from repro.sim.workloads import datacenter


class TestComputeJob:
    def test_endless_by_default(self):
        w = datacenter.compute_job("j", 1.5)
        assert math.isinf(w.total_instructions)

    def test_duration_hint_sizes_budget(self):
        w = datacenter.compute_job("j", 1.0, duration_hint=100.0)
        from repro.sim.arch import WESTMERE_E5640

        assert w.total_instructions == pytest.approx(
            WESTMERE_E5640.freq_hz * 100.0, rel=1e-6
        )

    def test_calibrated_on_westmere(self):
        from repro.sim.arch import WESTMERE_E5640
        from repro.sim.core import solo_rates

        w = datacenter.compute_job("j", 1.3)
        assert solo_rates(WESTMERE_E5640, w.phases[0]).ipc == pytest.approx(1.3)


class TestFig1Node:
    def test_node_shape(self):
        m = datacenter.make_node()
        assert m.topology.n_pus == 16
        assert m.topology.n_cores == 8
        assert m.topology.sockets == 2

    def test_populate_spawns_eleven(self):
        m = datacenter.make_node()
        procs = datacenter.populate_fig1(m)
        assert len(procs) == 11
        assert {p.user for p in procs} == {"user1", "user2", "user3"}

    def test_row_identities(self):
        rows = datacenter.FIG1_ROWS
        assert sum(1 for r in rows if r.user == "user1") == 8
        assert sum(1 for r in rows if r.user == "user3") == 2
        assert sum(1 for r in rows if r.user == "user2") == 1
        assert any(r.duty_cycle < 1 for r in rows)
        assert any(r.dmis > 0 for r in rows)

    def test_node_runs_and_counts(self):
        m = datacenter.make_node(tick=0.5)
        procs = datacenter.populate_fig1(m)
        p6 = procs[5]  # process6: the cache-missy one
        ci = m.counters.open(Event.INSTRUCTIONS, p6.pid, p6.uid)
        cm = m.counters.open(Event.CACHE_MISSES, p6.pid, p6.uid)
        m.run_for(30.0)
        dmis = 100 * cm.value / ci.value
        assert dmis > 0.4  # clearly nonzero, unlike the others


class TestFig10Script:
    def test_burst_timing(self):
        m = datacenter.make_node(tick=1.0)
        jobs = datacenter.populate_fig10(m, burst_start=50.0, burst_duration=100.0)
        assert len(jobs["user1"]) == 2
        assert jobs["user2"] == []
        m.run_for(60.0)
        assert len(jobs["user2"]) == 5
        m.run_for(150.0)
        assert all(not p.alive for p in jobs["user2"])
        assert all(p.alive for p in jobs["user1"])

    def test_interference_window_slows_user1(self):
        m = datacenter.make_node(tick=1.0)
        jobs = datacenter.populate_fig10(m, burst_start=100.0, burst_duration=600.0)
        victim = jobs["user1"][0]
        ci = m.counters.open(Event.INSTRUCTIONS, victim.pid, victim.uid)
        cc = m.counters.open(Event.CYCLES, victim.pid, victim.uid)
        m.run_for(95.0)
        solo = (ci.value, cc.value)
        solo_ipc = solo[0] / solo[1]
        m.run_for(15.0)
        mid = (ci.value, cc.value)
        m.run_for(300.0)
        end = (ci.value, cc.value)
        corun_ipc = (end[0] - mid[0]) / (end[1] - mid[1])
        drop = 1 - corun_ipc / solo_ipc
        # The paper reports ~20 %; accept a broad band around it.
        assert 0.08 < drop < 0.35

    def test_cpu_stays_maxed(self):
        """The paper's point: %CPU shows nothing (>99.3 % throughout)."""
        m = datacenter.make_node(tick=1.0)
        jobs = datacenter.populate_fig10(m, burst_start=50.0, burst_duration=300.0)
        m.run_for(200.0)
        for p in jobs["user1"]:
            assert p.cpu_time / 200.0 > 0.993
