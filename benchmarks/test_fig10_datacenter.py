"""Figure 10: the real-life data-center node snapshot.

Paper: user1 has two long jobs (IPC ~1.3 and ~1.0). user2's five jobs get
scheduled for roughly an hour; during the 38-minute window analysed, user1's
jobs drop to ~1.05 and ~0.8 — a ~20 % slowdown for both from shared-LLC
contention — while CPU usage stays above 99.3 % at all times. Plot ticks
are 10 seconds.
"""

import numpy as np
import pytest
from _harness import once, save_artifact

from repro import Options, SimHost, TipTop
from repro.analysis.interference import corun_slowdown
from repro.analysis.timeseries import MetricSeries
from repro.core.phases import pid_metric_series
from repro.sim.workloads import datacenter

BURST_START = 1200.0
BURST_DURATION = 2280.0  # the 38-minute overlap window
TAIL = 1200.0


def _run():
    machine = datacenter.make_node(tick=2.0, seed=9)
    jobs = datacenter.populate_fig10(
        machine, burst_start=BURST_START, burst_duration=BURST_DURATION
    )
    app = TipTop(SimHost(machine), Options(delay=10.0))
    with app:
        recorder = app.run_collect(
            int((BURST_START + BURST_DURATION + TAIL) / 10.0)
        )
    return recorder, jobs


def test_fig10_corun_slowdown(benchmark):
    recorder, jobs = once(benchmark, _run)
    victims = jobs["user1"]
    series = {
        p.command: pid_metric_series(recorder, p.pid, "IPC") for p in victims
    }
    art = "\n\n".join(
        MetricSeries(s.x, s.y, f"Fig 10: {name} IPC (user2 burst at t={BURST_START:.0f}s)").ascii_plot()
        for name, s in series.items()
    )
    save_artifact("fig10_datacenter", art)

    solo_window = (0.0, BURST_START - 20.0)
    corun_window = (BURST_START + 60.0, BURST_START + BURST_DURATION - 60.0)

    reports = {
        name: corun_slowdown(s, solo_window, corun_window)
        for name, s in series.items()
    }
    lines = ["Fig 10 slowdowns (paper: ~20 % for both jobs):"]
    for name, r in reports.items():
        lines.append(
            f"  {name}: solo IPC {r.solo_mean:.2f} -> corun {r.corun_mean:.2f} "
            f"({100 * r.slowdown:.1f} % slowdown)"
        )
    save_artifact("fig10_slowdowns", "\n".join(lines))

    # Both victims slow down on the order of the paper's 20 %.
    for name, report in reports.items():
        assert 0.10 < report.slowdown < 0.35, (name, report.slowdown)

    # Solo IPC levels bracket the paper's 1.3 / 1.0.
    solos = sorted(r.solo_mean for r in reports.values())
    assert solos[0] == pytest.approx(1.0, abs=0.15)
    assert solos[1] == pytest.approx(1.3, abs=0.15)

    # After the burst ends, the victims recover.
    for s in series.values():
        recovery = s.window(BURST_START + BURST_DURATION + 120.0, 1e12).mean()
        solo = s.window(*solo_window).mean()
        assert recovery == pytest.approx(solo, rel=0.08)

    # %CPU stays above 99.3 throughout: the paper's headline contrast.
    for p in victims:
        cpu = np.array([s.cpu_pct for s in recorder.for_pid(p.pid)])
        assert np.all(cpu > 99.0)

    # user2's five jobs were all seen by the tool while present.
    user2_pids = {p.pid for p in jobs["user2"]}
    assert len(user2_pids) == 5
    seen = {s.pid for s in recorder.samples if s.user == "user2"}
    assert seen == user2_pids
