"""The modern workload archetypes (JIT, GC, NUMA, interpreter, io)."""

import math

import pytest

from repro.errors import WorkloadError
from repro.sim import NEHALEM
from repro.sim.core import solo_rates
from repro.sim.workloads import modern

#: Documented per-phase solo-IPC calibration targets (the builders'
#: literals — the frozen-signature golden pins the full vectors).
TARGETS = {
    "jit-warmup-deopt": [0.62, 1.05, 1.90, 0.58, 1.86],
    "gc-pause-train": [1.28, 0.42],
    "numa-remote": [0.95, 0.38, 0.95, 0.38],
    "interp-dispatch": [0.72],
    "io-syscall": [1.22, 0.52],
}


def test_registry_names():
    assert modern.available() == list(modern.MODERN)
    assert len(set(modern.MODERN)) == 5


def test_unknown_name_raises():
    with pytest.raises(WorkloadError, match="unknown modern workload"):
        modern.workload("jit-warmup")


def test_workloads_are_cached():
    assert modern.workload("gc-pause-train") is modern.workload("gc-pause-train")


@pytest.mark.parametrize("name", modern.MODERN)
def test_calibration_is_exact(name):
    """Every phase's solo IPC on Nehalem equals its documented target."""
    workload = modern.workload(name)
    assert len(workload.phases) == len(TARGETS[name])
    for phase, target in zip(workload.phases, TARGETS[name]):
        assert solo_rates(NEHALEM, phase).ipc == pytest.approx(target, rel=1e-9)


@pytest.mark.parametrize("name", modern.MODERN)
def test_budgets_are_finite_and_positive(name):
    workload = modern.workload(name)
    assert math.isfinite(workload.total_instructions)
    assert all(p.instructions > 0 for p in workload.phases)


def test_gc_train_repeats():
    workload = modern.workload("gc-pause-train")
    assert workload.repeat == modern.GC_TRAIN_LENGTH
    mutator, gc_mark = workload.phases
    period = mutator.instructions + gc_mark.instructions
    assert gc_mark.instructions / period == pytest.approx(
        modern.GC_PAUSE_FRACTION
    )


def test_io_service_bursts():
    workload = modern.workload("io-syscall")
    assert workload.repeat == modern.IO_BURSTS


def test_phases_contrast():
    """The shapes that define each archetype: warm JIT runs far faster
    than its interpreter phases; GC marks stall on memory; remote NUMA
    scans stall harder than local ones; the interpreter is
    mispredict-limited."""
    jit = modern.workload("jit-warmup-deopt")
    ipc = {p.name: solo_rates(NEHALEM, p).ipc for p in jit.phases}
    assert ipc["opt-steady"] > 2.5 * ipc["interp-warmup"]
    assert ipc["deopt-storm"] < ipc["compile"]

    gc = modern.workload("gc-pause-train")
    mark = solo_rates(NEHALEM, gc.phases[1])
    assert mark.cpi_memory > mark.cpi_exec

    numa = modern.workload("numa-remote")
    local, remote = (solo_rates(NEHALEM, p) for p in numa.phases[:2])
    assert remote.cpi_memory > 2.0 * local.cpi_memory

    interp = solo_rates(NEHALEM, modern.workload("interp-dispatch").phases[0])
    assert interp.cpi_branch > interp.cpi_memory
