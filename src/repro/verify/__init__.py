"""Differential conformance harness: scenarios, oracles, shrinking.

The reproduction now carries several independent implementations of the
same observable behaviour — three grid engines, a scalar and a batched
machine advance, per-handle and batched counter reads, a row and a
columnar sampling path — each claiming exact agreement. ``repro.verify``
turns those claims into machine-checked properties:

* :mod:`repro.verify.scenario` — a declarative, JSON-serialisable
  :class:`~repro.verify.scenario.Scenario` plus a seeded generator that
  composes workload mixes, spawn/kill churn, fault plans, engine choices
  and multiplexing pressure into whole-system test cases.
* :mod:`repro.verify.runner` — executes one scenario through every
  implementation pair the oracles need.
* :mod:`repro.verify.oracles` — the registry of differential checks and
  semantic invariants; each returns
  :class:`~repro.verify.oracles.Violation` records.
* :mod:`repro.verify.shrink` — greedy scenario minimisation and the
  ``verify/repro-<hash>.json`` replay artifacts.
* ``python -m repro.verify`` — fuzz / replay front-end
  (:mod:`repro.verify.cli`).
"""

from repro.verify.oracles import Violation, check, check_scenario
from repro.verify.runner import Execution, execute
from repro.verify.scenario import GridFaultClause, Scenario, generate
from repro.verify.shrink import replay_artifact, shrink, write_artifact

__all__ = [
    "Execution",
    "GridFaultClause",
    "Scenario",
    "Violation",
    "check",
    "check_scenario",
    "execute",
    "generate",
    "replay_artifact",
    "shrink",
    "write_artifact",
]
