#!/usr/bin/env python3
"""Attach an analyzer when a phase starts (paper §3.2).

"More advanced users can also start running their applications at full
speed, and attach a debugger or analyzer (such as a Pintool) when a
particular phase has started." This example runs 473.astar at full speed,
arms a trigger on its low-IPC phase, and — the moment it fires — "attaches"
the Pin-like instrumenter to measure that region precisely, paying the
1.7x instrumentation tax only where it matters.

Run:  python examples/attach_on_phase.py
"""

from repro import Options, SimHost, TipTop
from repro.core.triggers import Comparison, Trigger, TriggerSet
from repro.pin.inscount import PIN_SLOWDOWN
from repro.sim import NEHALEM, SimMachine
from repro.sim.workload import Workload
from repro.sim.workloads import spec

SCALE = 5


def main() -> None:
    full = spec.workload("473.astar")
    workload = Workload(
        "astar",
        tuple(p.with_budget(p.instructions / SCALE) for p in full.phases),
    )
    machine = SimMachine(NEHALEM, tick=0.5, seed=8)
    proc = machine.spawn("astar", workload)
    app = TipTop(SimHost(machine), Options(delay=2.0))

    fired = []
    triggers = TriggerSet([
        Trigger("IPC", Comparison.BELOW, 0.75, fired.append,
                pid=proc.pid, hold=2),
    ])

    print("running 473.astar at full speed, waiting for the low-IPC phase...")
    with app:
        for snapshot in app.snapshots(10_000):
            row = snapshot.row_for(proc.pid)
            triggers.observe(snapshot)
            if triggers.any_fired or not proc.alive:
                break
    if not fired:
        print("the phase never arrived (unexpected)")
        return

    event = fired[0]
    phase, _ = proc.threads[0].current_phase() or (None, 0)
    print(f"trigger fired at t={event.time:.0f}s: IPC {event.value:.2f} "
          f"< 0.75 for 2 samples")
    print(f"the process is alive mid-phase ({phase.name!r}); attaching the "
          "instrumenter to THIS region only:")

    # "Attach Pin" to the remainder of the current phase: measure it
    # exactly, with the instrumentation slowdown applied to just that part.
    remaining_budget = sum(
        p.instructions for p in workload.phases if p.name == phase.name
    )
    from repro.sim.core import solo_rates

    rates = solo_rates(NEHALEM, phase)
    native = remaining_budget * rates.cpi / NEHALEM.freq_hz
    print(f"  region: ~{remaining_budget:.3g} instructions at IPC {rates.ipc:.2f}")
    print(f"  native time   : {native:7.1f} s")
    print(f"  instrumented  : {native * PIN_SLOWDOWN:7.1f} s (1.7x, only here)")
    whole_run = sum(
        p.instructions * solo_rates(NEHALEM, p).cpi / NEHALEM.freq_hz
        for p in workload.phases
    )
    print(f"  vs instrumenting the whole run: {whole_run * PIN_SLOWDOWN:7.1f} s")
    print("tiptop found the region for free; Pin only paid for the part "
          "under study (§3.2).")


if __name__ == "__main__":
    main()
