"""Online statistics."""

import math

import numpy as np
import pytest

from repro.util.stats import OnlineStats, ewma, median_of_runs


class TestOnlineStats:
    def test_empty_is_nan(self):
        s = OnlineStats()
        assert math.isnan(s.mean)
        assert math.isnan(s.variance)
        assert s.count == 0

    def test_single_sample(self):
        s = OnlineStats()
        s.add(3.0)
        assert s.mean == 3.0
        assert math.isnan(s.variance)

    def test_matches_numpy(self):
        data = [1.5, 2.0, 2.5, 10.0, -3.0, 0.0]
        s = OnlineStats()
        s.add_many(data)
        assert s.mean == pytest.approx(np.mean(data))
        assert s.variance == pytest.approx(np.var(data, ddof=1))
        assert s.stddev == pytest.approx(np.std(data, ddof=1))
        assert s.min == min(data)
        assert s.max == max(data)

    def test_merge_equals_combined(self):
        a_data, b_data = [1.0, 2.0, 3.0], [10.0, 20.0]
        a, b = OnlineStats(), OnlineStats()
        a.add_many(a_data)
        b.add_many(b_data)
        merged = a.merge(b)
        combined = a_data + b_data
        assert merged.count == 5
        assert merged.mean == pytest.approx(np.mean(combined))
        assert merged.variance == pytest.approx(np.var(combined, ddof=1))
        assert merged.min == 1.0
        assert merged.max == 20.0

    def test_merge_with_empty(self):
        a = OnlineStats()
        b = OnlineStats()
        b.add_many([4.0, 6.0])
        assert a.merge(b).mean == pytest.approx(5.0)
        assert b.merge(a).mean == pytest.approx(5.0)


class TestEwma:
    def test_alpha_one_is_identity(self):
        data = [1.0, 5.0, 2.0]
        assert list(ewma(data, 1.0)) == data

    def test_smooths_toward_history(self):
        out = ewma([0.0, 0.0, 10.0], 0.5)
        assert out[2] == pytest.approx(5.0)

    def test_first_sample_passthrough(self):
        assert ewma([7.0, 7.0], 0.1)[0] == 7.0

    def test_bad_alpha(self):
        with pytest.raises(ValueError):
            ewma([1.0], 0.0)
        with pytest.raises(ValueError):
            ewma([1.0], 1.5)


class TestMedianOfRuns:
    def test_three_runs_like_spec(self):
        # SPEC reporting: three runs, median (§2.5).
        assert median_of_runs([101.0, 99.0, 100.0]) == 100.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            median_of_runs([])
