"""Human-readable formatting of counts, rates and sizes.

Tiptop prints cycle and instruction counts in millions (``Mcycle``,
``Minst``) and cache sizes in KB/MB as in the hwloc topology rendering.
These helpers centralise the formatting rules so every screen and report
agrees on them.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError

_SIZE_SUFFIXES = {
    "": 1,
    "B": 1,
    "K": 1024,
    "KB": 1024,
    "KIB": 1024,
    "M": 1024**2,
    "MB": 1024**2,
    "MIB": 1024**2,
    "G": 1024**3,
    "GB": 1024**3,
    "GIB": 1024**3,
    "T": 1024**4,
    "TB": 1024**4,
}


def parse_size(text: str | int) -> int:
    """Parse a size like ``"32KB"``, ``"8MB"`` or ``256`` into bytes.

    Accepts an ``int`` (returned unchanged) or a string with an optional
    binary suffix (K/M/G/T with optional B, case-insensitive).

    Raises:
        ConfigError: if the string cannot be parsed or is negative.
    """
    if isinstance(text, int):
        if text < 0:
            raise ConfigError(f"size must be non-negative, got {text}")
        return text
    s = text.strip().upper().replace(" ", "")
    i = len(s)
    while i > 0 and not s[i - 1].isdigit():
        i -= 1
    num, suffix = s[:i], s[i:]
    if not num:
        raise ConfigError(f"cannot parse size {text!r}")
    try:
        value = int(num)
    except ValueError as exc:
        raise ConfigError(f"cannot parse size {text!r}") from exc
    if suffix not in _SIZE_SUFFIXES:
        raise ConfigError(f"unknown size suffix {suffix!r} in {text!r}")
    return value * _SIZE_SUFFIXES[suffix]


def format_size(nbytes: int) -> str:
    """Format a byte count the way hwloc labels caches (``32KB``, ``8192KB``)."""
    if nbytes >= 1024 and nbytes % 1024 == 0:
        return f"{nbytes // 1024}KB"
    return f"{nbytes}B"


def format_millions(value: float, width: int = 0) -> str:
    """Format a raw event count in millions, as tiptop's Mcycle/Minst columns.

    The paper's Figure 1 shows integer millions (e.g. ``26456``); we keep one
    decimal below 100 M for readability of short intervals.
    """
    m = value / 1e6
    text = f"{m:.1f}" if abs(m) < 100 else f"{m:.0f}"
    return text.rjust(width) if width else text


def format_count(value: float, width: int = 0) -> str:
    """Format a raw count with K/M/G scaling (``12.3M``, ``987K``)."""
    a = abs(value)
    if a >= 1e9:
        text = f"{value / 1e9:.1f}G"
    elif a >= 1e6:
        text = f"{value / 1e6:.1f}M"
    elif a >= 1e3:
        text = f"{value / 1e3:.1f}K"
    else:
        text = f"{value:.0f}"
    return text.rjust(width) if width else text


def format_percent(value: float, width: int = 0) -> str:
    """Format a ratio already expressed in percent (``99.9``)."""
    text = "  -" if value is None or math.isnan(value) else f"{value:.1f}"
    return text.rjust(width) if width else text


def format_rate(value: float, width: int = 0) -> str:
    """Format a per-interval ratio like IPC or misses/100-instructions."""
    if value is None or math.isnan(value):
        text = "-"
    elif abs(value) >= 100:
        text = f"{value:.0f}"
    else:
        text = f"{value:.2f}"
    return text.rjust(width) if width else text


def format_seconds(seconds: float) -> str:
    """Format elapsed virtual time as ``H:MM:SS`` (like top's TIME column)."""
    seconds = int(seconds)
    h, rem = divmod(seconds, 3600)
    m, s = divmod(rem, 60)
    return f"{h}:{m:02d}:{s:02d}"
