"""Grid engine scaling: dispatch epochs + shards vs the per-tick loop.

The paper's §3.4 deployment watches a ~100-node SGE fleet; simulating one
at per-tick granularity makes wall-clock linear in fleet size. This
benchmark drives a datacenter-shaped mix — long-lived services filling
most slots, a finite batch job per node, and a queued backlog that
dispatches as slots free — through every engine and records the sweep in
``BENCH_grid.json``:

* ``legacy`` — the pre-epoch sequential loop (baseline),
* ``serial`` — in-process engine, epoch batching only (workers=1),
* ``sharded-2`` / ``sharded-4`` — persistent worker shards.

Engines must agree bitwise — job fingerprints and per-node counter tables
are asserted equal on every run, smoke or full (this is the CI guard that
sharded == serial). Timing targets only apply to the full run:
epoch batching alone >= 1.5x, and sharded-4 >= 3x on the 16-node fleet.

``REPRO_BENCH_SMOKE=1`` shrinks the sweep for CI and skips the speedup
assertions (shared runners make ratios unreliable).
"""

from __future__ import annotations

import json
import os
import time

from _harness import OUT_DIR

from repro.sim.arch import NEHALEM
from repro.sim.grid import Grid, NodeSpec
from repro.sim.workloads import datacenter

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
NODE_COUNTS = (4,) if SMOKE else (4, 16)
SPAN_SECONDS = 45.0 if SMOKE else 480.0
REPEATS = 1 if SMOKE else 3
SERIAL_MIN_SPEEDUP = 1.5
SHARDED4_MIN_SPEEDUP = 3.0

ENGINES = (
    ("legacy", "legacy", 1),
    ("serial", "serial", 1),
    ("sharded-2", "sharded", 2),
    ("sharded-4", "sharded", 4),
)


def fleet(n_nodes: int) -> list[NodeSpec]:
    """A mixed fleet of small nodes (4 PUs each keeps the sweep fast)."""
    specs = []
    for i in range(n_nodes):
        if i % 2 == 0:
            specs.append(
                NodeSpec(name=f"bench{i:02d}", sockets=1, cores_per_socket=2)
            )
        else:
            specs.append(
                NodeSpec(name=f"bench{i:02d}", arch=NEHALEM, sockets=1,
                         cores_per_socket=2, memory_bytes=16 * 1024**3)
            )
    return specs


def populate(grid: Grid, n_nodes: int) -> None:
    """A datacenter-shaped mix sized to the fleet.

    Per node slot: three long-lived services and one finite, noise-free
    batch job (deterministic jobs get the exec-inclusive exit bound, so
    epoch boundaries land near the real exits), plus a queued backlog of
    half a job per node. Slots free mid-run and the dispatcher re-fills
    them, so epoch boundaries genuinely matter."""
    for i in range(4 * n_nodes):
        if i % 4 == 3:
            workload = datacenter.compute_job(
                f"job{i:03d}",
                1.0,
                duration_hint=30.0 + 15.0 * (i % 5),
                noise=0.0,
            )
        else:
            workload = datacenter.compute_job(f"job{i:03d}", 0.9 + 0.1 * (i % 4))
        grid.submit(
            f"job{i:03d}",
            workload,
            user=f"user{i % 3}",
            queue=("short-2g-asap", "day-2g-overnight")[i % 2],
        )
    for i in range(n_nodes // 2):
        grid.submit(
            f"backlog{i:02d}",
            datacenter.compute_job(
                f"backlog{i:02d}", 1.1, duration_hint=40.0, noise=0.0
            ),
            queue="short-2g-asap",
        )


def fingerprint(grid: Grid):
    return [
        (j.job_id, j.node, j.started_at, j.finished_at, j.killed, j.pid,
         j.state)
        for j in grid.jobs()
    ]


def run_engine(label: str, engine: str, workers: int, n_nodes: int):
    """Best-of-N wall time plus the observables for the equality check."""
    best = float("inf")
    observed = None
    epochs = 0
    for _ in range(REPEATS):
        with Grid(fleet(n_nodes), tick=1.0, seed=42, workers=workers,
                  engine=engine) as grid:
            populate(grid, n_nodes)
            t0 = time.perf_counter()
            grid.run_for(SPAN_SECONDS)
            best = min(best, time.perf_counter() - t0)
            observed = (
                fingerprint(grid),
                {s.name: grid.snapshot(s.name) for s in grid.specs},
            )
            epochs = grid.stats["epochs"]
    return best, observed, epochs


def test_grid_scaling():
    sweeps = []
    speedups: dict[int, dict[str, float]] = {}
    for n_nodes in NODE_COUNTS:
        results = {}
        for label, engine, workers in ENGINES:
            seconds, observed, epochs = run_engine(
                label, engine, workers, n_nodes
            )
            results[label] = (seconds, observed, epochs)
        baseline = results["legacy"][1]
        for label, (_, observed, _) in results.items():
            assert observed == baseline, (
                f"{label} diverged from legacy on {n_nodes} nodes"
            )
        legacy_seconds = results["legacy"][0]
        speedups[n_nodes] = {}
        entry = {"nodes": n_nodes, "engines": {}}
        for label, (seconds, _, epochs) in results.items():
            speedup = legacy_seconds / seconds
            speedups[n_nodes][label] = speedup
            entry["engines"][label] = {
                "seconds": round(seconds, 6),
                "speedup_vs_legacy": round(speedup, 3),
                "epochs": epochs,
            }
        sweeps.append(entry)
        print(
            f"\n{n_nodes:3d} nodes: " + "  ".join(
                f"{label}={results[label][0]:.3f}s"
                f" ({speedups[n_nodes][label]:.2f}x)"
                for label, _, _ in ENGINES
            )
        )

    payload = {
        "scenario": {
            "span_seconds": SPAN_SECONDS,
            "tick": 1.0,
            "seed": 42,
            "jobs_per_node": 4,
            "backlog_jobs_per_node": 0.5,
            "node_counts": list(NODE_COUNTS),
            "repeats": REPEATS,
            "smoke": SMOKE,
        },
        "targets": {
            "serial_min_speedup": SERIAL_MIN_SPEEDUP,
            "sharded4_min_speedup": SHARDED4_MIN_SPEEDUP,
        },
        "sweeps": sweeps,
    }
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_grid.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    if not SMOKE:
        serial = speedups[16]["serial"]
        sharded4 = speedups[16]["sharded-4"]
        assert serial >= SERIAL_MIN_SPEEDUP, (
            f"epoch batching alone is only {serial:.2f}x on 16 nodes"
        )
        assert sharded4 >= SHARDED4_MIN_SPEEDUP, (
            f"sharded-4 is only {sharded4:.2f}x on 16 nodes"
        )
