"""Safe expression language for derived columns.

Tiptop's screens are "fully customizable" (§2.2): a column is an arithmetic
expression over counter deltas, e.g. IPC is ``instructions / cycles`` and
the DMIS column of Fig. 1 is ``100 * cache_misses / instructions``. This is
a tiny recursive-descent parser and evaluator — no ``eval``, no attribute
access, just numbers, identifiers, ``+ - * /``, unary minus and parens.

Identifiers use underscores; event names containing dashes are addressed by
their underscored form (``cache-misses`` -> ``cache_misses``). Division by
zero evaluates to NaN (rendered as "-" by the formatter), matching how a
ratio over an empty interval should read.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ExprError

_IDENT_CHARS = set("abcdefghijklmnopqrstuvwxyz0123456789_")


def canonical_name(event_name: str) -> str:
    """Identifier form of an event name (dashes become underscores)."""
    return event_name.replace("-", "_").lower()


@dataclass(frozen=True)
class _Num:
    value: float


@dataclass(frozen=True)
class _Var:
    name: str


@dataclass(frozen=True)
class _BinOp:
    op: str
    left: "Node"
    right: "Node"


@dataclass(frozen=True)
class _Neg:
    operand: "Node"


Node = _Num | _Var | _BinOp | _Neg


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def error(self, message: str) -> ExprError:
        return ExprError(f"{message} at position {self.pos} in {self.text!r}")

    def peek(self) -> str:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def parse(self) -> Node:
        node = self.expr()
        if self.peek():
            raise self.error("unexpected trailing input")
        return node

    def expr(self) -> Node:
        node = self.term()
        while self.peek() in ("+", "-"):
            op = self.text[self.pos]
            self.pos += 1
            node = _BinOp(op, node, self.term())
        return node

    def term(self) -> Node:
        node = self.factor()
        while self.peek() in ("*", "/"):
            op = self.text[self.pos]
            self.pos += 1
            node = _BinOp(op, node, self.factor())
        return node

    def factor(self) -> Node:
        ch = self.peek()
        if ch == "(":
            self.pos += 1
            node = self.expr()
            if self.peek() != ")":
                raise self.error("expected ')'")
            self.pos += 1
            return node
        if ch == "-":
            self.pos += 1
            return _Neg(self.factor())
        if ch.isdigit() or ch == ".":
            return self.number()
        if ch.lower() in _IDENT_CHARS:
            return self.identifier()
        raise self.error(f"unexpected character {ch!r}")

    def number(self) -> Node:
        start = self.pos
        seen_e = False
        while self.pos < len(self.text):
            c = self.text[self.pos]
            if c.isdigit() or c == ".":
                self.pos += 1
            elif c in "eE" and not seen_e:
                seen_e = True
                self.pos += 1
                if self.pos < len(self.text) and self.text[self.pos] in "+-":
                    self.pos += 1
            else:
                break
        try:
            return _Num(float(self.text[start : self.pos]))
        except ValueError as exc:
            raise self.error("malformed number") from exc

    def identifier(self) -> Node:
        start = self.pos
        while (
            self.pos < len(self.text)
            and self.text[self.pos].lower() in _IDENT_CHARS
        ):
            self.pos += 1
        return _Var(self.text[start : self.pos].lower())


class Expression:
    """A compiled derived-column expression.

    Args:
        text: the source expression (e.g. ``"instructions / cycles"``).

    Raises:
        ExprError: on a syntax error.
    """

    def __init__(self, text: str) -> None:
        self.text = text
        self._root = _Parser(text).parse()
        self.variables = frozenset(self._collect(self._root))

    @staticmethod
    def _collect(node: Node) -> set[str]:
        if isinstance(node, _Var):
            return {node.name}
        if isinstance(node, _BinOp):
            return Expression._collect(node.left) | Expression._collect(node.right)
        if isinstance(node, _Neg):
            return Expression._collect(node.operand)
        return set()

    def evaluate(self, env: dict[str, float]) -> float:
        """Evaluate against ``env``.

        Raises:
            ExprError: for an identifier missing from ``env``.
        """
        return self._eval(self._root, env)

    def _eval(self, node: Node, env: dict[str, float]) -> float:
        if isinstance(node, _Num):
            return node.value
        if isinstance(node, _Var):
            try:
                return env[node.name]
            except KeyError as exc:
                raise ExprError(
                    f"unknown identifier {node.name!r} in {self.text!r} "
                    f"(have: {sorted(env)})"
                ) from exc
        if isinstance(node, _Neg):
            return -self._eval(node.operand, env)
        left = self._eval(node.left, env)
        right = self._eval(node.right, env)
        if node.op == "+":
            return left + right
        if node.op == "-":
            return left - right
        if node.op == "*":
            return left * right
        # division
        if right == 0:
            return math.nan
        return left / right

    def evaluate_column(
        self, env: dict[str, "np.ndarray | float"], length: int
    ) -> np.ndarray:
        """Evaluate over whole columns at once.

        ``env`` maps identifiers to float64 arrays of ``length`` entries
        (or scalars, which broadcast). The expression compiles once at
        construction; this walks the same AST but with numpy elementwise
        arithmetic, so a screen's derived columns cost one pass per column
        instead of one interpreter walk per task. Every element is
        bitwise-identical to :meth:`evaluate` on the corresponding scalar
        env: the operations are the same IEEE-754 double ops, and division
        by zero maps to NaN exactly as the scalar path does.

        Raises:
            ExprError: for an identifier missing from ``env``.
        """
        result = self._eval_vec(self._root, env)
        if np.ndim(result) == 0:
            return np.full(length, float(result))
        return np.asarray(result, dtype=float)

    def _eval_vec(self, node: Node, env: dict[str, "np.ndarray | float"]):
        if isinstance(node, _Num):
            return node.value
        if isinstance(node, _Var):
            try:
                return env[node.name]
            except KeyError as exc:
                raise ExprError(
                    f"unknown identifier {node.name!r} in {self.text!r} "
                    f"(have: {sorted(env)})"
                ) from exc
        if isinstance(node, _Neg):
            return -self._eval_vec(node.operand, env)
        left = self._eval_vec(node.left, env)
        right = self._eval_vec(node.right, env)
        if node.op == "+":
            return left + right
        if node.op == "-":
            return left - right
        if node.op == "*":
            return left * right
        # division: 0 denominators read as NaN, like the scalar path
        if np.ndim(left) == 0 and np.ndim(right) == 0:
            return math.nan if right == 0 else left / right
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            quotient = np.true_divide(left, right)
        return np.where(np.asarray(right) == 0.0, math.nan, quotient)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Expression({self.text!r})"
