"""Collector/client split: one sampler feeding any number of viewers.

ROADMAP item 1 ("millions of users") lands here: the
:class:`~repro.serve.daemon.CollectorDaemon` runs the sampling loop once
and fans each columnar frame out over a length-prefixed binary protocol
(:mod:`repro.serve.protocol`); :class:`~repro.serve.client.ServeClient`
reassembles the stream bitwise. Per-client filtering, backpressure and
resume live in :mod:`repro.serve.session`.
"""

from repro.serve.client import ServeClient, collect
from repro.serve.daemon import CollectorDaemon
from repro.serve.protocol import (
    MAX_MESSAGE,
    VERSION,
    MessageReader,
    decode_message,
    encode_frame,
    frame_digest,
)
from repro.serve.session import ClientSession, FanoutHub, Subscription

__all__ = [
    "MAX_MESSAGE",
    "VERSION",
    "ClientSession",
    "CollectorDaemon",
    "FanoutHub",
    "MessageReader",
    "ServeClient",
    "Subscription",
    "collect",
    "decode_message",
    "encode_frame",
    "frame_digest",
]
