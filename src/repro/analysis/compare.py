"""Side-by-side run comparison (the §3.3 workflow as an API).

The paper's compiler study runs two builds of the same benchmark and reads
the IPC traces against each other: who is faster, whose IPC is higher, and
— the part aggregate totals hide — whether the winner *flips between
phases* (Fig. 9c's inversion). :func:`compare_runs` packages that reading
for any two labelled IPC traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.timeseries import MetricSeries
from repro.errors import ReproError


@dataclass(frozen=True)
class RunComparison:
    """The §3.3 verdict for two labelled runs of the same work.

    Attributes:
        a_label / b_label: run names ("gcc", "icc").
        a_time / b_time: completion times.
        a_mean_ipc / b_mean_ipc: run-mean IPC.
        inversion: True when the IPC leader flips between the early and
            late parts of the runs (Fig. 9c).
        verdict: one of "higher-ipc-wins", "lower-ipc-wins", "same-speed".
    """

    a_label: str
    b_label: str
    a_time: float
    b_time: float
    a_mean_ipc: float
    b_mean_ipc: float
    inversion: bool
    verdict: str

    @property
    def faster(self) -> str:
        """Label of the faster run (ties go to a)."""
        return self.a_label if self.a_time <= self.b_time else self.b_label

    @property
    def higher_ipc(self) -> str:
        """Label of the higher-mean-IPC run."""
        return self.a_label if self.a_mean_ipc >= self.b_mean_ipc else self.b_label

    def describe(self) -> str:
        """One paragraph in the paper's terms."""
        lines = [
            f"{self.a_label}: {self.a_time:.0f}s at mean IPC {self.a_mean_ipc:.2f}; "
            f"{self.b_label}: {self.b_time:.0f}s at mean IPC {self.b_mean_ipc:.2f}."
        ]
        if self.verdict == "same-speed":
            lines.append(
                f"Same speed despite different IPC: {self.higher_ipc} simply "
                "executes more instructions (Fig. 9d pattern)."
            )
        elif self.verdict == "higher-ipc-wins":
            lines.append(
                f"{self.faster} wins with the higher IPC (Fig. 9a pattern)."
            )
        else:
            lines.append(
                f"{self.faster} wins despite the lower IPC — fewer "
                "instructions (Fig. 9b pattern)."
            )
        if self.inversion:
            lines.append(
                "Inversion: the IPC leader flips between phases (Fig. 9c) — "
                "invisible in aggregated totals."
            )
        return " ".join(lines)


def compare_runs(
    a: MetricSeries,
    b: MetricSeries,
    *,
    same_speed_tolerance: float = 0.05,
    phase_fraction: float = 0.25,
    inversion_margin: float = 0.05,
) -> RunComparison:
    """Compare two IPC-versus-time traces of the same logical work.

    Args:
        a, b: labelled traces (their last x is the completion time).
        same_speed_tolerance: relative time difference under which the runs
            count as equally fast.
        phase_fraction: fraction of each run treated as its "early" and
            "late" phase for inversion detection.
        inversion_margin: minimum IPC lead (absolute) in *both* phases for
            an inversion call — guards against noise flips.

    Raises:
        ReproError: on empty traces.
    """
    if len(a) == 0 or len(b) == 0:
        raise ReproError("compare_runs needs non-empty traces")
    a_time, b_time = float(a.x[-1]), float(b.x[-1])
    a_mean, b_mean = a.mean(), b.mean()

    cut_a = max(1, int(phase_fraction * len(a)))
    cut_b = max(1, int(phase_fraction * len(b)))
    early = float(np.mean(a.y[:cut_a]) - np.mean(b.y[:cut_b]))
    late = float(np.mean(a.y[-cut_a:]) - np.mean(b.y[-cut_b:]))
    inversion = (
        early > inversion_margin and late < -inversion_margin
    ) or (early < -inversion_margin and late > inversion_margin)

    if abs(a_time - b_time) / max(a_time, b_time) < same_speed_tolerance:
        verdict = "same-speed"
    else:
        faster_is_a = a_time < b_time
        higher_is_a = a_mean > b_mean
        verdict = (
            "higher-ipc-wins" if faster_is_a == higher_is_a else "lower-ipc-wins"
        )
    return RunComparison(
        a_label=a.label or "a",
        b_label=b.label or "b",
        a_time=a_time,
        b_time=b_time,
        a_mean_ipc=a_mean,
        b_mean_ipc=b_mean,
        inversion=inversion,
        verdict=verdict,
    )
