"""Performance benchmarks of the substrate itself.

Unlike the per-figure experiments (deterministic, run once), these use
pytest-benchmark's repeated timing to track the simulator's own speed —
the property that makes the full experiment suite run in seconds. Regression
here means every figure bench slows down.
"""

from _harness import endless_slice

from repro import Options, SimHost, TipTop
from repro.core.expr import Expression
from repro.core.screen import get_screen
from repro.sim import NEHALEM, SimMachine
from repro.sim.cache import MemoryBehavior, miss_chain
from repro.sim.core import compute_rates
from repro.sim.workloads import datacenter, spec


def _loaded_machine(n_tasks=8):
    machine = SimMachine(NEHALEM, sockets=2, cores_per_socket=4, tick=0.5, seed=2)
    workload = endless_slice("429.mcf", 2, name="w")
    for i in range(n_tasks):
        machine.spawn(f"t{i}", workload)
    return machine


def test_perf_machine_tick_throughput(benchmark):
    """Advance a fully loaded 16-PU node: the inner loop of every figure."""
    machine = _loaded_machine()
    machine.run_for(5.0)  # warm the contention fixed point

    def advance():
        machine.run_for(10.0)

    benchmark(advance)


def test_perf_compute_rates(benchmark):
    """One pipeline-model evaluation (called ~3x per task per tick)."""
    phase = spec.workload("429.mcf").phases[2]
    caps = [(s, float(s.size)) for s in NEHALEM.cache_levels]
    benchmark(compute_rates, NEHALEM, phase, caps)


def test_perf_miss_chain(benchmark):
    """The analytic cache model alone."""
    behavior = MemoryBehavior(
        working_set=1 << 30, level_hit_ratios=(0.85, 0.91, 0.92)
    )
    levels = [(s, float(s.size)) for s in NEHALEM.cache_levels]
    benchmark(miss_chain, behavior, 0.35, levels)


def test_perf_sampler_snapshot(benchmark):
    """One tiptop refresh over eleven tasks (Fig. 1's shape)."""
    machine = datacenter.make_node(tick=0.5, seed=7)
    datacenter.populate_fig1(machine)
    app = TipTop(SimHost(machine), Options(delay=1.0))
    app.sampler.sample()  # attach

    def refresh():
        machine.run_for(1.0)
        return app.sampler.sample()

    benchmark(refresh)
    app.close()


def test_perf_expression_eval(benchmark):
    """Derived-column evaluation (a handful per row per refresh)."""
    expr = Expression("100 * cache_misses / instructions")
    env = {"cache_misses": 9.0, "instructions": 1000.0}
    benchmark(expr.evaluate, env)


def test_perf_screen_render(benchmark):
    """Formatting one live frame."""
    from repro.core import formatter

    machine = datacenter.make_node(tick=0.5, seed=7)
    datacenter.populate_fig1(machine)
    app = TipTop(SimHost(machine), Options(delay=1.0))
    app.sampler.sample()
    machine.run_for(2.0)
    snapshot = app.sampler.sample()
    screen = get_screen("default")
    benchmark(formatter.render_frame, screen, snapshot)
    app.close()
