"""Pluggable shard transports: one epoch round-trip, three fabrics.

The sharded engines (:mod:`repro.sim.parallel`, :mod:`repro.sim.supervisor`)
speak one tiny protocol per worker slot — ``("advance", commands, n_ticks,
frac)`` / ``("snapshot", [names])`` / ``("close",)`` in, ``("ok", payload)``
or ``("error", text)`` out, with ``("ok", "ready")`` as the post-build
handshake. This module abstracts *how* those tuples travel, mirroring the
process/SSH/cluster ``Pool`` ladder of vusec's instrumentation-infra:

* :class:`InprocTransport` — no process at all. The shard lives in the
  caller; messages are zero-copy Python objects. The serial baseline of
  the transport axis, and the cheapest way to run the chaos ladder
  deterministically in tests.
* :class:`ForkTransport` — today's ``multiprocessing`` pipe, with pickled
  tuples sent via ``send_bytes`` so every message's exact wire size is
  accounted.
* :class:`SocketTransport` — a per-worker host-agent process on the other
  end of one persistent TCP/Unix stream socket, speaking the ``"TTSV"``
  length-prefixed binary frames of :mod:`repro.sim.shardwire` instead of
  pickle. Workload specs are interned per connection: the full pickled
  workload crosses the wire once, later spawns reference it by id — the
  epoch round-trip stays O(commands), not O(workload bytes).

Every transport enforces the same failure taxonomy: a round-trip against
a dead peer raises :class:`~repro.errors.WorkerFailure` ``kind="crash"``,
a missed deadline ``"hang"``, an unparseable reply ``"garbled"``, a
message lost to a network fault ``"unreachable"``, and any operation
after :meth:`ShardTransport.close` ``"closed"`` (so a send racing engine
teardown is a typed event, not a stray ``BrokenPipeError``). Chaos
(:class:`~repro.sim.supervisor.GridFaultPlan`) runs inside the agent for
process transports and is emulated deterministically by the in-process
transport, so fault schedules and supervisor event logs are
transport-invariant.

Two concerns ride on the round-trip uniformly across fabrics, both
implemented once in :class:`ShardTransport` around the subclasses' raw
``_spawn_raw``/``_send_raw``/``_recv_raw`` primitives:

* **Network chaos** (:class:`~repro.sim.netchaos.NetChaosPlan`): the
  parent-side message layer is where partitions bite, so the base class
  consults the plan per (worker link, epoch, attempt) before a request
  touches the wire. A partitioned or dropped request is simply never
  sent; the reply deadline collapses into
  ``WorkerFailure(kind="unreachable")``. A half-open or reordered link
  delivers the request — the agent *applies* the epoch — but the genuine
  reply is stranded parent-side in a stash, surfacing only after the
  link heals (the split-brain shape).

* **Epoch fencing**: every agent reply carries ``(incarnation, epoch)``
  and the parent tracks the one fence the in-flight round-trip may
  match. Stashed or duplicated replies from a stale incarnation are
  rejected and counted (``fenced_rejected``) instead of being merged, so
  a healed partition can never double-apply an epoch.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import socket
import tempfile
import time
from typing import TYPE_CHECKING, Any

from repro.errors import SimulationError, WireError, WorkerFailure
from repro.serve.protocol import MessageReader
from repro.sim.parallel import TRANSPORT_NAMES, PreemptCmd, Shard, SpawnCmd
from repro.sim.shardwire import (
    MSG_SHARD_ADVANCE,
    MSG_SHARD_CLOSE,
    MSG_SHARD_ERR,
    MSG_SHARD_OK,
    MSG_SHARD_SNAPSHOT,
    decode_shard,
    pack_fenced,
    pack_shard,
    split_fenced,
)

if TYPE_CHECKING:
    from repro.sim.grid import NodeSpec
    from repro.sim.netchaos import NetChaosPlan
    from repro.sim.supervisor import GridFaultPlan


#: Exit code of a chaos-crashed worker (deterministic, unlike a signal).
CRASH_EXIT = 17

#: Net-fault kinds where the request is lost before it touches the wire.
_LOST_REQUEST = frozenset({"partition", "drop"})

#: Net-fault kinds where the request lands but the reply is stranded.
_LOST_REPLY = frozenset({"half_open", "reorder"})


def _hang() -> None:  # pragma: no cover - runs in a worker process
    """Simulate a wedged worker: ignore SIGTERM, stop replying."""
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    while True:
        time.sleep(3600)


# -- the agent loop (runs in the worker, whatever the fabric) -----------------

def _agent_loop(
    channel,
    entries: list[tuple["NodeSpec", int]],
    tick: float,
    journal: list[tuple[list, int, float]],
    chaos: "GridFaultPlan | None",
    worker_id: int,
    incarnation: int,
) -> None:  # pragma: no cover - runs in a worker process
    """Shard-agent loop: rebuild, replay, then serve epochs.

    Identical across pipe and socket fabrics — only the channel differs.
    Journal replay happens silently before the ready handshake
    (resurrection); chaos fires at the top of each *live* advance with the
    epoch counter starting past the replayed entries, so fault schedules
    line up with the supervisor's global epoch numbering and replay itself
    is never faulted.

    Every reply is fenced with ``(incarnation, reply epoch)`` — captured
    *before* dispatch, so an advance that raises still fences with the
    epoch it was answering, and the parent can tell a genuine error reply
    from a stale straggler.
    """
    shard = Shard(entries, tick)
    for commands, n_ticks, frac in journal:
        shard.advance(commands, n_ticks, frac)
    epoch = len(journal)
    channel.send(("ok", "ready", incarnation, epoch))
    while True:
        try:
            msg = channel.recv()
        except EOFError:
            break
        tag = msg[0]
        if tag == "close":
            break
        reply_epoch = epoch
        try:
            if tag == "advance":
                _, commands, n_ticks, frac = msg
                fault = (
                    chaos.decide(worker_id, epoch, incarnation)
                    if chaos is not None
                    else None
                )
                if fault == "crash":
                    os._exit(CRASH_EXIT)
                if fault == "hang":
                    _hang()
                epoch += 1
                if fault == "garble":
                    channel.send(
                        ("ok", {"garbled": reply_epoch}, incarnation,
                         reply_epoch)
                    )
                    continue
                channel.send(
                    ("ok", shard.advance(commands, n_ticks, frac),
                     incarnation, reply_epoch)
                )
            elif tag == "snapshot":
                channel.send(
                    ("ok", shard.snapshot_many(msg[1]), incarnation,
                     reply_epoch)
                )
            else:
                channel.send(
                    ("error", f"unknown message {tag!r}", incarnation,
                     reply_epoch)
                )
        except Exception as exc:
            channel.send(
                ("error", f"{type(exc).__name__}: {exc}", incarnation,
                 reply_epoch)
            )
    channel.close()


class _PipeChannel:  # pragma: no cover - runs in a worker process
    """Agent side of the fork transport: pickled tuples over a pipe."""

    def __init__(self, conn) -> None:
        self.conn = conn

    def send(self, msg: tuple) -> None:
        try:
            self.conn.send_bytes(pickle.dumps(msg))
        except OSError:
            # Half-closed parent (teardown race, partition heal): the
            # reply is undeliverable; dropping it lets the loop reach
            # the EOF on its next recv and exit cleanly instead of
            # dying with a BrokenPipeError traceback.
            pass

    def recv(self) -> tuple:
        try:
            return pickle.loads(self.conn.recv_bytes())
        except (EOFError, OSError):
            raise EOFError from None

    def close(self) -> None:
        self.conn.close()


class _SocketChannel:  # pragma: no cover - runs in a worker process
    """Agent side of the socket transport: TTSV frames, interned specs."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.reader = MessageReader()
        self.queue: list[bytes] = []
        self._intern: dict[int, Any] = {}

    def send(self, msg: tuple) -> None:
        tag, payload, inc, epoch = msg
        msg_type = MSG_SHARD_OK if tag == "ok" else MSG_SHARD_ERR
        try:
            self.sock.sendall(pack_fenced(msg_type, inc, epoch, payload))
        except OSError:
            pass  # half-closed parent: see _PipeChannel.send

    def recv(self) -> tuple:
        while not self.queue:
            try:
                data = self.sock.recv(1 << 16)
            except OSError:
                raise EOFError from None
            if not data:
                raise EOFError
            self.queue.extend(self.reader.feed(data))
        msg_type, value = decode_shard(self.queue.pop(0))
        if msg_type == MSG_SHARD_ADVANCE:
            for ref, blob in value["intern"].items():
                self._intern[ref] = pickle.loads(blob)
            commands = []
            for cmd in value["cmds"]:
                if cmd[0] == "spawn":
                    _, job_id, node, command, user, limit, ref = cmd
                    commands.append(
                        SpawnCmd(
                            job_id=job_id,
                            node=node,
                            command=command,
                            user=user,
                            workload=self._intern[ref],
                            wallclock_limit=limit,
                        )
                    )
                else:
                    commands.append(PreemptCmd(job_id=cmd[1], node=cmd[2]))
            return ("advance", commands, value["n_ticks"], value["frac"])
        if msg_type == MSG_SHARD_SNAPSHOT:
            return ("snapshot", value)
        if msg_type == MSG_SHARD_CLOSE:
            return ("close",)
        raise EOFError  # a reply type from the parent: broken peer

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


def _fork_agent_main(
    conn, entries, tick, journal, chaos, worker_id, incarnation
) -> None:  # pragma: no cover - runs in a worker process
    _agent_loop(
        _PipeChannel(conn), entries, tick, journal, chaos, worker_id,
        incarnation,
    )


def _socket_agent_main(
    family, address, entries, tick, journal, chaos, worker_id, incarnation
) -> None:  # pragma: no cover - runs in a worker process
    # Connect before building the shard: the parent's accept is then
    # near-instant, and replay cost falls entirely under the engine's
    # replay-scaled ready deadline.
    sock = socket.socket(family, socket.SOCK_STREAM)
    sock.connect(address)
    _agent_loop(
        _SocketChannel(sock), entries, tick, journal, chaos, worker_id,
        incarnation,
    )


# -- parent-side transports ---------------------------------------------------

class ShardTransport:
    """One worker slot's link: spawn/replay, guarded round-trips, teardown.

    Subclasses implement the fabric through ``_spawn_raw``, ``_send_raw``
    and ``_recv_raw`` (raw replies are fenced 4-tuples ``(tag, payload,
    incarnation, epoch)``); the failure taxonomy, byte/message
    accounting, the closed-state contract, network-chaos injection and
    epoch fencing are shared and live in the public :meth:`spawn` /
    :meth:`send` / :meth:`recv` wrappers. ``worker_id`` is the *global*
    worker index (fleet supervisors offset it per host) used in failure
    messages and as the chaos *link* id.
    """

    kind = "base"

    def __init__(
        self,
        worker_id: int,
        entries: list[tuple["NodeSpec", int]],
        tick: float,
        chaos: "GridFaultPlan | None" = None,
        netchaos: "NetChaosPlan | None" = None,
    ) -> None:
        self.worker_id = worker_id
        self.entries = entries
        self.tick = tick
        self.chaos = chaos
        self.netchaos = netchaos
        self.closed = False
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages = 0
        self.proc: Any = None
        # -- fencing state ----------------------------------------------------
        #: Incarnation of the agent currently holding this slot.
        self.incarnation = 0
        #: Replies rejected because their fence was stale (split-brain
        #: stragglers that would otherwise double-apply an epoch).
        self.fenced_rejected = 0
        #: Round-trips the net-chaos plan faulted on this link.
        self.net_faults = 0
        #: The one ``(incarnation, epoch)`` the in-flight reply may carry.
        self._expect: tuple[int, int] = (0, 0)
        #: Next advance's global epoch number (journal length + live sends).
        self._net_epoch = 0
        # Attempt axis of the heal schedule: how many times the same
        # epoch's round-trip has been tried on this link. Survives
        # respawns — a partition heals after `duration` *attempts*, and
        # every attempt rides a fresh incarnation.
        self._attempt_epoch = -1
        self._attempt_count = 0
        #: Fault armed by :meth:`send`, resolved by the matching recv.
        self._pending_fault: tuple[str, int] | None = None
        #: Replies stranded by a cut link, delivered (and fence-rejected)
        #: after it heals. Parent-side, so it survives agent respawns —
        #: exactly like bytes buffered in a real healed TCP stream.
        self._stash: list[tuple] = []

    # -- failure constructors -----------------------------------------------
    def _closed_failure(self) -> WorkerFailure:
        return WorkerFailure(
            f"grid worker {self.worker_id} transport is closed",
            worker=self.worker_id,
            kind="closed",
        )

    def _crash_failure(self, detail: str = "died") -> WorkerFailure:
        return WorkerFailure(
            f"grid worker {self.worker_id} {detail}"
            + (
                f" (exitcode {self.exitcode})"
                if self.exitcode is not None
                else ""
            ),
            worker=self.worker_id,
            kind="crash",
            exitcode=self.exitcode,
        )

    def _hang_failure(self, timeout: float) -> WorkerFailure:
        return WorkerFailure(
            f"grid worker {self.worker_id} missed its {timeout:g}s deadline",
            worker=self.worker_id,
            kind="hang",
        )

    def _garbled_failure(self, detail: str) -> WorkerFailure:
        return WorkerFailure(
            f"grid worker {self.worker_id} {detail}",
            worker=self.worker_id,
            kind="garbled",
        )

    def _unreachable_failure(
        self, net_kind: str, epoch: int, timeout: float
    ) -> WorkerFailure:
        return WorkerFailure(
            f"grid worker {self.worker_id} is unreachable "
            f"(net {net_kind} on epoch {epoch}, {timeout:g}s deadline)",
            worker=self.worker_id,
            kind="unreachable",
        )

    # -- the contract ---------------------------------------------------------
    def spawn(self, replay: list, incarnation: int) -> None:
        """(Re)start the agent, resurrecting the shard from ``replay``.

        Sets the fence the ready handshake must carry; the stranded-reply
        stash deliberately survives into the new incarnation (that is the
        split-brain scenario fencing exists for).
        """
        self.incarnation = incarnation
        self._net_epoch = len(replay)
        self._expect = (incarnation, len(replay))
        self._pending_fault = None
        self._spawn_raw(replay, incarnation)

    def send(self, msg: tuple) -> None:
        """Send one request, consulting the net-chaos plan first.

        A faulted advance may never touch the wire at all (partition /
        drop): the request is lost exactly as a cut link loses it, and
        the paired :meth:`recv` raises ``kind="unreachable"`` instead of
        waiting out the deadline.
        """
        if self.closed:
            raise self._closed_failure()
        tag = msg[0]
        if tag == "advance":
            epoch = self._net_epoch
            self._expect = (self.incarnation, epoch)
            self._net_epoch = epoch + 1
            fault = self._net_decide(epoch)
            if fault is not None:
                self.net_faults += 1
                self._pending_fault = (fault, epoch)
                if fault in _LOST_REQUEST:
                    return
        elif tag == "snapshot":
            self._expect = (self.incarnation, self._net_epoch)
        self._send_raw(msg)

    def recv(self, timeout: float) -> tuple[str, Any]:
        """One reply ``(tag, payload)`` under a deadline, fence-checked.

        Replies whose ``(incarnation, epoch)`` fence does not match the
        in-flight round-trip — stragglers from a healed cut, duplicates,
        answers computed by a superseded incarnation — are discarded and
        counted in ``fenced_rejected``, never surfaced to the engine.
        """
        if self.closed:
            raise self._closed_failure()
        reply = self._next_reply(timeout)
        while (reply[2], reply[3]) != self._expect:
            self.fenced_rejected += 1
            reply = self._next_reply(timeout)
        return reply[0], reply[1]

    def _net_decide(self, epoch: int) -> str | None:
        """One heal-schedule step: the fault (if any) for this attempt."""
        if self.netchaos is None:
            return None
        if self._attempt_epoch != epoch:
            self._attempt_epoch = epoch
            self._attempt_count = 0
        attempt = self._attempt_count
        self._attempt_count += 1
        return self.netchaos.decide(self.worker_id, epoch, attempt)

    def _next_reply(self, timeout: float) -> tuple:
        """Next raw reply: resolve the armed fault, then stash, then wire."""
        fault = self._pending_fault
        if fault is not None:
            self._pending_fault = None
            net_kind, epoch = fault
            if net_kind in _LOST_REQUEST:
                raise self._unreachable_failure(net_kind, epoch, timeout)
            if net_kind in _LOST_REPLY:
                # The agent got the request and applied the epoch, but
                # the reply is stranded behind the cut: capture it for
                # post-heal delivery, then fail the round-trip.
                try:
                    self._stash.append(self._recv_raw(timeout))
                except WorkerFailure:
                    pass  # the agent also died; the cut adds nothing
                raise self._unreachable_failure(net_kind, epoch, timeout)
            if net_kind == "duplicate":
                reply = self._recv_raw(timeout)
                self._stash.append(reply)
                return reply
            # "delay": injected link latency; at or past the deadline it
            # is indistinguishable from a partition.
            latency = self.netchaos.latency_of(self.worker_id, epoch)
            if latency >= timeout:
                raise self._unreachable_failure(net_kind, epoch, timeout)
            if latency > 0.0:
                time.sleep(latency)
        if self._stash:
            return self._stash.pop(0)
        return self._recv_raw(timeout)

    # -- fabric primitives ----------------------------------------------------
    def _spawn_raw(self, replay: list, incarnation: int) -> None:
        raise NotImplementedError

    def _send_raw(self, msg: tuple) -> None:
        raise NotImplementedError

    def _recv_raw(self, timeout: float) -> tuple:
        """One fenced reply ``(tag, payload, incarnation, epoch)``."""
        raise NotImplementedError

    def is_alive(self) -> bool:
        return self.proc is not None and self.proc.is_alive()

    @property
    def exitcode(self) -> int | None:
        return self.proc.exitcode if self.proc is not None else None

    def reap(self) -> None:
        """Tear the agent down for good (terminate → kill ladder); keep
        whatever is needed to :meth:`spawn` a fresh incarnation."""
        raise NotImplementedError

    def request_close(self) -> None:
        """Politely ask the agent to exit; mark the transport closed."""
        self.closed = True

    def finish_close(self, grace: float = 5.0) -> None:
        """Join (then escalate) and release every OS resource."""

    def close(self, grace: float = 5.0) -> None:
        """Full teardown; never raises a transport error.

        Teardown runs on failure paths — an ECONNRESET or BrokenPipeError
        from a half-closed peer during the BYE exchange must not mask the
        original :class:`WorkerFailure` the caller is unwinding with.
        """
        try:
            self.request_close()
        except (WorkerFailure, ConnectionError, OSError):
            pass
        self.finish_close(grace)

    # shared process teardown helper
    def _end_proc(self, grace: float) -> None:
        proc = self.proc
        if proc is None:
            return
        proc.join(timeout=grace)
        if proc.is_alive():  # pragma: no cover - hung worker
            proc.terminate()
            proc.join(timeout=1.0)
        if proc.is_alive():  # pragma: no cover - SIGTERM ignored
            proc.kill()
            proc.join()
        self.proc = None


class InprocTransport(ShardTransport):
    """The shard in the caller's process: serial, zero-copy, zero bytes.

    Chaos is emulated deterministically — the same
    ``decide(worker, epoch, incarnation)`` schedule yields the same
    failure kinds at the same epochs as a process transport would, minus
    the OS: a "crash" marks the slot dead and raises, a "hang" raises
    without sleeping out a deadline, a "garble" returns the same
    malformed reply the real agent sends. Net chaos needs no emulation
    at all: it lives entirely in the base class, so the in-process
    transport exhibits byte-for-byte the same unreachable/stale-reply
    schedule as the process fabrics.
    """

    kind = "inproc"

    def __init__(self, worker_id, entries, tick, chaos=None,
                 netchaos=None) -> None:
        super().__init__(worker_id, entries, tick, chaos, netchaos)
        self.shard: Shard | None = None
        self._epoch = 0
        self._dead = False
        self._inbox: list[tuple] = []
        self._pending: list[tuple] = []

    def _spawn_raw(self, replay: list, incarnation: int) -> None:
        self.shard = Shard(self.entries, self.tick)
        for commands, n_ticks, frac in replay:
            self.shard.advance(commands, n_ticks, frac)
        self._epoch = len(replay)
        self._dead = False
        self._inbox = []
        self._pending = [("ok", "ready", incarnation, len(replay))]

    def _send_raw(self, msg: tuple) -> None:
        if self._dead:
            raise self._crash_failure()
        self._inbox.append(msg)
        self.messages += 1

    def _recv_raw(self, timeout: float) -> tuple:
        if self._pending:
            return self._pending.pop(0)
        if self._dead:
            raise self._crash_failure()
        if not self._inbox:
            raise self._hang_failure(timeout)
        msg = self._inbox.pop(0)
        tag = msg[0]
        inc = self.incarnation
        # Fence with the pre-dispatch epoch, like the real agent loop: an
        # advance that raises must still answer the epoch it was asked.
        reply_epoch = self._epoch
        try:
            if tag == "advance":
                _, commands, n_ticks, frac = msg
                fault = (
                    self.chaos.decide(self.worker_id, reply_epoch, inc)
                    if self.chaos is not None
                    else None
                )
                if fault == "crash":
                    self._dead = True
                    raise self._crash_failure()
                if fault == "hang":
                    raise self._hang_failure(timeout)
                self._epoch = reply_epoch + 1
                if fault == "garble":
                    return ("ok", {"garbled": reply_epoch}, inc, reply_epoch)
                return (
                    "ok", self.shard.advance(commands, n_ticks, frac),
                    inc, reply_epoch,
                )
            if tag == "snapshot":
                return ("ok", self.shard.snapshot_many(msg[1]), inc,
                        reply_epoch)
            return ("error", f"unknown message {tag!r}", inc, reply_epoch)
        except WorkerFailure:
            raise
        except Exception as exc:
            return ("error", f"{type(exc).__name__}: {exc}", inc,
                    reply_epoch)

    def is_alive(self) -> bool:
        return self.shard is not None and not self._dead and not self.closed

    @property
    def exitcode(self) -> int | None:
        return CRASH_EXIT if self._dead else None

    def reap(self) -> None:
        self.shard = None
        self._inbox = []
        self._pending = []

    def request_close(self) -> None:
        self.closed = True
        self.shard = None


class ForkTransport(ShardTransport):
    """A local agent process over a ``multiprocessing`` pipe.

    Messages are pickled tuples moved with ``send_bytes``/``recv_bytes``
    so the exact per-message wire size is accounted (``bytes_sent`` /
    ``bytes_received``), byte-identical in content to the pre-transport
    pipe protocol.
    """

    kind = "fork"

    def __init__(self, worker_id, entries, tick, chaos=None,
                 netchaos=None) -> None:
        super().__init__(worker_id, entries, tick, chaos, netchaos)
        self._ctx = multiprocessing.get_context()
        self.conn = None

    def _spawn_raw(self, replay: list, incarnation: int) -> None:
        parent, child = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_fork_agent_main,
            args=(
                child, self.entries, self.tick, replay, self.chaos,
                self.worker_id, incarnation,
            ),
            daemon=True,
        )
        proc.start()
        child.close()
        self.conn = parent
        self.proc = proc

    def _send_raw(self, msg: tuple) -> None:
        if self.conn is None:
            raise self._closed_failure()
        blob = pickle.dumps(msg)
        try:
            self.conn.send_bytes(blob)
        except (BrokenPipeError, OSError) as exc:
            if self.closed:
                raise self._closed_failure() from exc
            raise self._crash_failure(detail="is gone") from exc
        self.bytes_sent += len(blob)
        self.messages += 1

    def _recv_raw(self, timeout: float) -> tuple:
        if self.conn is None:
            raise self._closed_failure()
        conn, proc = self.conn, self.proc
        remaining = timeout
        while not conn.poll(min(0.05, max(remaining, 0.0))):
            remaining -= 0.05
            if proc is not None and not proc.is_alive():
                if conn.poll(0):
                    break  # drain what it flushed before dying
                raise self._crash_failure()
            if remaining <= 0:
                raise self._hang_failure(timeout)
        try:
            blob = conn.recv_bytes()
        except (EOFError, OSError) as exc:
            if self.closed:
                raise self._closed_failure() from exc
            raise self._crash_failure(
                detail="closed its pipe mid-reply"
            ) from exc
        self.bytes_received += len(blob)
        try:
            msg = pickle.loads(blob)
        except Exception as exc:
            raise self._garbled_failure(
                f"sent an unpicklable reply: {exc}"
            ) from exc
        if not (
            isinstance(msg, tuple)
            and len(msg) == 4
            and isinstance(msg[2], int)
            and isinstance(msg[3], int)
        ):
            raise self._garbled_failure(f"sent a malformed reply: {msg!r}")
        return msg

    def reap(self) -> None:
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:  # pragma: no cover - already torn down
                pass
            self.conn = None
        proc = self.proc
        if proc is not None:
            proc.terminate()
            proc.join(timeout=1.0)
            if proc.is_alive():  # pragma: no cover - SIGTERM ignored
                proc.kill()
                proc.join()
            self.proc = None

    def request_close(self) -> None:
        self.closed = True
        if self.conn is not None:
            try:
                self.conn.send_bytes(pickle.dumps(("close",)))
            except (BrokenPipeError, OSError):
                pass

    def finish_close(self, grace: float = 5.0) -> None:
        self._end_proc(grace)
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:  # pragma: no cover - already torn down
                pass
            self.conn = None


class SocketTransport(ShardTransport):
    """A host-agent process over one persistent stream socket.

    The parent owns a listener (Unix-domain under a private tempdir when
    the platform has it, loopback TCP otherwise) that outlives agent
    incarnations: each :meth:`spawn` starts a fresh agent which connects
    back, and each connection gets a fresh workload-intern table — refs
    are only valid against the agent that received their pickled bodies.
    """

    kind = "socket"

    def __init__(self, worker_id, entries, tick, chaos=None,
                 netchaos=None) -> None:
        super().__init__(worker_id, entries, tick, chaos, netchaos)
        self._ctx = multiprocessing.get_context()
        self.sock: socket.socket | None = None
        self._reader = MessageReader()
        self._queue: list[bytes] = []
        # Workload interning: id() -> ref, with strong refs held so a
        # garbage-collected workload can never hand its id to a stranger.
        self._intern_refs: dict[int, int] = {}
        self._intern_keep: list[Any] = []
        self._next_ref = 0
        self._sent_refs: set[int] = set()
        self._tmpdir: str | None = None
        try:
            self._tmpdir = tempfile.mkdtemp(prefix="repro-shard-")
            path = os.path.join(self._tmpdir, f"agent{worker_id}.sock")
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(path)
            self._family = socket.AF_UNIX
            self._address: Any = path
        except (AttributeError, OSError):  # pragma: no cover - no AF_UNIX
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.bind(("127.0.0.1", 0))
            self._family = socket.AF_INET
            self._address = listener.getsockname()
        listener.listen(4)
        listener.settimeout(0.05)
        self.listener: socket.socket | None = listener

    def _spawn_raw(self, replay: list, incarnation: int) -> None:
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:  # pragma: no cover - already torn down
                pass
        self.sock = None
        self._reader = MessageReader()
        self._queue = []
        self._sent_refs = set()
        proc = self._ctx.Process(
            target=_socket_agent_main,
            args=(
                self._family, self._address, self.entries, self.tick,
                replay, self.chaos, self.worker_id, incarnation,
            ),
            daemon=True,
        )
        proc.start()
        self.proc = proc
        # The agent connects before building its shard, so accept is
        # near-instant; the generous cap only guards a truly wedged start.
        deadline = 60.0
        while True:
            try:
                conn, _ = self.listener.accept()
                break
            except TimeoutError:
                deadline -= 0.05
                if not proc.is_alive():
                    raise self._crash_failure(
                        detail="died before connecting"
                    ) from None
                if deadline <= 0:  # pragma: no cover - wedged startup
                    raise self._hang_failure(60.0) from None
        conn.settimeout(0.05)
        self.sock = conn

    # -- wire encode --------------------------------------------------------
    def _encode(self, msg: tuple) -> bytes:
        tag = msg[0]
        if tag == "advance":
            _, commands, n_ticks, frac = msg
            cmds: list[list] = []
            intern: dict[int, bytes] = {}
            for cmd in commands:
                if isinstance(cmd, SpawnCmd):
                    ref = self._intern_refs.get(id(cmd.workload))
                    if ref is None:
                        ref = self._next_ref
                        self._next_ref += 1
                        self._intern_refs[id(cmd.workload)] = ref
                        self._intern_keep.append(cmd.workload)
                    if ref not in self._sent_refs:
                        intern[ref] = pickle.dumps(cmd.workload)
                        self._sent_refs.add(ref)
                    cmds.append([
                        "spawn", cmd.job_id, cmd.node, cmd.command,
                        cmd.user, cmd.wallclock_limit, ref,
                    ])
                else:
                    cmds.append(["preempt", cmd.job_id, cmd.node])
            return pack_shard(
                MSG_SHARD_ADVANCE,
                {
                    "cmds": cmds,
                    "n_ticks": n_ticks,
                    "frac": frac,
                    "intern": intern,
                },
            )
        if tag == "snapshot":
            return pack_shard(MSG_SHARD_SNAPSHOT, list(msg[1]))
        if tag == "close":
            return pack_shard(MSG_SHARD_CLOSE, None)
        raise SimulationError(f"unknown transport message {tag!r}")

    def _send_raw(self, msg: tuple) -> None:
        if self.sock is None:
            raise self._closed_failure()
        data = self._encode(msg)
        try:
            self.sock.sendall(data)
        except OSError as exc:
            if self.closed:
                raise self._closed_failure() from exc
            raise self._crash_failure(detail="is gone") from exc
        self.bytes_sent += len(data)
        self.messages += 1

    def _recv_raw(self, timeout: float) -> tuple:
        if self.sock is None:
            raise self._closed_failure()
        remaining = timeout
        while not self._queue:
            try:
                data = self.sock.recv(1 << 16)
            except TimeoutError:
                remaining -= 0.05
                if self.proc is not None and not self.proc.is_alive():
                    # One last drain: bytes the agent flushed before dying
                    # are still in the socket buffer (recv would have
                    # returned them, not timed out) — so this is a crash.
                    raise self._crash_failure()
                if remaining <= 0:
                    raise self._hang_failure(timeout)
                continue
            except OSError as exc:
                if self.closed:
                    raise self._closed_failure() from exc
                raise self._crash_failure(detail="is gone") from exc
            if not data:
                raise self._crash_failure(detail="closed its socket")
            self.bytes_received += len(data)
            try:
                self._queue.extend(self._reader.feed(data))
            except WireError as exc:
                raise self._garbled_failure(
                    f"sent an unframeable byte stream: {exc}"
                ) from exc
        try:
            msg_type, value = decode_shard(self._queue.pop(0))
            inc, epoch, payload = split_fenced(value)
        except WireError as exc:
            raise self._garbled_failure(
                f"sent an undecodable message: {exc}"
            ) from exc
        if msg_type == MSG_SHARD_OK:
            return ("ok", payload, inc, epoch)
        if msg_type == MSG_SHARD_ERR:
            return ("error", payload, inc, epoch)
        raise self._garbled_failure(
            f"sent an unexpected message type {msg_type}"
        )

    def reap(self) -> None:
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:  # pragma: no cover - already torn down
                pass
            self.sock = None
        proc = self.proc
        if proc is not None:
            proc.terminate()
            proc.join(timeout=1.0)
            if proc.is_alive():  # pragma: no cover - SIGTERM ignored
                proc.kill()
                proc.join()
            self.proc = None

    def request_close(self) -> None:
        self.closed = True
        if self.sock is not None:
            try:
                self.sock.sendall(pack_shard(MSG_SHARD_CLOSE, None))
            except OSError:
                # A peer that half-closed first answers the BYE with
                # ECONNRESET/EPIPE; swallowing it here keeps teardown
                # from masking whatever failure triggered it.
                pass

    def finish_close(self, grace: float = 5.0) -> None:
        self._end_proc(grace)
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:  # pragma: no cover - already torn down
                pass
            self.sock = None
        if self.listener is not None:
            try:
                self.listener.close()
            except OSError:  # pragma: no cover - already torn down
                pass
            self.listener = None
        if self._tmpdir is not None:
            try:
                os.unlink(self._address)
            except OSError:
                pass
            try:
                os.rmdir(self._tmpdir)
            except OSError:
                pass
            self._tmpdir = None


def make_transport(
    name: str,
    worker_id: int,
    entries: list[tuple["NodeSpec", int]],
    tick: float,
    chaos: "GridFaultPlan | None" = None,
    netchaos: "NetChaosPlan | None" = None,
) -> ShardTransport:
    """Transport factory used by the sharded engines."""
    if name == "inproc":
        return InprocTransport(worker_id, entries, tick, chaos, netchaos)
    if name == "fork":
        return ForkTransport(worker_id, entries, tick, chaos, netchaos)
    if name == "socket":
        return SocketTransport(worker_id, entries, tick, chaos, netchaos)
    raise SimulationError(
        f"unknown shard transport {name!r} "
        f"(have: {', '.join(TRANSPORT_NAMES)})"
    )
