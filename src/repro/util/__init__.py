"""Shared utilities: units, tables, ring buffers, online statistics."""

from repro.util.units import (
    format_count,
    format_millions,
    format_percent,
    format_rate,
    format_seconds,
    parse_size,
)
from repro.util.backoff import BackoffPolicy
from repro.util.ringbuffer import RingBuffer
from repro.util.stats import OnlineStats, ewma
from repro.util.tabulate import Align, ColumnFormat, render_table

__all__ = [
    "Align",
    "BackoffPolicy",
    "ColumnFormat",
    "OnlineStats",
    "RingBuffer",
    "ewma",
    "format_count",
    "format_millions",
    "format_percent",
    "format_rate",
    "format_seconds",
    "parse_size",
    "render_table",
]
