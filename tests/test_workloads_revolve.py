"""The §3.1 R evolutionary-algorithm model (Figure 3)."""

import pytest

from repro.sim import NEHALEM, PPC970
from repro.sim.core import solo_rates
from repro.sim.events import Event
from repro.sim.workloads import revolve


class TestStructure:
    def test_original_starts_nominal(self):
        w = revolve.original()
        assert w.phases[0].name == "nominal"
        assert w.phases[0].instructions == pytest.approx(
            revolve.DIVERGENCE_STEP * revolve.STEP_INSTRUCTIONS
        )

    def test_original_has_pulses(self):
        w = revolve.original()
        names = w.phase_names()
        assert sum(1 for n in names if n.startswith("diverged")) == revolve.PULSE_CHUNKS
        assert sum(1 for n in names if n.startswith("pulse")) == revolve.PULSE_CHUNKS

    def test_diverged_instruction_budget(self):
        w = revolve.original()
        diverged = sum(
            p.instructions for p in w.phases if p.name.startswith("diverged")
        )
        pulses = sum(p.instructions for p in w.phases if p.name.startswith("pulse"))
        assert diverged + pulses == pytest.approx(revolve.DIVERGED_INSTRUCTIONS)

    def test_clipped_is_single_phase(self):
        w = revolve.clipped()
        assert len(w.phases) == 1
        assert w.phases[0].operands.assist_eligible == 0.0


class TestCalibration:
    def test_nominal_ipc_is_one(self):
        """Fig. 3a's first plateau."""
        w = revolve.original()
        assert solo_rates(NEHALEM, w.phases[0]).ipc == pytest.approx(1.0, rel=1e-6)

    def test_diverged_ipc_collapse(self):
        """Fig. 3a: IPC drops to ~0.03 after step 953."""
        w = revolve.original()
        diverged = next(p for p in w.phases if p.name.startswith("diverged"))
        assert solo_rates(NEHALEM, diverged).ipc == pytest.approx(0.03, abs=0.005)

    def test_diverged_assist_rate(self):
        """Fig. 3c's right axis: ~12 assists per 100 instructions."""
        w = revolve.original()
        diverged = next(p for p in w.phases if p.name.startswith("diverged"))
        rate = solo_rates(NEHALEM, diverged).events[Event.FP_ASSIST]
        assert 100 * rate == pytest.approx(12.25, abs=1.0)

    def test_ppc_no_collapse(self):
        """Fig. 3d: same workload, no assist mechanism, no collapse."""
        w = revolve.original()
        nominal = solo_rates(PPC970, w.phases[0]).ipc
        diverged = solo_rates(
            PPC970, next(p for p in w.phases if p.name.startswith("diverged"))
        ).ipc
        assert diverged == pytest.approx(nominal, rel=0.25)
        assert nominal < 0.5  # much slower machine for this interpreter

    def test_speedups_match_paper(self):
        """§3.1: clipping gives ~2.3x overall and ~4.8x on the faulty part."""
        from repro.pin.inscount import native_run_time

        original = native_run_time(NEHALEM, revolve.original())
        clipped = native_run_time(NEHALEM, revolve.clipped())
        assert original / clipped == pytest.approx(2.3, rel=0.15)

        nominal_time = revolve.DIVERGENCE_STEP * revolve.STEP_INSTRUCTIONS / (
            1.0 * NEHALEM.freq_hz
        )
        faulty_original = original - nominal_time
        faulty_clipped = clipped - nominal_time
        assert faulty_original / faulty_clipped == pytest.approx(4.8, rel=0.2)

    def test_run_length_matches_fig3a(self):
        """~3327 five-second samples end to end on Nehalem."""
        from repro.pin.inscount import native_run_time

        total = native_run_time(NEHALEM, revolve.original())
        samples = total / revolve.SAMPLE_PERIOD
        assert samples == pytest.approx(3327, rel=0.12)
