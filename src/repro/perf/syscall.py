"""Real perf_event backend: the actual Linux system call via ctypes.

This is the backend the paper's tool uses on a physical machine. It is
fully implemented — attr construction, the syscall, ``read(2)`` of the
counter fd with TOTAL_TIME_ENABLED|RUNNING read format, and the
enable/disable/reset ioctls — and degrades cleanly: on kernels/containers
without a PMU (``perf_event_open`` -> ENOENT, or ``perf_event_paranoid``
locked down), :func:`kernel_supports_perf_events` returns False and
:class:`RealBackend` raises :class:`~repro.errors.PerfNotSupportedError`
at open time, letting callers fall back to the simulated backend.
"""

from __future__ import annotations

import ctypes
import errno
import os
import struct

from repro.errors import (
    NoSuchTaskError,
    PerfError,
    PerfNotSupportedError,
    PerfPermissionError,
)
from repro.perf import abi
from repro.perf.counter import Reading
from repro.perf.events import EventSpec

_libc: ctypes.CDLL | None = None


def _get_libc() -> ctypes.CDLL:
    global _libc
    if _libc is None:
        _libc = ctypes.CDLL(None, use_errno=True)
    return _libc


def perf_event_open(
    attr: abi.PerfEventAttr,
    pid: int,
    cpu: int = -1,
    group_fd: int = -1,
    flags: int = 0,
) -> int:
    """Invoke the raw system call (Fig. 2's prototype).

    Tiptop sets ``cpu = -1`` to count per task rather than per CPU (§2.3);
    ``group_fd`` and ``flags`` are unused.

    Returns:
        The counter file descriptor.

    Raises:
        PerfNotSupportedError / PerfPermissionError / NoSuchTaskError /
        PerfError: mapped from the syscall's errno.
    """
    libc = _get_libc()
    fd = libc.syscall(
        abi.SYSCALL_NR_X86_64,
        ctypes.byref(attr),
        pid,
        cpu,
        group_fd,
        flags,
    )
    if fd >= 0:
        return fd
    err = ctypes.get_errno()
    if err in (errno.ENOENT, errno.ENOSYS, errno.EOPNOTSUPP):
        raise PerfNotSupportedError(
            f"perf_event_open failed: {os.strerror(err)} "
            "(no usable PMU on this kernel)"
        )
    if err in (errno.EPERM, errno.EACCES):
        raise PerfPermissionError(
            f"perf_event_open denied: {os.strerror(err)} "
            "(non-privileged users can only watch their own tasks)"
        )
    if err == errno.ESRCH:
        raise NoSuchTaskError(f"no such task {pid}")
    raise PerfError(f"perf_event_open failed: {os.strerror(err)}")


def paranoid_level() -> int | None:
    """Current ``kernel.perf_event_paranoid``, or None when unreadable."""
    try:
        with open("/proc/sys/kernel/perf_event_paranoid") as fh:
            return int(fh.read().strip())
    except (OSError, ValueError):
        return None


def kernel_supports_perf_events() -> bool:
    """Probe whether a trivial self-monitoring counter can be opened."""
    attr = abi.counting_attr(
        abi.PerfTypeId.HARDWARE, int(abi.HardwareEventId.INSTRUCTIONS)
    )
    try:
        fd = perf_event_open(attr, pid=0)
    except PerfError:
        return False
    os.close(fd)
    return True


#: read(2) layout with TOTAL_TIME_ENABLED|TOTAL_TIME_RUNNING: three u64s.
_READ_STRUCT = struct.Struct("=QQQ")


class RealBackend:
    """perf backend talking to the running Linux kernel.

    Implements :class:`repro.perf.counter.Backend`; handles are real file
    descriptors. Time values from the kernel are nanoseconds and converted
    to seconds in :class:`Reading`.
    """

    def __init__(self) -> None:
        self._open_fds: set[int] = set()

    def open(
        self,
        event: EventSpec,
        tid: int,
        *,
        inherit: bool = False,
        sample_period: int | None = None,
    ) -> int:
        """Open ``event`` on ``tid`` (see protocol docs for raises)."""
        if sample_period is None:
            attr = abi.counting_attr(event.type_id, event.config, inherit=inherit)
        else:
            attr = abi.sampling_attr(
                event.type_id, event.config, sample_period, inherit=inherit
            )
        fd = perf_event_open(attr, pid=tid)
        self._open_fds.add(fd)
        return fd

    def read(self, handle: int) -> Reading:
        """Read value/time_enabled/time_running from the counter fd."""
        try:
            data = os.read(handle, _READ_STRUCT.size)
        except OSError as exc:
            raise PerfError(f"read on counter fd {handle} failed: {exc}") from exc
        if len(data) < _READ_STRUCT.size:
            raise PerfError(
                f"short read ({len(data)} bytes) on counter fd {handle}"
            )
        value, enabled_ns, running_ns = _READ_STRUCT.unpack(data)
        return Reading(value, enabled_ns / 1e9, running_ns / 1e9)

    def _ioctl(self, handle: int, request: int) -> None:
        libc = _get_libc()
        if libc.ioctl(handle, request, 0) < 0:
            err = ctypes.get_errno()
            raise PerfError(
                f"ioctl {request:#x} on fd {handle} failed: {os.strerror(err)}"
            )

    def enable(self, handle: int) -> None:
        """ioctl PERF_EVENT_IOC_ENABLE."""
        self._ioctl(handle, abi.IOCTL_ENABLE)

    def disable(self, handle: int) -> None:
        """ioctl PERF_EVENT_IOC_DISABLE."""
        self._ioctl(handle, abi.IOCTL_DISABLE)

    def reset(self, handle: int) -> None:
        """ioctl PERF_EVENT_IOC_RESET."""
        self._ioctl(handle, abi.IOCTL_RESET)

    def close(self, handle: int) -> None:
        """Close the counter fd."""
        self._open_fds.discard(handle)
        os.close(handle)

    def close_all(self) -> None:
        """Release every fd this backend still holds (cleanup helper)."""
        for fd in list(self._open_fds):
            self.close(fd)
