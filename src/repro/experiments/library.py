"""The unified named-workload library the experiment runner sweeps.

One flat namespace over every calibrated workload model in
:mod:`repro.sim.workloads` — the full suite, never a cherry-picked
subset (instrumentation-infra's SPEC rule): all SPEC CPU2006 phase
models, both revolve variants, the six Table-1 FP micro-benchmarks and
the five modern archetypes.

A *workload reference* is a base name plus optional modifiers, applied
left to right::

    456.hmmer            the SPEC model, gcc build
    456.hmmer@icc        the icc build (dual-compiler benchmarks only)
    456.hmmer#0          phase 0 alone, budget pinned to infinity
                         (the steady-phase jobs the ablations monitor)
    revolve-original/20  the whole workload with budgets divided by 20
    433.milc@icc#1       phase 1 of the icc build, endless

``#i`` selects one phase and makes it endless; ``/k`` divides every
phase budget by ``k`` (a float). ``#`` binds before ``/``, and ``@``
before both, mirroring how the reference reads.
"""

from __future__ import annotations

import math

from repro.errors import ExperimentError, ReproError
from repro.sim.workload import Workload
from repro.sim.workloads import microbench, modern, revolve
from repro.sim.workloads import spec as speclib


def _fp_names() -> list[str]:
    return [
        f"fp-{isa}-{cls}"
        for isa in microbench.ISAS
        for cls in microbench.OPERAND_CLASSES
    ]


def names() -> list[str]:
    """Every base workload name, in registry order."""
    return (
        speclib.available()
        + ["revolve-original", "revolve-clipped"]
        + _fp_names()
        + modern.available()
    )


def signature_names() -> list[str]:
    """Every name the frozen-signature golden covers: all base names
    plus the ``@icc`` variants of the dual-compiler SPEC benchmarks."""
    out = []
    for name in names():
        out.append(name)
        if name in set(speclib.available()) and speclib.ICC in speclib.compilers(name):
            out.append(f"{name}@{speclib.ICC}")
    return out


def _base(name: str, compiler: str | None) -> Workload:
    if name in set(speclib.available()):
        return speclib.workload(name, compiler or speclib.GCC)
    if compiler is not None:
        raise ExperimentError(
            f"@{compiler} applies only to SPEC benchmarks, not {name!r}"
        )
    if name == "revolve-original":
        return revolve.original()
    if name == "revolve-clipped":
        return revolve.clipped()
    if name in _fp_names():
        _, isa, cls = name.split("-", 2)
        return microbench.fp_microbench(isa, cls)
    if name in modern.MODERN:
        return modern.workload(name)
    raise ExperimentError(f"unknown workload {name!r}; known: {names()}")


def resolve(ref: str) -> Workload:
    """Resolve one workload reference (see the module docstring).

    Raises:
        ExperimentError: unresolvable name or malformed modifier.
    """
    if not isinstance(ref, str) or not ref:
        raise ExperimentError(f"workload reference must be a non-empty string, got {ref!r}")
    rest, scale = ref, None
    if "/" in rest:
        rest, _, tail = rest.partition("/")
        try:
            scale = float(tail)
        except ValueError:
            raise ExperimentError(f"bad /divisor in workload reference {ref!r}") from None
        if not scale > 0 or math.isinf(scale) or math.isnan(scale):
            raise ExperimentError(f"/divisor must be a positive finite number in {ref!r}")
    phase_index = None
    if "#" in rest:
        rest, _, tail = rest.partition("#")
        try:
            phase_index = int(tail)
        except ValueError:
            raise ExperimentError(f"bad #phase in workload reference {ref!r}") from None
    compiler = None
    if "@" in rest:
        rest, _, compiler = rest.partition("@")
        if not compiler:
            raise ExperimentError(f"empty @compiler in workload reference {ref!r}")

    try:
        workload = _base(rest, compiler)
    except ExperimentError:
        raise
    except ReproError as exc:
        raise ExperimentError(f"cannot resolve workload {ref!r}: {exc}") from exc

    if phase_index is not None:
        if not 0 <= phase_index < len(workload.phases):
            raise ExperimentError(
                f"workload {rest!r} has {len(workload.phases)} phases; "
                f"#{phase_index} is out of range"
            )
        steady = workload.phases[phase_index].with_budget(math.inf)
        workload = Workload(name=f"{rest}#{phase_index}", phases=(steady,))
    if scale is not None:
        workload = Workload(
            name=f"{workload.name}/{scale:g}",
            phases=tuple(
                p if math.isinf(p.instructions)
                else p.with_budget(p.instructions / scale)
                for p in workload.phases
            ),
            repeat=workload.repeat,
        )
    return workload


def check(ref: str) -> None:
    """Validate a reference without keeping the built workload."""
    resolve(ref)
