"""Modern workload archetypes beyond the paper's 2012 suite.

The paper evaluates against SPEC CPU2006, one R program and a batch grid —
the 2012 workload universe. Production nodes a decade later run managed
runtimes, garbage collectors, NUMA-spanning heaps, bytecode interpreters
and io-bound services, whose counter signatures look nothing like SPEC's.
This module models those shapes with the same calibrated-phase machinery
the SPEC models use, so every paper-era analysis (phase detection,
interference, conformance fuzzing, the experiment runner) applies to them
unchanged.

The archetypes, each a named multi-phase :class:`~repro.sim.workload.Workload`
calibrated against the Nehalem reference machine:

* ``jit-warmup-deopt`` — a JIT-compiled service: slow interpreter warmup,
  a compilation burst, optimised steady state, a deoptimisation storm
  (back to interpreter-grade IPC), then re-optimised steady state.
* ``gc-pause-train`` — a mutator/collector pause train: moderate-IPC
  mutator phases interleaved with pointer-chasing, cache-hostile GC marks
  (``repeat`` carries the train).
* ``numa-remote`` — a NUMA-unaware allocator: phases alternate between
  local-node accesses and remote-socket misses whose effective latency is
  modelled as amplified misses with low memory-level parallelism.
* ``interp-dispatch`` — a bytecode interpreter inner loop: indirect-branch
  dispatch with a high mispredict ratio and a bytecode-fetch load stream.
* ``io-syscall`` — an io-bound log/network service: short user-mode
  bursts between syscall-dominated kernel crossings; pair with a
  ``duty_cycle < 1`` at spawn to model the actual blocking.

Every workload here carries a *frozen metric signature* — per-phase IPC,
miss ratios and branch behaviour pinned to 12 significant digits in
``tests/data/workload_signatures.json`` (regenerate with
``python -m repro.experiments --regen-signatures``) — so any calibration
drift in the underlying machine model fails loudly.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.sim.arch import NEHALEM
from repro.sim.branch import BranchBehavior
from repro.sim.cache import MemoryBehavior
from repro.sim.core import calibrate_phase
from repro.sim.isa import InstructionMix
from repro.sim.workload import Phase, Workload

#: The modern archetype names, in registry order.
MODERN = (
    "jit-warmup-deopt",
    "gc-pause-train",
    "numa-remote",
    "interp-dispatch",
    "io-syscall",
)

# ---------------------------------------------------------------------------
# Behavioural building blocks
# ---------------------------------------------------------------------------

#: Interpreter-grade code: dispatch-heavy integer work with a dense
#: indirect-branch stream (the interpreter loop's computed gotos).
INTERP_MIX = InstructionMix.of(
    int_alu=0.40, load=0.28, store=0.07, branch=0.24, nop=0.01
)

#: Optimised JIT output: register-allocated, branch-thinned.
JITTED_MIX = InstructionMix.of(
    int_alu=0.50, load=0.24, store=0.09, branch=0.12, fp_sse=0.05
)

#: Collector mark loop: load-dominated pointer chasing.
GC_MARK_MIX = InstructionMix.of(
    int_alu=0.33, load=0.38, store=0.09, branch=0.20
)

#: Mutator between pauses: allocation-heavy managed code.
MUTATOR_MIX = InstructionMix.of(
    int_alu=0.44, load=0.25, store=0.13, branch=0.17, fp_sse=0.01
)

#: NUMA scanner: streaming reads over a heap larger than any cache.
NUMA_MIX = InstructionMix.of(
    int_alu=0.30, load=0.34, store=0.12, branch=0.14, fp_sse=0.10
)

#: Kernel-crossing service code: argument marshalling and copies.
SYSCALL_MIX = InstructionMix.of(
    int_alu=0.36, load=0.27, store=0.18, branch=0.17, nop=0.02
)

#: Cache-resident code+data of a warmed JIT or a small interpreter loop.
RESIDENT_MEMORY = MemoryBehavior(
    working_set=6 * 1024 * 1024,
    level_hit_ratios=(0.975, 0.99, 0.998),
    mlp=2.5,
)

#: The interpreter additionally misses on bytecode + boxed operands.
INTERP_MEMORY = MemoryBehavior(
    working_set=24 * 1024 * 1024,
    level_hit_ratios=(0.96, 0.985, 0.997),
    mlp=2.0,
)

#: A GC mark walk: pointer chasing across the whole heap, with only the
#: modest miss overlap a prefetch-hostile object graph allows.
GC_MARK_MEMORY = MemoryBehavior(
    working_set=900 * 1024 * 1024,
    level_hit_ratios=(0.92, 0.952, 0.968),
    miss_amplification=(0.9, 1.1, 0.5),
    mlp=2.4,
)

#: Remote-socket accesses: misses serialise against the interconnect, so
#: the amplified miss train with near-serial MLP stands in for the higher
#: remote-DRAM latency (the machine model has one memory latency).
NUMA_REMOTE_MEMORY = MemoryBehavior(
    working_set=2_200 * 1024 * 1024,
    level_hit_ratios=(0.93, 0.945, 0.955),
    miss_amplification=(0.6, 0.8, 0.9),
    mlp=1.8,
)

#: The same heap while the scheduler has the job on its home node.
NUMA_LOCAL_MEMORY = MemoryBehavior(
    working_set=2_200 * 1024 * 1024,
    level_hit_ratios=(0.95, 0.965, 0.98),
    mlp=3.5,
)

#: Socket buffers and log pages: streaming stores, little reuse.
IO_MEMORY = MemoryBehavior(
    working_set=32 * 1024 * 1024,
    level_hit_ratios=(0.955, 0.975, 0.99),
    streaming=0.03,
    mlp=3.0,
)


def _phase(
    name: str,
    instructions: float,
    target_ipc: float,
    *,
    mix: InstructionMix,
    memory: MemoryBehavior,
    mispredict: float,
    noise: float = 0.03,
) -> Phase:
    """One calibrated phase: solo IPC on Nehalem equals ``target_ipc``."""
    seed = Phase(
        name=name,
        instructions=instructions,
        mix=mix,
        memory=memory,
        branches=BranchBehavior(mispredict_ratio=mispredict),
        noise=noise,
    )
    return calibrate_phase(NEHALEM, seed, target_ipc)


# ---------------------------------------------------------------------------
# The archetype builders
# ---------------------------------------------------------------------------

def _build_jit_warmup_deopt() -> Workload:
    """Interpreter warmup -> compile burst -> optimised steady state ->
    deopt storm -> re-optimised steady state (total ~6e11 instructions)."""
    total = 6.0e11
    return Workload(
        name="jit-warmup-deopt",
        phases=(
            _phase(
                "interp-warmup", total * 0.12, 0.62,
                mix=INTERP_MIX, memory=INTERP_MEMORY, mispredict=0.085,
                noise=0.04,
            ),
            _phase(
                "compile", total * 0.05, 1.05,
                mix=JITTED_MIX, memory=RESIDENT_MEMORY, mispredict=0.045,
            ),
            _phase(
                "opt-steady", total * 0.40, 1.90,
                mix=JITTED_MIX, memory=RESIDENT_MEMORY, mispredict=0.018,
                noise=0.02,
            ),
            _phase(
                "deopt-storm", total * 0.06, 0.58,
                mix=INTERP_MIX, memory=INTERP_MEMORY, mispredict=0.09,
                noise=0.05,
            ),
            _phase(
                "reopt-steady", total * 0.37, 1.86,
                mix=JITTED_MIX, memory=RESIDENT_MEMORY, mispredict=0.018,
                noise=0.02,
            ),
        ),
    )


#: Mutator/pause pairs in the gc train (the Workload ``repeat`` field).
GC_TRAIN_LENGTH = 12

#: Fraction of each train period spent in the collector.
GC_PAUSE_FRACTION = 0.18


def _build_gc_pause_train() -> Workload:
    """A mutator/collector train: ``GC_TRAIN_LENGTH`` repeats of
    (mutator, gc-mark); ~5e11 instructions overall."""
    period = 5.0e11 / GC_TRAIN_LENGTH
    return Workload(
        name="gc-pause-train",
        phases=(
            _phase(
                "mutator", period * (1.0 - GC_PAUSE_FRACTION), 1.28,
                mix=MUTATOR_MIX, memory=RESIDENT_MEMORY, mispredict=0.035,
            ),
            _phase(
                "gc-mark", period * GC_PAUSE_FRACTION, 0.42,
                mix=GC_MARK_MIX, memory=GC_MARK_MEMORY, mispredict=0.05,
                noise=0.04,
            ),
        ),
        repeat=GC_TRAIN_LENGTH,
    )


def _build_numa_remote() -> Workload:
    """Local/remote alternation of a NUMA-oblivious scan (~4e11)."""
    total = 4.0e11
    local = _phase(
        "local-scan", total * 0.30, 0.95,
        mix=NUMA_MIX, memory=NUMA_LOCAL_MEMORY, mispredict=0.02,
    )
    remote = _phase(
        "remote-scan", total * 0.20, 0.38,
        mix=NUMA_MIX, memory=NUMA_REMOTE_MEMORY, mispredict=0.02,
        noise=0.04,
    )
    return Workload(
        name="numa-remote",
        phases=(local, remote, local.with_budget(total * 0.30),
                remote.with_budget(total * 0.20)),
    )


def _build_interp_dispatch() -> Workload:
    """A pure bytecode-interpreter loop: one long mispredict-limited
    phase (~8e11 instructions)."""
    return Workload(
        name="interp-dispatch",
        phases=(
            _phase(
                "dispatch-loop", 8.0e11, 0.72,
                mix=INTERP_MIX, memory=INTERP_MEMORY, mispredict=0.105,
                noise=0.03,
            ),
        ),
    )


#: User-burst/kernel-crossing pairs in the io-syscall service.
IO_BURSTS = 10


def _build_io_syscall() -> Workload:
    """Short user bursts between syscall-dominated crossings (~3e11).

    The CPU-visible half of an io-bound service; model the blocked half
    with ``duty_cycle < 1`` at spawn.
    """
    period = 3.0e11 / IO_BURSTS
    return Workload(
        name="io-syscall",
        phases=(
            _phase(
                "user-burst", period * 0.55, 1.22,
                mix=MUTATOR_MIX, memory=RESIDENT_MEMORY, mispredict=0.03,
            ),
            _phase(
                "syscall", period * 0.45, 0.52,
                mix=SYSCALL_MIX, memory=IO_MEMORY, mispredict=0.05,
                noise=0.04,
            ),
        ),
        repeat=IO_BURSTS,
    )


_BUILDERS = {
    "jit-warmup-deopt": _build_jit_warmup_deopt,
    "gc-pause-train": _build_gc_pause_train,
    "numa-remote": _build_numa_remote,
    "interp-dispatch": _build_interp_dispatch,
    "io-syscall": _build_io_syscall,
}

_CACHE: dict[str, Workload] = {}


def available() -> list[str]:
    """Names of all modern workload models."""
    return list(MODERN)


def workload(name: str) -> Workload:
    """Build (and cache) the modern workload ``name``.

    Raises:
        WorkloadError: for an unknown name.
    """
    cached = _CACHE.get(name)
    if cached is not None:
        return cached
    builder = _BUILDERS.get(name)
    if builder is None:
        raise WorkloadError(
            f"unknown modern workload {name!r}; known: {available()}"
        )
    built = builder()
    _CACHE[name] = built
    return built
