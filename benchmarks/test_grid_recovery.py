"""Supervision overhead and crash-recovery cost for the grid engine.

PR 5's supervisor wraps every worker round-trip in a deadline and
journals every epoch; that bookkeeping must stay cheap, and a worker
death mid-run must cost a bounded replay, not a restart-from-zero. This
benchmark drives the same datacenter-shaped mix as ``test_grid_scaling``
through three configurations and records the sweep in
``BENCH_recovery.json``:

* ``sharded-2`` — the unsupervised two-worker engine (baseline),
* ``supervised-clean`` — supervision on, no faults (pure overhead),
* ``supervised-crash`` — seeded chaos kills worker 0 and garbles
  worker 1 mid-run (detection + restart + journal replay).

All three must agree bitwise with the serial engine — asserted on every
run, smoke or full (this is the CI guard that recovery is exact).
Timing floors only apply to the full run: supervision overhead <= 1.5x
the unsupervised engine, and the crashing run <= 5x the clean supervised
run. ``REPRO_BENCH_SMOKE=1`` shrinks the sweep and skips the floors
(shared runners make ratios unreliable).
"""

from __future__ import annotations

import json
import os
import time

from _harness import OUT_DIR

from repro.sim.grid import Grid
from repro.sim.supervisor import GridFaultPlan, GridFaultSpec, Supervision

from test_grid_scaling import fleet, populate

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
N_NODES = 4 if SMOKE else 8
SPAN_SECONDS = 45.0 if SMOKE else 240.0
REPEATS = 1 if SMOKE else 3
SUPERVISION_MAX_OVERHEAD = 1.5
RECOVERY_MAX_OVERHEAD = 5.0

#: One kill on worker 0 and one garbled reply on worker 1, on the two
#: epochs every sweep size reaches (the smoke scenario has only two).
#: One-shot faults fire on incarnation 0 only, so this is exactly one
#: failure per worker however many epochs the full run adds.
CHAOS = GridFaultPlan(
    seed=0,
    specs=(
        GridFaultSpec("crash", at_epochs=frozenset({0}), worker=0),
        GridFaultSpec("garble", at_epochs=frozenset({1}), worker=1),
    ),
)
SUPERVISION = Supervision(deadline=30.0, backoff_base=0.0)

CONFIGS = (
    ("sharded-2", "sharded", None),
    ("supervised-clean", "supervised", None),
    ("supervised-crash", "supervised", CHAOS),
)


def run_config(engine: str, chaos: GridFaultPlan | None):
    """Best-of-N wall time plus digest and recovery counters."""
    best = float("inf")
    digest = None
    stats: dict = {}
    for _ in range(REPEATS):
        with Grid(fleet(N_NODES), tick=1.0, seed=42, workers=2,
                  engine=engine, grid_chaos=chaos,
                  supervision=SUPERVISION if engine == "supervised"
                  else None) as grid:
            populate(grid, N_NODES)
            t0 = time.perf_counter()
            grid.run_for(SPAN_SECONDS)
            best = min(best, time.perf_counter() - t0)
            digest = grid.conformance_digest()
            stats = dict(getattr(grid.engine, "stats", {}))
    return best, digest, stats


def test_grid_recovery():
    with Grid(fleet(N_NODES), tick=1.0, seed=42, workers=1,
              engine="serial") as grid:
        populate(grid, N_NODES)
        grid.run_for(SPAN_SECONDS)
        reference = grid.conformance_digest()

    results = {}
    for label, engine, chaos in CONFIGS:
        seconds, digest, stats = run_config(engine, chaos)
        assert digest == reference, f"{label} diverged from serial"
        results[label] = (seconds, stats)

    crash_stats = results["supervised-crash"][1]
    assert crash_stats["failures"]["crash"] == 1
    assert crash_stats["failures"]["garbled"] == 1
    assert crash_stats["restarts"] == 2
    assert not crash_stats["degraded"]

    baseline = results["sharded-2"][0]
    clean = results["supervised-clean"][0]
    crash = results["supervised-crash"][0]
    overhead = clean / baseline
    recovery = crash / clean
    print(
        f"\nsharded={baseline:.3f}s supervised={clean:.3f}s "
        f"({overhead:.2f}x) crash-run={crash:.3f}s ({recovery:.2f}x, "
        f"{crash_stats['replayed_epochs']} epochs replayed)"
    )

    payload = {
        "scenario": {
            "nodes": N_NODES,
            "span_seconds": SPAN_SECONDS,
            "tick": 1.0,
            "seed": 42,
            "workers": 2,
            "repeats": REPEATS,
            "smoke": SMOKE,
            "faults": [
                {"kind": s.kind, "at_epochs": sorted(s.at_epochs or ()),
                 "worker": s.worker}
                for s in CHAOS.specs
            ],
        },
        "targets": {
            "supervision_max_overhead": SUPERVISION_MAX_OVERHEAD,
            "recovery_max_overhead": RECOVERY_MAX_OVERHEAD,
        },
        "results": {
            label: {
                "seconds": round(seconds, 6),
                "restarts": stats.get("restarts", 0),
                "replayed_epochs": stats.get("replayed_epochs", 0),
                "failures": stats.get("failures", {}),
            }
            for label, (seconds, stats) in results.items()
        },
        "supervision_overhead": round(overhead, 3),
        "recovery_overhead": round(recovery, 3),
    }
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_recovery.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    if not SMOKE:
        assert overhead <= SUPERVISION_MAX_OVERHEAD, (
            f"supervision costs {overhead:.2f}x over the unsupervised engine"
        )
        assert recovery <= RECOVERY_MAX_OVERHEAD, (
            f"two kills + replay cost {recovery:.2f}x over a clean run"
        )
