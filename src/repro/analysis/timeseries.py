"""Metric time series: the unit every figure is made of."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.util.stats import ewma


@dataclass(frozen=True)
class MetricSeries:
    """One metric sampled over time (or over instructions retired).

    Attributes:
        x: sample positions (seconds, or cumulative instructions for
            Fig. 8-style curves).
        y: metric values.
        label: what this series is ("429.mcf IPC on nehalem").
    """

    x: np.ndarray
    y: np.ndarray
    label: str = ""

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ReproError(
                f"series {self.label!r}: x has {len(self.x)} points, "
                f"y has {len(self.y)}"
            )

    def __len__(self) -> int:
        return len(self.x)

    @classmethod
    def of(cls, x, y, label: str = "") -> "MetricSeries":
        """Build from any array-likes."""
        return cls(np.asarray(x, dtype=float), np.asarray(y, dtype=float), label)

    @classmethod
    def from_frames(
        cls,
        frames,
        pid: int,
        header: str,
        *,
        label: str = "",
        drop_nan: bool = True,
    ) -> "MetricSeries":
        """Series of one numeric column for one pid across SnapshotFrames.

        Each frame contributes its rows for ``pid`` (frames not carrying
        the column are skipped); x is the frame timestamp. This is the
        columnar replacement for looping over recorder samples.
        """
        xs: list[np.ndarray] = []
        ys: list[np.ndarray] = []
        for frame in frames:
            column = frame.numeric_column(header)
            if column is None:
                continue
            mask = frame.pids == pid
            if drop_nan:
                mask = mask & ~np.isnan(column)
            picked = column[mask]
            if len(picked):
                xs.append(np.full(len(picked), frame.time))
                ys.append(picked)
        if not xs:
            return cls(np.empty(0), np.empty(0), label)
        return cls(np.concatenate(xs), np.concatenate(ys), label)

    def mean(self) -> float:
        """Arithmetic mean of the values (NaN-aware)."""
        return float(np.nanmean(self.y)) if len(self) else float("nan")

    def smoothed(self, alpha: float = 0.3) -> "MetricSeries":
        """EWMA-smoothed copy."""
        return MetricSeries(self.x, ewma(self.y, alpha), self.label)

    def window(self, lo: float, hi: float) -> "MetricSeries":
        """Sub-series with ``lo <= x < hi``."""
        mask = (self.x >= lo) & (self.x < hi)
        return MetricSeries(self.x[mask], self.y[mask], self.label)

    def resampled(self, xs: np.ndarray) -> "MetricSeries":
        """Linear interpolation onto new sample positions.

        Used to compare series measured on different machines at common
        instruction counts (Fig. 8).
        """
        xs = np.asarray(xs, dtype=float)
        if len(self) < 2:
            raise ReproError(f"cannot resample series {self.label!r} of length {len(self)}")
        return MetricSeries(xs, np.interp(xs, self.x, self.y), self.label)

    def ascii_plot(self, width: int = 72, height: int = 12) -> str:
        """Terminal rendering of the curve (the benches print these).

        A coarse scatter on a character grid with a y-axis scale — the
        spirit of the paper's gnuplot figures at 80 columns.
        """
        if len(self) == 0:
            return "(empty series)"
        finite = np.isfinite(self.y)
        if not finite.any():
            return "(all-NaN series)"
        x, y = self.x[finite], self.y[finite]
        ymin, ymax = float(np.min(y)), float(np.max(y))
        if ymax - ymin < 1e-12:
            ymax = ymin + 1.0
        xmin, xmax = float(np.min(x)), float(np.max(x))
        if xmax - xmin < 1e-12:
            xmax = xmin + 1.0
        grid = [[" "] * width for _ in range(height)]
        for xi, yi in zip(x, y):
            col = int((xi - xmin) / (xmax - xmin) * (width - 1))
            row = int((yi - ymin) / (ymax - ymin) * (height - 1))
            grid[height - 1 - row][col] = "*"
        lines = []
        for i, row_chars in enumerate(grid):
            yval = ymax - (ymax - ymin) * i / (height - 1)
            lines.append(f"{yval:8.3f} |" + "".join(row_chars))
        lines.append(" " * 9 + "+" + "-" * width)
        lines.append(f"{'':9s} {xmin:<12.4g}{'':{max(0, width - 26)}s}{xmax:>12.4g}")
        if self.label:
            lines.insert(0, self.label)
        return "\n".join(lines)
