"""The ``python -m repro.verify`` front end and the tiptop --replay hook."""

import json

import pytest

from repro.core.cli import main as tiptop_main
from repro.sim.machine import CounterTable
from repro.verify.cli import build_parser, main
from repro.verify.oracles import check_scenario
from repro.verify.shrink import shrink, write_artifact
from tests.test_verify_oracles import _break_idle_clock, _oversubscribed_scenario


class TestFuzzMode:
    def test_green_seeds_exit_zero(self, capsys):
        assert main(["--fuzz", "3", "--seed", "300"]) == 0
        out = capsys.readouterr().out
        assert "3 scenario(s) checked, 0 failing" in out

    def test_time_box_stops_early(self, capsys):
        assert main(["--fuzz", "50", "--time-box", "0"]) == 0
        err = capsys.readouterr().err
        assert "time box reached after 0/50 seeds" in err

    def test_failing_seed_writes_artifact_and_exits_nonzero(
        self, monkeypatch, tmp_path, capsys
    ):
        _break_idle_clock(monkeypatch)
        # Seed 3 regenerates as a small scenario; fuzzing any seed range
        # under the broken engine must catch at least the oversubscribed
        # ones. Use a generated seed known to oversubscribe: fall back to
        # checking the artifact flow via an explicit failing scenario.
        scenario = _oversubscribed_scenario()
        monkeypatch.setattr(
            "repro.verify.cli.generate", lambda seed: scenario
        )
        rc = main([
            "--fuzz", "1",
            "--artifact-dir", str(tmp_path),
            "--max-shrink-evals", "40",
        ])
        assert rc == 1
        artifacts = list(tmp_path.glob("repro-*.json"))
        assert len(artifacts) == 1
        payload = json.loads(artifacts[0].read_text())
        assert payload["violations"]
        assert payload["scenario"]["kind"] == "tool"
        err = capsys.readouterr().err
        assert "violation(s)" in err and "artifact:" in err


class TestReplayMode:
    @pytest.fixture
    def artifact(self, tmp_path):
        with pytest.MonkeyPatch.context() as mp:
            _break_idle_clock(mp)
            small = shrink(_oversubscribed_scenario(), max_evals=40)
            return write_artifact(small, check_scenario(small), tmp_path)

    def test_replay_green_after_fix(self, artifact, capsys):
        assert main(["--replay", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "no longer reproduce" in out

    def test_replay_red_while_broken(self, artifact, monkeypatch, capsys):
        _break_idle_clock(monkeypatch)
        assert main(["--replay", str(artifact)]) == 1
        out = capsys.readouterr().out
        assert "[advance-equivalence]" in out

    def test_tiptop_replay_flag_delegates(self, artifact, capsys):
        assert tiptop_main(["--replay", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "recorded violation(s)" in out


class TestParser:
    def test_requires_a_mode(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_modes_are_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--fuzz", "1", "--replay", "x.json"])

    def test_module_is_executable(self):
        import repro.verify.__main__  # noqa: F401 -- import fails loudly


def test_counter_table_hook_still_exists():
    """The injected-bug tests monkeypatch this method; fail fast here if
    a rename ever silently turns them into no-op tests."""
    assert callable(getattr(CounterTable, "advance_idle"))
