"""The fault-injection plan: seeded, deterministic, per-task independent."""

import pytest

from repro.errors import (
    ConfigError,
    CorruptReadError,
    FdLimitError,
    NoSuchTaskError,
    PerfBusyError,
    PerfInterruptedError,
    TransientPerfError,
)
from repro.perf.faults import (
    ERROR_CLASSES,
    OPS,
    FaultPlan,
    FaultSpec,
    default_specs,
)


class TestFaultSpec:
    def test_unknown_op_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec("frobnicate", "eintr", 0.1)

    def test_unknown_error_class_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec("open", "ebadf", 0.1)

    def test_rate_bounds(self):
        with pytest.raises(ConfigError):
            FaultSpec("open", "eintr", -0.1)
        with pytest.raises(ConfigError):
            FaultSpec("open", "eintr", 1.1)

    def test_at_calls_one_based(self):
        with pytest.raises(ConfigError):
            FaultSpec("open", "eintr", at_calls=frozenset({0}))

    def test_wildcard_matches_every_op(self):
        spec = FaultSpec("*", "eintr", 0.5)
        assert all(spec.matches_op(op) for op in OPS)


class TestDecide:
    def test_rate_zero_never_fires(self):
        plan = FaultPlan(1, [FaultSpec("read", "eintr", 0.0)])
        assert all(plan.decide("read", 10) is None for _ in range(200))

    def test_rate_one_always_fires(self):
        plan = FaultPlan(1, [FaultSpec("read", "eintr", 1.0)])
        assert all(plan.decide("read", 10) == "eintr" for _ in range(50))

    def test_same_seed_same_schedule(self):
        a = FaultPlan.from_seed(42)
        b = FaultPlan.from_seed(42)
        seq_a = [a.decide("read", 5) for _ in range(300)]
        seq_b = [b.decide("read", 5) for _ in range(300)]
        assert seq_a == seq_b

    def test_different_seeds_differ(self):
        a = FaultPlan(1, [FaultSpec("read", "eintr", 0.5)])
        b = FaultPlan(2, [FaultSpec("read", "eintr", 0.5)])
        seq_a = [a.decide("read", 5) for _ in range(100)]
        seq_b = [b.decide("read", 5) for _ in range(100)]
        assert seq_a != seq_b

    def test_per_tid_schedule_independent_of_interleaving(self):
        """Task 7's schedule must not shift when task 9's calls interleave.

        This is the property that lets chaos tests compare untouched
        tasks bitwise against a fault-free run.
        """
        specs = [FaultSpec("read", "eintr", 0.3)]
        alone = FaultPlan(7, specs)
        seq_alone = [alone.decide("read", 7) for _ in range(100)]
        mixed = FaultPlan(7, specs)
        seq_mixed = []
        for i in range(100):
            mixed.decide("read", 9)  # interleaved stranger
            seq_mixed.append(mixed.decide("read", 7))
            if i % 3 == 0:
                mixed.decide("read", 11)
        assert seq_alone == seq_mixed

    def test_at_calls_fires_on_exact_global_index(self):
        plan = FaultPlan(
            0, [FaultSpec("open", "emfile", at_calls=frozenset({2, 4}))]
        )
        got = [plan.decide("open", tid) for tid in (1, 2, 3, 4)]
        assert got == [None, "emfile", None, "emfile"]

    def test_rates_partition_interval(self):
        plan = FaultPlan(
            3,
            [
                FaultSpec("read", "eintr", 0.4),
                FaultSpec("read", "starve", 0.4),
            ],
        )
        seen = {plan.decide("read", 1) for _ in range(500)}
        assert seen == {None, "eintr", "starve"}

    def test_overcommitted_rates_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(
                0,
                [
                    FaultSpec("read", "eintr", 0.7),
                    FaultSpec("read", "eagain", 0.7),
                ],
            )

    def test_stats_track_calls_and_injections(self):
        plan = FaultPlan(1, [FaultSpec("read", "eintr", 1.0)])
        for _ in range(3):
            plan.decide("read", 5)
        plan.decide("open", 6)
        assert plan.stats.calls == {"read": 3, "open": 1}
        assert plan.stats.injected == {("read", "eintr"): 3}
        assert plan.stats.touched_tids == {5}
        assert plan.stats.total_injected() == 3

    def test_call_count_and_add(self):
        plan = FaultPlan(1)
        plan.decide("read", 1)
        plan.decide("read", 1)
        assert plan.call_count("read") == 2
        plan.add(FaultSpec("read", "eintr", at_calls=frozenset({3})))
        assert plan.decide("read", 1) == "eintr"

    def test_fork_replays_identically(self):
        plan = FaultPlan.from_seed(99)
        seq = [plan.decide("read", 4) for _ in range(200)]
        replay = plan.fork()
        assert [replay.decide("read", 4) for _ in range(200)] == seq


class TestRaiseFor:
    @pytest.mark.parametrize(
        "error,exc",
        [
            ("esrch", NoSuchTaskError),
            ("emfile", FdLimitError),
            ("eintr", PerfInterruptedError),
            ("eagain", PerfBusyError),
            ("corrupt", CorruptReadError),
        ],
    )
    def test_raising_classes_raise(self, error, exc):
        plan = FaultPlan(0, [FaultSpec("read", error, 1.0)])
        with pytest.raises(exc):
            plan.raise_for("read", 1)

    def test_starve_returns_instead_of_raising(self):
        plan = FaultPlan(0, [FaultSpec("read", "starve", 1.0)])
        assert plan.raise_for("read", 1) == "starve"

    def test_clean_call_returns_none(self):
        plan = FaultPlan(0)
        assert plan.raise_for("read", 1) is None

    def test_transient_classes_are_retryable(self):
        assert issubclass(PerfInterruptedError, TransientPerfError)
        assert issubclass(PerfBusyError, TransientPerfError)
        assert issubclass(CorruptReadError, TransientPerfError)
        assert not issubclass(NoSuchTaskError, TransientPerfError)
        assert not issubclass(FdLimitError, TransientPerfError)


class TestDefaultSpecs:
    def test_every_error_class_represented(self):
        classes = {s.error for s in default_specs()}
        assert classes == set(ERROR_CLASSES)

    def test_intensity_scales_rates(self):
        mild = default_specs(0.5)
        wild = default_specs(2.0)
        assert all(w.rate == pytest.approx(m.rate * 4) for m, w in
                   zip(mild, wild))

    def test_negative_intensity_rejected(self):
        with pytest.raises(ConfigError):
            default_specs(-1.0)
