"""Hand-crafted micro-kernels with analytically known event counts (§2.4).

The paper's first validation: "we manually crafted micro-kernels for which
we can analytically estimate the number of instructions (by inspecting the
assembly file of a single basic-block loop), the number of cache misses or
the misprediction ratio (random or periodic indirect jumps to well known
locations). Tiptop reports numbers in line with predictions."

This module provides exactly that workflow:

* a tiny assembly-like description of a single basic-block loop
  (:class:`Instr` / :class:`MicroKernel`) — the Figure 5 listings are
  expressible verbatim;
* an **analytic predictor** (:meth:`MicroKernel.predict`) computing exact
  per-event totals from the listing: instructions, branches, mispredicts
  (periodic or random indirect-jump patterns), loads/stores, cache misses
  from a stride/footprint model;
* a compiler to the machine substrate (:meth:`MicroKernel.to_workload`),
  so the same kernel runs under the full tiptop stack and the counter
  readings can be checked against the predictions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.sim.arch import ArchModel
from repro.sim.branch import BranchBehavior, random_jump_ratio
from repro.sim.cache import MemoryBehavior
from repro.sim.events import Event
from repro.sim.isa import InstructionClass, InstructionMix, OperandProfile
from repro.sim.workload import Phase, Workload


class Op(enum.Enum):
    """Micro-kernel opcodes (the subset the paper's kernels need)."""

    ALU = "alu"          # addq/cmpq-style integer op
    LOAD = "load"        # memory read
    STORE = "store"      # memory write
    FADD_X87 = "fadd"    # x87 FP add (assist-eligible)
    ADDSD_SSE = "addsd"  # SSE scalar FP add
    BRANCH = "branch"    # conditional loop branch (predictable)
    IJMP = "ijmp"        # indirect jump with a target pattern
    NOP = "nop"


@dataclass(frozen=True)
class Instr:
    """One static instruction of the loop body.

    Attributes:
        op: the opcode.
        targets: for IJMP: number of distinct jump targets.
        pattern: for IJMP: ``"periodic"`` (perfectly predicted after
            warm-up) or ``"random"`` (mispredicts at 1 - 1/targets).
        nonfinite: for FP ops: operands are Inf/NaN (assist on x87).
    """

    op: Op
    targets: int = 1
    pattern: str = "periodic"
    nonfinite: bool = False

    def __post_init__(self) -> None:
        if self.op is Op.IJMP:
            if self.targets < 1:
                raise WorkloadError("ijmp needs >= 1 target")
            if self.pattern not in ("periodic", "random"):
                raise WorkloadError(
                    f"ijmp pattern must be periodic|random, got {self.pattern!r}"
                )


@dataclass(frozen=True)
class Prediction:
    """Analytic per-event totals for a full kernel run."""

    counts: dict[Event, float]

    def __getitem__(self, event: Event) -> float:
        return self.counts.get(event, 0.0)

    @property
    def mispredict_ratio(self) -> float:
        """Predicted mispredicts per branch."""
        branches = self[Event.BRANCH_INSTRUCTIONS]
        return self[Event.BRANCH_MISSES] / branches if branches else 0.0


@dataclass(frozen=True)
class MicroKernel:
    """A single basic-block loop.

    Attributes:
        name: kernel label.
        body: the loop body's instructions (the loop branch included).
        iterations: trip count.
        footprint: bytes the loop touches (drives cache-miss prediction).
        stride: bytes between consecutive memory accesses; with a 64-byte
            line, stride >= 64 makes every access a (predictable) miss for
            footprints beyond the cache, stride 0 keeps everything in
            registers/one line.
    """

    name: str
    body: tuple[Instr, ...]
    iterations: float
    footprint: int = 0
    stride: int = 0

    def __post_init__(self) -> None:
        if not self.body:
            raise WorkloadError(f"kernel {self.name!r} has an empty body")
        if self.iterations < 1:
            raise WorkloadError(f"kernel {self.name!r} needs >= 1 iteration")
        if self.footprint < 0 or self.stride < 0:
            raise WorkloadError(f"kernel {self.name!r}: negative geometry")

    # -- static structure ----------------------------------------------------
    @property
    def instructions_per_iteration(self) -> int:
        """Static body length."""
        return len(self.body)

    def _count_ops(self, *ops: Op) -> int:
        return sum(1 for i in self.body if i.op in ops)

    # -- analytic prediction ---------------------------------------------------
    def _miss_ratio(self, arch: ArchModel) -> float:
        """Fraction of memory accesses missing the LLC, from the stride
        model: footprints within the LLC never miss after warm-up; beyond
        it, every new line is a miss (one per line / accesses per line)."""
        refs = self._count_ops(Op.LOAD, Op.STORE)
        if refs == 0 or self.footprint == 0 or self.stride == 0:
            return 0.0
        if self.footprint <= arch.llc.size:
            return 0.0
        accesses_per_line = max(1, arch.llc.line // self.stride)
        return min(1.0, 1.0 / accesses_per_line)

    def predict(self, arch: ArchModel) -> Prediction:
        """Exact expected totals for the whole run on ``arch``."""
        n = self.iterations
        counts: dict[Event, float] = {}
        counts[Event.INSTRUCTIONS] = len(self.body) * n
        branches = self._count_ops(Op.BRANCH, Op.IJMP) * n
        counts[Event.BRANCH_INSTRUCTIONS] = branches

        mispredicts = 0.0
        for instr in self.body:
            if instr.op is Op.IJMP and instr.pattern == "random":
                mispredicts += random_jump_ratio(instr.targets) * n
            # periodic jumps and the loop branch predict perfectly.
        counts[Event.BRANCH_MISSES] = mispredicts

        counts[Event.LOADS] = self._count_ops(Op.LOAD) * n
        counts[Event.STORES] = self._count_ops(Op.STORE) * n
        refs = counts[Event.LOADS] + counts[Event.STORES]
        counts[Event.CACHE_MISSES] = refs * self._miss_ratio(arch)

        x87 = self._count_ops(Op.FADD_X87) * n
        sse = self._count_ops(Op.ADDSD_SSE) * n
        counts[Event.X87_OPERATIONS] = x87
        counts[Event.SSE_OPERATIONS] = sse
        counts[Event.FP_OPERATIONS] = x87 + sse
        assisted = sum(
            1 for i in self.body if i.op is Op.FADD_X87 and i.nonfinite
        )
        counts[Event.FP_ASSIST] = (
            assisted * n if arch.has_fp_assist else 0.0
        )
        return Prediction(counts)

    # -- compilation to the machine substrate ----------------------------------
    def to_workload(self, *, exec_cpi: float = 0.75) -> Workload:
        """Compile the kernel to a machine workload.

        The phase's mix/memory/branch/operand descriptors are derived from
        the listing, so the machine's counters reproduce :meth:`predict`'s
        per-event *rates* exactly (and the totals once the budget runs out).
        """
        n_body = len(self.body)
        fractions: dict[InstructionClass, float] = {}

        def add(cls: InstructionClass, count: int) -> None:
            if count:
                fractions[cls] = fractions.get(cls, 0.0) + count / n_body

        add(InstructionClass.INT_ALU, self._count_ops(Op.ALU))
        add(InstructionClass.LOAD, self._count_ops(Op.LOAD))
        add(InstructionClass.STORE, self._count_ops(Op.STORE))
        add(InstructionClass.BRANCH, self._count_ops(Op.BRANCH, Op.IJMP))
        add(InstructionClass.FP_X87, self._count_ops(Op.FADD_X87))
        add(InstructionClass.FP_SSE, self._count_ops(Op.ADDSD_SSE))
        add(InstructionClass.NOP, self._count_ops(Op.NOP))

        branches = self._count_ops(Op.BRANCH, Op.IJMP)
        mispredict_ratio = 0.0
        if branches:
            per_iter = sum(
                random_jump_ratio(i.targets)
                for i in self.body
                if i.op is Op.IJMP and i.pattern == "random"
            )
            mispredict_ratio = per_iter / branches

        fp_ops = self._count_ops(Op.FADD_X87, Op.ADDSD_SSE)
        nonfinite = 0.0
        if fp_ops:
            nonfinite = (
                sum(
                    1
                    for i in self.body
                    if i.op in (Op.FADD_X87, Op.ADDSD_SSE) and i.nonfinite
                )
                / fp_ops
            )

        refs = self._count_ops(Op.LOAD, Op.STORE)
        if refs and self.footprint and self.stride:
            # Streaming fraction reproduces the analytic LLC miss ratio.
            from repro.sim.arch import NEHALEM

            memory = MemoryBehavior(
                working_set=self.footprint,
                level_hit_ratios=(1.0, 1.0, 1.0),
                streaming=self._miss_ratio(NEHALEM),
                mlp=4.0,
            )
        else:
            memory = MemoryBehavior(working_set=64)

        phase = Phase(
            name=self.name,
            instructions=len(self.body) * self.iterations,
            mix=InstructionMix(fractions),
            memory=memory,
            branches=BranchBehavior(mispredict_ratio=mispredict_ratio),
            operands=OperandProfile(nonfinite=nonfinite),
            exec_cpi=exec_cpi,
            noise=0.0,
        )
        return Workload(name=self.name, phases=(phase,))


# ---------------------------------------------------------------------------
# The paper's kernels
# ---------------------------------------------------------------------------
def fig5_loop(isa: str = "x87", nonfinite: bool = False,
              iterations: float = 1e9) -> MicroKernel:
    """The Figure 5 listing: addq / fadd|addsd / cmpq / jne."""
    fp = Op.FADD_X87 if isa == "x87" else Op.ADDSD_SSE
    return MicroKernel(
        name=f"fig5-{isa}",
        body=(
            Instr(Op.ALU),
            Instr(fp, nonfinite=nonfinite),
            Instr(Op.ALU),
            Instr(Op.BRANCH),
        ),
        iterations=iterations,
    )


def random_jump_kernel(targets: int, iterations: float = 1e8) -> MicroKernel:
    """§2.4's "random indirect jumps to well known locations"."""
    return MicroKernel(
        name=f"random-ijmp-{targets}",
        body=(
            Instr(Op.ALU),
            Instr(Op.IJMP, targets=targets, pattern="random"),
            Instr(Op.ALU),
            Instr(Op.BRANCH),
        ),
        iterations=iterations,
    )


def periodic_jump_kernel(targets: int, iterations: float = 1e8) -> MicroKernel:
    """The periodic variant: fully predictable after warm-up."""
    return MicroKernel(
        name=f"periodic-ijmp-{targets}",
        body=(
            Instr(Op.ALU),
            Instr(Op.IJMP, targets=targets, pattern="periodic"),
            Instr(Op.ALU),
            Instr(Op.BRANCH),
        ),
        iterations=iterations,
    )


def streaming_kernel(
    footprint: int = 256 * 1024 * 1024,
    stride: int = 64,
    iterations: float = 1e8,
) -> MicroKernel:
    """A strided walk whose cache-miss count is known by construction."""
    return MicroKernel(
        name=f"stream-{stride}",
        body=(
            Instr(Op.LOAD),
            Instr(Op.ALU),
            Instr(Op.ALU),
            Instr(Op.BRANCH),
        ),
        iterations=iterations,
        footprint=footprint,
        stride=stride,
    )
