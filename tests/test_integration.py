"""End-to-end integration: the tool pipeline over paper scenarios.

These run scaled-down versions of the experiments through the *full* stack
(workload model -> machine -> sim kernel -> perf backend -> sampler ->
screens -> recorder -> analysis), asserting the paper's qualitative claims.
The benchmarks/ directory runs the full-size versions.
"""

import math

import pytest

from repro import Options, SimHost, TipTop
from repro.analysis.phase_detect import transition_points
from repro.core.phases import detect_pid_phases, pid_metric_series
from repro.core.screen import get_screen
from repro.sim import NEHALEM, SimMachine
from repro.sim.workload import Workload
from repro.sim.workloads import datacenter, microbench, revolve, spec


class TestRevolvePipeline:
    def test_ipc_collapse_detected_through_full_stack(self):
        """A scaled Fig. 3a: phase change visible and detectable."""
        # Shrink the workload ~100x so the test runs in ~2 s.
        full = revolve.original()
        phases = tuple(p.with_budget(p.instructions / 100) for p in full.phases)
        machine = SimMachine(NEHALEM, tick=0.5, seed=2)
        proc = machine.spawn("R", Workload("revolve-small", phases), user="biologist")
        app = TipTop(
            SimHost(machine),
            Options(delay=2.0),
            get_screen("fpassist"),
        )
        with app:
            recorder = app.run_collect(90)
        series = pid_metric_series(recorder, proc.pid, "IPC")
        assert series.y[:10].mean() == pytest.approx(1.0, abs=0.15)
        assert min(series.y) < 0.1
        cuts = transition_points(series, window=5)
        assert cuts, "the collapse must be detectable"
        # FP assists appear exactly when IPC collapses (Fig. 3c).
        assists = pid_metric_series(recorder, proc.pid, "ASSIST")
        low_ipc = series.y < 0.5
        assert assists.y[low_ipc].mean() > 5.0
        assert assists.y[~low_ipc].mean() < 1.0


class TestMicrobenchPipeline:
    @pytest.mark.parametrize(
        "isa,operands,expect_ipc,expect_assist",
        [
            ("x87", "finite", 1.33, 0.0),
            ("x87", "inf", 0.015, 25.0),
            ("sse", "inf", 1.33, 0.0),
        ],
    )
    def test_table1_through_tool(self, isa, operands, expect_ipc, expect_assist):
        machine = SimMachine(NEHALEM, tick=0.5, seed=4)
        w = microbench.fp_microbench(isa, operands, iterations=math.inf)
        proc = machine.spawn(f"fp-{isa}", w)
        app = TipTop(SimHost(machine), Options(delay=2.0), get_screen("fpassist"))
        with app:
            recorder = app.run_collect(3)
        ipc = recorder.mean(proc.pid, "IPC")
        assist = recorder.mean(proc.pid, "ASSIST")
        assert ipc == pytest.approx(expect_ipc, rel=0.05)
        assert assist == pytest.approx(expect_assist, abs=0.5)


class TestDatacenterPipeline:
    def test_fig1_snapshot_renders(self):
        machine = datacenter.make_node(tick=0.5)
        datacenter.populate_fig1(machine)
        app = TipTop(SimHost(machine), Options(delay=5.0))
        with app:
            blocks = app.run_batch(2, write=lambda s: None)
        last = blocks[-1]
        assert last.count("process") == 11
        assert "user1" in last and "user2" in last and "user3" in last

    def test_fig10_slowdown_through_tool(self):
        machine = datacenter.make_node(tick=1.0)
        jobs = datacenter.populate_fig10(
            machine, burst_start=120.0, burst_duration=600.0
        )
        victim = jobs["user1"][0]
        app = TipTop(SimHost(machine), Options(delay=10.0))
        with app:
            recorder = app.run_collect(40)
        series = pid_metric_series(recorder, victim.pid, "IPC")
        solo = series.window(0, 115).mean()
        corun = series.window(200, 400).mean()
        assert 0.05 < 1 - corun / solo < 0.4
        # %CPU stays pegged throughout (the paper's headline contrast).
        for s in recorder.for_pid(victim.pid):
            assert s.cpu_pct > 99.0


class TestSpecPipeline:
    def test_mcf_phases_detected(self):
        w = spec.workload("429.mcf")
        small = Workload(
            "mcf-small", tuple(p.with_budget(p.instructions / 20) for p in w.phases)
        )
        machine = SimMachine(NEHALEM, tick=0.5, seed=6)
        proc = machine.spawn("mcf", small)
        app = TipTop(SimHost(machine), Options(delay=1.0))
        with app:
            recorder = app.run_collect(25)
        segments = detect_pid_phases(recorder, proc.pid, window=3, threshold=0.2)
        assert len(segments) >= 2

    def test_counter_leak_free_over_many_process_generations(self):
        """Attach/detach across many short-lived processes leaks nothing."""
        machine = SimMachine(NEHALEM, tick=0.25, seed=7)
        w = spec.workload("456.hmmer")
        tiny = Workload("tiny", (w.phases[0].with_budget(2e9),))
        app = TipTop(SimHost(machine), Options(delay=0.5))
        respawn = []

        def keep_populated():
            if len(machine.live_processes()) < 3:
                respawn.append(machine.spawn("gen", tiny))
            machine.at(machine.now + 0.25, keep_populated)

        machine.at(0.0, keep_populated)
        with app:
            app.run_collect(30)
        assert machine.counters.open_count() == 0
        assert len(respawn) > 5
