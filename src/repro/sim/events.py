"""Hardware event taxonomy for the simulated PMU.

Mirrors the split the paper relies on (§2.2–2.3): a handful of *generic*
events defined by ``linux/perf_event.h`` (cycles, instructions, LLC
references/misses, branches, branch misses) that make portable metrics
possible, plus *target-specific* raw events that must be looked up in vendor
manuals — here, the micro-code FP assist and per-level cache events used in
§3.1 and §3.4.
"""

from __future__ import annotations

import enum


class Event(enum.Enum):
    """Countable hardware events.

    The first block corresponds one-to-one to ``PERF_COUNT_HW_*`` generic
    events; the second block are raw, architecture-specific events (the
    Nehalem ``FP_ASSIST.ANY``, per-level cache misses, uop counts). The sim
    kernel counts all of them; a given :class:`~repro.sim.arch.ArchModel`
    advertises which raw events its PMU implements.
    """

    # Generic events (perf_event.h PERF_COUNT_HW_*)
    CYCLES = "cycles"
    INSTRUCTIONS = "instructions"
    CACHE_REFERENCES = "cache-references"
    CACHE_MISSES = "cache-misses"
    BRANCH_INSTRUCTIONS = "branch-instructions"
    BRANCH_MISSES = "branch-misses"
    BUS_CYCLES = "bus-cycles"

    # Raw target-specific events
    FP_ASSIST = "fp-assist"
    UOPS_EXECUTED = "uops-executed"
    L1D_ACCESSES = "l1d-accesses"
    L1D_MISSES = "l1d-misses"
    L2_ACCESSES = "l2-accesses"
    L2_MISSES = "l2-misses"
    L3_ACCESSES = "l3-accesses"
    L3_MISSES = "l3-misses"
    LOADS = "loads"
    STORES = "stores"
    FP_OPERATIONS = "fp-operations"
    X87_OPERATIONS = "x87-operations"
    SSE_OPERATIONS = "sse-operations"
    CONTEXT_SWITCHES = "context-switches"
    #: Cycles spent waiting on DRAM, per §3.4's outlook: "recent processors
    #: have counters for the latency of memory accesses. We plan to use
    #: them in the future" — dividing by LLC misses gives the average
    #: observed memory latency, which exposes DRAM-level contention.
    MEM_LATENCY_CYCLES = "mem-latency-cycles"

    def is_generic(self) -> bool:
        """True for events every architecture exposes (perf generic events)."""
        return self in _GENERIC_EVENTS


#: Dense integer code per event, in enum declaration order. The columnar
#: kernel indexes its per-slice delta vectors and per-counter event columns
#: by these codes instead of hashing enum members in inner loops.
EVENT_CODE: dict[Event, int] = {event: i for i, event in enumerate(Event)}

#: Length of a dense per-event vector (one slot per Event member).
N_EVENT_CODES: int = len(Event)


_GENERIC_EVENTS = frozenset(
    {
        Event.CYCLES,
        Event.INSTRUCTIONS,
        Event.CACHE_REFERENCES,
        Event.CACHE_MISSES,
        Event.BRANCH_INSTRUCTIONS,
        Event.BRANCH_MISSES,
        Event.BUS_CYCLES,
    }
)

#: Events every simulated PMU provides regardless of architecture.
GENERIC_EVENTS: frozenset[Event] = _GENERIC_EVENTS

#: Raw events only some architectures implement (see ArchModel.raw_events).
RAW_EVENTS: frozenset[Event] = frozenset(set(Event) - _GENERIC_EVENTS)


class EventDelta(dict):
    """Event -> count mapping produced for one scheduled slice.

    A thin dict subclass so arithmetic helpers read naturally at call sites
    (``total = a.merged(b)``).
    """

    def merged(self, other: "EventDelta") -> "EventDelta":
        """Return the element-wise sum of two deltas."""
        out = EventDelta(self)
        for key, value in other.items():
            out[key] = out.get(key, 0.0) + value
        return out

    def scaled(self, factor: float) -> "EventDelta":
        """Return a copy with every count multiplied by ``factor``."""
        return EventDelta({k: v * factor for k, v in self.items()})
