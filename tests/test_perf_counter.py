"""High-level Counter/CounterGroup over the sim backend."""

import pytest

from repro.errors import CounterStateError, EventError
from repro.perf.counter import Counter, CounterGroup, Reading
from repro.perf.events import resolve_event
from repro.perf.simbackend import SimBackend


@pytest.fixture
def setup(nehalem_machine, endless_workload):
    proc = nehalem_machine.spawn("job", endless_workload)
    return nehalem_machine, SimBackend(nehalem_machine), proc


class TestCounter:
    def test_delta_between_reads(self, setup):
        machine, backend, proc = setup
        c = Counter(backend, resolve_event("instructions"), proc.pid)
        machine.run_for(1.0)
        first = c.delta()
        machine.run_for(1.0)
        second = c.delta()
        assert first > 0
        assert second == pytest.approx(first, rel=0.05)

    def test_delta_moves_baseline(self, setup):
        machine, backend, proc = setup
        c = Counter(backend, resolve_event("cycles"), proc.pid)
        machine.run_for(1.0)
        c.delta()
        assert c.delta() == 0.0  # nothing elapsed since previous call

    def test_reset_restarts(self, setup):
        machine, backend, proc = setup
        c = Counter(backend, resolve_event("cycles"), proc.pid)
        machine.run_for(1.0)
        c.reset()
        assert c.read().value == 0

    def test_close_then_read_raises(self, setup):
        _, backend, proc = setup
        c = Counter(backend, resolve_event("cycles"), proc.pid)
        c.close()
        assert c.closed
        with pytest.raises(CounterStateError):
            c.read()

    def test_close_idempotent(self, setup):
        _, backend, proc = setup
        c = Counter(backend, resolve_event("cycles"), proc.pid)
        c.close()
        c.close()

    def test_context_manager(self, setup):
        _, backend, proc = setup
        with Counter(backend, resolve_event("cycles"), proc.pid) as c:
            pass
        assert c.closed

    def test_multiplex_scaling(self, setup):
        """With > pmu_width counters, deltas are scaled estimates."""
        machine, backend, proc = setup
        names = [
            "cycles", "instructions", "cache-misses", "cache-references",
            "branch-misses", "branch-instructions", "bus-cycles", "loads",
            "stores", "l1d-misses", "l1d-accesses", "l2-misses",
            "l2-accesses", "l3-misses", "l3-accesses", "fp-operations",
            "uops-executed", "fp-assist",  # 18 > 16-wide PMU
        ]
        counters = [
            Counter(backend, resolve_event(n), proc.pid) for n in names
        ]
        machine.run_for(0.5)
        for c in counters:
            c.delta()
        machine.run_for(8.0)
        cyc = next(c for c in counters if c.event.name == "cycles")
        delta = cyc.delta()
        from repro.sim import NEHALEM

        # Scaled estimate should land near the true 8 s of cycles.
        assert delta == pytest.approx(NEHALEM.freq_hz * 8.0, rel=0.15)


class TestCounterGroup:
    def test_read_deltas_keys(self, setup):
        machine, backend, proc = setup
        events = [resolve_event(n) for n in ("cycles", "instructions")]
        g = CounterGroup(backend, events, proc.pid)
        machine.run_for(1.0)
        deltas = g.read_deltas()
        assert set(deltas) == {"cycles", "instructions"}
        assert deltas["instructions"] > 0

    def test_ipc_from_group(self, setup):
        machine, backend, proc = setup
        events = [resolve_event(n) for n in ("cycles", "instructions")]
        g = CounterGroup(backend, events, proc.pid)
        machine.run_for(1.0)
        d = g.read_deltas()
        ipc = d["instructions"] / d["cycles"]
        assert 0.5 < ipc < 3.0

    def test_close_all(self, setup):
        machine, backend, proc = setup
        events = [resolve_event(n) for n in ("cycles", "instructions")]
        g = CounterGroup(backend, events, proc.pid)
        g.close()
        assert machine.counters.open_count() == 0

    def test_partial_open_failure_cleans_up(self, nehalem_machine, endless_workload):
        """If one event fails to open, previously opened ones are closed."""
        from repro.sim import PPC970, SimMachine

        m = SimMachine(PPC970, tick=0.1)
        p = m.spawn("j", endless_workload)
        b = SimBackend(m)
        events = [resolve_event("cycles"), resolve_event("fp-assist")]
        with pytest.raises(EventError):
            CounterGroup(b, events, p.pid)
        assert m.counters.open_count() == 0

    def test_enable_disable_cycle(self, setup):
        machine, backend, proc = setup
        g = CounterGroup(backend, [resolve_event("instructions")], proc.pid)
        machine.run_for(0.5)
        g.read_deltas()
        g.disable()
        machine.run_for(1.0)
        assert g.read_deltas()["instructions"] == 0.0
        g.enable()
        machine.run_for(1.0)
        assert g.read_deltas()["instructions"] > 0


class TestReading:
    def test_reading_is_frozen(self):
        r = Reading(1, 2.0, 3.0)
        with pytest.raises(AttributeError):
            r.value = 5
