"""Metric triggers: act the moment a phase begins.

§3.2: "More advanced users can also start running their applications at
full speed, and attach a debugger or analyzer (such as a Pintool) when a
particular phase has started." A :class:`Trigger` watches one metric of
one task across snapshots and fires a callback once its condition has held
for ``hold`` consecutive samples — the building block for
attach-on-phase-entry automation.
"""

from __future__ import annotations

import enum
import math
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.sampler import Snapshot
from repro.errors import ConfigError


class Comparison(enum.Enum):
    """Trigger comparisons."""

    BELOW = "<"
    ABOVE = ">"


@dataclass(frozen=True)
class TriggerEvent:
    """What a fired trigger reports to its callback."""

    time: float
    pid: int
    metric: str
    value: float


@dataclass
class Trigger:
    """One armed condition.

    Attributes:
        metric: column header to watch ("IPC", "ASSIST", ...).
        comparison: BELOW or ABOVE.
        threshold: the boundary value.
        callback: invoked once with a :class:`TriggerEvent` when firing.
        pid: restrict to one task (None = any task may fire it).
        hold: consecutive matching samples required (debounce; the paper's
            phases last many samples, a single noisy dip should not attach
            a debugger).
        once: disarm after the first firing (default) or re-arm after the
            condition clears.
    """

    metric: str
    comparison: Comparison
    threshold: float
    callback: Callable[[TriggerEvent], object]
    pid: int | None = None
    hold: int = 3
    once: bool = True
    _streaks: dict[int, int] = field(default_factory=dict)
    _armed: bool = True
    fired: list[TriggerEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.hold < 1:
            raise ConfigError(f"hold must be >= 1, got {self.hold}")

    def _matches(self, value: float) -> bool:
        if math.isnan(value):
            return False
        if self.comparison is Comparison.BELOW:
            return value < self.threshold
        return value > self.threshold

    def observe(self, snapshot: Snapshot) -> list[TriggerEvent]:
        """Feed one snapshot; returns the events fired by it."""
        fired_now: list[TriggerEvent] = []
        if not self._armed:
            return fired_now
        rows = (
            [r for r in snapshot.rows if r.pid == self.pid]
            if self.pid is not None
            else list(snapshot.rows)
        )
        for row in rows:
            value = row.metric(self.metric)
            if self._matches(value):
                streak = self._streaks.get(row.pid, 0) + 1
                self._streaks[row.pid] = streak
                if streak == self.hold:
                    event = TriggerEvent(
                        time=snapshot.time,
                        pid=row.pid,
                        metric=self.metric,
                        value=value,
                    )
                    self.fired.append(event)
                    fired_now.append(event)
                    self.callback(event)
                    if self.once:
                        self._armed = False
                        break
            else:
                self._streaks[row.pid] = 0
        return fired_now


class TriggerSet:
    """A bundle of triggers observed together.

    Plug into any snapshot loop::

        triggers = TriggerSet([
            Trigger("IPC", Comparison.BELOW, 0.2, on_collapse),
        ])
        for snapshot in app.snapshots():
            triggers.observe(snapshot)
    """

    def __init__(self, triggers: list[Trigger] | None = None) -> None:
        self.triggers = list(triggers or ())

    def add(self, trigger: Trigger) -> None:
        """Arm one more trigger."""
        self.triggers.append(trigger)

    def observe(self, snapshot: Snapshot) -> list[TriggerEvent]:
        """Feed one snapshot to every trigger."""
        fired: list[TriggerEvent] = []
        for trigger in self.triggers:
            fired.extend(trigger.observe(snapshot))
        return fired

    @property
    def any_fired(self) -> bool:
        """True once any trigger has fired."""
        return any(t.fired for t in self.triggers)
