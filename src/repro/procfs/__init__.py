"""The /proc substrate: process identity, state and CPU accounting.

Tiptop pulls "%CPU, processor on which a task is running, etc." from the
/proc filesystem (§2.3). :mod:`repro.procfs.reader` parses the real /proc;
:mod:`repro.procfs.simproc` provides the identical view over a simulated
machine; both speak :class:`repro.procfs.model.ProcessInfo`.
"""

from repro.procfs.model import ProcessInfo, TaskProvider
from repro.procfs.reader import ProcReader
from repro.procfs.simproc import SimProcReader

__all__ = ["ProcReader", "ProcessInfo", "SimProcReader", "TaskProvider"]
