"""Portable event naming and per-architecture resolution.

The Linux header provides a few *generic* events (cycles, instructions,
cache references/misses, branches, branch misses) that make portable
metrics possible; anything else is a *raw* event whose encoding "must be
looked up in the vendor's architecture manuals" (§2.3). This module gives
every countable event a stable name, its simulated-kernel identity, and —
for events the real backend can program — its ``(type, config)`` encoding.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EventError
from repro.perf import abi
from repro.sim.arch import ArchModel
from repro.sim.events import Event


@dataclass(frozen=True)
class EventSpec:
    """One resolvable event.

    Attributes:
        name: canonical name (``"cycles"``, ``"fp-assist"``...).
        sim_event: identity in the simulated kernel.
        type_id: perf_event_attr.type for the real backend.
        config: perf_event_attr.config for the real backend.
        generic: True for the portable perf generic events.
    """

    name: str
    sim_event: Event
    type_id: abi.PerfTypeId
    config: int
    generic: bool


def _generic(name: str, sim: Event, hw: abi.HardwareEventId) -> EventSpec:
    return EventSpec(name, sim, abi.PerfTypeId.HARDWARE, int(hw), True)


def _cache(name: str, sim: Event, cache: abi.HwCacheId, result: abi.HwCacheResultId) -> EventSpec:
    config = abi.hw_cache_config(cache, abi.HwCacheOpId.READ, result)
    return EventSpec(name, sim, abi.PerfTypeId.HW_CACHE, config, False)


def _raw(name: str, sim: Event, config: int) -> EventSpec:
    return EventSpec(name, sim, abi.PerfTypeId.RAW, config, False)


#: Raw encodings below are the Nehalem ones from the Intel SDM (vol. 3B,
#: [24] in the paper): event_select | (umask << 8).
_SPECS: dict[str, EventSpec] = {
    s.name: s
    for s in (
        _generic("cycles", Event.CYCLES, abi.HardwareEventId.CPU_CYCLES),
        _generic("instructions", Event.INSTRUCTIONS, abi.HardwareEventId.INSTRUCTIONS),
        _generic(
            "cache-references",
            Event.CACHE_REFERENCES,
            abi.HardwareEventId.CACHE_REFERENCES,
        ),
        _generic("cache-misses", Event.CACHE_MISSES, abi.HardwareEventId.CACHE_MISSES),
        _generic(
            "branch-instructions",
            Event.BRANCH_INSTRUCTIONS,
            abi.HardwareEventId.BRANCH_INSTRUCTIONS,
        ),
        _generic("branch-misses", Event.BRANCH_MISSES, abi.HardwareEventId.BRANCH_MISSES),
        _generic("bus-cycles", Event.BUS_CYCLES, abi.HardwareEventId.BUS_CYCLES),
        _cache("l1d-accesses", Event.L1D_ACCESSES, abi.HwCacheId.L1D, abi.HwCacheResultId.ACCESS),
        _cache("l1d-misses", Event.L1D_MISSES, abi.HwCacheId.L1D, abi.HwCacheResultId.MISS),
        # Nehalem raw encodings (event | umask<<8):
        _raw("fp-assist", Event.FP_ASSIST, 0x1EF7),          # FP_ASSIST.ALL
        _raw("uops-executed", Event.UOPS_EXECUTED, 0x3FB1),  # UOPS_EXECUTED
        _raw("l2-accesses", Event.L2_ACCESSES, 0xFF24),      # L2_RQSTS.REFERENCES
        _raw("l2-misses", Event.L2_MISSES, 0xAA24),          # L2_RQSTS.MISS
        _raw("l3-accesses", Event.L3_ACCESSES, 0x4F2E),      # LONGEST_LAT_CACHE.REFERENCE
        _raw("l3-misses", Event.L3_MISSES, 0x412E),          # LONGEST_LAT_CACHE.MISS
        _raw("loads", Event.LOADS, 0x010B),                  # MEM_INST_RETIRED.LOADS
        _raw("stores", Event.STORES, 0x020B),                # MEM_INST_RETIRED.STORES
        _raw("fp-operations", Event.FP_OPERATIONS, 0x0110),  # FP_COMP_OPS_EXE.X87+SSE
        _raw("x87-operations", Event.X87_OPERATIONS, 0x0210),
        _raw("sse-operations", Event.SSE_OPERATIONS, 0x0410),
        # MEM_INST_RETIRED.LATENCY_ABOVE_THRESHOLD-style weighted latency
        # (the §3.4 "recent processors" counter).
        _raw("mem-latency-cycles", Event.MEM_LATENCY_CYCLES, 0x100B),
        EventSpec(
            "context-switches",
            Event.CONTEXT_SWITCHES,
            abi.PerfTypeId.SOFTWARE,
            int(abi.SoftwareEventId.CONTEXT_SWITCHES),
            True,
        ),
    )
}

#: Aliases accepted by the CLI/config layer.
_ALIASES = {
    "cpu-cycles": "cycles",
    "instr": "instructions",
    "insn": "instructions",
    "llc-references": "cache-references",
    "llc-misses": "cache-misses",
    "branches": "branch-instructions",
    "branch-mispredicts": "branch-misses",
}


def event_names() -> list[str]:
    """All canonical event names."""
    return sorted(_SPECS)


def resolve_event(name: str, arch: ArchModel | None = None) -> EventSpec:
    """Resolve an event name (or alias) to its spec.

    Args:
        name: canonical name or alias, case-insensitive.
        arch: when given, verify the architecture's PMU implements the
            event (generic events always pass).

    Raises:
        EventError: unknown name, or unsupported on ``arch``.
    """
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    spec = _SPECS.get(key)
    if spec is None:
        raise EventError(f"unknown event {name!r}; known: {event_names()}")
    if arch is not None and not arch.supports_event(spec.sim_event):
        raise EventError(
            f"event {spec.name!r} is not countable on {arch.name} "
            "(not in its PMU's raw event list)"
        )
    return spec


def spec_for_sim_event(event: Event) -> EventSpec:
    """Reverse lookup: the spec whose sim identity is ``event``.

    Raises:
        EventError: if no named spec maps to this event.
    """
    for spec in _SPECS.values():
        if spec.sim_event is event:
            return spec
    raise EventError(f"no named spec for sim event {event}")
