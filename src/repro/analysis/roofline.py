"""Roofline-style processor selection from counter-derived rates.

§2.6: "The reported instruction mix is useful in selecting the most
appropriate processor in a family of binary compatible chips, for example
with the Roofline methodology [38]", combining Diamond et al.'s FPC/LPC
machine-facing rates with the application-facing FPI/LPI/BPI mix.

The model (Williams/Waterman/Patterson): attainable FP throughput is
``min(peak_flops, operational_intensity x peak_bandwidth)``. Here the
operational intensity comes straight from tiptop's counters —
FP operations per byte of DRAM traffic (LLC misses x line size) — so a
user can read a few columns off a running application and pick the chip
whose roofline it exploits best.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.sim.arch import ArchModel


@dataclass(frozen=True)
class RooflinePoint:
    """An application's position in roofline coordinates.

    Attributes:
        operational_intensity: FP operations per byte of memory traffic.
        flops_per_sec: measured FP throughput.
    """

    operational_intensity: float
    flops_per_sec: float


@dataclass(frozen=True)
class MachineRoofline:
    """A machine's roofline: compute ceiling and bandwidth slope.

    Attributes:
        name: machine name.
        peak_flops: peak FP operations per second.
        peak_bandwidth: peak DRAM bytes per second.
    """

    name: str
    peak_flops: float
    peak_bandwidth: float

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or self.peak_bandwidth <= 0:
            raise ReproError(f"roofline for {self.name} needs positive peaks")

    @property
    def ridge_intensity(self) -> float:
        """Operational intensity where the two ceilings meet."""
        return self.peak_flops / self.peak_bandwidth

    def attainable(self, operational_intensity: float) -> float:
        """Attainable FP throughput at the given intensity."""
        if operational_intensity < 0:
            raise ReproError("operational intensity must be >= 0")
        return min(
            self.peak_flops, operational_intensity * self.peak_bandwidth
        )

    def bound(self, operational_intensity: float) -> str:
        """Which ceiling binds: "compute" or "memory"."""
        return (
            "memory"
            if operational_intensity < self.ridge_intensity
            else "compute"
        )


def machine_roofline(
    arch: ArchModel,
    *,
    memory_bandwidth: float = 25e9,
    fp_issue_per_cycle: float = 2.0,
) -> MachineRoofline:
    """Derive a roofline from an architecture model.

    Args:
        arch: the machine.
        memory_bandwidth: sustainable DRAM bandwidth in bytes/s.
        fp_issue_per_cycle: FP operations the core can retire per cycle.
    """
    return MachineRoofline(
        name=arch.name,
        peak_flops=arch.freq_hz * fp_issue_per_cycle,
        peak_bandwidth=memory_bandwidth,
    )


def point_from_deltas(
    deltas: dict[str, float],
    interval: float,
    *,
    line_bytes: int = 64,
) -> RooflinePoint:
    """Roofline coordinates from one interval's counter deltas.

    Needs ``fp-operations`` and ``cache-misses`` (memory traffic) deltas —
    exactly what the ``mix`` screen counts.

    Raises:
        ReproError: missing counters or a zero-length interval.
    """
    if interval <= 0:
        raise ReproError(f"interval must be positive, got {interval}")
    try:
        flops = deltas["fp-operations"]
    except KeyError as exc:
        raise ReproError(f"roofline needs an fp-operations delta: {exc}") from exc
    for name in ("cache-misses", "l3-misses", "l2-misses"):
        if name in deltas:
            misses = deltas[name]
            break
    else:
        raise ReproError(
            "roofline needs an LLC-miss delta (cache-misses / l3-misses)"
        )
    traffic = misses * line_bytes
    intensity = flops / traffic if traffic > 0 else float("inf")
    return RooflinePoint(
        operational_intensity=intensity, flops_per_sec=flops / interval
    )


def select_processor(
    point: RooflinePoint, candidates: list[MachineRoofline]
) -> tuple[MachineRoofline, dict[str, float]]:
    """Pick the candidate with the highest attainable throughput.

    Returns the winner and the attainable-FLOPs table for all candidates.

    Raises:
        ReproError: empty candidate list.
    """
    if not candidates:
        raise ReproError("no candidate machines")
    table = {
        m.name: m.attainable(point.operational_intensity) for m in candidates
    }
    winner = max(candidates, key=lambda m: table[m.name])
    return winner, table
