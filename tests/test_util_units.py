"""Units formatting/parsing."""

import math

import pytest

from repro.errors import ConfigError
from repro.util.units import (
    format_count,
    format_millions,
    format_percent,
    format_rate,
    format_seconds,
    format_size,
    parse_size,
)


class TestParseSize:
    def test_plain_int_passthrough(self):
        assert parse_size(4096) == 4096

    def test_kb(self):
        assert parse_size("32KB") == 32 * 1024

    def test_mb(self):
        assert parse_size("8MB") == 8 * 1024**2

    def test_bare_number_string(self):
        assert parse_size("256") == 256

    def test_lowercase_and_spaces(self):
        assert parse_size(" 12 mb ") == 12 * 1024**2

    def test_gb_and_tb(self):
        assert parse_size("2GB") == 2 * 1024**3
        assert parse_size("1TB") == 1024**4

    def test_kib_alias(self):
        assert parse_size("3KiB") == 3 * 1024

    def test_negative_int_rejected(self):
        with pytest.raises(ConfigError):
            parse_size(-1)

    def test_garbage_rejected(self):
        with pytest.raises(ConfigError):
            parse_size("lots")

    def test_unknown_suffix_rejected(self):
        with pytest.raises(ConfigError):
            parse_size("5XB")


class TestFormatSize:
    def test_exact_kb(self):
        assert format_size(32 * 1024) == "32KB"

    def test_l3_label_like_hwloc(self):
        assert format_size(8 * 1024**2) == "8192KB"

    def test_small_bytes(self):
        assert format_size(100) == "100B"


class TestFormatMillions:
    def test_fig1_scale(self):
        # Fig. 1 shows Mcycle 26456 — i.e. 2.6456e10 cycles.
        assert format_millions(2.6456e10) == "26456"

    def test_small_value_keeps_decimal(self):
        assert format_millions(1.5e6) == "1.5"

    def test_width_pads(self):
        assert format_millions(1.5e6, width=8) == "     1.5"


class TestFormatCount:
    def test_giga(self):
        assert format_count(2.5e9) == "2.5G"

    def test_mega(self):
        assert format_count(3.2e6) == "3.2M"

    def test_kilo(self):
        assert format_count(9_100) == "9.1K"

    def test_unit(self):
        assert format_count(42) == "42"


class TestFormatRate:
    def test_ipc_two_decimals(self):
        assert format_rate(1.9671) == "1.97"

    def test_nan_dash(self):
        assert format_rate(math.nan) == "-"

    def test_large_no_decimals(self):
        assert format_rate(250.0) == "250"


class TestFormatPercent:
    def test_typical(self):
        assert format_percent(99.94) == "99.9"

    def test_nan(self):
        assert format_percent(math.nan).strip() == "-"


class TestFormatSeconds:
    def test_hms(self):
        assert format_seconds(3725) == "1:02:05"

    def test_zero(self):
        assert format_seconds(0) == "0:00:00"
