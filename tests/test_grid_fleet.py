"""Fleet engine equivalence, host resurrection, and SGE-style preemption.

The two-level supervision tree (fleet supervisor over per-host
supervised engines) must be a pure failure-domain knob: for any fleet,
seed and churn script, ``Grid(hosts=N)`` is bitwise identical to the
serial engine — with chaos on, with hosts dying and being resurrected
from the fleet journal, and with the restart budget exhausted (the host
stays degraded-but-correct). Preemption is part of the dispatch state
machine, so it too must decide identically on every engine.
"""

import random

import pytest

from repro.core.cli import main
from repro.errors import SimulationError
from repro.sim.fleet import FleetEngine, FleetSupervision
from repro.sim.grid import Grid, NodeSpec, QueueSpec
from repro.sim.supervisor import GridFaultPlan, Supervision
from repro.sim.workloads import datacenter

GiB = 1024**3
FAST = Supervision(deadline=0.5, backoff_base=0.0)


def _job(seconds=60.0, ipc=1.2, name="job"):
    return datacenter.compute_job(name, ipc, duration_hint=seconds)


def _endless(name="svc"):
    return datacenter.compute_job(name, 1.2)


def _fleet(n=4):
    return [
        NodeSpec(name=f"a{i}", sockets=1, cores_per_socket=1,
                 memory_bytes=4 * GiB)
        for i in range(n)
    ]


def _queues():
    return [
        QueueSpec("quick", max_wallclock=6.0, memory_limit=2 * GiB,
                  priority=2),
        QueueSpec("slow", max_wallclock=float("inf"), memory_limit=4 * GiB,
                  priority=1),
    ]


def _churn(grid: Grid, seed: int) -> None:
    rng = random.Random(seed)
    for segment in range(2):
        for i in range(rng.randint(3, 5)):
            name = f"s{segment}j{i}"
            if rng.random() < 0.3:
                grid.submit(name, _endless(name), queue="quick",
                            memory_bytes=GiB)
            else:
                grid.submit(
                    name,
                    _job(seconds=rng.choice([2.0, 5.0, 9.0]), name=name),
                    queue=rng.choice(["quick", "slow"]),
                    memory_bytes=GiB,
                )
        grid.run_for(rng.choice([3.0, 4.5]))


def _digest(seed, engine, workers=1, **kw):
    with Grid(_fleet(), _queues(), tick=1.0, seed=seed, workers=workers,
              engine=engine, **kw) as grid:
        _churn(grid, seed)
        return grid.conformance_digest()


class TestFleetEquivalence:
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_fleet_matches_serial_bitwise(self, seed):
        reference = _digest(seed, "serial")
        assert _digest(seed, "fleet", workers=4, hosts=2) == reference

    @pytest.mark.parametrize("transport", ["inproc", "socket"])
    def test_fleet_matches_serial_on_every_fabric(self, transport):
        reference = _digest(7, "serial")
        assert _digest(
            7, "fleet", workers=4, hosts=2, transport=transport
        ) == reference

    def test_odd_host_splits_are_still_exact(self):
        reference = _digest(5, "serial")
        for hosts, workers in [(1, 2), (3, 3), (4, 4)]:
            assert _digest(
                5, "fleet", workers=workers, hosts=hosts
            ) == reference, f"hosts={hosts} diverged"

    def test_hosts_implies_the_fleet_engine(self):
        with Grid(_fleet(), _queues(), workers=4, hosts=2) as grid:
            assert grid.engine.name == "fleet"
            assert grid.engine.hosts == 2
        with Grid(_fleet(), _queues(), workers=2) as grid:
            assert grid.engine.name != "fleet"

    def test_hosts_validation(self):
        with pytest.raises(SimulationError, match="hosts must be >= 1"):
            Grid(_fleet(), _queues(), workers=2, hosts=0)
        with pytest.raises(SimulationError, match="require the fleet engine"):
            Grid(_fleet(), _queues(), workers=2, engine="sharded", hosts=2)

    def test_fleet_stats_aggregate_host_counters(self):
        with Grid(_fleet(), _queues(), tick=1.0, seed=2, workers=4,
                  hosts=2) as grid:
            _churn(grid, 2)
            stats = grid.stats
            assert stats["host_restarts"] == 0
            assert stats["restarts"] == 0
            assert stats["bytes_sent"] > 0
            assert grid.engine.live_workers() == 4


class TestHostResurrection:
    def test_worker_chaos_inside_a_host_stays_exact(self):
        reference = _digest(7, "serial")
        chaos = GridFaultPlan.from_seed(1, intensity=2.0)
        with Grid(_fleet(), _queues(), tick=1.0, seed=7, workers=4,
                  hosts=2, grid_chaos=chaos, supervision=FAST) as grid:
            _churn(grid, 7)
            assert grid.conformance_digest() == reference

    def test_degraded_host_is_restarted_from_the_fleet_journal(self):
        # Worker restart budget 0: the first worker fault degrades its
        # host engine, which the fleet tier then tears down and
        # resurrects by journal replay — and the digest still matches.
        reference = _digest(7, "serial")
        chaos = GridFaultPlan.from_seed(1, intensity=8.0)
        tight = Supervision(deadline=0.5, backoff_base=0.0,
                            restart_budget=0)
        with Grid(_fleet(), _queues(), tick=1.0, seed=7, workers=4,
                  hosts=2, grid_chaos=chaos, supervision=tight) as grid:
            _churn(grid, 7)
            events = grid.supervisor_events
            kinds = [e["event"] for e in events]
            assert "host-restart" in kinds
            restart = events[kinds.index("host-restart")]
            assert {"host", "epoch", "replayed", "restarts"} <= set(restart)
            assert grid.stats["host_restarts"] >= 1
            assert grid.conformance_digest() == reference

    def test_exhausted_host_budget_degrades_but_stays_correct(self):
        reference = _digest(7, "serial")
        chaos = GridFaultPlan.from_seed(1, intensity=8.0)
        tight = Supervision(deadline=0.5, backoff_base=0.0,
                            restart_budget=0)
        engine_kw = dict(
            hosts=2, transport="inproc", chaos=chaos, config=tight,
            fleet=FleetSupervision(host_restart_budget=0),
        )
        grid = Grid(_fleet(), _queues(), tick=1.0, seed=7, workers=4,
                    hosts=2)
        grid.engine.close()
        grid.engine = FleetEngine(_fleet(), 1.0, 7, 4, **engine_kw)
        try:
            _churn(grid, 7)
            assert grid.engine.degraded
            kinds = [e["event"] for e in grid.supervisor_events]
            assert "fleet-degrade" in kinds
            # Degraded-but-correct: adopted shards answer serially.
            assert grid.conformance_digest() == reference
        finally:
            grid.close()

    def test_fleet_supervision_validation(self):
        with pytest.raises(SimulationError, match="host_restart_budget"):
            FleetSupervision(host_restart_budget=-1)


class TestPreemption:
    """SGE-style eviction: a preempting queue's stronger job may evict a
    strictly weaker running job; the victim requeues and restarts."""

    def _queues(self):
        return [
            QueueSpec("fast", max_wallclock=float("inf"),
                      memory_limit=4 * GiB, priority=2, preempting=True),
            QueueSpec("batch", max_wallclock=float("inf"),
                      memory_limit=4 * GiB, priority=1),
        ]

    def _script(self, grid):
        # A 1-core node still has 2 PUs (SMT): fill both slots so the
        # high-priority arrival finds no free slot and must evict.
        for name in ("lo0", "lo1", "lo2", "lo3"):
            grid.submit(name, _endless(name), queue="batch",
                        memory_bytes=GiB)
        grid.run_for(2.0)
        grid.submit("hi", _job(4.0, name="hi"), queue="fast",
                    memory_bytes=GiB, priority=2)
        grid.run_for(6.0)
        grid.run_for(4.0)

    def _run(self, engine, workers=1, **kw):
        grid = Grid(_fleet(2), self._queues(), tick=1.0, seed=9,
                    workers=workers, engine=engine, **kw)
        try:
            self._script(grid)
            jobs = {j.name: j for j in grid.jobs()}
            return grid.conformance_digest(), jobs, dict(grid.stats)
        finally:
            grid.close()

    def test_high_priority_evicts_and_victim_restarts(self):
        digest, jobs, stats = self._run("serial")
        assert stats["preemptions"] >= 1
        assert jobs["hi"].state in ("running", "done")
        assert jobs["hi"].started_at is not None
        victims = [j for j in jobs.values() if j.preemptions > 0]
        assert victims
        for victim in victims:
            # Eviction is not a kill: the job requeued and either
            # restarted (fresh started_at, new node allowed) or is
            # pending again — never marked killed by the stale timer.
            assert not victim.killed
            assert victim.state in ("running", "pending")

    def test_preemption_decides_identically_on_every_engine(self):
        reference, _, ref_stats = self._run("serial")
        for engine, workers, kw in [
            ("legacy", 1, {}),
            ("sharded", 2, {}),
            ("supervised", 2, {}),
            ("fleet", 4, {"hosts": 2}),
            ("sharded", 2, {"transport": "socket"}),
        ]:
            digest, _, stats = self._run(engine, workers, **kw)
            assert digest == reference, f"{engine} {kw} diverged"
            assert stats["preemptions"] == ref_stats["preemptions"]

    def test_non_preempting_queue_waits_instead(self):
        queues = [
            QueueSpec("fast", max_wallclock=float("inf"),
                      memory_limit=4 * GiB, priority=2),
            QueueSpec("batch", max_wallclock=float("inf"),
                      memory_limit=4 * GiB, priority=1),
        ]
        grid = Grid(_fleet(2), queues, tick=1.0, seed=9)
        try:
            for name in ("lo0", "lo1", "lo2", "lo3"):
                grid.submit(name, _endless(name), queue="batch",
                            memory_bytes=GiB)
            grid.run_for(2.0)
            grid.submit("hi", _job(4.0, name="hi"), queue="fast",
                        memory_bytes=GiB, priority=2)
            grid.run_for(4.0)
            jobs = {j.name: j for j in grid.jobs()}
            assert jobs["hi"].state == "pending"
            assert grid.stats["preemptions"] == 0
        finally:
            grid.close()

    def test_equal_priority_never_preempts(self):
        grid = Grid(_fleet(2), self._queues(), tick=1.0, seed=9)
        try:
            for name in ("lo0", "lo1", "lo2", "lo3"):
                grid.submit(name, _endless(name), queue="fast",
                            memory_bytes=GiB)
            grid.run_for(2.0)
            # Same queue, same job priority: strictly-weaker rule says no.
            grid.submit("peer", _endless("peer"), queue="fast",
                        memory_bytes=GiB)
            grid.run_for(4.0)
            assert grid.stats["preemptions"] == 0
            assert {j.name: j.state for j in grid.jobs()}["peer"] == "pending"
        finally:
            grid.close()

    def test_job_priority_orders_dispatch_within_a_queue(self):
        grid = Grid(_fleet(1), self._queues(), tick=1.0, seed=9)
        try:
            # One endless job pins a slot; one finite job frees the other
            # slot mid-run, so exactly one slot opens at a time and the
            # dispatch order between the two waiters is observable.
            grid.submit("lo0", _endless("lo0"), queue="batch",
                        memory_bytes=GiB)
            grid.submit("lo1", _job(3.0, name="lo1"), queue="batch",
                        memory_bytes=GiB)
            grid.run_for(1.0)
            grid.submit("later-but-urgent", _job(3.0, name="later-but-urgent"),
                        queue="batch", memory_bytes=GiB, priority=5)
            grid.submit("first-but-meek", _job(3.0, name="first-but-meek"),
                        queue="batch", memory_bytes=GiB, priority=0)
            grid.run_for(20.0)
            jobs = {j.name: j for j in grid.jobs()}
            assert (jobs["later-but-urgent"].started_at
                    < jobs["first-but-meek"].started_at)
        finally:
            grid.close()

    def test_dedicated_nodes_are_not_preemption_targets(self):
        specs = _fleet(1) + [
            NodeSpec(name="pin", sockets=1, cores_per_socket=1,
                     dedicated_queue="pin", memory_bytes=4 * GiB),
        ]
        queues = self._queues() + [
            QueueSpec("pin", max_wallclock=float("inf"),
                      memory_limit=4 * GiB, dedicated_only=True),
        ]
        grid = Grid(specs, queues, tick=1.0, seed=9)
        try:
            grid.submit("pinned", _endless("pinned"), queue="pin",
                        memory_bytes=GiB)
            for name in ("lo0", "lo1"):
                grid.submit(name, _endless(name), queue="batch",
                            memory_bytes=GiB)
            grid.run_for(2.0)
            grid.submit("hi", _job(4.0, name="hi"), queue="fast",
                        memory_bytes=GiB, priority=2)
            grid.run_for(4.0)
            jobs = {j.name: j for j in grid.jobs()}
            # The pinned job keeps its dedicated node; only the shared
            # node's batch jobs were candidates.
            assert jobs["pinned"].preemptions == 0
            assert jobs["pinned"].state == "running"
        finally:
            grid.close()


class TestFleetCli:
    def test_transport_output_is_byte_identical(self, capsys):
        outs = []
        for t in ("inproc", "fork", "socket"):
            args = ["--sim", "--grid-workers", "2", "--grid-transport", t,
                    "-d", "2", "-n", "6"]
            assert main(args) == 0
            outs.append(capsys.readouterr().out)
        assert outs[0] == outs[1] == outs[2]

    def test_hosts_flag_runs_the_fleet_engine(self, capsys):
        args = ["--sim", "--grid-workers", "4", "--grid-hosts", "2",
                "-d", "2", "-n", "6"]
        assert main(args) == 0
        fleet_out = capsys.readouterr().out
        assert "engine=fleet workers=4" in fleet_out.splitlines()[0]
        assert main(["--sim", "--grid-workers", "1", "-d", "2", "-n", "6"]) \
            == 0
        serial_out = capsys.readouterr().out
        # Same grid behaviour, different engine banner.
        assert serial_out.splitlines()[1:] == fleet_out.splitlines()[1:]

    def test_bad_transport_value_is_exit_2(self, capsys):
        assert main(["--sim", "--grid-workers", "2",
                     "--grid-transport", "bogus", "-n", "1"]) == 2
        assert "--grid-transport must be one of" in capsys.readouterr().err

    def test_transport_requires_the_grid(self, capsys):
        assert main(["--grid-transport", "fork", "-n", "1"]) == 2
        assert "requires --sim and --grid-workers" in capsys.readouterr().err

    def test_hosts_requires_the_grid(self, capsys):
        assert main(["--grid-hosts", "2", "-n", "1"]) == 2
        assert "requires --sim and --grid-workers" in capsys.readouterr().err
