"""Columnar (structure-of-arrays) storage and tick kernel for the machine.

Two pieces live here:

* :class:`CounterColumns` — the authoritative storage for every open
  kernel counter's hot state (accumulated value, ``time_enabled``,
  ``time_running``, enabled bit) as preallocated numpy columns. A
  :class:`~repro.sim.counters.KernelCounter` is a thin handle into one
  slot; ``read()`` paths serve straight from the accumulator columns.
* :class:`ColumnKernel` — the batched tick engine behind
  :meth:`SimMachine.run_ticks`. It mirrors the per-thread scheduling
  state (tid, vruntime, runnable, duty, idle-sync arrears) into parallel
  arrays so one fused pass per tick replaces the scalar path's sorted()
  call, runnable list comprehension, and per-counter dict walks.

Bitwise-equivalence contract: the kernel must reproduce the scalar
``_step`` path exactly, float by float and RNG draw by RNG draw. The
vector code therefore only uses elementwise float64 operations (IEEE-754
correctly rounded, hence identical to the scalar Python arithmetic it
replaces), never reductions (which reassociate), and keeps every RNG
draw — per-process CPI noise, duty-cycle gates, sampling loss — on the
scalar code path in the scalar order. Any task shape the vector path
cannot reproduce exactly (sampling counters, multiplexed or partially
disabled counter sets) falls back to the scalar routines on the same
objects, so correctness never depends on the fast path's coverage.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import SimulationError
from repro.sim.events import EVENT_CODE, N_EVENT_CODES, Event
from repro.sim.process import TaskState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (machine -> columns)
    from repro.sim.machine import SimMachine
    from repro.sim.process import SimThread


class CounterColumns:
    """Structure-of-arrays storage for kernel counter hot state.

    Slots are allocated/freed as counters open and close; the arrays grow
    geometrically and never shrink. ``version`` increments on any change
    to the slot population or enabled bits, invalidating the per-tid slot
    caches kept by :class:`~repro.sim.counters.CounterTable`.
    """

    __slots__ = (
        "capacity",
        "value",
        "time_enabled",
        "time_running",
        "enabled",
        "in_use",
        "version",
        "_free",
    )

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.value = np.zeros(capacity)
        self.time_enabled = np.zeros(capacity)
        self.time_running = np.zeros(capacity)
        self.enabled = np.zeros(capacity, dtype=bool)
        self.in_use = np.zeros(capacity, dtype=bool)
        self.version = 0
        # Stack of free slots; popping yields ascending slot numbers.
        self._free = list(range(capacity - 1, -1, -1))

    def _grow(self) -> None:
        old = self.capacity
        new = old * 2
        for name in ("value", "time_enabled", "time_running"):
            arr = np.zeros(new)
            arr[:old] = getattr(self, name)
            setattr(self, name, arr)
        for name in ("enabled", "in_use"):
            arr = np.zeros(new, dtype=bool)
            arr[:old] = getattr(self, name)
            setattr(self, name, arr)
        self._free.extend(range(new - 1, old - 1, -1))
        self.capacity = new

    def alloc(self) -> int:
        """Claim a zeroed slot (enabled, as freshly opened counters are)."""
        if not self._free:
            self._grow()
        slot = self._free.pop()
        self.value[slot] = 0.0
        self.time_enabled[slot] = 0.0
        self.time_running[slot] = 0.0
        self.enabled[slot] = True
        self.in_use[slot] = True
        self.version += 1
        return slot

    def free(self, slot: int) -> None:
        """Release a slot for reuse."""
        if not self.in_use[slot]:
            raise SimulationError(f"slot {slot} is not allocated")
        self.in_use[slot] = False
        self.enabled[slot] = False
        self._free.append(slot)
        self.version += 1

    def live_slots(self) -> int:
        """Number of allocated slots (for stats and leak tests)."""
        return int(self.in_use.sum())


#: Dense code of ``Event.CYCLES`` — the one delta the scalar path computes
#: with the per-tick noised CPI rather than the published per-instruction
#: rate, so the kernel overwrites this vector lane after accumulating.
_CYCLES_CODE = EVENT_CODE[Event.CYCLES]


class ColumnKernel:
    """Batched tick engine: one fused pass advances every scheduled task.

    Mirrors per-thread scheduling state into parallel arrays (slot order =
    ``machine._threads`` insertion order, which is also the scalar path's
    iteration order). One instance persists per machine so the per-event
    scratch vectors are reused across ticks; the arrays themselves are
    re-ingested at the start of every batch and after each timer boundary
    (the only points where the thread population can change).

    Equivalence with the scalar path, piece by piece:

    * runnable scan — the scalar list comprehension over
      ``_threads.values()`` becomes a boolean column maintained at the
      points where state changes (ingest, slice, reap); duty-cycle RNG
      draws stay scalar, in slot (= insertion) order, gated on the same
      runnable test.
    * dispatch — :meth:`Scheduler.dispatch_columns` ranks candidates with
      one ``np.lexsort`` over the (vruntime, tid) columns; stable sort over
      unique tids reproduces ``sorted(key=(vruntime, tid))`` exactly, and
      placement runs the shared scalar walk.
    * idle arrears — per-task "ticks already accounted" lives in an int64
      column; folds happen via :meth:`CounterTable.advance_idle` exactly
      where the scalar ``sync_tid``/``sync_all`` would fold them.
    * slice accrual — for tasks whose counter set is *simple* (all enabled,
      none sampling, fits the PMU) the per-segment event deltas accumulate
      in a dense float64 vector via elementwise ops (bitwise equal to the
      scalar dict walk) and land on the counter columns with one fancy-
      indexed add; anything else falls back to ``SimMachine._run_slice``
      on the same objects.
    """

    __slots__ = (
        "machine",
        "threads",
        "tids",
        "vruntime",
        "runnable",
        "alive",
        "synced",
        "slot_of",
        "duty_slots",
        "size",
        "fast_slices",
        "fallback_slices",
        "_tid_list",
        "_dvec",
        "_seg",
    )

    def __init__(self, machine: SimMachine) -> None:
        self.machine = machine
        self.threads: list[SimThread] = []
        self._tid_list: list[int] = []
        self.tids = np.empty(0, dtype=np.int64)
        self.vruntime = np.empty(0)
        self.runnable = np.empty(0, dtype=bool)
        self.alive = np.empty(0, dtype=bool)
        self.synced = np.empty(0, dtype=np.int64)
        self.slot_of: dict[int, int] = {}
        self.duty_slots: list[int] = []
        self.size = 0
        self.fast_slices = 0
        self.fallback_slices = 0
        self._dvec = np.zeros(N_EVENT_CODES)
        self._seg = np.empty(N_EVENT_CODES)

    # -- column maintenance -------------------------------------------------
    def _ingest(self, default_synced: int) -> None:
        """(Re)build the columns from the machine's thread population.

        ``default_synced`` is the arrears baseline for threads not seen
        before: 0 at batch start, the current tick index for threads spawned
        by a timer callback (matching the scalar path's
        ``synced.setdefault(tid, t)`` after firing).
        """
        m = self.machine
        carried: dict[int, int] = {}
        if self.size:
            carried = dict(zip(self._tid_list, self.synced.tolist()))
        threads = list(m._threads.values())
        n = len(threads)
        tid_list = [t.tid for t in threads]
        self.threads = threads
        self._tid_list = tid_list
        self.tids = np.array(tid_list, dtype=np.int64)
        self.vruntime = np.array([t.vruntime for t in threads])
        self.runnable = np.fromiter(
            (t.state is TaskState.RUNNABLE for t in threads), dtype=bool, count=n
        )
        self.alive = np.fromiter(
            (t.state is not TaskState.DEAD for t in threads), dtype=bool, count=n
        )
        self.synced = np.fromiter(
            (carried.get(tid, default_synced) for tid in tid_list),
            dtype=np.int64,
            count=n,
        )
        self.slot_of = {tid: i for i, tid in enumerate(tid_list)}
        self.duty_slots = [
            i for i, t in enumerate(threads) if t.duty_rng is not None
        ]
        self.size = n

    def _sync_all(self, upto: int) -> None:
        """Fold idle-clock arrears of every live task up to tick ``upto``."""
        synced = self.synced
        behind = np.flatnonzero(self.alive & (synced < upto))
        if behind.size:
            counters = self.machine.counters
            dt = self.machine.tick
            tid_list = self._tid_list
            for slot in behind:
                counters.advance_idle(
                    tid_list[slot], dt, int(upto - synced[slot])
                )
            synced[behind] = upto

    # -- the batched tick loop ----------------------------------------------
    def run(self, n: int) -> None:
        """Advance ``n`` whole ticks (the body of ``SimMachine.run_ticks``)."""
        m = self.machine
        dt = m.tick
        counters = m.counters
        scheduler = m.scheduler
        timers = m._timers
        # Fresh batch: arrears bookkeeping restarts at zero, like the
        # scalar path's empty ``synced`` dict.
        self.size = 0
        self._ingest(0)
        for t in range(n):
            if timers and timers[0][0] <= m.now + 1e-12:
                # Callbacks may read counters, kill tasks or spawn new
                # ones: bring every live task's clocks current first.
                self._sync_all(t)
                m._fire_timers()
                self._ingest(t)
            if self.duty_slots:
                run_mask = self.runnable.copy()
                threads = self.threads
                for slot in self.duty_slots:
                    if run_mask[slot]:
                        thread = threads[slot]
                        if not (
                            thread.duty_rng.random()
                            < thread.process.duty_cycle
                        ):
                            run_mask[slot] = False
            else:
                run_mask = self.runnable
            candidates = np.flatnonzero(run_mask)
            dispatch = scheduler.dispatch_columns(
                self.threads, self.tids, self.vruntime, candidates, dt
            )
            assignment = dispatch.assignment
            if assignment:
                located = {
                    thread.tid: thread.current_phase()
                    for thread in assignment.values()
                }
                rates = m._cached_contention(assignment, located)
                slot_of = self.slot_of
                synced = self.synced
                vruntime = self.vruntime
                for pu_id, thread in assignment.items():
                    tid = thread.tid
                    slot = slot_of[tid]
                    vruntime[slot] = thread.vruntime
                    owed = t - synced[slot]
                    if owed > 0:
                        counters.advance_idle(tid, dt, int(owed))
                    self._slice(thread, slot, pu_id, rates.get(tid), dt)
                    synced[slot] = t + 1
            m.now += dt
            if timers and timers[0][0] <= m.now + 1e-12:
                self._sync_all(t + 1)
                m._fire_timers()
                self._ingest(t + 1)
        self._sync_all(n)

    def _slice(
        self,
        thread: SimThread,
        slot: int,
        pu_id: int,
        contended,
        dt: float,
    ) -> None:
        """Retire one scheduled slice (vectorised accrual when eligible).

        Replicates ``SimMachine._run_slice`` float-for-float: same segment
        loop, same RNG draw, same phase-boundary rules. Only the event
        accumulation differs mechanically — a dense vector instead of a
        dict — and only for *simple* counter sets; everything else takes
        the scalar routine on the same objects.
        """
        m = self.machine
        located = thread.current_phase()
        if located is None:
            m._reap(thread, dt)
            self.runnable[slot] = False
            self.alive[slot] = False
            return
        tid = thread.tid
        cslots, codes, simple = m.counters.tid_slots(tid)
        if not simple:
            self.fallback_slices += 1
            m._run_slice(thread, pu_id, contended, dt, rate_cache=m._rate_cache)
            state = thread.state
            self.runnable[slot] = state is TaskState.RUNNABLE
            self.alive[slot] = state is not TaskState.DEAD
            return
        self.fast_slices += 1
        arch = m.arch
        rate_cache = m._rate_cache
        cycle_budget = arch.freq_hz * dt
        consumed_cycles = 0.0
        dvec = self._dvec
        dvec.fill(0.0)
        seg = self._seg
        cycles_total = 0.0
        noise = (
            math.exp(thread.process.rng.normal(0.0, located[0].noise))
            if located[0].noise > 0
            else 1.0
        )
        base = contended
        while cycle_budget > 1e-6 and located is not None:
            phase, remaining = located
            if base is not None and base.miss_profile.accesses:
                rates = base
            else:
                caps = [(s, float(s.size)) for s in arch.cache_levels]
                rates = rate_cache.rates(arch, phase, caps)
            # Jitter only the execution component; penalty cycles are
            # physical latencies and stay put.
            cpi = rates.cpi_exec * noise + (rates.cpi - rates.cpi_exec)
            instructions = min(cycle_budget / cpi, remaining)
            cycles = instructions * cpi
            np.multiply(rates.events_vector(), instructions, out=seg)
            dvec += seg
            cycles_total += cycles
            thread.retired += instructions
            thread.cycles += cycles
            consumed_cycles += cycles
            cycle_budget -= cycles
            located = thread.current_phase()
            if located is None:
                break
            if remaining <= instructions + 1e-9:
                base = None
        scheduled_dt = dt * min(1.0, consumed_cycles / (arch.freq_hz * dt))
        thread.cpu_time += scheduled_dt
        done = located is None
        if cslots.size:
            cols = m.counters.columns
            # A thread that finishes mid-tick stops its enabled clock at
            # death, exactly like the scalar accrue path.
            cols.time_enabled[cslots] += scheduled_dt if done else dt
            if scheduled_dt > 0:
                cols.time_running[cslots] += scheduled_dt
                # The scalar path accumulates CYCLES from the noised CPI,
                # not the published rate; swap the lane before landing.
                dvec[_CYCLES_CODE] = cycles_total
                cols.value[cslots] += dvec[codes]
        if contended is not None:
            m._last_rates[tid] = contended
        if done:
            m._reap(thread, dt)
            self.runnable[slot] = False
            self.alive[slot] = False
