"""§2.4 validation: counter counts versus instrumented ground truth.

The paper validates tiptop by comparing total retired-instruction counts
against Pin's ``inscount2`` over all of SPEC 2006, landing within 0.06 % on
average. :func:`compare_counts` reproduces that comparison for any set of
(counter, reference) pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError


@dataclass(frozen=True)
class ValidationRow:
    """One benchmark's counter-vs-reference comparison."""

    name: str
    counter_count: float
    reference_count: float

    @property
    def relative_error(self) -> float:
        """|counter - reference| / reference."""
        if self.reference_count <= 0:
            raise ReproError(f"{self.name}: reference count must be positive")
        return abs(self.counter_count - self.reference_count) / self.reference_count


@dataclass(frozen=True)
class ValidationReport:
    """All rows plus the paper's headline aggregate."""

    rows: tuple[ValidationRow, ...]

    @property
    def mean_relative_error(self) -> float:
        """Average relative error (the paper reports 0.06 % = 6e-4)."""
        if not self.rows:
            raise ReproError("empty validation report")
        return float(np.mean([r.relative_error for r in self.rows]))

    @property
    def max_relative_error(self) -> float:
        """Worst row."""
        if not self.rows:
            raise ReproError("empty validation report")
        return float(np.max([r.relative_error for r in self.rows]))

    def to_table(self) -> str:
        """Printable per-benchmark table."""
        lines = [f"{'benchmark':16s} {'counter':>16s} {'reference':>16s} {'err %':>8s}"]
        for r in self.rows:
            lines.append(
                f"{r.name:16s} {r.counter_count:16.4e} "
                f"{r.reference_count:16.4e} {100 * r.relative_error:8.4f}"
            )
        lines.append(
            f"{'mean':16s} {'':16s} {'':16s} {100 * self.mean_relative_error:8.4f}"
        )
        return "\n".join(lines)


def compare_counts(pairs: dict[str, tuple[float, float]]) -> ValidationReport:
    """Build a report from ``{name: (counter_count, reference_count)}``."""
    rows = tuple(
        ValidationRow(name, counter, reference)
        for name, (counter, reference) in sorted(pairs.items())
    )
    return ValidationReport(rows)
