"""Frozen per-phase metric signatures for every library workload.

A *signature* is the analytically exact solo behaviour of a workload on
the reference machine — per-phase IPC, CPI decomposition, cache miss
ratios and branch behaviour — rounded to 12 significant digits and
committed as a golden file. The models are pure functions of their
parameters, so the signature is bitwise reproducible on any platform;
any calibration drift (a retuned penalty, an edited hit ratio, a solver
change) breaks the comparison loudly instead of silently shifting every
figure built on top.

Regenerate after *deliberate* model changes with::

    python -m repro.experiments --regen-signatures

and review the golden diff like any other behaviour change.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.sim.arch import NEHALEM, ArchModel
from repro.sim.core import solo_rates
from repro.sim.events import Event
from repro.sim.workload import Phase, Workload

from repro.experiments import library

#: Significant digits the golden pins (documented in DESIGN.md).
DIGITS = 12

#: Golden file location relative to the repository root.
GOLDEN_RELPATH = Path("tests") / "data" / "workload_signatures.json"


def freeze(value: float) -> float:
    """Round to :data:`DIGITS` significant digits, exactly.

    ``float(f"{x:.12g}")`` is deterministic across platforms (both the
    formatting and the parse are correctly rounded), so two regenerations
    of the same model produce byte-identical JSON.
    """
    return float(f"{value:.{DIGITS}g}")


def _ratio(num: float, den: float) -> float:
    return num / den if den else 0.0


def phase_signature(arch: ArchModel, phase: Phase) -> dict:
    """The frozen observable vector of one phase, solo on ``arch``."""
    rates = solo_rates(arch, phase)
    ev = rates.events
    sig = {
        "name": phase.name,
        "instructions": freeze(phase.instructions),
        "ipc": freeze(rates.ipc),
        "cpi": freeze(rates.cpi),
        "cpi_exec": freeze(rates.cpi_exec),
        "cpi_memory": freeze(rates.cpi_memory),
        "cpi_branch": freeze(rates.cpi_branch),
        "cpi_assist": freeze(rates.cpi_assist),
        "l1_miss_ratio": freeze(
            _ratio(ev.get(Event.L1D_MISSES, 0.0), ev.get(Event.L1D_ACCESSES, 0.0))
        ),
        "l2_miss_ratio": freeze(
            _ratio(ev.get(Event.L2_MISSES, 0.0), ev.get(Event.L2_ACCESSES, 0.0))
        ),
        "l3_miss_ratio": freeze(
            _ratio(ev.get(Event.L3_MISSES, 0.0), ev.get(Event.L3_ACCESSES, 0.0))
        ),
        "llc_misses_per_instruction": freeze(ev.get(Event.CACHE_MISSES, 0.0)),
        "branch_fraction": freeze(ev.get(Event.BRANCH_INSTRUCTIONS, 0.0)),
        "mispredict_ratio": freeze(
            _ratio(
                ev.get(Event.BRANCH_MISSES, 0.0),
                ev.get(Event.BRANCH_INSTRUCTIONS, 0.0),
            )
        ),
        "assists_per_instruction": freeze(ev.get(Event.FP_ASSIST, 0.0)),
        "mem_latency_cpi": freeze(ev.get(Event.MEM_LATENCY_CYCLES, 0.0)),
    }
    return sig


def workload_signature(workload: Workload, arch: ArchModel = NEHALEM) -> dict:
    """The full signature of one workload: repeat count, total budget,
    and every phase's frozen vector."""
    return {
        "name": workload.name,
        "repeat": workload.repeat,
        "total_instructions": freeze(workload.total_instructions),
        "phases": [phase_signature(arch, p) for p in workload.phases],
    }


def library_signatures(arch: ArchModel = NEHALEM) -> dict[str, dict]:
    """Signatures of every library workload (SPEC both compilers,
    revolve, FP microbenchmarks, modern archetypes)."""
    return {
        name: workload_signature(library.resolve(name), arch)
        for name in library.signature_names()
    }


def golden_document(arch: ArchModel = NEHALEM) -> dict:
    """The full golden-file content for ``arch``."""
    return {
        "schema": 1,
        "arch": arch.name,
        "digits": DIGITS,
        "workloads": library_signatures(arch),
    }


def canonical_json(document: dict) -> str:
    """The byte-exact serialisation the golden file and tests compare."""
    return json.dumps(document, sort_keys=True, indent=2, allow_nan=False) + "\n"


def write_golden(path: Path | str, arch: ArchModel = NEHALEM) -> Path:
    """(Re)generate the golden signature file at ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(canonical_json(golden_document(arch)))
    return path


def load_golden(path: Path | str) -> dict:
    """Read a previously written golden document."""
    return json.loads(Path(path).read_text())
