"""Canned workload models calibrated against the paper's experiments.

* :mod:`repro.sim.workloads.microbench` — the Figure 4/5 floating-point
  micro-benchmark (Table 1).
* :mod:`repro.sim.workloads.revolve` — the biologists' R evolutionary
  algorithm of §3.1 (Figure 3).
* :mod:`repro.sim.workloads.spec` — SPEC CPU2006 phase models
  (Figures 6–9, 11).
* :mod:`repro.sim.workloads.datacenter` — data-center node populations
  (Figures 1 and 10).
* :mod:`repro.sim.workloads.modern` — post-2012 archetypes (JIT warmup/
  deopt, GC pause trains, NUMA remote misses, interpreter dispatch,
  io/syscall services).
* :mod:`repro.sim.workloads.synthetic` — seeded synthetic populations
  spanning all of the above for stress, endurance and conformance runs.
"""

from repro.sim.workloads import datacenter, microbench, modern, revolve, spec

__all__ = ["datacenter", "microbench", "modern", "revolve", "spec"]
