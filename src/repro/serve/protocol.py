"""The collector/client wire protocol: length-prefixed struct-packed frames.

One sampler, thousands of subscribers (ROADMAP item 1) needs a transport
whose cost is decoupled from the sampling cost: the daemon encodes each
:class:`~repro.core.frame.SnapshotFrame` once per distinct subscription and
fans the same bytes out to every client sharing it. The encoding is a
straight serialisation of the frame's columnar storage — numpy arrays go
to the wire as their raw little-endian buffers, so ``encode -> decode`` is
*bitwise* lossless (NaN payloads, -0.0, int64 extremes, unicode command
names and zero-row frames included). That exactness is what the
``served-stream`` conformance oracle leans on.

Message envelope (all scalar fields network byte order)::

    u32   payload length (not counting this prefix; <= MAX_MESSAGE)
    4s    magic  b"TTSV"
    u8    protocol version (VERSION)
    u8    message type (MSG_*)
    ...   type-specific body

``FRAME`` body::

    u64   sequence number
    u8    flags (bit 0: body is zlib-compressed)
    u32   crc32 of the (possibly compressed) column block that follows
    ...   column block

Column block (scalars network order, array buffers little-endian)::

    f64 time | f64 interval | u32 nrows
    six fixed arrays, each a dtype tag byte + nrows raw values:
        pids i64 | tids i64 | uids i64 | cpu_pct f64 | cpu_time f64
        | processors i64
    two intrinsic string columns (users, comms): tag byte + nrows
        (u32 length + utf-8) items
    u16 count + named columns for deltas, then metrics (name = u16
        length + utf-8, then tag byte + raw values)
    u16 count + named string columns for labels
    u16 count + (header, kind) string pairs for the screen layout

Control messages (``HELLO``/``SUBSCRIBE``/``BYE``) carry a utf-8 JSON
object — they are rare and tiny, so self-describing beats compact. Every
decode failure raises a typed :class:`~repro.errors.WireError` subclass;
the cursor is bounds-checked so no input, however garbled, can make the
decoder over-read or hang.
"""

from __future__ import annotations

import hashlib
import json
import struct
import zlib

import numpy as np

from repro.core.frame import SnapshotFrame
from repro.errors import (
    WireCorruptError,
    WireOversizeError,
    WireTruncatedError,
    WireVersionError,
)

MAGIC = b"TTSV"
VERSION = 1

MSG_HELLO = 1
MSG_SUBSCRIBE = 2
MSG_FRAME = 3
MSG_BYE = 4
_MSG_TYPES = frozenset({MSG_HELLO, MSG_SUBSCRIBE, MSG_FRAME, MSG_BYE})

#: Message types 16..31 are reserved for the grid shard-transport wire
#: (:mod:`repro.sim.shardwire`), which shares this envelope — same magic,
#: version, length prefix, ``MessageReader`` and error taxonomy — so one
#: reassembler implementation guards both links against hostile input.
SHARD_MSG_BASE = 16

#: Ceiling on one message's payload. A length prefix above this raises
#: :class:`WireOversizeError` before any buffering happens.
MAX_MESSAGE = 64 * 1024 * 1024

#: Column blocks larger than this are zlib-compressed on the wire
#: (wide frames: many tasks x many columns compress well; tiny frames
#: are cheaper uncompressed).
COMPRESS_THRESHOLD = 4096

DTYPE_I64 = 1
DTYPE_F64 = 2
DTYPE_STR = 3

FLAG_COMPRESSED = 0x01

_PREFIX = struct.Struct("!I")
_HEAD = struct.Struct("!4sBB")
_FRAME_HEAD = struct.Struct("!QBI")
_BLOCK_HEAD = struct.Struct("!ddI")

#: (tag, numpy dtype) of the six fixed identity arrays, in wire order.
_FIXED_TAGS = (
    ("pids", DTYPE_I64),
    ("tids", DTYPE_I64),
    ("uids", DTYPE_I64),
    ("cpu_pct", DTYPE_F64),
    ("cpu_time", DTYPE_F64),
    ("processors", DTYPE_I64),
)


class _Reader:
    """Bounds-checked cursor over one payload; can never over-read."""

    __slots__ = ("buf", "pos")

    def __init__(self, buf: bytes | memoryview) -> None:
        self.buf = memoryview(buf)
        self.pos = 0

    def take(self, n: int) -> memoryview:
        if n < 0 or self.pos + n > len(self.buf):
            raise WireTruncatedError(
                f"need {n} bytes at offset {self.pos}, payload has "
                f"{len(self.buf) - self.pos} left"
            )
        view = self.buf[self.pos : self.pos + n]
        self.pos += n
        return view

    def unpack(self, fmt: struct.Struct) -> tuple:
        return fmt.unpack(self.take(fmt.size))

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return struct.unpack("!H", self.take(2))[0]

    def u32(self) -> int:
        return struct.unpack("!I", self.take(4))[0]

    def rest(self) -> memoryview:
        view = self.buf[self.pos :]
        self.pos = len(self.buf)
        return view

    def done(self) -> None:
        if self.pos != len(self.buf):
            raise WireCorruptError(
                f"{len(self.buf) - self.pos} trailing bytes after message"
            )


# -- low-level helpers --------------------------------------------------------

def _put_name(out: bytearray, name: str) -> None:
    raw = name.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise WireCorruptError(f"column name too long ({len(raw)} bytes)")
    out += struct.pack("!H", len(raw))
    out += raw


def _get_name(r: _Reader) -> str:
    raw = r.take(r.u16())
    try:
        return str(raw, "utf-8")
    except UnicodeDecodeError as exc:
        raise WireCorruptError(f"undecodable column name: {exc}") from exc


def _put_numeric(out: bytearray, values: np.ndarray, nrows: int) -> None:
    arr = np.asarray(values)
    if arr.dtype == np.int64:
        tag, wire_dtype = DTYPE_I64, "<i8"
    else:
        tag, wire_dtype = DTYPE_F64, "<f8"
    arr = np.ascontiguousarray(arr, dtype=wire_dtype)
    if len(arr) != nrows:
        raise WireCorruptError(
            f"column carries {len(arr)} values for {nrows} rows"
        )
    out.append(tag)
    out += arr.tobytes()


def _get_numeric(r: _Reader, nrows: int, expect: int | None = None) -> np.ndarray:
    tag = r.u8()
    if tag not in (DTYPE_I64, DTYPE_F64):
        raise WireCorruptError(f"unknown numeric dtype tag {tag}")
    if expect is not None and tag != expect:
        raise WireCorruptError(
            f"fixed column dtype tag {tag} (expected {expect})"
        )
    wire_dtype = "<i8" if tag == DTYPE_I64 else "<f8"
    raw = r.take(nrows * 8)
    arr = np.frombuffer(raw, dtype=wire_dtype).copy()
    return arr.astype(np.int64) if tag == DTYPE_I64 else arr


def _put_strings(out: bytearray, values: tuple[str, ...], nrows: int) -> None:
    if len(values) != nrows:
        raise WireCorruptError(
            f"string column carries {len(values)} values for {nrows} rows"
        )
    out.append(DTYPE_STR)
    for item in values:
        raw = item.encode("utf-8")
        out += struct.pack("!I", len(raw))
        out += raw


def _get_strings(r: _Reader, nrows: int) -> tuple[str, ...]:
    tag = r.u8()
    if tag != DTYPE_STR:
        raise WireCorruptError(f"string column dtype tag {tag}")
    items = []
    for _ in range(nrows):
        raw = r.take(r.u32())
        try:
            items.append(str(raw, "utf-8"))
        except UnicodeDecodeError as exc:
            raise WireCorruptError(f"undecodable string cell: {exc}") from exc
    return tuple(items)


# -- the column block ---------------------------------------------------------

def frame_block(frame: SnapshotFrame) -> bytes:
    """The canonical uncompressed column block of one frame.

    Pure function of the frame's columnar storage (via
    :meth:`~repro.core.frame.SnapshotFrame.wire_columns`); two frames
    encode to the same block iff they are
    :meth:`~repro.core.frame.SnapshotFrame.bitwise_equal`.
    """
    nrows = len(frame)
    out = bytearray()
    out += _BLOCK_HEAD.pack(frame.time, frame.interval, nrows)
    columns = list(frame.wire_columns())
    for (name, expected_tag), (_, _, values) in zip(_FIXED_TAGS, columns[:6]):
        actual = (
            DTYPE_I64 if np.asarray(values).dtype == np.int64 else DTYPE_F64
        )
        if actual != expected_tag:
            raise WireCorruptError(
                f"fixed column {name!r} has dtype "
                f"{np.asarray(values).dtype}, not the wire dtype"
            )
        _put_numeric(out, values, nrows)
    for _, _, values in columns[6:8]:
        _put_strings(out, values, nrows)
    named = columns[8:]
    for group in ("deltas", "metrics"):
        cols = [(name, v) for g, name, v in named if g == group]
        out += struct.pack("!H", len(cols))
        for name, values in cols:
            _put_name(out, name)
            _put_numeric(out, values, nrows)
    label_cols = [(name, v) for g, name, v in named if g == "labels"]
    out += struct.pack("!H", len(label_cols))
    for name, values in label_cols:
        _put_name(out, name)
        _put_strings(out, values, nrows)
    out += struct.pack("!H", len(frame.columns))
    for header, kind in frame.columns:
        _put_name(out, header)
        _put_name(out, kind)
    return bytes(out)


def _parse_block(block: bytes | memoryview) -> SnapshotFrame:
    r = _Reader(block)
    time, interval, nrows = r.unpack(_BLOCK_HEAD)
    fixed = {}
    for name, tag in _FIXED_TAGS:
        fixed[name] = _get_numeric(r, nrows, expect=tag)
    users = _get_strings(r, nrows)
    comms = _get_strings(r, nrows)
    deltas: dict[str, np.ndarray] = {}
    for _ in range(r.u16()):
        name = _get_name(r)
        deltas[name] = _get_numeric(r, nrows)
    metrics: dict[str, np.ndarray] = {}
    for _ in range(r.u16()):
        name = _get_name(r)
        metrics[name] = _get_numeric(r, nrows)
    labels: dict[str, tuple[str, ...]] = {}
    for _ in range(r.u16()):
        name = _get_name(r)
        labels[name] = _get_strings(r, nrows)
    layout = []
    for _ in range(r.u16()):
        header = _get_name(r)
        kind = _get_name(r)
        layout.append((header, kind))
    r.done()
    return SnapshotFrame(
        time=time,
        interval=interval,
        pids=fixed["pids"],
        tids=fixed["tids"],
        uids=fixed["uids"],
        users=users,
        comms=comms,
        cpu_pct=fixed["cpu_pct"],
        cpu_time=fixed["cpu_time"],
        processors=fixed["processors"],
        deltas=deltas,
        metrics=metrics,
        labels=labels,
        columns=tuple(layout),
    )


def frame_digest(frame: SnapshotFrame) -> str:
    """Content hash of a frame's canonical block (bitwise identity)."""
    return hashlib.sha256(frame_block(frame)).hexdigest()[:16]


# -- messages -----------------------------------------------------------------

def pack_message(msg_type: int, body: bytes) -> bytes:
    """Wrap a body in the length-prefixed envelope."""
    payload = _HEAD.pack(MAGIC, VERSION, msg_type) + body
    if len(payload) > MAX_MESSAGE:
        raise WireOversizeError(
            f"message payload {len(payload)} exceeds MAX_MESSAGE"
        )
    return _PREFIX.pack(len(payload)) + payload


def encode_control(msg_type: int, obj: dict) -> bytes:
    """A HELLO/SUBSCRIBE/BYE message carrying a JSON object."""
    return pack_message(msg_type, json.dumps(obj, sort_keys=True).encode())


def encode_frame(
    frame: SnapshotFrame, seq: int, *, compress: bool | None = None
) -> bytes:
    """One FRAME message. ``compress=None`` decides by block width."""
    block = frame_block(frame)
    if compress is None:
        compress = len(block) > COMPRESS_THRESHOLD
    flags = 0
    wire = block
    if compress:
        wire = zlib.compress(block, 6)
        flags |= FLAG_COMPRESSED
    body = _FRAME_HEAD.pack(seq, flags, zlib.crc32(wire)) + wire
    return pack_message(MSG_FRAME, body)


def decode_message(payload: bytes | memoryview) -> tuple[int, object]:
    """Decode one envelope payload (the bytes after the length prefix).

    Returns ``(msg_type, obj)`` where ``obj`` is a ``(seq, frame)`` pair
    for FRAME messages and a dict for control messages.

    Raises:
        WireTruncatedError: the payload ends before its declared content.
        WireCorruptError: bad magic, checksum, compression or structure.
        WireVersionError: the peer speaks an unknown protocol version.
    """
    r = _Reader(payload)
    magic, version, msg_type = r.unpack(_HEAD)
    if magic != MAGIC:
        raise WireCorruptError(f"bad magic {bytes(magic)!r}")
    if version != VERSION:
        raise WireVersionError(f"unknown protocol version {version}")
    if msg_type not in _MSG_TYPES:
        raise WireCorruptError(f"unknown message type {msg_type}")
    if msg_type == MSG_FRAME:
        seq, flags, crc = r.unpack(_FRAME_HEAD)
        wire = r.rest()
        if zlib.crc32(wire) != crc:
            raise WireCorruptError(f"frame {seq}: checksum mismatch")
        if flags & FLAG_COMPRESSED:
            try:
                block = zlib.decompress(wire)
            except zlib.error as exc:
                raise WireCorruptError(
                    f"frame {seq}: undecodable compressed block: {exc}"
                ) from exc
        else:
            block = bytes(wire)
        return MSG_FRAME, (seq, _parse_block(block))
    raw = bytes(r.rest())
    try:
        obj = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireCorruptError(f"undecodable control body: {exc}") from exc
    if not isinstance(obj, dict):
        raise WireCorruptError("control body is not a JSON object")
    return msg_type, obj


class MessageReader:
    """Incremental reassembler: raw socket bytes -> complete payloads.

    Feed arbitrary chunks; complete envelope payloads come back in order.
    Partial messages are buffered; a length prefix above
    :data:`MAX_MESSAGE` (or zero) raises immediately, *before* the body
    is buffered, so a corrupt prefix can neither hang the stream nor
    balloon memory.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> list[bytes]:
        self._buf += data
        out: list[bytes] = []
        while len(self._buf) >= _PREFIX.size:
            (n,) = _PREFIX.unpack_from(self._buf)
            if n > MAX_MESSAGE:
                raise WireOversizeError(
                    f"length prefix {n} exceeds MAX_MESSAGE ({MAX_MESSAGE})"
                )
            if n < _HEAD.size:
                raise WireCorruptError(
                    f"length prefix {n} below minimum message size"
                )
            if len(self._buf) < _PREFIX.size + n:
                break
            out.append(bytes(self._buf[_PREFIX.size : _PREFIX.size + n]))
            del self._buf[: _PREFIX.size + n]
        return out

    @property
    def pending(self) -> int:
        """Bytes buffered waiting for the rest of a message."""
        return len(self._buf)
