"""The biologists' R evolutionary algorithm of §3.1 (Figure 3).

The algorithm models population evolution: an outer loop over time steps,
each doing matrix multiplications and element-wise scalar work inside the R
interpreter. It is numerically unstable for some data sets: after time step
953 the matrices fill with Inf/NaN, and on Nehalem every x87 FP operation
then takes a micro-code assist — IPC collapses from ~1.0 to ~0.03 (with
brief pulses when an iteration's control work dominates), while %CPU stays
at 100. The fixed variant clips matrix values each step; the paper reports
a 2.3x end-to-end speedup and 4.8x on the faulty part alone. On the
PowerPC 970 the same workload shows no collapse (no assist mechanism) but a
lower IPC and a much longer run (Fig. 3d).

Calibration bookkeeping (5 s sampling as in the paper):

* nominal part: 953 steps x :data:`STEP_INSTRUCTIONS` at IPC ~1.0 on
  Nehalem = ~4766 s (~953 samples) — matches Fig. 3a's transition point.
* diverged part: :data:`DIVERGED_INSTRUCTIONS` at IPC ~0.03 = ~11870 s, for
  a 3327-sample total (Fig. 3a's x-axis).
* clipped run: 953 + 495 nominal-speed steps = ~7240 s, i.e. the 2.3x /
  4.8x speedups quoted in §3.1.
"""

from __future__ import annotations

from repro.sim.branch import BranchBehavior
from repro.sim.cache import MemoryBehavior
from repro.sim.isa import InstructionMix, OperandProfile
from repro.sim.workload import Phase, Workload

#: Time step at which the algorithm diverges (Fig. 3a/3c).
DIVERGENCE_STEP = 953

#: Post-divergence time steps (from the 4.8x faulty-part speedup, §3.1).
POST_DIVERGENCE_STEPS = 495

#: The paper samples every 5 seconds.
SAMPLE_PERIOD = 5.0

#: Instructions per nominal time step: ~5 s at IPC ~1.0 on a 3.07 GHz Nehalem.
STEP_INSTRUCTIONS = 1.53e10

#: Instructions in the diverged part: ~11870 s at IPC ~0.03.
DIVERGED_INSTRUCTIONS = 1.09e12

#: Interleaved nominal-speed "pulses" within the diverged part (Fig. 3a
#: shows brief IPC spikes): number of (diverged, pulse) chunks.
PULSE_CHUNKS = 20

#: Instructions per pulse chunk (~2 s at nominal IPC: visible in 5 s bins).
PULSE_INSTRUCTIONS = 6.0e9

#: The R interpreter is markedly less efficient on the PPC970 build
#: (Fig. 3d: IPC ~0.37, run stretching past 30000 s).
_PPC_FACTOR = (("ppc970", 1.65),)

#: Interpreter instruction mix: dispatch-heavy integer code around x87 FP
#: kernels (R 2.10 on this machine used x87 math).
_MIX_NOMINAL = InstructionMix.of(
    int_alu=0.38, load=0.22, store=0.06, branch=0.18, fp_x87=0.14, nop=0.02
)

#: In the diverged phase the matrix kernels dominate samples (the scalar
#: element-wise passes crawl), raising the FP fraction.
_MIX_DIVERGED = InstructionMix.of(
    int_alu=0.28, load=0.20, store=0.05, branch=0.12, fp_x87=0.35
)

_MEMORY = MemoryBehavior(
    working_set=4 * 1024 * 1024,
    level_hit_ratios=(0.93, 0.97, 0.995),
    mlp=2.5,
)

_BRANCHES = BranchBehavior(mispredict_ratio=0.03)

#: Fraction of diverged-phase FP operations on Inf/NaN operands. With the
#: 0.35 x87 mix this yields ~12 assists per 100 instructions — Fig. 3c's
#: right axis — and a ~33x IPC collapse on Nehalem.
DIVERGED_NONFINITE = 0.35

#: Solo IPC of the healthy algorithm on Nehalem (Fig. 3a's first plateau).
NOMINAL_IPC = 1.0


def _nominal_exec_cpi() -> float:
    from repro.sim.arch import NEHALEM
    from repro.sim.core import exec_cpi_for_target_ipc

    seed = Phase(
        name="seed",
        instructions=1.0,
        mix=_MIX_NOMINAL,
        memory=_MEMORY,
        branches=_BRANCHES,
        noise=0.0,
    )
    return exec_cpi_for_target_ipc(NEHALEM, seed, NOMINAL_IPC)


#: Execution CPI of the interpreter loop, calibrated so the nominal phase
#: runs at exactly :data:`NOMINAL_IPC` solo on Nehalem.
_EXEC_CPI = _nominal_exec_cpi()


def _nominal_phase(name: str, instructions: float) -> Phase:
    return Phase(
        name=name,
        instructions=instructions,
        mix=_MIX_NOMINAL,
        memory=_MEMORY,
        branches=_BRANCHES,
        exec_cpi=_EXEC_CPI,
        noise=0.08,
        arch_factors=_PPC_FACTOR,
    )


def _diverged_phase(name: str, instructions: float) -> Phase:
    return Phase(
        name=name,
        instructions=instructions,
        mix=_MIX_DIVERGED,
        memory=_MEMORY,
        branches=_BRANCHES,
        operands=OperandProfile(nonfinite=DIVERGED_NONFINITE),
        exec_cpi=_EXEC_CPI,
        noise=0.05,
        arch_factors=_PPC_FACTOR,
    )


def original() -> Workload:
    """The unmodified algorithm: diverges after :data:`DIVERGENCE_STEP` steps."""
    phases: list[Phase] = [
        _nominal_phase("nominal", DIVERGENCE_STEP * STEP_INSTRUCTIONS)
    ]
    chunk = (DIVERGED_INSTRUCTIONS - PULSE_CHUNKS * PULSE_INSTRUCTIONS) / PULSE_CHUNKS
    for i in range(PULSE_CHUNKS):
        phases.append(_diverged_phase(f"diverged-{i}", chunk))
        phases.append(_nominal_phase(f"pulse-{i}", PULSE_INSTRUCTIONS))
    return Workload(name="revolve-original", phases=tuple(phases))


def clipped() -> Workload:
    """The fixed algorithm: values clipped each step, no divergence.

    The clipping pass adds a small amount of extra work per step (§3.1 calls
    it "negligible in front of the savings").
    """
    overhead = 1.02
    total_steps = DIVERGENCE_STEP + POST_DIVERGENCE_STEPS
    return Workload(
        name="revolve-clipped",
        phases=(
            _nominal_phase("clipped", total_steps * STEP_INSTRUCTIONS * overhead),
        ),
    )
