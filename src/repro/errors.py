"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro package."""


class PerfError(ReproError):
    """Base class for perf_event subsystem errors."""


class PerfNotSupportedError(PerfError):
    """The running kernel does not expose a usable perf_event PMU.

    Raised by the real syscall backend when ``perf_event_open`` fails with
    ``ENOENT``/``ENOSYS``/``EACCES`` in a way that indicates the facility is
    unavailable rather than the request being malformed.
    """


class PerfPermissionError(PerfError):
    """The caller may not monitor the requested task.

    Mirrors the paper's footnote 1: a non-privileged user can only watch
    processes they own (EPERM/EACCES from the kernel).
    """


class NoSuchTaskError(PerfError):
    """The monitored task does not exist (ESRCH)."""


class CounterStateError(PerfError):
    """A counter operation was issued in an invalid state.

    For example reading a closed counter, or enabling a counter whose task
    has already exited.
    """


class EventError(PerfError):
    """An event name or raw descriptor could not be resolved."""


class ExprError(ReproError):
    """A derived-column expression failed to parse or evaluate."""


class ConfigError(ReproError):
    """Invalid screen/column/option configuration."""


class ProcfsError(ReproError):
    """A /proc read or parse failed."""


class SimulationError(ReproError):
    """Invalid simulated-machine configuration or operation."""


class WorkloadError(SimulationError):
    """Invalid workload or phase description."""
