"""The sampling loop: counter deltas -> a columnar frame of derived metrics.

Tiptop is "basically an infinite loop that displays how many times the
requested events have happened for each task, and then goes idle until some
timeout expires" (§2.3). :class:`Sampler` owns one turn of that loop: read
every tracked task's counters and /proc entry, compute per-interval deltas
and the screen's derived columns, and emit one
:class:`~repro.core.frame.SnapshotFrame` — the columnar block the rest of
the pipeline consumes. Derived columns evaluate vectorised over whole
delta arrays (one numpy pass per column) rather than per task.

:class:`Row` and :class:`Snapshot` remain as the legacy adapter surface:
:meth:`Sampler.sample` wraps :meth:`Sampler.sample_frame` and materialises
rows with identical values and ordering, so existing call sites see no
difference.

Reads follow the resilience policy of :mod:`repro.core.proclist`: transient
perf errors are retried within a bounded budget, hard per-task failures
quarantine the task (counters closed immediately, reattach after backoff),
and each task's lifecycle state is published as the HEALTH column when the
screen carries one (``--chaos`` mode does this automatically).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.core.columns import ColumnKind
from repro.core.expr import canonical_name
from repro.core.frame import SnapshotFrame
from repro.core.options import Options
from repro.core.proclist import ProcessList, TrackedTask
from repro.core.screen import Screen
from repro.errors import PerfError, ProcfsError, TransientPerfError
from repro.perf.counter import Backend
from repro.procfs.model import ProcessInfo, TaskProvider, cpu_percent


@dataclass(frozen=True)
class Row:
    """One task's values for one interval (legacy adapter over the frame).

    Attributes:
        pid: process id.
        tid: monitored task id (== pid unless per-thread mode).
        user: owner name.
        comm: command.
        cpu_pct: %CPU over the interval.
        cpu_time: cumulative CPU seconds.
        deltas: scaled counter deltas keyed by event name.
        values: rendered column values keyed by column header.
    """

    pid: int
    tid: int
    user: str
    comm: str
    cpu_pct: float
    cpu_time: float
    deltas: dict[str, float]
    values: dict[str, float | str | int]

    def metric(self, header: str) -> float:
        """Numeric value of a derived column (NaN when absent)."""
        v = self.values.get(header)
        return v if isinstance(v, (int, float)) else math.nan


@dataclass(frozen=True)
class Snapshot:
    """One refresh: all rows plus interval metadata.

    ``frame`` carries the columnar form when the snapshot came from
    :meth:`Sampler.sample` (None for snapshots constructed directly from
    rows, e.g. in tests).
    """

    time: float
    interval: float
    rows: tuple[Row, ...]
    frame: SnapshotFrame | None = None

    def row_for(self, pid: int) -> Row | None:
        """First row of ``pid`` (None if not sampled this interval)."""
        for row in self.rows:
            if row.pid == pid:
                return row
        return None


@dataclass(frozen=True)
class SampleTiming:
    """Wall-time breakdown of one sampling pass (the ``--profile`` data).

    Attributes:
        read_seconds: reading counters and /proc for all tasks.
        eval_seconds: building the frame and evaluating derived columns.
        refresh_seconds: process-list attach/detach bookkeeping.
        tasks: number of tasks sampled.
    """

    read_seconds: float
    eval_seconds: float
    refresh_seconds: float
    tasks: int


class Sampler:
    """Drives process tracking and delta computation.

    Args:
        backend: perf backend.
        tasks: /proc provider.
        screen: column layout (decides which counters are attached).
        options: filters, per-thread mode, sort order.
    """

    def __init__(
        self,
        backend: Backend,
        tasks: TaskProvider,
        screen: Screen,
        options: Options | None = None,
    ) -> None:
        self.options = options or Options()
        self.screen = screen
        self.tasks = tasks
        self.events = screen.required_events()
        self.proclist = ProcessList(backend, tasks, self.events, self.options)
        self._last_time: float | None = None
        self.last_timing: SampleTiming | None = None
        #: Successful-after-retry and given-up read tallies (chaos stats).
        self.read_retries = 0
        self.read_skips = 0
        self._health_header = next(
            (
                c.header
                for c in screen.columns
                if c.kind is ColumnKind.HEALTH
            ),
            None,
        )

    def sample(self) -> Snapshot:
        """Take one snapshot (legacy row view over :meth:`sample_frame`)."""
        frame = self.sample_frame()
        return Snapshot(
            time=frame.time,
            interval=frame.interval,
            rows=frame.to_rows(),
            frame=frame,
        )

    def sample_frame(self) -> SnapshotFrame:
        """Take one columnar snapshot (read deltas, evaluate columns).

        Counters of already-tracked tasks are read *before* the process
        list is refreshed, so a task that exited during the interval still
        contributes its final deltas (the counter fd outlives the task, as
        on Linux); it is then detached. Newly discovered tasks get their
        counters attached at the end and contribute from the next interval
        on — monitoring sees only events after it starts (§2.2).
        """
        now = self.tasks.uptime()
        first = self._last_time is None
        interval = 0.0 if first else now - self._last_time
        self._last_time = now
        refresh_seconds = 0.0
        if first:
            t0 = perf_counter()
            self.proclist.refresh()
            refresh_seconds += perf_counter() - t0

        t0 = perf_counter()
        gathered: list[tuple[TrackedTask, ProcessInfo, dict[str, float], float]] = []
        for task in list(self.proclist.tracked.values()):
            reading = self._read_task(task, interval)
            if reading is not None:
                gathered.append(reading)
        read_seconds = perf_counter() - t0

        t0 = perf_counter()
        frame = self._build_frame(now, interval, gathered)
        frame = frame.take(self._sort_order(frame))
        eval_seconds = perf_counter() - t0

        if not first:
            t0 = perf_counter()
            self.proclist.refresh()
            refresh_seconds += perf_counter() - t0
        self.last_timing = SampleTiming(
            read_seconds=read_seconds,
            eval_seconds=eval_seconds,
            refresh_seconds=refresh_seconds,
            tasks=len(gathered),
        )
        return frame

    def _read_task(
        self, task: TrackedTask, interval: float
    ) -> tuple[TrackedTask, ProcessInfo, dict[str, float], float] | None:
        final = False
        try:
            info = self.tasks.process(task.pid)
        except ProcfsError:
            # The task exited during the interval; report its final deltas
            # against the last known identity (state X).
            if task.last_info is None:
                return None
            info = task.last_info
            final = True
        deltas = self._read_deltas(task)
        if deltas is None:
            return None
        if final:
            pct = 0.0
        else:
            pct = cpu_percent(
                task.last_info, info, interval, uptime=self.tasks.uptime()
            )
        task.last_info = info
        return task, info, deltas, pct

    def _read_deltas(self, task: TrackedTask) -> dict[str, float] | None:
        """Read one task's counter group under the lifecycle policy.

        Transient errors (EINTR/EAGAIN/corrupt reads) are retried up to
        ``options.retry_limit`` extra times; exhaustion skips the task's
        row for this interval but keeps its counters attached (health
        "retrying"). Hard errors — stale handles, a target that the
        kernel says is gone — quarantine the task: counters are closed
        immediately and reattach happens after a backoff, so a failing
        task can never wedge the sampling loop or leak fds.
        """
        attempts = 0
        while True:
            try:
                deltas = task.group.read_deltas()
            except TransientPerfError:
                attempts += 1
                if attempts > self.options.retry_limit:
                    task.health = "retrying"
                    self.read_skips += 1
                    return None
                self.read_retries += 1
                if self.options.retry_backoff > 0:
                    time.sleep(
                        self.options.retry_backoff * 2 ** (attempts - 1)
                    )
                continue
            except PerfError as exc:
                self.proclist.quarantine(task.tid, type(exc).__name__)
                return None
            if attempts:
                task.health = "retry"
            elif task.health == "reattached" and not task.reattach_reported:
                task.reattach_reported = True
            else:
                task.health = "ok"
                # A full clean interval resets the quarantine backoff.
                self.proclist.note_healthy(task.tid)
            return deltas

    def _build_frame(
        self,
        now: float,
        interval: float,
        gathered: list[tuple[TrackedTask, ProcessInfo, dict[str, float], float]],
    ) -> SnapshotFrame:
        n = len(gathered)
        event_names: list[str] = []
        for _, _, deltas, _ in gathered:
            for name in deltas:
                if name not in event_names:
                    event_names.append(name)
        delta_cols = {
            name: np.fromiter(
                (deltas.get(name, 0.0) for _, _, deltas, _ in gathered),
                dtype=float,
                count=n,
            )
            for name in event_names
        }
        cpu_pct = np.fromiter((pct for *_, pct in gathered), dtype=float, count=n)

        env: dict[str, np.ndarray | float] = {
            canonical_name(k): v for k, v in delta_cols.items()
        }
        env["delta_t"] = interval if interval > 0 else math.nan
        env["cpu_pct"] = cpu_pct
        metrics: dict[str, np.ndarray] = {}
        for column in self.screen.columns:
            if column.kind is ColumnKind.EXPR:
                assert column.expression is not None
                # With zero tasks there are no delta columns to evaluate
                # over (the row pipeline never evaluated either).
                metrics[column.header] = (
                    column.expression.evaluate_column(env, n)
                    if n
                    else np.empty(0)
                )

        labels: dict[str, tuple[str, ...]] = {}
        if self._health_header is not None:
            labels[self._health_header] = tuple(
                task.health for task, _, _, _ in gathered
            )

        return SnapshotFrame(
            time=now,
            interval=interval,
            pids=np.fromiter(
                (info.pid for _, info, _, _ in gathered), dtype=np.int64, count=n
            ),
            tids=np.fromiter(
                (task.tid for task, _, _, _ in gathered), dtype=np.int64, count=n
            ),
            uids=np.fromiter(
                (info.uid for _, info, _, _ in gathered), dtype=np.int64, count=n
            ),
            users=tuple(info.user for _, info, _, _ in gathered),
            comms=tuple(info.comm for _, info, _, _ in gathered),
            cpu_pct=cpu_pct,
            cpu_time=np.fromiter(
                (info.cpu_seconds for _, info, _, _ in gathered),
                dtype=float,
                count=n,
            ),
            processors=np.fromiter(
                (info.processor for _, info, _, _ in gathered),
                dtype=np.int64,
                count=n,
            ),
            deltas=delta_cols,
            metrics=metrics,
            labels=labels,
            columns=tuple((c.header, c.kind.value) for c in self.screen.columns),
        )

    def _sort_order(self, frame: SnapshotFrame) -> list[int]:
        """The descending sort permutation, matching the old row sort.

        Same key semantics as sorting rows on ``options.sort_by`` (string
        and absent columns key as 0.0), and the same stable timsort over
        the same Python scalars — so the permutation is identical,
        including NaN comparison behaviour.
        """
        key = self.options.sort_by
        n = len(frame)
        if key == "%CPU":
            values = frame.cpu_pct.tolist()
        else:
            kind = frame.column_kind(key)
            if kind == "pid":
                values = frame.pids.tolist()
            elif kind == "cpu":
                values = frame.cpu_pct.tolist()
            elif kind == "time":
                values = frame.cpu_time.tolist()
            elif kind == "processor":
                values = frame.processors.tolist()
            elif kind == "expr":
                values = frame.metrics[key].tolist()
            else:
                values = [0.0] * n
        return sorted(range(n), key=values.__getitem__, reverse=True)

    def close(self) -> None:
        """Detach all counters."""
        self.proclist.close()
