"""The thin subscriber side of the collector/client split.

:class:`ServeClient` performs the handshake, then yields ``(seq, frame)``
pairs exactly as the daemon published them — the frame object is rebuilt
bitwise from the column block, so everything downstream of the solo
pipeline (screen rendering, the CSV recorder, analysis) runs unchanged
on served frames. The client checks what the protocol guarantees:
sequence numbers strictly increase, and a gap after a resume means
frames aged out of the daemon's retention (reported, not invented).
"""

from __future__ import annotations

import asyncio

from repro.core.frame import SnapshotFrame
from repro.errors import SessionError, WireError
from repro.serve import protocol
from repro.serve.session import Subscription
from repro.serve.stream import MessageStream


class ServeClient:
    """One subscription to a collector daemon.

    Attributes (populated as the stream progresses):
        hello: the server's HELLO body (version, events, columns,
            retained range, next sequence).
        bye: the server's BYE body — per-client accounting — once the
            stream ends (None if the connection died without one).
        last_seq: highest sequence received (-1 before the first frame).
        gaps: count of sequence discontinuities observed (non-zero only
            after drops or a resume past retention).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        client_id: str | None = None,
        subscription: Subscription | None = None,
        resume_from: int | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self.subscription = subscription or Subscription()
        self.resume_from = resume_from
        self.hello: dict | None = None
        self.bye: dict | None = None
        self.last_seq = -1
        self.gaps = 0
        self._stream: MessageStream | None = None

    async def connect(self) -> dict:
        """Dial, handshake, subscribe; returns the server's HELLO body.

        Raises :class:`~repro.errors.SessionError` when the server
        rejects the subscription (its BYE ``error`` becomes the message).
        """
        reader, writer = await asyncio.open_connection(self.host, self.port)
        self._stream = MessageStream(reader, writer)
        self._stream.send(
            protocol.encode_control(
                protocol.MSG_HELLO,
                {"client": self.client_id, "resume": self.resume_from},
            )
        )
        self._stream.send(
            protocol.encode_control(
                protocol.MSG_SUBSCRIBE, self.subscription.to_dict()
            )
        )
        await self._stream.drain()
        msg = await self._stream.recv()
        if msg is None or msg[0] != protocol.MSG_HELLO:
            raise SessionError("server did not answer HELLO")
        self.hello = msg[1]
        return self.hello

    async def frames(self):
        """Async iterator of ``(seq, frame)`` until the server's BYE.

        An early server BYE carrying ``error`` raises
        :class:`~repro.errors.SessionError`; a connection that dies
        mid-message propagates the transport's
        :class:`~repro.errors.WireError`.
        """
        if self._stream is None:
            raise SessionError("not connected")
        if self.resume_from is not None:
            self.last_seq = self.resume_from
        while True:
            msg = await self._stream.recv()
            if msg is None:
                break  # EOF between messages: server is simply gone
            msg_type, obj = msg
            if msg_type == protocol.MSG_BYE:
                self.bye = obj
                if "error" in obj:
                    raise SessionError(str(obj["error"]))
                break
            if msg_type != protocol.MSG_FRAME:
                raise SessionError(f"unexpected message type {msg_type}")
            seq, frame = obj
            if seq <= self.last_seq:
                raise SessionError(
                    f"sequence went backwards: {seq} after {self.last_seq}"
                )
            if self.last_seq >= 0 and seq != self.last_seq + 1:
                self.gaps += 1
            self.last_seq = seq
            yield seq, frame

    async def leave(self) -> None:
        """Tell the server we are done (it answers with accounting)."""
        if self._stream is not None:
            self._stream.send(protocol.encode_control(protocol.MSG_BYE, {}))
            await self._stream.drain()

    async def close(self) -> None:
        if self._stream is not None:
            await self._stream.close()
            self._stream = None


async def collect(
    host: str,
    port: int,
    *,
    client_id: str | None = None,
    subscription: Subscription | None = None,
    resume_from: int | None = None,
    limit: int | None = None,
) -> tuple[list[tuple[int, SnapshotFrame]], ServeClient]:
    """Subscribe and gather the whole stream (or the first ``limit``
    frames); returns the frames plus the client for its accounting."""
    client = ServeClient(
        host,
        port,
        client_id=client_id,
        subscription=subscription,
        resume_from=resume_from,
    )
    await client.connect()
    received: list[tuple[int, SnapshotFrame]] = []
    left = False
    try:
        async for seq, frame in client.frames():
            if limit is None or len(received) < limit:
                received.append((seq, frame))
            if limit is not None and len(received) >= limit and not left:
                left = True  # keep reading: in-flight frames, then BYE
                await client.leave()
    except WireError:
        pass  # a dead daemon ends the stream; accounting stays partial
    finally:
        await client.close()
    return received, client
