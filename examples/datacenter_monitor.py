#!/usr/bin/env python3
"""Data-center monitoring: catch a noisy-neighbour event (paper Figure 10).

A node runs two long simulation jobs for user1. An hour of user2's batch
jobs arrives; the scheduler happily gives everyone a core and %CPU stays
above 99 % — but user1's jobs quietly lose ~20 % of their throughput to
shared-cache contention. Tiptop sees it live; this script also quantifies
it afterwards with the interference analysis.

Run:  python examples/datacenter_monitor.py
"""

from repro import Options, SimHost, TipTop
from repro.analysis.interference import corun_slowdown, overlap_window
from repro.core.phases import pid_metric_series
from repro.sim.workloads import datacenter

BURST_START = 240.0
BURST_DURATION = 600.0


def main() -> None:
    machine = datacenter.make_node(tick=2.0, seed=11)
    jobs = datacenter.populate_fig10(
        machine, burst_start=BURST_START, burst_duration=BURST_DURATION
    )
    app = TipTop(SimHost(machine), Options(delay=10.0))
    with app:
        recorder = app.run_collect(int((BURST_START + BURST_DURATION + 240) / 10))

    print("per-10s IPC of user1's jobs (user2's five jobs arrive at "
          f"t={BURST_START:.0f}s and leave ~{BURST_DURATION:.0f}s later):\n")
    window = overlap_window(
        [BURST_START] * 5, [BURST_START + BURST_DURATION] * 5
    )
    assert window is not None
    for proc in jobs["user1"]:
        series = pid_metric_series(recorder, proc.pid, "IPC")
        print(series.ascii_plot(width=64, height=8))
        report = corun_slowdown(
            series,
            solo=(0.0, BURST_START - 10),
            corun=(window[0] + 30, window[1] - 30),
        )
        cpu = min(s.cpu_pct for s in recorder.for_pid(proc.pid))
        print(
            f"{proc.command}: IPC {report.solo_mean:.2f} -> {report.corun_mean:.2f} "
            f"({100 * report.slowdown:.0f} % slowdown), "
            f"%CPU never below {cpu:.1f}\n"
        )
    print("the paper's lesson: CPU usage alone would have shown nothing.")


if __name__ == "__main__":
    main()
