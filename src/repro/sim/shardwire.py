"""Binary epoch wire for socket shard transports.

The socket transport (ROADMAP item 2) replaces pickle with the same
``"TTSV"`` struct-packed envelope the telemetry daemon speaks
(:mod:`repro.serve.protocol`): a u32 length prefix, magic/version/type
header, and a crc32-guarded body, reassembled by the shared bounds-checked
:class:`~repro.serve.protocol.MessageReader`. The body is a small tagged
value codec covering exactly the shapes the epoch round-trip needs —
None/bool/int/float/str/bytes/list/tuple/dict — encoded deterministically
(dict items in insertion order, floats as raw IEEE-754 bits so NaN
payloads and -0.0 survive) and decoded under the same hostile-input rules
as the frame protocol: every failure is a typed
:class:`~repro.errors.WireError`, counts are sanity-checked against the
remaining payload before any allocation, and recursion depth is capped.

Tuples and lists round-trip to their own types: epoch reports carry
tuples whose equality against the in-process engines is what the
conformance digest checks, so the codec must not flatten them.

Shard message types live in the range :data:`repro.serve.protocol`
reserves for them (16+)::

    MSG_SHARD_ADVANCE   parent -> agent  {"cmds", "n_ticks", "frac", "intern"}
    MSG_SHARD_SNAPSHOT  parent -> agent  [node names]
    MSG_SHARD_CLOSE     parent -> agent  None
    MSG_SHARD_OK        agent -> parent  (incarnation, epoch, reply value)
    MSG_SHARD_ERR       agent -> parent  (incarnation, epoch, error text)

Every agent reply is **fenced**: it carries the incarnation token the
agent was spawned with and the epoch it answers, as a plain
``(incarnation, epoch, payload)`` tuple wrapped by :func:`pack_fenced`
and checked by :func:`split_fenced`. The fence is what makes recovery
split-brain-safe under network partitions — a healed link can deliver a
reply computed by a stale incarnation, and the parent rejects it by
token instead of double-applying the epoch.
"""

from __future__ import annotations

import struct
import zlib

from repro.errors import (
    WireCorruptError,
    WireTruncatedError,
    WireVersionError,
)
from repro.serve.protocol import (
    MAGIC,
    VERSION,
    _HEAD,
    _Reader,
    pack_message,
)

MSG_SHARD_ADVANCE = 16
MSG_SHARD_SNAPSHOT = 17
MSG_SHARD_CLOSE = 18
MSG_SHARD_OK = 19
MSG_SHARD_ERR = 20
_SHARD_MSG_TYPES = frozenset({
    MSG_SHARD_ADVANCE,
    MSG_SHARD_SNAPSHOT,
    MSG_SHARD_CLOSE,
    MSG_SHARD_OK,
    MSG_SHARD_ERR,
})

TAG_NONE = 0
TAG_TRUE = 1
TAG_FALSE = 2
TAG_INT64 = 3
TAG_BIGINT = 4
TAG_FLOAT = 5
TAG_STR = 6
TAG_BYTES = 7
TAG_LIST = 8
TAG_TUPLE = 9
TAG_DICT = 10

#: Nesting ceiling: epoch payloads are ~4 levels deep, so a value this
#: deep is hostile input, not a big report.
MAX_DEPTH = 24

_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")
_U32 = struct.Struct("!I")
_I64_MIN = -(2**63)
_I64_MAX = 2**63 - 1


def encode_value(value: object, out: bytearray | None = None,
                 _depth: int = 0) -> bytes:
    """Serialise one value to tagged bytes (deterministic)."""
    if _depth > MAX_DEPTH:
        raise WireCorruptError(f"value nests deeper than {MAX_DEPTH}")
    if out is None:
        out = bytearray()
    # bool first: bool subclasses int.
    if value is None:
        out.append(TAG_NONE)
    elif value is True:
        out.append(TAG_TRUE)
    elif value is False:
        out.append(TAG_FALSE)
    elif type(value) is int:
        if _I64_MIN <= value <= _I64_MAX:
            out.append(TAG_INT64)
            out += _I64.pack(value)
        else:
            raw = value.to_bytes(
                (value.bit_length() + 8) // 8, "big", signed=True
            )
            out.append(TAG_BIGINT)
            out += _U32.pack(len(raw))
            out += raw
    elif type(value) is float:
        out.append(TAG_FLOAT)
        out += _F64.pack(value)
    elif type(value) is str:
        raw = value.encode("utf-8")
        out.append(TAG_STR)
        out += _U32.pack(len(raw))
        out += raw
    elif type(value) is bytes:
        out.append(TAG_BYTES)
        out += _U32.pack(len(value))
        out += value
    elif type(value) is list or type(value) is tuple:
        out.append(TAG_LIST if type(value) is list else TAG_TUPLE)
        out += _U32.pack(len(value))
        for item in value:
            encode_value(item, out, _depth + 1)
    elif type(value) is dict:
        out.append(TAG_DICT)
        out += _U32.pack(len(value))
        for key, item in value.items():
            encode_value(key, out, _depth + 1)
            encode_value(item, out, _depth + 1)
    else:
        raise WireCorruptError(
            f"value of type {type(value).__name__} is not wire-encodable"
        )
    return bytes(out)


def _decode_value(r: _Reader, depth: int) -> object:
    if depth > MAX_DEPTH:
        raise WireCorruptError(f"value nests deeper than {MAX_DEPTH}")
    tag = r.u8()
    if tag == TAG_NONE:
        return None
    if tag == TAG_TRUE:
        return True
    if tag == TAG_FALSE:
        return False
    if tag == TAG_INT64:
        return r.unpack(_I64)[0]
    if tag == TAG_BIGINT:
        raw = r.take(r.u32())
        return int.from_bytes(raw, "big", signed=True)
    if tag == TAG_FLOAT:
        return r.unpack(_F64)[0]
    if tag == TAG_STR:
        raw = r.take(r.u32())
        try:
            return str(raw, "utf-8")
        except UnicodeDecodeError as exc:
            raise WireCorruptError(f"undecodable string: {exc}") from exc
    if tag == TAG_BYTES:
        return bytes(r.take(r.u32()))
    if tag in (TAG_LIST, TAG_TUPLE):
        count = r.u32()
        # Every item costs >= 1 byte, so a count beyond the remaining
        # payload is a hostile header, rejected before allocation.
        if count > len(r.buf) - r.pos:
            raise WireTruncatedError(
                f"sequence count {count} exceeds remaining payload"
            )
        items = [_decode_value(r, depth + 1) for _ in range(count)]
        return items if tag == TAG_LIST else tuple(items)
    if tag == TAG_DICT:
        count = r.u32()
        if count * 2 > len(r.buf) - r.pos:
            raise WireTruncatedError(
                f"dict count {count} exceeds remaining payload"
            )
        obj = {}
        for _ in range(count):
            key = _decode_value(r, depth + 1)
            if not isinstance(key, (str, int)):
                raise WireCorruptError(
                    f"dict key of type {type(key).__name__}"
                )
            obj[key] = _decode_value(r, depth + 1)
        return obj
    raise WireCorruptError(f"unknown value tag {tag}")


def decode_value(payload: bytes | memoryview) -> object:
    """Inverse of :func:`encode_value`; rejects trailing bytes."""
    r = _Reader(payload)
    value = _decode_value(r, 0)
    r.done()
    return value


def pack_shard(msg_type: int, value: object) -> bytes:
    """One complete shard message: envelope + crc32 + tagged value."""
    if msg_type not in _SHARD_MSG_TYPES:
        raise WireCorruptError(f"unknown shard message type {msg_type}")
    body = encode_value(value)
    return pack_message(msg_type, _U32.pack(zlib.crc32(body)) + body)


def decode_shard(payload: bytes | memoryview) -> tuple[int, object]:
    """Decode one envelope payload into ``(msg_type, value)``.

    Raises:
        WireTruncatedError: the payload ends before its declared content.
        WireCorruptError: bad magic, checksum, tag or trailing garbage.
        WireVersionError: unknown protocol version.
    """
    r = _Reader(payload)
    magic, version, msg_type = r.unpack(_HEAD)
    if magic != MAGIC:
        raise WireCorruptError(f"bad magic {bytes(magic)!r}")
    if version != VERSION:
        raise WireVersionError(f"unknown protocol version {version}")
    if msg_type not in _SHARD_MSG_TYPES:
        raise WireCorruptError(f"unknown shard message type {msg_type}")
    crc = r.u32()
    body = r.rest()
    if zlib.crc32(body) != crc:
        raise WireCorruptError("shard message checksum mismatch")
    return msg_type, decode_value(body)


def pack_fenced(
    msg_type: int, incarnation: int, epoch: int, payload: object
) -> bytes:
    """One fenced agent reply: ``(incarnation, epoch, payload)``."""
    return pack_shard(msg_type, (incarnation, epoch, payload))


def split_fenced(value: object) -> tuple[int, int, object]:
    """Validate and unpack a fenced reply value.

    Raises:
        WireCorruptError: the value is not an ``(int, int, payload)``
            triple — an unfenced or garbled reply.
    """
    if (
        not isinstance(value, tuple)
        or len(value) != 3
        or not isinstance(value[0], int)
        or not isinstance(value[1], int)
        or isinstance(value[0], bool)
        or isinstance(value[1], bool)
    ):
        raise WireCorruptError(
            f"reply is not a fenced (incarnation, epoch, payload) "
            f"triple: {value!r:.120}"
        )
    return value[0], value[1], value[2]
