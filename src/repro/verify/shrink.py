"""Greedy scenario minimisation and replay artifacts.

When a fuzzed scenario trips an oracle, the raw scenario is usually too
big to debug (several tasks, chaos, deferred spawns, kill timers). The
shrinker walks a fixed candidate list — drop a task, drop a job, strip
chaos, shorten the run — keeping any simplification under which the
failure still reproduces, and restarts from the top after every success
until a full pass changes nothing (a local fixpoint).

The minimised scenario plus the violations it produces are written to
``verify/repro-<hash>.json``; ``python -m repro.verify --replay FILE``
re-executes the artifact byte-identically and reports whether the
violations still reproduce.
"""

from __future__ import annotations

import json
from collections.abc import Callable, Iterator
from dataclasses import replace
from pathlib import Path

from repro.verify.oracles import Violation, check_scenario
from repro.verify.scenario import SCHEMA_VERSION, Scenario

FailFn = Callable[[Scenario], list[Violation]]


def _candidates(s: Scenario) -> Iterator[Scenario]:
    """Simplified variants of ``s``, most aggressive first."""
    # Drop whole tasks / jobs (keep at least one so the run does work).
    if len(s.tasks) > 1:
        for i in range(len(s.tasks)):
            yield replace(s, tasks=s.tasks[:i] + s.tasks[i + 1 :])
    if len(s.jobs) > 1:
        for i in range(len(s.jobs)):
            yield replace(s, jobs=s.jobs[:i] + s.jobs[i + 1 :])
    # Strip chaos entirely, then explicit fault clauses one by one.
    if s.chaos_seed is not None:
        yield replace(s, chaos_seed=None)
    if s.faults:
        for i in range(len(s.faults)):
            yield replace(s, faults=s.faults[:i] + s.faults[i + 1 :])
    # Shorten the run.
    if s.iterations > 1:
        yield replace(s, iterations=max(1, s.iterations // 2))
    # Simplify individual tasks.
    for i, t in enumerate(s.tasks):
        simpler = []
        if t.kill_at is not None:
            simpler.append(replace(t, kill_at=None))
        if t.spawn_at > 0.0:
            simpler.append(replace(t, spawn_at=0.0))
        if t.nthreads > 1:
            simpler.append(replace(t, nthreads=1))
        if t.duty_cycle != 1.0:
            simpler.append(replace(t, duty_cycle=1.0))
        for variant in simpler:
            yield replace(s, tasks=s.tasks[:i] + (variant,) + s.tasks[i + 1 :])
    # Relax environment knobs.
    if s.pmu_width is not None:
        yield replace(s, pmu_width=None)
    if s.per_thread:
        yield replace(s, per_thread=False)
    if s.monitor_uid != 0:
        yield replace(s, monitor_uid=0)
    # Grid-side simplifications: strip worker chaos first (most failures
    # under chaos are recovery bugs, but if the failure survives without
    # chaos it is a much simpler engine bug), then drop engines.
    if s.grid_chaos_seed is not None:
        yield replace(s, grid_chaos_seed=None)
    if s.grid_faults:
        for i in range(len(s.grid_faults)):
            yield replace(
                s, grid_faults=s.grid_faults[:i] + s.grid_faults[i + 1 :]
            )
    if s.restart_budget < 8 and s.grid_chaotic:
        yield replace(s, restart_budget=8)
    # Network chaos shrinks the same way: whole schedule first, then
    # explicit fault clauses one at a time.
    if s.net_chaos_seed is not None:
        yield replace(s, net_chaos_seed=None)
    if s.net_faults:
        for i in range(len(s.net_faults)):
            yield replace(
                s, net_faults=s.net_faults[:i] + s.net_faults[i + 1 :]
            )
    # Drop the transport sweep and the fleet engine before the cheaper
    # engine drops: each multiplies the runs per candidate evaluation.
    if s.transports:
        yield replace(s, transports=())
    if "fleet" in s.engines and len(s.engines) > 1:
        yield replace(s, engines=tuple(e for e in s.engines if e != "fleet"))
    if (
        "supervised" in s.engines
        and len(s.engines) > 1
        and not s.grid_chaotic
        and not s.net_chaotic
    ):
        yield replace(
            s, engines=tuple(e for e in s.engines if e != "supervised")
        )
    if "sharded" in s.engines and len(s.engines) > 1:
        yield replace(s, engines=tuple(e for e in s.engines if e != "sharded"))
    if s.workers > 1:
        yield replace(s, workers=1)
    if s.n_nodes > 1:
        yield replace(s, n_nodes=s.n_nodes - 1)
    if s.kind == "grid" and s.span > 4 * s.tick:
        half = max(4, round(s.span / s.tick) // 2)
        yield replace(s, span=half * s.tick)


def shrink(
    scenario: Scenario,
    failing: FailFn | None = None,
    *,
    max_evals: int = 200,
) -> Scenario:
    """Greedily minimise ``scenario`` while ``failing`` keeps failing.

    Args:
        scenario: a scenario known to produce violations.
        failing: predicate returning the violations of a candidate
            (default: :func:`check_scenario`). A candidate is accepted
            iff this returns a non-empty list.
        max_evals: hard cap on candidate executions; shrinking is
            best-effort and stops at the cap with whatever it has.
    """
    if failing is None:
        failing = check_scenario
    current = scenario
    evals = 0
    progress = True
    while progress and evals < max_evals:
        progress = False
        for candidate in _candidates(current):
            if evals >= max_evals:
                break
            evals += 1
            try:
                still_failing = bool(failing(candidate))
            except Exception:
                # A candidate that crashes the harness outright is a
                # different bug; don't shrink toward it.
                still_failing = False
            if still_failing:
                current = candidate
                progress = True
                break  # restart the scan from the simplified scenario
    return current


# -- artifacts ----------------------------------------------------------------

def write_artifact(
    scenario: Scenario,
    violations: list[Violation],
    directory: str | Path = "verify",
) -> Path:
    """Persist a failing scenario as ``<directory>/repro-<hash>.json``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": SCHEMA_VERSION,
        "hash": scenario.digest(),
        "scenario": scenario.to_dict(),
        "violations": [v.to_dict() for v in violations],
    }
    path = directory / f"repro-{scenario.digest()}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def replay_artifact(
    path: str | Path,
) -> tuple[Scenario, list[Violation], list[Violation]]:
    """Re-execute an artifact; return (scenario, recorded, current).

    ``recorded`` is what the original run reported; ``current`` is what
    the oracles say now. Replay is byte-deterministic, so a divergence
    between the two means the code under test changed.
    """
    payload = json.loads(Path(path).read_text())
    scenario = Scenario.from_dict(payload["scenario"])
    recorded = [
        Violation(oracle=v["oracle"], message=v["message"])
        for v in payload.get("violations", [])
    ]
    current = check_scenario(scenario)
    return scenario, recorded, current


__all__ = [
    "replay_artifact",
    "shrink",
    "write_artifact",
]
