"""The sampling loop: counter deltas -> rows of derived metrics.

Tiptop is "basically an infinite loop that displays how many times the
requested events have happened for each task, and then goes idle until some
timeout expires" (§2.3). :class:`Sampler` owns one turn of that loop: read
every tracked task's counters and /proc entry, compute per-interval deltas
and the screen's derived columns, and emit a :class:`Snapshot` of
:class:`Row` objects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.columns import Column, ColumnKind
from repro.core.expr import canonical_name
from repro.core.options import Options
from repro.core.proclist import ProcessList, TrackedTask
from repro.core.screen import Screen
from repro.errors import CounterStateError, ProcfsError
from repro.perf.counter import Backend
from repro.procfs.model import TaskProvider, cpu_percent


@dataclass(frozen=True)
class Row:
    """One task's values for one interval.

    Attributes:
        pid: process id.
        tid: monitored task id (== pid unless per-thread mode).
        user: owner name.
        comm: command.
        cpu_pct: %CPU over the interval.
        cpu_time: cumulative CPU seconds.
        deltas: scaled counter deltas keyed by event name.
        values: rendered column values keyed by column header.
    """

    pid: int
    tid: int
    user: str
    comm: str
    cpu_pct: float
    cpu_time: float
    deltas: dict[str, float]
    values: dict[str, float | str | int]

    def metric(self, header: str) -> float:
        """Numeric value of a derived column (NaN when absent)."""
        v = self.values.get(header)
        return v if isinstance(v, (int, float)) else math.nan


@dataclass(frozen=True)
class Snapshot:
    """One refresh: all rows plus interval metadata."""

    time: float
    interval: float
    rows: tuple[Row, ...]

    def row_for(self, pid: int) -> Row | None:
        """First row of ``pid`` (None if not sampled this interval)."""
        for row in self.rows:
            if row.pid == pid:
                return row
        return None


class Sampler:
    """Drives process tracking and delta computation.

    Args:
        backend: perf backend.
        tasks: /proc provider.
        screen: column layout (decides which counters are attached).
        options: filters, per-thread mode, sort order.
    """

    def __init__(
        self,
        backend: Backend,
        tasks: TaskProvider,
        screen: Screen,
        options: Options | None = None,
    ) -> None:
        self.options = options or Options()
        self.screen = screen
        self.tasks = tasks
        self.events = screen.required_events()
        self.proclist = ProcessList(backend, tasks, self.events, self.options)
        self._last_time: float | None = None

    def sample(self) -> Snapshot:
        """Take one snapshot (read deltas, compute columns, attach/detach).

        Counters of already-tracked tasks are read *before* the process
        list is refreshed, so a task that exited during the interval still
        contributes its final deltas (the counter fd outlives the task, as
        on Linux); it is then detached. Newly discovered tasks get their
        counters attached at the end and contribute from the next interval
        on — monitoring sees only events after it starts (§2.2).
        """
        now = self.tasks.uptime()
        first = self._last_time is None
        interval = 0.0 if first else now - self._last_time
        self._last_time = now
        if first:
            self.proclist.refresh()

        rows: list[Row] = []
        for task in list(self.proclist.tracked.values()):
            row = self._sample_task(task, interval)
            if row is not None:
                rows.append(row)
        rows.sort(key=self._sort_key, reverse=True)
        if not first:
            self.proclist.refresh()
        return Snapshot(time=now, interval=interval, rows=tuple(rows))

    def _sort_key(self, row: Row):
        key = self.options.sort_by
        if key == "%CPU":
            return row.cpu_pct
        value = row.values.get(key, 0.0)
        return value if isinstance(value, (int, float)) else 0.0

    def _sample_task(self, task: TrackedTask, interval: float) -> Row | None:
        final = False
        try:
            info = self.tasks.process(task.pid)
        except ProcfsError:
            # The task exited during the interval; report its final deltas
            # against the last known identity (state X).
            if task.last_info is None:
                return None
            info = task.last_info
            final = True
        try:
            deltas = task.group.read_deltas()
        except CounterStateError:
            return None
        if final:
            pct = 0.0
        else:
            pct = cpu_percent(
                task.last_info, info, interval, uptime=self.tasks.uptime()
            )
        task.last_info = info

        env = {canonical_name(k): v for k, v in deltas.items()}
        env["delta_t"] = interval if interval > 0 else math.nan
        env["cpu_pct"] = pct

        values: dict[str, float | str | int] = {}
        for column in self.screen.columns:
            values[column.header] = self._column_value(column, env, info, pct, task)
        return Row(
            pid=info.pid,
            tid=task.tid,
            user=info.user,
            comm=info.comm,
            cpu_pct=pct,
            cpu_time=info.cpu_seconds,
            deltas=deltas,
            values=values,
        )

    @staticmethod
    def _column_value(
        column: Column,
        env: dict[str, float],
        info,
        pct: float,
        task: TrackedTask,
    ) -> float | str | int:
        if column.kind is ColumnKind.PID:
            return info.pid
        if column.kind is ColumnKind.USER:
            return info.user
        if column.kind is ColumnKind.CPU_PCT:
            return pct
        if column.kind is ColumnKind.TIME:
            return info.cpu_seconds
        if column.kind is ColumnKind.COMMAND:
            return info.comm
        if column.kind is ColumnKind.PROCESSOR:
            return info.processor
        assert column.expression is not None
        return column.expression.evaluate(env)

    def close(self) -> None:
        """Detach all counters."""
        self.proclist.close()
