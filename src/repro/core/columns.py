"""Column definitions: what one cell of a screen shows.

A column is either *intrinsic* (PID, USER, %CPU, TIME+, COMMAND — sourced
from /proc) or *derived* (an expression over counter deltas). Real tiptop
configures these from an XML file; here a column is a small dataclass and a
screen is a tuple of them, buildable from a plain dict
(:func:`repro.core.screen.screen_from_config`).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.core.expr import Expression
from repro.errors import ConfigError
from repro.util.tabulate import Align, ColumnFormat


class ColumnKind(enum.Enum):
    """Where a column's value comes from."""

    PID = "pid"
    USER = "user"
    CPU_PCT = "cpu"
    TIME = "time"
    COMMAND = "command"
    PROCESSOR = "processor"
    EXPR = "expr"
    HEALTH = "health"


def _fmt_fixed(decimals: int):
    def fmt(value: object) -> str:
        if isinstance(value, float) and math.isnan(value):
            return "-"
        if isinstance(value, (int, float)):
            return f"{value:.{decimals}f}"
        return str(value)

    return fmt


@dataclass(frozen=True)
class Column:
    """One screen column.

    Attributes:
        header: printed title.
        kind: intrinsic source or EXPR.
        expression: formula for EXPR columns (None otherwise).
        width: field width.
        decimals: decimal places for numeric rendering.
        align: LEFT or RIGHT.
        truncate: hard-cap at width (COMMAND).
    """

    header: str
    kind: ColumnKind
    expression: Expression | None = None
    width: int = 8
    decimals: int = 2
    align: Align = Align.RIGHT
    truncate: bool = False

    def __post_init__(self) -> None:
        if self.kind is ColumnKind.EXPR and self.expression is None:
            raise ConfigError(f"column {self.header!r} needs an expression")
        if self.width <= 0:
            raise ConfigError(f"column {self.header!r} needs a positive width")

    def to_format(self) -> ColumnFormat:
        """Rendering spec for the table layer."""
        if self.kind in (ColumnKind.USER, ColumnKind.COMMAND, ColumnKind.HEALTH):
            render = str
        elif self.kind is ColumnKind.PID or self.kind is ColumnKind.PROCESSOR:
            render = lambda v: str(int(v))  # noqa: E731
        else:
            render = _fmt_fixed(self.decimals)
        return ColumnFormat(
            header=self.header,
            width=self.width,
            align=self.align,
            truncate=self.truncate,
            render=render,
        )

    def variables(self) -> frozenset[str]:
        """Identifiers this column's expression references (empty if intrinsic)."""
        if self.expression is None:
            return frozenset()
        return self.expression.variables


def expr_column(
    header: str,
    text: str,
    *,
    width: int = 8,
    decimals: int = 2,
) -> Column:
    """Convenience constructor for derived columns."""
    return Column(
        header=header,
        kind=ColumnKind.EXPR,
        expression=Expression(text),
        width=width,
        decimals=decimals,
    )


#: Intrinsic columns shared by most screens.
PID_COLUMN = Column("PID", ColumnKind.PID, width=6)
#: Per-task lifecycle state (ok / retry / reattached), shown under chaos.
HEALTH_COLUMN = Column(
    "HEALTH", ColumnKind.HEALTH, width=10, align=Align.LEFT
)
USER_COLUMN = Column("USER", ColumnKind.USER, width=8, align=Align.LEFT)
CPU_COLUMN = Column("%CPU", ColumnKind.CPU_PCT, width=5, decimals=1)
TIME_COLUMN = Column("TIME+", ColumnKind.TIME, width=9, decimals=0)
COMMAND_COLUMN = Column(
    "COMMAND", ColumnKind.COMMAND, width=15, align=Align.LEFT, truncate=True
)
PROCESSOR_COLUMN = Column("P", ColumnKind.PROCESSOR, width=3)
