"""Instruction classes and instruction-mix descriptors.

A workload phase is characterised not by a trace but by the *fractions* of
each instruction class it retires — the level of abstraction at which the
paper's metrics (IPC, LPI, FPI, BPI, miss ratios) live (§2.6).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.errors import WorkloadError


class InstructionClass(enum.Enum):
    """Retired-instruction categories distinguished by the pipeline model."""

    INT_ALU = "int-alu"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    FP_SSE = "fp-sse"
    FP_X87 = "fp-x87"
    NOP = "nop"


@dataclass(frozen=True)
class InstructionMix:
    """Fractions of retired instructions per class; must sum to 1.

    Use :meth:`of` to build one from keyword fractions with validation::

        mix = InstructionMix.of(int_alu=0.5, load=0.25, branch=0.25)
    """

    fractions: dict[InstructionClass, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        total = sum(self.fractions.values())
        if not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-6):
            raise WorkloadError(f"instruction mix sums to {total}, expected 1.0")
        for cls, frac in self.fractions.items():
            if frac < 0:
                raise WorkloadError(f"negative fraction {frac} for {cls}")

    @classmethod
    def of(cls, **kwargs: float) -> "InstructionMix":
        """Build a mix from keyword fractions named after the enum values.

        Keyword names are the enum member names lower-cased
        (``int_alu``, ``load``, ``store``, ``branch``, ``fp_sse``,
        ``fp_x87``, ``nop``).
        """
        fractions: dict[InstructionClass, float] = {}
        for name, frac in kwargs.items():
            try:
                member = InstructionClass[name.upper()]
            except KeyError as exc:
                raise WorkloadError(f"unknown instruction class {name!r}") from exc
            fractions[member] = frac
        return cls(fractions)

    def fraction(self, ic: InstructionClass) -> float:
        """Fraction of retired instructions in class ``ic`` (0 if absent)."""
        return self.fractions.get(ic, 0.0)

    @property
    def loads(self) -> float:
        """Load fraction (the paper's LPI when multiplied by 1)."""
        return self.fraction(InstructionClass.LOAD)

    @property
    def stores(self) -> float:
        """Store fraction."""
        return self.fraction(InstructionClass.STORE)

    @property
    def mem_refs(self) -> float:
        """Memory references (loads + stores) per instruction."""
        return self.loads + self.stores

    @property
    def branches(self) -> float:
        """Branch fraction (BPI)."""
        return self.fraction(InstructionClass.BRANCH)

    @property
    def fp_ops(self) -> float:
        """Floating-point fraction (FPI), both x87 and SSE."""
        return self.fraction(InstructionClass.FP_SSE) + self.fraction(
            InstructionClass.FP_X87
        )

    @property
    def x87_ops(self) -> float:
        """x87 floating-point fraction (assist-eligible on Intel models)."""
        return self.fraction(InstructionClass.FP_X87)

    @property
    def sse_ops(self) -> float:
        """SSE floating-point fraction."""
        return self.fraction(InstructionClass.FP_SSE)

    def scaled_toward(self, other: "InstructionMix", weight: float) -> "InstructionMix":
        """Linear blend of two mixes (``weight`` toward ``other``).

        Used by workload builders to interpolate between phase mixes.
        """
        if not 0 <= weight <= 1:
            raise WorkloadError(f"blend weight must be in [0, 1], got {weight}")
        classes = set(self.fractions) | set(other.fractions)
        blended = {
            ic: (1 - weight) * self.fraction(ic) + weight * other.fraction(ic)
            for ic in classes
        }
        return InstructionMix(blended)


@dataclass(frozen=True)
class OperandProfile:
    """Distribution of floating-point operand classes within a phase.

    ``nonfinite`` is the fraction of FP operations whose operands are
    Inf/NaN; ``denormal`` the fraction on denormals. Both trigger micro-code
    assist on architectures that have the mechanism (§3.1); regular values
    never do.
    """

    nonfinite: float = 0.0
    denormal: float = 0.0

    def __post_init__(self) -> None:
        for name, value in (("nonfinite", self.nonfinite), ("denormal", self.denormal)):
            if not 0 <= value <= 1:
                raise WorkloadError(f"{name} fraction must be in [0, 1], got {value}")
        if self.nonfinite + self.denormal > 1 + 1e-9:
            raise WorkloadError("operand class fractions exceed 1")

    @property
    def assist_eligible(self) -> float:
        """Fraction of FP operations that can require micro-code assist."""
        return self.nonfinite + self.denormal


#: All-finite operands — the common case.
FINITE_OPERANDS = OperandProfile()
