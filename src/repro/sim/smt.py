"""SMT (hyper-threading) resource-sharing model.

Two effects matter for the paper's §3.4 same-physical-core experiment
(Fig. 11d):

1. **Issue-slot sharing** — hardware threads on one core split the core's
   issue bandwidth. With ``n`` active threads each gets
   ``smt_efficiency / n`` of a solo thread's issue rate (efficiency > 1
   models SMT's better utilisation of otherwise-idle slots).
2. **Private-cache sharing** — L1/L2 are per-*core*, so SMT siblings split
   their capacity. That is handled by the cache model's pressure-
   proportional capacity shares; this module only answers "who is active on
   this core and what issue share does each thread get".
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.arch import ArchModel


def issue_share(arch: ArchModel, active_threads_on_core: int) -> float:
    """Issue bandwidth available to one thread, relative to running solo.

    Args:
        arch: supplies ``smt_efficiency`` (aggregate throughput of a fully
            occupied core relative to one thread).
        active_threads_on_core: number of concurrently scheduled hardware
            threads on the physical core, including the caller.

    Returns:
        A value in (0, 1]: 1.0 when alone, ``smt_efficiency / n`` otherwise.

    Raises:
        SimulationError: when more threads are claimed than the core has.
    """
    if active_threads_on_core < 1:
        raise SimulationError(
            f"active_threads_on_core must be >= 1, got {active_threads_on_core}"
        )
    if active_threads_on_core > arch.smt_per_core:
        raise SimulationError(
            f"{active_threads_on_core} active threads exceed SMT width "
            f"{arch.smt_per_core} of {arch.name}"
        )
    if active_threads_on_core == 1:
        return 1.0
    return min(1.0, arch.smt_efficiency / active_threads_on_core)
