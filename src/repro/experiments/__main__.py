"""Entry point: ``python -m repro.experiments``."""

import os
import sys

from repro.experiments.cli import main

try:
    sys.exit(main())
except BrokenPipeError:
    # Downstream consumer (e.g. ``| head``) closed the pipe early; mute
    # the interpreter's close-time flush complaint and exit like a
    # signalled process would.
    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    sys.exit(1)
