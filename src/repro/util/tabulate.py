"""Minimal column/table renderer for live and batch screens.

Tiptop has no graphics (§2.1) — output is fixed-width text in the spirit of
``top``. This module owns alignment, truncation and header rendering so the
formatter only decides *what* to show.
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any


class Align(enum.Enum):
    """Column alignment."""

    LEFT = "left"
    RIGHT = "right"


@dataclass(frozen=True)
class ColumnFormat:
    """Rendering spec for one table column.

    Attributes:
        header: column title as printed.
        width: minimum field width; the column grows if a value is wider
            unless ``truncate`` is set.
        align: LEFT or RIGHT.
        truncate: hard-cap values at ``width`` characters (used for COMMAND,
            which is the last, left-aligned column in top-like tools).
        render: callable turning the raw cell value into text.
    """

    header: str
    width: int
    align: Align = Align.RIGHT
    truncate: bool = False
    render: Callable[[Any], str] = field(default=str)

    def format_cell(self, value: Any) -> str:
        """Render ``value`` into a padded (and possibly truncated) field."""
        text = self.render(value)
        if self.truncate and len(text) > self.width:
            text = text[: self.width]
        if self.align is Align.LEFT:
            return text.ljust(self.width)
        return text.rjust(self.width)

    def format_header(self) -> str:
        """Render the header cell with the same geometry as data cells."""
        text = self.header
        if self.truncate and len(text) > self.width:
            text = text[: self.width]
        if self.align is Align.LEFT:
            return text.ljust(self.width)
        return text.rjust(self.width)


def render_table(
    columns: Sequence[ColumnFormat],
    rows: Sequence[Sequence[Any]],
    *,
    sep: str = " ",
    header: bool = True,
) -> str:
    """Render ``rows`` under ``columns`` into a newline-joined string.

    Each row must have exactly one value per column.

    Raises:
        ValueError: on a row whose arity does not match the column list.
    """
    lines: list[str] = []
    if header:
        lines.append(sep.join(c.format_header() for c in columns).rstrip())
    for row in rows:
        if len(row) != len(columns):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(columns)}: {row!r}"
            )
        lines.append(
            sep.join(c.format_cell(v) for c, v in zip(columns, row)).rstrip()
        )
    return "\n".join(lines)
