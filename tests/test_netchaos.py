"""The seeded network-fault kernel: determinism, independence, healing.

``repro.sim.netchaos`` is the link-layer sibling of the supervisor's
``GridFaultPlan``: a frozen schedule queried as a pure function of
``(seed, link, epoch, attempt)``. These tests pin the contract the
transports and the serve daemon build on — byte-stable replay, per-link
independence (the crc32 double-hash), the attempt axis as the heal
schedule, and the validation surface.
"""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ConfigError
from repro.sim.netchaos import (
    CUT_KINDS,
    NET_FAULT_KINDS,
    NetChaosPlan,
    NetFaultSpec,
    default_net_specs,
)


# -- determinism --------------------------------------------------------------

def test_same_seed_same_schedule():
    a = NetChaosPlan.from_seed(17, intensity=4.0)
    b = NetChaosPlan.from_seed(17, intensity=4.0)
    grid = [(link, epoch, attempt)
            for link in range(8) for epoch in range(32) for attempt in (0, 1)]
    assert [a.decide(*g) for g in grid] == [b.decide(*g) for g in grid]


def test_different_seeds_diverge():
    a = NetChaosPlan.from_seed(1, intensity=4.0)
    b = NetChaosPlan.from_seed(2, intensity=4.0)
    grid = [(link, epoch, 0) for link in range(8) for epoch in range(64)]
    assert [a.decide(*g) for g in grid] != [b.decide(*g) for g in grid]


def test_plan_is_frozen_and_picklable():
    plan = NetChaosPlan.from_seed(9, intensity=2.0)
    clone = pickle.loads(pickle.dumps(plan))
    grid = [(link, epoch, 0) for link in range(4) for epoch in range(32)]
    assert [clone.decide(*g) for g in grid] == [plan.decide(*g) for g in grid]
    with pytest.raises(Exception):
        plan.seed = 10  # type: ignore[misc]


# -- per-link independence ----------------------------------------------------

def test_adjacent_links_are_decorrelated():
    """crc32 is linear, so a single-character key difference (adjacent
    link ids) must not produce correlated draws — the double-hash
    regression. Joint fire rate across two links should be close to the
    product of the marginals, not to the marginals themselves."""
    plan = NetChaosPlan.from_seed(17, intensity=4.0)
    epochs = range(2000)
    fires0 = [plan.decide(0, e, 0) is not None for e in epochs]
    fires1 = [plan.decide(1, e, 0) is not None for e in epochs]
    p0 = sum(fires0) / len(epochs)
    p1 = sum(fires1) / len(epochs)
    joint = sum(a and b for a, b in zip(fires0, fires1)) / len(epochs)
    # Rates of the stock mix at 4x are ~0.5 each; independence puts the
    # joint near p0*p1. Full correlation would put it near min(p0, p1).
    assert abs(joint - p0 * p1) < 0.05
    assert joint < 0.75 * min(p0, p1)


def test_link_schedules_do_not_shift_each_other():
    """Fault decisions on link 0 are identical whether or not link 1 is
    being queried (stateless plan: no cross-link coupling at all)."""
    plan = NetChaosPlan.from_seed(5, intensity=4.0)
    solo = [plan.decide(0, e, 0) for e in range(64)]
    for e in range(64):
        plan.decide(1, e, 0)  # interleaved traffic on another link
    assert [plan.decide(0, e, 0) for e in range(64)] == solo


# -- the attempt axis is the heal schedule ------------------------------------

def test_duration_controls_healing():
    plan = NetChaosPlan(
        seed=0,
        specs=(NetFaultSpec("partition", at_epochs=frozenset({3}),
                            duration=2),),
    )
    assert plan.decide(0, 3, 0) == "partition"
    assert plan.decide(0, 3, 1) == "partition"
    assert plan.decide(0, 3, 2) is None  # healed after 2 attempts
    assert plan.decide(0, 4, 0) is None  # other epochs untouched


def test_drop_is_a_one_attempt_partition():
    plan = NetChaosPlan(
        seed=0, specs=(NetFaultSpec("drop", at_epochs=frozenset({1})),)
    )
    assert plan.decide(7, 1, 0) == "drop"
    assert plan.decide(7, 1, 1) is None


# -- targeting ----------------------------------------------------------------

def test_link_restriction():
    plan = NetChaosPlan(
        seed=0,
        specs=(NetFaultSpec("half_open", at_epochs=frozenset({0}), link=2),),
    )
    assert plan.decide(2, 0, 0) == "half_open"
    assert plan.decide(0, 0, 0) is None
    assert plan.decide(3, 0, 0) is None


def test_at_epochs_overrides_rate_draw():
    plan = NetChaosPlan(
        seed=123,
        specs=(
            NetFaultSpec("duplicate", at_epochs=frozenset({4})),
            NetFaultSpec("delay", rate=1.0 / len(NET_FAULT_KINDS),
                         latency=0.01),
        ),
    )
    assert plan.decide(0, 4, 0) == "duplicate"


def test_latency_of_reports_the_delay_spec():
    plan = NetChaosPlan(
        seed=0,
        specs=(NetFaultSpec("delay", at_epochs=frozenset({2}),
                            latency=0.25),),
    )
    assert plan.decide(0, 2, 0) == "delay"
    assert plan.latency_of(0, 2) == 0.25
    assert plan.latency_of(0, 3) == 0.0


# -- the serve layer's view ---------------------------------------------------

def test_cut_kinds_sever_streams_and_others_do_not():
    for kind in NET_FAULT_KINDS:
        spec = NetFaultSpec(
            kind,
            at_epochs=frozenset({0}),
            latency=0.001 if kind == "delay" else 0.0,
        )
        plan = NetChaosPlan(seed=0, specs=(spec,))
        assert plan.cut(0, 0, 0) == (kind in CUT_KINDS), kind
    quiet = NetChaosPlan(seed=0, specs=())
    assert not quiet.cut(0, 0, 0)


# -- validation ---------------------------------------------------------------

def test_unknown_kind_rejected():
    with pytest.raises(ConfigError, match="unknown net fault kind"):
        NetFaultSpec("gremlin")


def test_rate_bounds():
    with pytest.raises(ConfigError, match="rate"):
        NetFaultSpec("drop", rate=1.5)
    with pytest.raises(ConfigError, match="rate"):
        NetFaultSpec("drop", rate=-0.1)


def test_duration_and_link_and_latency_validation():
    with pytest.raises(ConfigError, match="duration"):
        NetFaultSpec("partition", duration=0)
    with pytest.raises(ConfigError, match="link"):
        NetFaultSpec("drop", link=-1)
    with pytest.raises(ConfigError, match="latency"):
        NetFaultSpec("delay", latency=-0.1)
    with pytest.raises(ConfigError, match="latency only applies"):
        NetFaultSpec("drop", latency=0.5)


def test_rates_partition_one_uniform_draw():
    with pytest.raises(ConfigError, match="> 1"):
        NetChaosPlan(
            seed=0,
            specs=(
                NetFaultSpec("drop", rate=0.6),
                NetFaultSpec("partition", rate=0.6),
            ),
        )


def test_default_specs_cap_keeps_total_under_one():
    for intensity in (1.0, 4.0, 100.0):
        specs = default_net_specs(intensity)
        assert sum(s.rate for s in specs) <= 1.0 + 1e-9
    with pytest.raises(ConfigError, match="intensity"):
        default_net_specs(-1.0)
