"""Chaos properties: any seeded fault plan, any churn — no leaks, and
tasks the plan never touched are bitwise-identical to a fault-free run.

The second property is what makes the fault kernel trustworthy as a test
instrument: injection is keyed per (task, op, call-index), so a fault on
one task cannot shift another task's schedule or readings. We check it by
driving two identical machines — one behind a faulted backend, one behind
a clean backend — through the same spawn/kill churn and comparing every
untouched pid's rows exactly (``repr`` equality, so NaN compares equal).
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sampler import Sampler
from repro.core.screen import get_screen
from repro.perf.faults import FaultPlan, default_specs
from repro.perf.simbackend import SimBackend
from repro.procfs.simproc import SimProcReader
from repro.sim import NEHALEM, SimMachine
from repro.sim.branch import BranchBehavior
from repro.sim.cache import MemoryBehavior
from repro.sim.isa import InstructionMix
from repro.sim.workload import Phase, Workload

ENDLESS = Workload(
    "endless",
    (
        Phase(
            name="steady",
            instructions=math.inf,
            mix=InstructionMix.of(
                int_alu=0.5, load=0.2, store=0.05, branch=0.15, fp_sse=0.1
            ),
            memory=MemoryBehavior(working_set=1 * 1024 * 1024),
            branches=BranchBehavior(mispredict_ratio=0.02),
            exec_cpi=0.5,
            noise=0.0,
        ),
    ),
)

STEPS = 4
BASE_JOBS = 3

churn_strategy = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=STEPS),
        st.sampled_from(["kill0", "kill1", "kill2", "spawn"]),
    ),
    max_size=4,
)


def run_monitored(plan: FaultPlan | None, churn) -> tuple:
    """Drive one machine through the churn script under ``plan``.

    Both members of a comparison pair call this with identical ``churn``;
    everything about the machine is deterministic from its own seed, so
    the *only* difference between the two runs is the fault plan.
    """
    machine = SimMachine(NEHALEM, sockets=1, cores_per_socket=2, tick=0.5,
                         seed=29)
    base = [machine.spawn(f"job{i}", ENDLESS).pid for i in range(BASE_JOBS)]
    backend = SimBackend(machine, faults=plan)
    sampler = Sampler(backend, SimProcReader(machine), get_screen("default"))
    snapshots = []
    sampler.sample()  # baseline: attach everyone
    for step in range(1, STEPS + 1):
        for when, action in churn:
            if when != step:
                continue
            if action == "spawn":
                machine.spawn(f"churn{step}", ENDLESS)
            else:
                victim = base[int(action[-1])]
                proc = machine.processes.get(victim)
                if proc is not None and proc.alive:
                    machine.kill(victim)
        machine.run_for(1.0)
        snapshots.append(sampler.sample())
    sampler.close()
    return machine, backend, snapshots


def rows_by_pid(snapshot) -> dict[int, tuple]:
    return {
        row.pid: (
            repr(row.deltas),
            repr(row.cpu_pct),
            {k: repr(v) for k, v in row.values.items()},
        )
        for row in snapshot.rows
    }


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    intensity=st.sampled_from([0.5, 1.0, 3.0]),
    churn=churn_strategy,
)
@settings(max_examples=25, deadline=None)
def test_no_leaks_and_untouched_tasks_identical(seed, intensity, churn):
    plan = FaultPlan(seed, default_specs(intensity))
    machine, backend, chaotic = run_monitored(plan, churn)
    clean_machine, clean_backend, clean = run_monitored(None, churn)

    # Property 1: whatever was injected, every handle opened was closed
    # and nothing is left live anywhere in the stack.
    assert backend.opened_total == backend.closed_total
    assert backend.open_handle_count() == 0
    assert machine.counters.open_count() == 0
    assert clean_backend.opened_total == clean_backend.closed_total
    assert clean_machine.counters.open_count() == 0

    # Property 2: pids the plan never touched saw the exact same frames
    # as in the fault-free run — same rows present, bitwise-equal values.
    touched = plan.stats.touched_tids
    for snap_chaos, snap_clean in zip(chaotic, clean):
        got = rows_by_pid(snap_chaos)
        want = rows_by_pid(snap_clean)
        for pid in set(got) | set(want):
            if pid in touched:
                continue
            assert got.get(pid) == want.get(pid), (
                f"pid {pid} diverged despite never being injected "
                f"(touched={sorted(touched)})"
            )


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    churn=churn_strategy,
)
@settings(max_examples=10, deadline=None)
def test_same_seed_replays_bitwise(seed, churn):
    """Two runs from one seed are indistinguishable — the replay
    guarantee behind ``--chaos SEED``."""
    plan_a = FaultPlan(seed, default_specs(2.0))
    plan_b = plan_a.fork()
    _, backend_a, snaps_a = run_monitored(plan_a, churn)
    _, backend_b, snaps_b = run_monitored(plan_b, churn)
    assert backend_a.opened_total == backend_b.opened_total
    assert plan_a.stats.injected == plan_b.stats.injected
    for sa, sb in zip(snaps_a, snaps_b):
        assert rows_by_pid(sa) == rows_by_pid(sb)
