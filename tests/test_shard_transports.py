"""Transport-axis equivalence and the per-fabric contracts.

``tests/test_grid_parallel.py`` pins the engine axis (legacy / serial /
sharded / supervised bitwise-identical under churn); this file pins the
*transport* axis underneath the sharded engines: inproc, fork and socket
fabrics must be pure performance knobs too. Plus the per-fabric
contracts the engines rely on — snapshot batching (one message per
worker, not per node), typed ``kind="closed"`` on a send racing
teardown, byte accounting (zero for inproc, exact for fork/socket), and
socket workload interning (the pickled workload crosses the wire once
per connection).
"""

import random

import pytest

from repro.errors import SimulationError, WorkerFailure
from repro.sim.grid import Grid, NodeSpec, QueueSpec
from repro.sim.parallel import ShardedEngine, SpawnCmd, TRANSPORT_NAMES
from repro.sim.transport import make_transport
from repro.sim.workloads import datacenter

GiB = 1024**3


def _job(seconds=60.0, ipc=1.2, name="job"):
    return datacenter.compute_job(name, ipc, duration_hint=seconds)


def _endless(name="svc"):
    return datacenter.compute_job(name, 1.2)


def _fleet():
    return [
        NodeSpec(name="a0", sockets=1, cores_per_socket=1,
                 memory_bytes=4 * GiB),
        NodeSpec(name="a1", sockets=1, cores_per_socket=2,
                 memory_bytes=4 * GiB),
        NodeSpec(name="a2", sockets=1, cores_per_socket=1,
                 memory_bytes=2 * GiB),
    ]


def _queues():
    return [
        QueueSpec("quick", max_wallclock=6.0, memory_limit=2 * GiB,
                  priority=2),
        QueueSpec("slow", max_wallclock=float("inf"), memory_limit=4 * GiB,
                  priority=1),
    ]


def _churn(grid: Grid, seed: int) -> None:
    rng = random.Random(seed)
    for segment in range(2):
        for i in range(rng.randint(2, 4)):
            name = f"s{segment}j{i}"
            if rng.random() < 0.3:
                grid.submit(name, _endless(name), queue="quick",
                            memory_bytes=GiB)
            else:
                grid.submit(
                    name,
                    _job(seconds=rng.choice([2.0, 5.0, 9.0]),
                         ipc=rng.choice([0.9, 1.2]), name=name),
                    queue=rng.choice(["quick", "slow"]),
                    memory_bytes=rng.choice([1, 2]) * GiB,
                )
        grid.run_for(rng.choice([3.0, 4.5]))


def _digest(seed: int, engine: str, workers: int, transport=None) -> str:
    with Grid(_fleet(), _queues(), tick=1.0, seed=seed, workers=workers,
              engine=engine, transport=transport) as grid:
        _churn(grid, seed)
        return grid.conformance_digest()


def _entries():
    return [
        (NodeSpec(name="n0", sockets=1, cores_per_socket=1,
                  memory_bytes=4 * GiB), 11),
        (NodeSpec(name="n1", sockets=1, cores_per_socket=1,
                  memory_bytes=4 * GiB), 12),
    ]


def _spawn(job_id, node, workload):
    return SpawnCmd(job_id=job_id, node=node, command=workload.name,
                    user="tester", workload=workload, wallclock_limit=None)


@pytest.fixture
def transport(request):
    t = make_transport(request.param, 0, _entries(), 0.5)
    t.spawn([], 0)
    assert t.recv(30.0) == ("ok", "ready")
    yield t
    t.close(grace=2.0)


def _params():
    return pytest.mark.parametrize("transport", TRANSPORT_NAMES,
                                   indirect=True)


class TestChurnEquivalence:
    """The 24-seed sweep: every transport bitwise-matches serial."""

    @pytest.mark.parametrize("seed", range(24))
    def test_transports_bitwise_identical_under_churn(self, seed):
        reference = _digest(seed, "serial", 1)
        for name in TRANSPORT_NAMES:
            assert _digest(seed, "sharded", 2, transport=name) == reference, (
                f"transport {name!r} diverged from serial at seed {seed}"
            )


class TestSnapshotBatching:
    @pytest.mark.parametrize("name", TRANSPORT_NAMES)
    def test_snapshot_many_is_one_message_per_worker(self, name):
        engine = ShardedEngine(_fleet(), tick=1.0, seed=3, workers=2,
                               transport=name)
        try:
            before = engine.messages
            snaps = engine.snapshot_many([s.name for s in _fleet()])
            # 3 nodes across 2 workers: 2 sends, never 3.
            assert engine.messages - before == 2
            assert set(snaps) == {"a0", "a1", "a2"}
        finally:
            engine.close()

    @pytest.mark.parametrize("name", TRANSPORT_NAMES)
    def test_single_snapshot_still_works(self, name):
        engine = ShardedEngine(_fleet(), tick=1.0, seed=3, workers=2,
                               transport=name)
        try:
            snap = engine.snapshot("a1")
            assert {"counters", "procs", "now"} <= set(snap)
            with pytest.raises(SimulationError, match="no node"):
                engine.snapshot("nope")
        finally:
            engine.close()


@_params()
class TestClosedRace:
    def test_send_after_close_is_typed_closed(self, transport):
        transport.close(grace=2.0)
        with pytest.raises(WorkerFailure) as info:
            transport.send(("snapshot", ["n0"]))
        assert info.value.kind == "closed"

    def test_recv_after_close_is_typed_closed(self, transport):
        transport.close(grace=2.0)
        with pytest.raises(WorkerFailure) as info:
            transport.recv(1.0)
        assert info.value.kind == "closed"

    def test_send_between_request_and_finish_is_typed_closed(self, transport):
        # The teardown race the engines guard against: close has been
        # *requested* (peer may already be gone) but resources are not
        # yet released. A straggling send must be typed, not a raw
        # BrokenPipeError.
        transport.request_close()
        with pytest.raises(WorkerFailure) as info:
            transport.send(("advance", [], 1, 0.0))
        assert info.value.kind == "closed"
        transport.finish_close(grace=2.0)


class TestBytesAccounting:
    def _advance_epochs(self, engine, n=3):
        for _ in range(n):
            engine.advance([], 2, 0.0)

    def test_inproc_moves_zero_bytes(self):
        engine = ShardedEngine(_fleet(), tick=1.0, seed=5, workers=2,
                               transport="inproc")
        try:
            self._advance_epochs(engine)
            engine.snapshot_many(["a0", "a1", "a2"])
            assert engine.bytes_sent == 0
            assert engine.bytes_received == 0
            assert engine.messages > 0
        finally:
            engine.close()

    @pytest.mark.parametrize("name", ["fork", "socket"])
    def test_process_fabrics_account_every_message(self, name):
        engine = ShardedEngine(_fleet(), tick=1.0, seed=5, workers=2,
                               transport=name)
        try:
            self._advance_epochs(engine)
            sent_after_advance = engine.bytes_sent
            assert sent_after_advance > 0
            assert engine.bytes_received > 0
            engine.snapshot_many(["a0", "a1", "a2"])
            assert engine.bytes_sent > sent_after_advance
        finally:
            engine.close()


class TestSocketInterning:
    """The pickled workload body crosses the socket once per connection;
    later spawns of the same object ship a fixed-size ref."""

    def test_second_spawn_of_same_workload_is_cheaper(self):
        t = make_transport("socket", 0, _entries(), 0.5)
        t.spawn([], 0)
        assert t.recv(30.0) == ("ok", "ready")
        try:
            workload = _endless("svc")
            t.send(("advance", [_spawn(1, "n0", workload)], 2, 0.0))
            first = t.bytes_sent
            assert t.recv(30.0)[0] == "ok"
            t.send(("advance", [_spawn(2, "n1", workload)], 2, 0.0))
            second = t.bytes_sent - first
            assert t.recv(30.0)[0] == "ok"
            assert second < first
            # The ref-only spawn is small: no pickled workload body.
            import pickle

            assert second < len(pickle.dumps(workload))
        finally:
            t.close(grace=2.0)

    def test_reconnect_resends_the_workload_body(self):
        # Refs are per-connection: a respawned agent has an empty intern
        # table, so the first spawn after resurrection ships the body
        # again (and the shard still runs it — digest tests elsewhere).
        t = make_transport("socket", 0, _entries(), 0.5)
        t.spawn([], 0)
        assert t.recv(30.0) == ("ok", "ready")
        try:
            workload = _endless("svc")
            t.send(("advance", [_spawn(1, "n0", workload)], 2, 0.0))
            first = t.bytes_sent
            assert t.recv(30.0)[0] == "ok"
            t.reap()
            journal = [([_spawn(1, "n0", workload)], 2, 0.0)]
            t.spawn(journal, 1)
            assert t.recv(30.0) == ("ok", "ready")
            before = t.bytes_sent
            t.send(("advance", [_spawn(2, "n1", workload)], 2, 0.0))
            assert t.recv(30.0)[0] == "ok"
            resent = t.bytes_sent - before
            # Same full-body cost as the very first spawn (± framing).
            assert resent >= first // 2
        finally:
            t.close(grace=2.0)


class TestFactory:
    def test_unknown_transport_is_rejected(self):
        with pytest.raises(SimulationError, match="unknown shard transport"):
            make_transport("carrier-pigeon", 0, _entries(), 0.5)

    def test_engine_rejects_unknown_transport(self):
        with pytest.raises(SimulationError, match="unknown shard transport"):
            ShardedEngine(_fleet(), tick=1.0, seed=0, workers=2,
                          transport="bogus")

    def test_grid_rejects_unknown_transport(self):
        with pytest.raises(SimulationError, match="unknown shard transport"):
            Grid(_fleet(), _queues(), tick=1.0, seed=0, workers=2,
                 transport="bogus")
