"""Run comparison: the four Figure 9 patterns, classified automatically."""

import numpy as np
import pytest

from repro.analysis.compare import compare_runs
from repro.analysis.timeseries import MetricSeries
from repro.errors import ReproError


def _trace(label, duration, ipc_head, ipc_tail=None, n=60):
    ipc_tail = ipc_head if ipc_tail is None else ipc_tail
    y = np.r_[
        ipc_head * np.ones(n // 2), ipc_tail * np.ones(n - n // 2)
    ]
    x = np.linspace(duration / n, duration, n)
    return MetricSeries(x, y, label)


class TestVerdicts:
    def test_higher_ipc_wins(self):
        """Fig. 9a (hmmer)."""
        c = compare_runs(_trace("gcc", 600, 1.85), _trace("icc", 470, 2.35))
        assert c.verdict == "higher-ipc-wins"
        assert c.faster == "icc"
        assert c.higher_ipc == "icc"
        assert not c.inversion

    def test_lower_ipc_wins(self):
        """Fig. 9b (sphinx3)."""
        c = compare_runs(_trace("gcc", 580, 1.35), _trace("icc", 495, 1.15))
        assert c.verdict == "lower-ipc-wins"
        assert c.faster == "icc"
        assert c.higher_ipc == "gcc"

    def test_inversion(self):
        """Fig. 9c (h264ref): leader flips, times close."""
        c = compare_runs(
            _trace("gcc", 630, 2.1, 1.45), _trace("icc", 605, 1.75, 1.65)
        )
        assert c.inversion
        assert c.verdict == "same-speed"

    def test_same_speed(self):
        """Fig. 9d (milc)."""
        c = compare_runs(_trace("gcc", 450, 1.05), _trace("icc", 452, 0.88))
        assert c.verdict == "same-speed"
        assert c.higher_ipc == "gcc"
        assert not c.inversion

    def test_describe_mentions_pattern(self):
        c = compare_runs(_trace("gcc", 600, 1.85), _trace("icc", 470, 2.35))
        text = c.describe()
        assert "icc" in text and "9a" in text

    def test_noise_does_not_fake_inversion(self):
        rng = np.random.default_rng(0)
        a = _trace("a", 500, 1.5)
        b = MetricSeries(a.x, 1.5 + 0.02 * rng.normal(size=len(a)), "b")
        assert not compare_runs(a, b).inversion

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            compare_runs(MetricSeries.of([], []), _trace("b", 10, 1.0))


class TestOnRealWorkloads:
    @pytest.mark.parametrize(
        "bench,expected_verdict,expect_inversion",
        [
            ("456.hmmer", "higher-ipc-wins", False),
            ("482.sphinx3", "lower-ipc-wins", False),
            ("464.h264ref", "same-speed", True),
            ("433.milc", "same-speed", False),
        ],
    )
    def test_fig9_classification(self, bench, expected_verdict, expect_inversion):
        """The Fig. 9 panels, classified from actual monitored runs."""
        from repro import Options, SimHost, TipTop
        from repro.core.phases import pid_metric_series
        from repro.sim import NEHALEM, SimMachine
        from repro.sim.workload import Workload
        from repro.sim.workloads import spec

        traces = {}
        for compiler in ("gcc", "icc"):
            full = spec.workload(bench, compiler)
            small = Workload(
                full.name,
                tuple(p.with_budget(p.instructions / 20) for p in full.phases),
            )
            machine = SimMachine(NEHALEM, tick=0.5, seed=7)
            proc = machine.spawn(bench, small)
            app = TipTop(SimHost(machine), Options(delay=1.0))
            recorder = app.run_collect(0)
            with app:
                for i, snap in enumerate(app.snapshots()):
                    if i > 0:
                        recorder.record(snap)
                    if not proc.alive:
                        break
            series = pid_metric_series(recorder, proc.pid, "IPC")
            traces[compiler] = MetricSeries(series.x, series.y, compiler)
        c = compare_runs(traces["gcc"], traces["icc"], same_speed_tolerance=0.1)
        assert c.verdict == expected_verdict
        assert c.inversion == expect_inversion
