"""One retry ladder for every recovery path.

Before this module, three subsystems each grew their own copy of the
same bounded exponential backoff: the shard supervisor's restart ladder,
the fleet's host resurrection, and (new) the serve client's reconnect
loop. Divergent copies drift — a cap forgotten here, a doubling base
there — and drift in retry policy is exactly the kind of silent skew a
measurement layer must not have. :class:`BackoffPolicy` is the single
shared shape: ``delay(attempt) = min(base * factor**(attempt-1), cap)``,
pure and frozen so event logs that record configured backoffs stay
deterministic and replayable.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterator
from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["BackoffPolicy"]


@dataclass(frozen=True)
class BackoffPolicy:
    """Bounded exponential backoff, shared by every retry ladder.

    Attributes:
        base: the first attempt's delay in seconds (0 disables sleeping
            entirely — the deterministic-test configuration).
        factor: multiplier applied per further attempt (>= 1).
        cap: upper bound on any single delay.
    """

    base: float = 0.05
    factor: float = 2.0
    cap: float = 1.0

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ConfigError(f"backoff base must be >= 0, got {self.base}")
        if self.factor < 1.0:
            raise ConfigError(
                f"backoff factor must be >= 1, got {self.factor}"
            )
        if self.cap < 0:
            raise ConfigError(f"backoff cap must be >= 0, got {self.cap}")

    def delay(self, attempt: int) -> float:
        """Seconds to wait before retry ``attempt`` (1-based).

        A pure function of the policy and the attempt number — the
        supervisor records it in its deterministic event log.
        """
        if attempt < 1:
            raise ConfigError(f"attempt must be >= 1, got {attempt}")
        return min(self.base * self.factor ** (attempt - 1), self.cap)

    def delays(self, attempts: int) -> Iterator[float]:
        """The first ``attempts`` delays, in order."""
        return (self.delay(a) for a in range(1, attempts + 1))

    def sleep(
        self, attempt: int, *, sleeper: Callable[[float], None] = time.sleep
    ) -> float:
        """Sleep out retry ``attempt``'s delay; returns the delay used.

        A zero delay never calls ``sleeper`` at all, so ``base=0``
        policies stay wall-clock-free (the property the byte-identical
        chaos sweeps rely on).
        """
        pause = self.delay(attempt)
        if pause > 0:
            sleeper(pause)
        return pause
