"""Analytic multi-level cache model with capacity contention.

The reproduction does not replay address traces; it models each workload
phase by its memory behaviour and each cache level by an analytic hit-ratio
curve — enough to reproduce the paper's coarse per-interval miss ratios
(DMIS in Fig. 1, the miss curves of Fig. 11).

Two curve sources are supported per phase:

* **Power-law working set** — ``hit = min(1, (C/W)^theta)``, the standard
  analytic approximation; good for single-knee workloads.
* **Calibrated per-level hits** — explicit full-capacity hit ratios per
  level (real workloads like mcf have multi-knee reuse profiles that no
  single power law matches); contention then scales each level's hits by
  ``(C_eff/C_full)^theta``.

Contention is modelled by splitting a shared level's capacity between its
active sharers proportionally to their access pressure. This yields the
paper's two headline interference effects: co-running mcf copies steal
shared-L3 capacity from each other (Fig. 11a/b), and two SMT threads on one
physical core thrash the SMT-shared L1/L2 (Fig. 11d).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError, WorkloadError
from repro.sim.arch import ArchModel, CacheLevelSpec, CacheScope


@dataclass(frozen=True)
class MemoryBehavior:
    """Per-phase description of memory reference behaviour.

    Attributes:
        working_set: bytes of data the phase touches with reuse (used by the
            power-law curve when ``level_hit_ratios`` is not given).
        locality: multiplier on each level's locality exponent; > 1 means
            the phase reacts *more* sharply to losing capacity (thrash-prone
            pointer chasing), < 1 means it barely notices.
        streaming: fraction of references that never re-use a line
            (stream through every level regardless of capacity).
        mlp: memory-level parallelism — how many misses overlap; divides
            the stall penalty (1 = serial pointer chasing, 4+ = well
            prefetched streams).
        level_hit_ratios: optional explicit *cumulative* hit fractions per
            level at full capacity: entry i is the fraction of references
            whose reuse distance fits within level i (so it must be
            non-decreasing). Real multi-knee reuse profiles (mcf) are
            expressed this way. Missing trailing levels default to the
            power-law value.
        miss_amplification: per-level exponent ``phi`` for contention
            response when ``level_hit_ratios`` is used: misses scale as
            ``(1/share)^phi`` when the task's capacity share shrinks below
            what it needs (phi = 1 means halving the share doubles the
            misses). Lets a workload be thrash-prone at the SMT-shared L2
            but nearly indifferent to losing L3 share, as mcf is (Fig. 11).
            Defaults to 0.5 at every level.
    """

    working_set: int
    locality: float = 1.0
    streaming: float = 0.0
    mlp: float = 1.6
    level_hit_ratios: tuple[float, ...] | None = None
    miss_amplification: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.working_set < 0:
            raise WorkloadError(f"working_set must be >= 0, got {self.working_set}")
        if self.locality <= 0:
            raise WorkloadError(f"locality must be > 0, got {self.locality}")
        if not 0 <= self.streaming <= 1:
            raise WorkloadError(f"streaming must be in [0, 1], got {self.streaming}")
        if self.mlp <= 0:
            raise WorkloadError(f"mlp must be > 0, got {self.mlp}")
        if self.level_hit_ratios is not None:
            previous = 0.0
            for h in self.level_hit_ratios:
                if not 0 <= h <= 1:
                    raise WorkloadError(f"hit fraction {h} outside [0, 1]")
                if h < previous - 1e-9:
                    raise WorkloadError(
                        "level_hit_ratios must be non-decreasing (cumulative)"
                    )
                previous = h
        if self.miss_amplification is not None:
            for phi in self.miss_amplification:
                if phi < 0:
                    raise WorkloadError(f"negative miss amplification {phi}")


def hit_ratio(capacity: float, working_set: float, exponent: float) -> float:
    """Power-law hit ratio of a cache of ``capacity`` for ``working_set``.

    Returns 1.0 when the working set fits, ``(C/W)^theta`` otherwise.
    A zero working set always hits; zero capacity always misses.
    """
    if working_set <= 0:
        return 1.0
    if capacity <= 0:
        return 0.0
    ratio = capacity / working_set
    if ratio >= 1.0:
        return 1.0
    return ratio**exponent


def cumulative_hit(
    behavior: MemoryBehavior,
    level_index: int,
    spec: CacheLevelSpec,
    effective_capacity: float,
) -> float:
    """Cumulative hit fraction within one level under contention.

    This is the fraction of references whose reuse distance fits in the
    level's *effective* (contention-reduced) capacity, before inclusion
    clamping.

    With explicit ``level_hit_ratios``, contention amplifies the *miss*
    fraction: ``1 - G = (1 - G_full) * (1/share)^phi``, where the share is
    measured against the capacity the task can actually use
    (``min(level size, working set)`` — a 1 MB working set keeps hitting in
    its 2 MB slice of a 12 MB LLC). With the power-law fallback, the hit
    curve is simply re-evaluated at the effective capacity.
    """
    ratios = behavior.level_hit_ratios
    if ratios is not None and level_index < len(ratios):
        phi = 0.5
        if behavior.miss_amplification is not None and level_index < len(
            behavior.miss_amplification
        ):
            phi = behavior.miss_amplification[level_index]
        needed = float(spec.size)
        if behavior.working_set > 0:
            needed = min(needed, float(behavior.working_set))
        share = min(1.0, effective_capacity / needed) if needed > 0 else 1.0
        if share <= 0:
            return 0.0
        miss = (1.0 - ratios[level_index]) * share**-phi
        return max(0.0, 1.0 - miss)
    theta = behavior.locality * spec.locality_exponent
    power = hit_ratio(effective_capacity, behavior.working_set, theta or 1e-9)
    return spec.hit_floor + (1.0 - spec.hit_floor) * power


@dataclass
class CacheInstance:
    """One physical cache: a level spec plus the PUs that share it."""

    spec: CacheLevelSpec
    level_index: int
    pu_ids: frozenset[int]

    def __hash__(self) -> int:
        return hash((self.level_index, self.pu_ids))

    def effective_capacity(self, pressures: dict[int, float], task_key: int) -> float:
        """Capacity share of ``task_key`` given all sharers' access pressures.

        ``pressures`` maps a task key to its access rate into this cache
        (references per second). A task running alone gets the full
        capacity; co-runners split it proportionally to pressure. A small
        epsilon keeps the share positive for idle-but-present sharers.
        """
        own = pressures.get(task_key, 0.0)
        total = sum(pressures.values())
        if total <= 0:
            return float(self.spec.size)
        eps = 0.02 * total
        share = (own + eps) / (total + eps * len(pressures))
        return self.spec.size * share


@dataclass
class MissProfile:
    """Per-level access/miss rates for one task in one interval.

    All rates are per retired instruction. ``accesses[i]`` is the rate of
    references reaching level ``i``; ``misses[i]`` the rate missing it;
    ``misses[-1]`` therefore is the memory-traffic rate.
    """

    accesses: list[float] = field(default_factory=list)
    misses: list[float] = field(default_factory=list)

    @property
    def llc_miss_rate(self) -> float:
        """LLC misses per instruction (the paper's DMIS/100 when x100)."""
        return self.misses[-1] if self.misses else 0.0

    @property
    def llc_access_rate(self) -> float:
        """LLC accesses per instruction."""
        return self.accesses[-1] if self.accesses else 0.0


def miss_chain(
    behavior: MemoryBehavior,
    mem_refs_per_instr: float,
    levels: list[tuple[CacheLevelSpec, float]],
) -> MissProfile:
    """Propagate references through the hierarchy.

    Args:
        behavior: the phase's memory behaviour.
        mem_refs_per_instr: loads+stores per retired instruction.
        levels: ordered ``(spec, effective_capacity)`` pairs, L1 first.

    Returns:
        A :class:`MissProfile` with per-level access and miss rates.
    """
    reuse_refs = mem_refs_per_instr * (1.0 - behavior.streaming)
    stream_refs = mem_refs_per_instr * behavior.streaming

    # Cumulative per-level hit fractions, then inclusion clamping from the
    # outermost level inward: in an inclusive hierarchy a line can only live
    # in L2 if it also lives in L3, so losing LLC share raises *every*
    # inner level's misses (Fig. 11b), while losing SMT-shared L2 share
    # leaves LLC misses untouched (Fig. 11d).
    raw = [
        cumulative_hit(behavior, i, spec, capacity)
        for i, (spec, capacity) in enumerate(levels)
    ]
    clamped = list(raw)
    for i in range(len(clamped) - 2, -1, -1):
        clamped[i] = min(clamped[i], clamped[i + 1])

    profile = MissProfile()
    prev_g = 0.0
    for g in clamped:
        profile.accesses.append(reuse_refs * (1.0 - prev_g) + stream_refs)
        profile.misses.append(reuse_refs * (1.0 - g) + stream_refs)
        prev_g = g
    return profile


class CacheHierarchy:
    """All cache instances of a machine, built from arch + PU layout.

    Args:
        arch: the micro-architecture (level specs and scopes).
        pu_to_core: mapping of PU id -> core id.
        core_to_socket: mapping of core id -> socket id.
    """

    def __init__(
        self,
        arch: ArchModel,
        pu_to_core: dict[int, int],
        core_to_socket: dict[int, int],
    ) -> None:
        self.arch = arch
        self.instances: list[CacheInstance] = []
        self._by_pu: dict[int, list[CacheInstance]] = {pu: [] for pu in pu_to_core}
        for level_index, spec in enumerate(arch.cache_levels):
            groups: dict[object, set[int]] = {}
            for pu, core in pu_to_core.items():
                if spec.scope is CacheScope.PER_PU:
                    key: object = ("pu", pu)
                elif spec.scope is CacheScope.PER_CORE:
                    key = ("core", core)
                elif spec.scope is CacheScope.PER_SOCKET:
                    key = ("socket", core_to_socket[core])
                else:  # pragma: no cover - enum is exhaustive
                    raise SimulationError(f"unhandled scope {spec.scope}")
                groups.setdefault(key, set()).add(pu)
            for pus in groups.values():
                inst = CacheInstance(spec, level_index, frozenset(pus))
                self.instances.append(inst)
                for pu in pus:
                    self._by_pu[pu].append(inst)
        for pu, insts in self._by_pu.items():
            insts.sort(key=lambda i: i.level_index)

    def path_for_pu(self, pu_id: int) -> list[CacheInstance]:
        """Cache instances a reference from ``pu_id`` traverses, L1 first."""
        try:
            return self._by_pu[pu_id]
        except KeyError as exc:
            raise SimulationError(f"unknown PU {pu_id}") from exc

    def levels_with_capacity(
        self,
        pu_id: int,
        pressures: dict[CacheInstance, dict[int, float]] | None,
        task_key: int,
    ) -> list[tuple[CacheLevelSpec, float]]:
        """Resolve each level on ``pu_id``'s path to an effective capacity.

        ``pressures`` maps instance -> {task_key: refs/sec}; ``None`` means
        uncontended (full capacity at every level).
        """
        out: list[tuple[CacheLevelSpec, float]] = []
        for inst in self.path_for_pu(pu_id):
            if pressures is None:
                out.append((inst.spec, float(inst.spec.size)))
            else:
                cap = inst.effective_capacity(pressures.get(inst, {}), task_key)
                out.append((inst.spec, cap))
        return out
