"""Event name resolution."""

import pytest

from repro.errors import EventError
from repro.perf import abi
from repro.perf.events import event_names, resolve_event, spec_for_sim_event
from repro.sim import NEHALEM, PPC970
from repro.sim.events import Event


class TestResolve:
    def test_generic_events(self):
        spec = resolve_event("cycles")
        assert spec.sim_event is Event.CYCLES
        assert spec.type_id is abi.PerfTypeId.HARDWARE
        assert spec.generic

    def test_case_insensitive(self):
        assert resolve_event("CYCLES").name == "cycles"

    def test_aliases(self):
        assert resolve_event("cpu-cycles").name == "cycles"
        assert resolve_event("insn").name == "instructions"
        assert resolve_event("llc-misses").name == "cache-misses"

    def test_raw_event_has_raw_type(self):
        spec = resolve_event("fp-assist")
        assert spec.type_id is abi.PerfTypeId.RAW
        assert not spec.generic

    def test_unknown_raises(self):
        with pytest.raises(EventError):
            resolve_event("teleportations")

    def test_arch_gating(self):
        """PPC970's PMU has no FP-assist or L3 events."""
        resolve_event("fp-assist", NEHALEM)
        with pytest.raises(EventError):
            resolve_event("fp-assist", PPC970)
        with pytest.raises(EventError):
            resolve_event("l3-misses", PPC970)

    def test_generic_always_allowed(self):
        for name in ("cycles", "instructions", "cache-misses"):
            resolve_event(name, PPC970)

    def test_event_names_sorted_and_complete(self):
        names = event_names()
        assert names == sorted(names)
        assert "cycles" in names and "fp-assist" in names

    def test_reverse_lookup(self):
        assert spec_for_sim_event(Event.FP_ASSIST).name == "fp-assist"

    def test_every_sim_event_named(self):
        for event in Event:
            spec_for_sim_event(event)
