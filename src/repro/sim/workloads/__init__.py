"""Canned workload models calibrated against the paper's experiments.

* :mod:`repro.sim.workloads.microbench` — the Figure 4/5 floating-point
  micro-benchmark (Table 1).
* :mod:`repro.sim.workloads.revolve` — the biologists' R evolutionary
  algorithm of §3.1 (Figure 3).
* :mod:`repro.sim.workloads.spec` — SPEC CPU2006 phase models
  (Figures 6–9, 11).
* :mod:`repro.sim.workloads.datacenter` — data-center node populations
  (Figures 1 and 10).
"""

from repro.sim.workloads import datacenter, microbench, revolve, spec

__all__ = ["datacenter", "microbench", "revolve", "spec"]
