"""Property-based tests on the tool layer (hypothesis)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batchparse import parse_blocks
from repro.core.expr import Expression
from repro.core.recorder import Recorder, Sample
from repro.errors import ExprError
from repro.sim.workload import Phase, Workload
from repro.util.tabulate import Align, ColumnFormat, render_table

# ---------------------------------------------------------------------------
# Expression fuzzing: random ASTs against a Python oracle
# ---------------------------------------------------------------------------

_leaf = st.one_of(
    st.floats(min_value=0.1, max_value=1e4).map(lambda v: f"{v:.4f}"),
    st.sampled_from(["a", "b", "c"]),
)


@st.composite
def _expr_text(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return draw(_leaf)
    op = draw(st.sampled_from(["+", "-", "*", "/"]))
    left = draw(_expr_text(depth=depth + 1))
    right = draw(_expr_text(depth=depth + 1))
    return f"({left} {op} {right})"


@given(_expr_text(), st.floats(0.5, 100), st.floats(0.5, 100), st.floats(0.5, 100))
@settings(max_examples=200)
def test_expression_fuzz_matches_python(text, a, b, c):
    env = {"a": a, "b": b, "c": c}
    expr = Expression(text)
    got = expr.evaluate(env)
    try:
        expected = eval(text, {"__builtins__": {}}, env)  # oracle, same AST
    except ZeroDivisionError:
        assert math.isnan(got)  # our evaluator's defined behaviour
        return
    if math.isnan(got):
        return  # nested division blow-up already folded to NaN
    assert got == pytest.approx(expected, rel=1e-9)


@given(st.text(max_size=30))
@settings(max_examples=300)
def test_expression_never_crashes_unexpectedly(text):
    """Arbitrary input either parses or raises ExprError — nothing else."""
    try:
        Expression(text)
    except ExprError:
        pass


# ---------------------------------------------------------------------------
# Recorder CSV round trip
# ---------------------------------------------------------------------------

_name = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789_.", min_size=1, max_size=12
)

_samples = st.lists(
    st.builds(
        Sample,
        time=st.floats(0, 1e6, allow_nan=False),
        pid=st.integers(1, 1 << 22),
        comm=_name,
        user=_name,
        cpu_pct=st.floats(0, 100, allow_nan=False),
        deltas=st.dictionaries(
            st.sampled_from(["cycles", "instructions", "cache-misses"]),
            st.floats(0, 1e15, allow_nan=False),
            max_size=3,
        ),
        values=st.just({}),
    ),
    max_size=20,
)


@given(_samples)
@settings(max_examples=60)
def test_recorder_csv_roundtrip(samples):
    recorder = Recorder(samples=list(samples))
    back = Recorder.from_csv(recorder.to_csv())
    assert len(back.samples) == len(recorder.samples)
    for original, restored in zip(recorder.samples, back.samples):
        assert restored.pid == original.pid
        assert restored.comm == original.comm
        assert restored.cpu_pct == pytest.approx(original.cpu_pct, abs=0.01)
        for key, value in original.deltas.items():
            assert restored.deltas[key] == pytest.approx(
                value, rel=1e-5, abs=1e-6
            )


# ---------------------------------------------------------------------------
# Batch format: rendered tables always re-parse
# ---------------------------------------------------------------------------

@given(
    st.lists(
        st.tuples(
            st.integers(1, 1 << 22),          # pid
            st.floats(0, 100, allow_nan=False),  # cpu
            st.floats(0, 4, allow_nan=False),    # ipc
            _name,                             # command
        ),
        min_size=1,
        max_size=8,
    ),
    st.floats(0.1, 1e5, allow_nan=False),
)
@settings(max_examples=60)
def test_batch_blocks_always_reparse(rows, time):
    cols = [
        ColumnFormat("PID", 7, render=lambda v: str(int(v))),
        ColumnFormat("%CPU", 6, render=lambda v: f"{v:.1f}"),
        ColumnFormat("IPC", 5, render=lambda v: f"{v:.2f}"),
        ColumnFormat("COMMAND", 15, align=Align.LEFT, truncate=True),
    ]
    table = render_table(cols, [list(r) for r in rows])
    text = f"--- t={time:.1f}s interval=2.0s ---\n{table}\n"
    blocks = parse_blocks(text)
    assert len(blocks) == 1
    assert len(blocks[0].rows) == len(rows)
    for (pid, cpu, ipc, comm), parsed in zip(rows, blocks[0].rows):
        assert parsed.pid == pid
        assert parsed["IPC"] == pytest.approx(ipc, abs=0.0051)


# ---------------------------------------------------------------------------
# Workload.locate: total consumption is exact
# ---------------------------------------------------------------------------

@st.composite
def _workloads(draw):
    from repro.sim.cache import MemoryBehavior
    from repro.sim.isa import InstructionMix

    budgets = draw(
        st.lists(st.floats(1.0, 1e9), min_size=1, max_size=5)
    )
    repeat = draw(st.integers(1, 3))
    phases = tuple(
        Phase(
            name=f"p{i}",
            instructions=b,
            mix=InstructionMix.of(int_alu=1.0),
            memory=MemoryBehavior(working_set=64),
            noise=0.0,
        )
        for i, b in enumerate(budgets)
    )
    return Workload("w", phases, repeat=repeat)


@given(_workloads(), st.floats(0, 1.99))
@settings(max_examples=100)
def test_workload_locate_consistency(workload, fraction):
    total = workload.total_instructions
    retired = fraction * total / 2  # strictly inside the run
    located = workload.locate(retired)
    assert located is not None
    phase, remaining = located
    assert phase in workload.phases
    # locate() works to a *relative* epsilon (1e-12 of the cursor), so the
    # checks below must allow ULP-scale noise at the workload's magnitude.
    slack = 1e-9 * max(total, 1.0)
    assert 0 < remaining <= phase.instructions + slack
    # Consuming `remaining` lands on a boundary (next phase at full
    # budget), a hair short of one (same phase, sub-slack tail), or the end.
    boundary = retired + remaining
    after = workload.locate(boundary)
    if after is None:
        assert boundary >= total - slack
    else:
        next_phase, next_remaining = after
        assert (
            next_remaining >= next_phase.instructions - slack
            or (next_phase is phase and next_remaining <= slack)
        )


@given(_workloads())
def test_workload_walk_terminates_exactly(workload):
    """Walking phase-by-phase consumes exactly total_instructions."""
    retired = 0.0
    for _ in range(1000):
        located = workload.locate(retired)
        if located is None:
            break
        _, remaining = located
        retired += remaining
    else:
        pytest.fail("workload walk did not terminate")
    assert retired == pytest.approx(workload.total_instructions, rel=1e-9)
