"""Roofline selection (§2.6) and recording persistence."""

import pytest

from repro import Options, SimHost, TipTop
from repro.analysis.roofline import (
    MachineRoofline,
    RooflinePoint,
    machine_roofline,
    point_from_deltas,
    select_processor,
)
from repro.core.recorder import Recorder
from repro.core.screen import get_screen
from repro.errors import ReproError
from repro.sim import CORE2, NEHALEM, SimMachine
from repro.sim.workload import Workload
from repro.sim.workloads import spec


class TestMachineRoofline:
    def test_ridge(self):
        m = MachineRoofline("m", peak_flops=8e9, peak_bandwidth=4e9)
        assert m.ridge_intensity == 2.0

    def test_attainable_regimes(self):
        m = MachineRoofline("m", peak_flops=8e9, peak_bandwidth=4e9)
        assert m.attainable(1.0) == 4e9  # bandwidth-bound
        assert m.attainable(10.0) == 8e9  # compute-bound
        assert m.bound(1.0) == "memory"
        assert m.bound(10.0) == "compute"

    def test_validation(self):
        with pytest.raises(ReproError):
            MachineRoofline("m", peak_flops=0, peak_bandwidth=1)
        m = MachineRoofline("m", peak_flops=1, peak_bandwidth=1)
        with pytest.raises(ReproError):
            m.attainable(-1)

    def test_from_arch(self):
        r = machine_roofline(NEHALEM)
        assert r.name == "nehalem"
        assert r.peak_flops == pytest.approx(2 * NEHALEM.freq_hz)


class TestPointFromDeltas:
    def test_intensity(self):
        deltas = {"fp-operations": 6400.0, "cache-misses": 10.0}
        p = point_from_deltas(deltas, interval=2.0)
        assert p.operational_intensity == pytest.approx(10.0)  # 6400/(10*64)
        assert p.flops_per_sec == pytest.approx(3200.0)

    def test_no_traffic_is_infinite_intensity(self):
        p = point_from_deltas(
            {"fp-operations": 100.0, "cache-misses": 0.0}, interval=1.0
        )
        assert p.operational_intensity == float("inf")

    def test_missing_counter(self):
        with pytest.raises(ReproError):
            point_from_deltas({"fp-operations": 1.0}, interval=1.0)

    def test_zero_interval(self):
        with pytest.raises(ReproError):
            point_from_deltas(
                {"fp-operations": 1.0, "cache-misses": 1.0}, interval=0.0
            )


class TestSelection:
    def test_memory_bound_app_prefers_bandwidth(self):
        point = RooflinePoint(operational_intensity=0.1, flops_per_sec=1e9)
        big_bw = MachineRoofline("bw", peak_flops=5e9, peak_bandwidth=40e9)
        big_fp = MachineRoofline("fp", peak_flops=50e9, peak_bandwidth=10e9)
        winner, table = select_processor(point, [big_bw, big_fp])
        assert winner.name == "bw"
        assert table["bw"] > table["fp"]

    def test_compute_bound_app_prefers_flops(self):
        point = RooflinePoint(operational_intensity=100.0, flops_per_sec=1e9)
        big_bw = MachineRoofline("bw", peak_flops=5e9, peak_bandwidth=40e9)
        big_fp = MachineRoofline("fp", peak_flops=50e9, peak_bandwidth=10e9)
        winner, _ = select_processor(point, [big_bw, big_fp])
        assert winner.name == "fp"

    def test_empty_candidates(self):
        with pytest.raises(ReproError):
            select_processor(RooflinePoint(1.0, 1.0), [])

    def test_end_to_end_from_mix_screen(self):
        """The §2.6 workflow: watch the mix screen, place the app."""
        machine = SimMachine(NEHALEM, tick=0.5, seed=2)
        phase = spec.workload("470.lbm").phases[0].with_budget(float("inf"))
        proc = machine.spawn("lbm", Workload("lbm", (phase,)))
        app = TipTop(SimHost(machine), Options(delay=5.0), get_screen("mix"))
        with app:
            recorder = app.run_collect(3)
        sample = recorder.for_pid(proc.pid)[-1]
        point = point_from_deltas(sample.deltas, interval=5.0)
        # lbm streams: low operational intensity, memory-bound everywhere.
        nehalem = machine_roofline(NEHALEM)
        assert point.operational_intensity < nehalem.ridge_intensity
        assert nehalem.bound(point.operational_intensity) == "memory"


class TestRecorderCsv:
    def _recording(self):
        machine = SimMachine(NEHALEM, tick=0.5, seed=4)
        phase = spec.workload("456.hmmer").phases[0].with_budget(float("inf"))
        machine.spawn("a", Workload("a", (phase,)))
        machine.spawn("b", Workload("b", (phase,)))
        app = TipTop(SimHost(machine), Options(delay=2.0))
        with app:
            return app.run_collect(3)

    def test_roundtrip(self):
        recorder = self._recording()
        text = recorder.to_csv()
        back = Recorder.from_csv(text)
        assert len(back.samples) == len(recorder.samples)
        assert back.pids() == recorder.pids()
        pid = recorder.pids()[0]
        assert back.total_delta(pid, "instructions") == pytest.approx(
            recorder.total_delta(pid, "instructions"), rel=1e-5
        )

    def test_header_shape(self):
        text = self._recording().to_csv()
        header = text.splitlines()[0].split(",")
        assert header[:5] == ["time", "pid", "comm", "user", "cpu_pct"]
        assert "instructions" in header

    def test_empty_roundtrip(self):
        assert Recorder.from_csv("").samples == []

    def test_bad_header(self):
        with pytest.raises(ValueError):
            Recorder.from_csv("nope,nope\n1,2\n")

    def test_bad_row(self):
        recorder = self._recording()
        text = recorder.to_csv() + "1,2,3\n"
        with pytest.raises(ValueError):
            Recorder.from_csv(text)
