"""The experiment runner: plan, execute (optionally in parallel), emit.

Execution order is an implementation detail: cells are independent,
each is a pure function of its (config, workload, seed) triple, and the
artifact is assembled in canonical index order. ``jobs > 1`` fans cells
out over forked workers; because every worker computes exactly the same
pure function, the artifact bytes cannot depend on the worker count —
the property ``tests/test_experiments_runner.py`` pins.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from repro.errors import ExperimentError

from repro.experiments import report
from repro.experiments.executor import run_cell
from repro.experiments.matrix import Cell, plan
from repro.experiments.spec import ExperimentSpec


def _execute_one(cell: Cell) -> tuple[int, dict]:
    return cell.index, run_cell(cell)


def run_cells(
    spec: ExperimentSpec, cells: list[Cell], *, jobs: int = 1
) -> list[dict]:
    """Execute ``cells``; returns metrics in canonical index order."""
    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    by_index: dict[int, dict] = {}
    if jobs == 1 or len(cells) <= 1:
        for cell in cells:
            by_index[cell.index] = run_cell(cell)
    else:
        # Fork keeps the (already imported, already validated) spec and
        # workload registries without re-pickling module state.
        ctx = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(cells)), mp_context=ctx
        ) as pool:
            for index, metrics in pool.map(_execute_one, cells):
                by_index[index] = metrics
    return [by_index[cell.index] for cell in sorted(cells, key=lambda c: c.index)]


def run(
    spec: ExperimentSpec,
    *,
    jobs: int = 1,
    out_dir: Path | str | None = None,
    formats: tuple[str, ...] = report.FORMATS,
) -> dict:
    """Run the whole experiment; returns the artifact dict.

    When ``out_dir`` is given the artifact is also written there (one
    directory per experiment name), plus a ``timings.txt`` side channel
    with wall-clock numbers that deliberately never enter the artifact.
    """
    for fmt in formats:
        if fmt not in report.FORMATS:
            raise ExperimentError(
                f"unknown format {fmt!r}; known: {list(report.FORMATS)}"
            )
    cells = plan(spec)
    start = time.perf_counter()
    results = run_cells(spec, cells, jobs=jobs)
    wall = time.perf_counter() - start
    artifact = report.build_artifact(spec, cells, results)
    if out_dir is not None:
        report.write_artifacts(artifact, out_dir, formats)
        timing_path = Path(out_dir) / spec.name / "timings.txt"
        timing_path.write_text(
            f"cells: {len(cells)}\njobs: {jobs}\nwall_seconds: {wall:.3f}\n"
        )
    return artifact
