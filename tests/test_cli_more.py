"""CLI flag coverage beyond the basics."""

import pytest

from repro.core.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.delay == 2.0
        assert args.iterations == 10
        assert not args.batch
        assert args.screen == "default"

    def test_repeatable_pid(self):
        args = build_parser().parse_args(["-p", "5", "-p", "9"])
        assert args.pid == [5, 9]

    def test_threads_flag(self):
        assert build_parser().parse_args(["-H"]).threads


class TestRuns:
    def test_uid_filter_empties_view(self, capsys):
        # Fig. 1's demo users have generated uids; uid 1 matches none.
        assert main(["--sim", "-b", "-n", "1", "-u", "1"]) == 0
        out = capsys.readouterr().out
        assert "process1" not in out

    def test_pid_filter(self, capsys):
        assert main(["--sim", "-b", "-n", "1", "-p", "1000"]) == 0
        out = capsys.readouterr().out
        assert "process1" in out
        assert "process2" not in out

    def test_per_thread_mode_runs(self, capsys):
        assert main(["--sim", "-b", "-n", "1", "-H"]) == 0
        assert "process1" in capsys.readouterr().out

    def test_latency_screen(self, capsys):
        assert main(["--sim", "-b", "-n", "1", "-S", "latency"]) == 0
        assert "MEMLAT" in capsys.readouterr().out

    def test_mix_screen(self, capsys):
        assert main(["--sim", "-b", "-n", "1", "-S", "mix"]) == 0
        out = capsys.readouterr().out
        for header in ("FPI", "LPI", "BPI", "FPC", "LPC"):
            assert header in out

    def test_invalid_delay_rejected_by_options(self, capsys):
        assert main(["--sim", "-b", "-n", "1", "-d", "0"]) == 1
        assert "delay" in capsys.readouterr().err
