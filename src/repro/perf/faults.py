"""Deterministic fault-injection plans for the perf substrate.

Real monitors race the kernel constantly: tasks die between listing and
attach (ESRCH), fd tables fill up (EMFILE), syscalls are interrupted
(EINTR) or asked to retry (EAGAIN), ``read(2)`` occasionally returns short
or torn values, and multiplexed counters can be starved off the PMU for
whole intervals. "Measuring Software Performance on Linux" (Becker &
Chakraborty, 2018) argues counter tooling is only trustworthy once these
perturbation modes are characterised; tiptop's own promise — an
unprivileged monitor that keeps working while the kernel misbehaves —
therefore needs a first-class, *replayable* fault model rather than
ad-hoc test wrappers.

A :class:`FaultPlan` is a seeded schedule of such failures, wired natively
into :class:`~repro.perf.simbackend.SimBackend`. Determinism has two
layers:

* **Rate specs** draw one uniform variate per backend call, derived by
  hashing ``(seed, tid, op, per-(tid, op) call index)``. Because the hash
  never looks at *global* call ordering, the schedule a given task
  experiences is independent of how other tasks' calls interleave — which
  is exactly what lets property tests assert that tasks the plan never
  touched produce bitwise-identical samples to a fault-free run.
* **Indexed specs** (``at_calls``) fire on exact per-op global call
  indices (1-based), for targeted regression tests that need "the third
  open fails".

Replaying a failure schedule is just constructing the same plan again:
``FaultPlan.from_seed(seed)`` twice gives two identical schedules (the
``--chaos SEED`` CLI flag does precisely this).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.errors import (
    ConfigError,
    CorruptReadError,
    FdLimitError,
    NoSuchTaskError,
    PerfBusyError,
    PerfError,
    PerfInterruptedError,
)

#: Backend operations a spec may target ("*" matches all of them).
OPS = ("open", "enable", "disable", "reset", "read", "close")

#: Injectable error classes, in errno terms where one exists.
#:
#: ========== ===================================================
#: class      meaning
#: ========== ===================================================
#: esrch      target task vanished (ESRCH)
#: emfile     fd table full (EMFILE/ENFILE)
#: eintr      syscall interrupted by a signal (EINTR)
#: eagain     kernel asks to retry (EAGAIN/EBUSY)
#: corrupt    short/torn counter read — garbage value
#: starve     multiplex starvation: the counter never reached the
#:            PMU this interval, so the read shows no progress
#: ========== ===================================================
ERROR_CLASSES = ("esrch", "emfile", "eintr", "eagain", "corrupt", "starve")

#: Error classes that raise (``starve`` perturbs the reading instead).
_RAISING: dict[str, type[PerfError]] = {
    "esrch": NoSuchTaskError,
    "emfile": FdLimitError,
    "eintr": PerfInterruptedError,
    "eagain": PerfBusyError,
    "corrupt": CorruptReadError,
}


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule: which op fails how, and how often.

    Attributes:
        op: backend operation ("open", "read", ... or "*" for any).
        error: one of :data:`ERROR_CLASSES`.
        rate: per-call probability in [0, 1] (ignored when ``at_calls``
            is given).
        at_calls: exact 1-based per-op global call indices to fire on
            (deterministic triggering for targeted tests).
    """

    op: str
    error: str
    rate: float = 0.0
    at_calls: frozenset[int] | None = None

    def __post_init__(self) -> None:
        if self.op != "*" and self.op not in OPS:
            raise ConfigError(
                f"fault spec targets unknown op {self.op!r} (know {OPS})"
            )
        if self.error not in ERROR_CLASSES:
            raise ConfigError(
                f"fault spec has unknown error class {self.error!r} "
                f"(know {ERROR_CLASSES})"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigError(
                f"fault rate must be in [0, 1], got {self.rate}"
            )
        if self.at_calls is not None and any(i < 1 for i in self.at_calls):
            raise ConfigError("at_calls indices are 1-based")

    def matches_op(self, op: str) -> bool:
        """Whether this spec applies to backend operation ``op``."""
        return self.op == "*" or self.op == op


def default_specs(intensity: float = 1.0) -> tuple[FaultSpec, ...]:
    """The standard chaos mixture, every class represented.

    ``intensity`` scales all rates (1.0 gives a few-percent failure rate
    per call — noisy enough to exercise every error path within a short
    run, quiet enough that most tasks survive).
    """
    if intensity < 0:
        raise ConfigError(f"intensity must be >= 0, got {intensity}")

    def r(rate: float) -> float:
        return min(1.0, rate * intensity)

    return (
        FaultSpec("open", "eagain", r(0.04)),
        FaultSpec("open", "esrch", r(0.01)),
        FaultSpec("open", "emfile", r(0.01)),
        FaultSpec("enable", "eintr", r(0.01)),
        FaultSpec("read", "eintr", r(0.02)),
        FaultSpec("read", "eagain", r(0.01)),
        FaultSpec("read", "corrupt", r(0.01)),
        FaultSpec("read", "esrch", r(0.005)),
        FaultSpec("read", "starve", r(0.03)),
        FaultSpec("close", "eintr", r(0.01)),
    )


def _unit(seed: int, tid: int, op: str, index: int) -> float:
    """Deterministic uniform variate in [0, 1) for one backend call.

    crc32 over a canonical key string: platform-independent, stable across
    processes (unlike ``hash``), and a function of the *task's own* call
    history only — global interleaving cannot shift it.
    """
    key = f"{seed}:{tid}:{op}:{index}".encode()
    return zlib.crc32(key) / 2**32


@dataclass
class PlanStats:
    """Counters the plan keeps while injecting (for tests and reports)."""

    calls: dict[str, int] = field(default_factory=dict)
    injected: dict[tuple[str, str], int] = field(default_factory=dict)
    touched_tids: set[int] = field(default_factory=set)

    def total_injected(self) -> int:
        """Faults delivered so far, over all ops and classes."""
        return sum(self.injected.values())


class FaultPlan:
    """A seeded, replayable schedule of perf-layer failures.

    Args:
        seed: master seed; two plans with equal seed and specs make
            identical decisions for identical call sequences.
        specs: the injection rules. The rates of rules matching one op
            partition the unit interval, so their sum per op must stay
            <= 1.

    Raises:
        ConfigError: overlapping rates exceeding probability 1 for an op.
    """

    def __init__(
        self, seed: int, specs: tuple[FaultSpec, ...] | list[FaultSpec] = ()
    ) -> None:
        self.seed = seed
        self.specs: tuple[FaultSpec, ...] = tuple(specs)
        self._check_rates(self.specs)
        self.stats = PlanStats()
        # per-(tid, op) indices drive the hash; per-op global indices
        # drive at_calls triggering.
        self._tid_op_index: dict[tuple[int, str], int] = {}
        self._op_index: dict[str, int] = {}

    @staticmethod
    def _check_rates(specs: tuple[FaultSpec, ...]) -> None:
        for op in OPS:
            total = sum(
                s.rate
                for s in specs
                if s.at_calls is None and s.matches_op(op)
            )
            if total > 1.0 + 1e-9:
                raise ConfigError(
                    f"fault rates for op {op!r} sum to {total:.3f} > 1"
                )

    @classmethod
    def from_seed(cls, seed: int, intensity: float = 1.0) -> "FaultPlan":
        """The default chaos mixture at ``intensity``, seeded."""
        return cls(seed, default_specs(intensity))

    def add(self, spec: FaultSpec) -> None:
        """Append one rule (targeted tests build schedules incrementally)."""
        specs = (*self.specs, spec)
        self._check_rates(specs)
        self.specs = specs

    def call_count(self, op: str) -> int:
        """Global calls of ``op`` decided so far (next call is +1)."""
        return self._op_index.get(op, 0)

    def decide(self, op: str, tid: int) -> str | None:
        """Record one backend call; return the error class to inject.

        Returns:
            One of :data:`ERROR_CLASSES`, or None for a clean call.
        """
        op_index = self._op_index.get(op, 0) + 1
        self._op_index[op] = op_index
        tid_key = (tid, op)
        tid_index = self._tid_op_index.get(tid_key, 0) + 1
        self._tid_op_index[tid_key] = tid_index
        self.stats.calls[op] = self.stats.calls.get(op, 0) + 1

        decision: str | None = None
        for spec in self.specs:
            if spec.at_calls is not None and spec.matches_op(op):
                if op_index in spec.at_calls:
                    decision = spec.error
                    break
        if decision is None:
            u = _unit(self.seed, tid, op, tid_index)
            for spec in self.specs:
                if spec.at_calls is not None or not spec.matches_op(op):
                    continue
                if u < spec.rate:
                    decision = spec.error
                    break
                u -= spec.rate
        if decision is not None:
            key = (op, decision)
            self.stats.injected[key] = self.stats.injected.get(key, 0) + 1
            self.stats.touched_tids.add(tid)
        return decision

    def raise_for(self, op: str, tid: int) -> str | None:
        """Decide for one call, raising when the class is an exception.

        Returns:
            The non-raising decision ("starve") or None; raising classes
            never return.

        Raises:
            NoSuchTaskError / FdLimitError / PerfInterruptedError /
            PerfBusyError / CorruptReadError: per the injected class.
        """
        decision = self.decide(op, tid)
        if decision is None or decision == "starve":
            return decision
        raise _RAISING[decision](
            f"injected {decision} on {op} (task {tid}, seed {self.seed})"
        )

    def fork(self) -> "FaultPlan":
        """A fresh plan with the same seed and specs (replay helper)."""
        return FaultPlan(self.seed, self.specs)
