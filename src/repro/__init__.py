"""Reproduction of *Tiptop: Hardware Performance Counters for the Masses*.

Erven Rohou, INRIA RR-7789 (2011) / ICPP 2012.

Subpackages:

* :mod:`repro.core` — the tiptop tool: sampler, screens, live/batch modes.
* :mod:`repro.perf` — the perf_event substrate (real syscall + simulated
  kernel backends).
* :mod:`repro.procfs` — /proc parsing (real and simulated).
* :mod:`repro.sim` — the simulated hardware + OS the experiments run on.
* :mod:`repro.analysis` — phase detection, interference, validation.
* :mod:`repro.pin` — Pin-like instrumentation for the §2.4/§2.5 baselines.

Quickstart::

    from repro import TipTop, SimHost, Options
    from repro.sim.workloads import datacenter

    machine = datacenter.make_node()
    datacenter.populate_fig1(machine)
    with TipTop(SimHost(machine), Options(delay=5.0)) as app:
        app.run_batch(iterations=3)
"""

from repro.core.app import RealHost, SimHost, TipTop
from repro.core.options import Options
from repro.core.recorder import Recorder
from repro.core.screen import Screen, builtin_screens, get_screen, screen_from_config
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "Options",
    "RealHost",
    "Recorder",
    "ReproError",
    "Screen",
    "SimHost",
    "TipTop",
    "builtin_screens",
    "get_screen",
    "screen_from_config",
    "__version__",
]
