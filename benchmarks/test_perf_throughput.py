"""Hot-path throughput: batched ``run_ticks`` vs the scalar tick loop.

The paper's tool promises monitoring overhead in the noise (§2.5); our
bottleneck is the simulation itself. This benchmark drives the same
200-process synthetic population over 1000 ticks through both machine
advance paths and records the speedup in ``BENCH_throughput.json`` so
future PRs can track the trajectory.

Both machines are warmed for ``WARMUP_TICKS`` first: the batched path's
contention/rate memos key on object identities that converge once the
scheduler's round-robin orbit has revisited every co-schedule a few times,
and steady state is the regime a long-running monitor lives in. Bitwise
equivalence of the two paths is proven separately by
``tests/test_run_ticks_equivalence.py``; this file only times them.

``REPRO_BENCH_SMOKE=1`` shrinks the run for CI smoke coverage and skips
the speedup assertion (shared CI runners make timing ratios unreliable).
"""

from __future__ import annotations

import json
import os
import time

from _harness import OUT_DIR

from repro.sim.arch import NEHALEM
from repro.sim.events import Event
from repro.sim.machine import SimMachine
from repro.sim.workloads import synthetic

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
PROCESSES = 200
WARMUP_TICKS = 30 if SMOKE else 300
MEASURED_TICKS = 100 if SMOKE else 1000
MIN_SPEEDUP = 3.0

#: Ten counters per task, the width of a realistic custom screen.
EVENTS = (
    Event.INSTRUCTIONS,
    Event.CYCLES,
    Event.CACHE_REFERENCES,
    Event.CACHE_MISSES,
    Event.BRANCH_INSTRUCTIONS,
    Event.BRANCH_MISSES,
    Event.L1D_ACCESSES,
    Event.L1D_MISSES,
    Event.LOADS,
    Event.STORES,
)


def build_machine() -> SimMachine:
    """A 4-core node oversubscribed 50:1 with monitored synthetic tasks."""
    machine = SimMachine(
        NEHALEM, sockets=1, cores_per_socket=4, tick=0.1, seed=7
    )
    for spec in synthetic.generate_specs(PROCESSES, seed=3):
        workload = synthetic.build(spec, NEHALEM, seed=11)
        proc = machine.spawn(spec.name, workload, nthreads=1, duty_cycle=1.0)
        for event in EVENTS:
            machine.counters.open(event, proc.pid, 0)
    return machine


#: Best-of-N timing damps scheduler noise on shared machines.
REPEATS = 1 if SMOKE else 2


def _time_scalar() -> float:
    best = float("inf")
    for _ in range(REPEATS):
        machine = build_machine()
        for _ in range(WARMUP_TICKS):
            machine._step(machine.tick)
        t0 = time.perf_counter()
        for _ in range(MEASURED_TICKS):
            machine._step(machine.tick)
        best = min(best, time.perf_counter() - t0)
    return best


def _time_batched() -> float:
    best = float("inf")
    for _ in range(REPEATS):
        machine = build_machine()
        machine.run_ticks(WARMUP_TICKS)
        t0 = time.perf_counter()
        machine.run_ticks(MEASURED_TICKS)
        best = min(best, time.perf_counter() - t0)
    return best


def test_throughput_speedup():
    scalar_seconds = _time_scalar()
    vectorized_seconds = _time_batched()
    speedup = scalar_seconds / vectorized_seconds
    payload = {
        "scenario": {
            "arch": NEHALEM.name,
            "sockets": 1,
            "cores_per_socket": 4,
            "tick": 0.1,
            "processes": PROCESSES,
            "events_per_task": len(EVENTS),
            "warmup_ticks": WARMUP_TICKS,
            "measured_ticks": MEASURED_TICKS,
            "smoke": SMOKE,
        },
        "scalar_seconds": round(scalar_seconds, 6),
        "vectorized_seconds": round(vectorized_seconds, 6),
        "speedup": round(speedup, 3),
        "ticks_per_second_vectorized": round(
            MEASURED_TICKS / vectorized_seconds, 1
        ),
    }
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_throughput.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    print(
        f"\nscalar {scalar_seconds:.3f}s  vectorized {vectorized_seconds:.3f}s"
        f"  speedup {speedup:.2f}x"
    )
    assert vectorized_seconds > 0
    if not SMOKE:
        assert speedup >= MIN_SPEEDUP, (
            f"vectorized path is only {speedup:.2f}x faster "
            f"(scalar {scalar_seconds:.3f}s, vectorized {vectorized_seconds:.3f}s)"
        )
