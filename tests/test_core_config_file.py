"""Screen configuration files (the XML-config equivalent)."""

import json

import pytest

from repro.core.cli import main
from repro.core.config_file import find_screen, load_screens, parse_screens
from repro.errors import ConfigError

GOOD = {
    "screens": [
        {
            "name": "hpc",
            "description": "roofline-ish rates",
            "columns": [
                {"header": "FPC", "expr": "fp_operations / cycles"},
                {"header": "LPC", "expr": "loads / cycles"},
            ],
        },
        {
            "name": "tiny",
            "bare": True,
            "columns": [{"header": "IPC", "expr": "instructions / cycles"}],
        },
    ]
}


class TestParse:
    def test_screens_list(self):
        screens = parse_screens(GOOD)
        assert [s.name for s in screens] == ["hpc", "tiny"]

    def test_single_dict(self):
        screens = parse_screens(GOOD["screens"][0])
        assert screens[0].name == "hpc"

    def test_bare_list(self):
        screens = parse_screens(GOOD["screens"])
        assert len(screens) == 2

    def test_rejects_scalar(self):
        with pytest.raises(ConfigError):
            parse_screens("nope")

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            parse_screens({"screens": []})

    def test_rejects_duplicates(self):
        dup = [GOOD["screens"][0], GOOD["screens"][0]]
        with pytest.raises(ConfigError):
            parse_screens(dup)

    def test_rejects_unknown_identifier(self):
        bad = {
            "name": "x",
            "columns": [{"header": "X", "expr": "tachyons / cycles"}],
        }
        with pytest.raises(ConfigError):
            parse_screens(bad)


class TestLoad:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "screens.json"
        path.write_text(json.dumps(GOOD))
        screens = load_screens(path)
        hpc = find_screen(screens, "hpc")
        assert {e.name for e in hpc.required_events()} == {
            "fp-operations", "loads", "cycles",
        }

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError):
            load_screens(tmp_path / "absent.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError):
            load_screens(path)

    def test_find_missing_name(self, tmp_path):
        path = tmp_path / "screens.json"
        path.write_text(json.dumps(GOOD))
        with pytest.raises(ConfigError):
            find_screen(load_screens(path), "absent")


class TestCliIntegration:
    def test_screen_file_flag(self, tmp_path, capsys):
        path = tmp_path / "screens.json"
        path.write_text(json.dumps(GOOD))
        rc = main(["--sim", "-b", "-n", "1", "-W", str(path), "-S", "hpc"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "FPC" in out and "LPC" in out

    def test_screen_file_bad_name(self, tmp_path, capsys):
        path = tmp_path / "screens.json"
        path.write_text(json.dumps(GOOD))
        rc = main(["--sim", "-b", "-n", "1", "-W", str(path), "-S", "absent"])
        assert rc == 1
        assert "no screen named" in capsys.readouterr().err
