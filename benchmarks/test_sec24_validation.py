"""§2.4 validation: counter instruction counts versus Pin's inscount2.

Paper: over all of SPEC 2006 (reference inputs), the total instruction
count read from the counters is on average within 0.06 % (6e-4) of the
count produced by Pin's unmodified inscount2. A second validation uses
hand-crafted micro-kernels whose instruction/miss/mispredict counts are
analytically known.
"""

import math

import pytest
from _harness import once, save_artifact

from repro import Options, SimHost, TipTop
from repro.analysis.validation import compare_counts
from repro.pin.inscount import inscount
from repro.sim import NEHALEM, SimMachine
from repro.sim.workload import Workload
from repro.sim.workloads import spec


def _counter_instruction_count(workload: Workload) -> float:
    """Total instructions as tiptop's counters measure them."""
    machine = SimMachine(NEHALEM, tick=1.0, seed=29)
    proc = machine.spawn(workload.name, workload)
    app = TipTop(SimHost(machine), Options(delay=10.0))
    total = 0.0
    with app:
        for i, snap in enumerate(app.snapshots()):
            row = snap.row_for(proc.pid)
            if i > 0 and row is not None:
                total += row.deltas["instructions"]
            if not proc.alive:
                break
    return total


def _run_validation():
    pairs = {}
    for name in spec.available():
        workload = spec.workload(name)
        counted = _counter_instruction_count(workload)
        pinned = inscount(NEHALEM, workload).instructions
        pairs[name] = (counted, pinned)
    return compare_counts(pairs)


def test_sec24_counter_vs_pin(benchmark):
    report = once(benchmark, _run_validation)
    save_artifact("sec24_validation", report.to_table())

    # Paper: mean |error| ~= 0.06 %. Same order of magnitude here.
    assert report.mean_relative_error < 2e-3
    assert report.mean_relative_error > 1e-5  # a *real* residual exists
    assert report.max_relative_error < 5e-3
    assert len(report.rows) == len(spec.available())


def _run_microkernel():
    """A micro-kernel with an analytically known instruction count."""
    w = spec.workload("456.hmmer")
    kernel = Workload("micro", (w.phases[0].with_budget(5e10),))
    counted = _counter_instruction_count(kernel)
    return counted, kernel.total_instructions


def test_sec24_microkernel_exact(benchmark):
    counted, exact = once(benchmark, _run_microkernel)
    # "Tiptop reports numbers in line with predictions."
    assert counted == pytest.approx(exact, rel=1e-6)
