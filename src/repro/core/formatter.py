"""Rendering: live frames and top-b-style batch streams.

Tiptop has no graphics (§2.1): live mode repaints a text screen (ncurses in
the original; a plain string frame here, which is also what the tests
assert against), batch mode appends snapshot blocks to a stream "convenient
for further processing" with sed/awk-style tools.
"""

from __future__ import annotations

from repro.core.sampler import Row, Snapshot
from repro.core.screen import Screen
from repro.util.tabulate import render_table
from repro.util.units import format_seconds


def render_rows(screen: Screen, rows: list[Row] | tuple[Row, ...]) -> str:
    """The column table for a set of rows (header included)."""
    formats = [c.to_format() for c in screen.columns]
    data = [[row.values[c.header] for c in screen.columns] for row in rows]
    return render_table(formats, data)


def render_frame(
    screen: Screen,
    snapshot: Snapshot,
    *,
    idle_threshold: float = 0.0,
) -> str:
    """One live-mode frame: summary line plus the column table."""
    rows = [r for r in snapshot.rows if r.cpu_pct >= idle_threshold]
    busy = sum(1 for r in snapshot.rows if r.cpu_pct >= 50.0)
    header = (
        f"tiptop - up {format_seconds(snapshot.time)}, "
        f"{len(snapshot.rows)} tasks, {busy} running, "
        f"delay {snapshot.interval:.1f}s"
    )
    return header + "\n" + render_rows(screen, rows)


def render_batch(screen: Screen, snapshot: Snapshot) -> str:
    """One batch-mode block (timestamp line, table, trailing blank line)."""
    stamp = f"--- t={snapshot.time:.1f}s interval={snapshot.interval:.1f}s ---"
    return stamp + "\n" + render_rows(screen, snapshot.rows) + "\n"


def render_csv_header(screen: Screen) -> str:
    """CSV header matching :func:`render_csv_row`."""
    cols = ",".join(c.header for c in screen.columns)
    return f"time,{cols}"


def render_csv_row(screen: Screen, snapshot: Snapshot, row: Row) -> str:
    """One task-interval as a CSV line (for the recorder's export)."""
    cells = []
    for c in screen.columns:
        v = row.values[c.header]
        cells.append(f"{v:.6g}" if isinstance(v, float) else str(v))
    return f"{snapshot.time:.1f}," + ",".join(cells)
