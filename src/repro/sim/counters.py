"""Per-task hardware-counter state kept by the simulated kernel.

Models the kernel side of ``perf_event``: each open counter targets one
task and one event, accumulates while the task is scheduled *and* the
counter is programmed into the PMU, and tracks ``time_enabled`` /
``time_running`` exactly as Linux reports them so that user space can scale
multiplexed counts (``value * time_enabled / time_running``).

Multiplexing: when a task has more enabled counters than the PMU width
(sixteen on the modelled Xeon W3550, §2.6), the kernel rotates a window of
``pmu_width`` counters one position per tick — the same round-robin
behaviour Linux exhibits.

Counting vs sampling (§2.5/§4): a counter opened with a ``sample_period``
runs in *sampling* mode — the PMU interrupts every ``period`` events and
the kernel tallies samples, so the reported value is quantised to the
period and loses occasional samples to interrupt coalescing/throttling
(Moore [29] compares the two modes' accuracy; tiptop itself uses
counting). The loss process is deterministic per table seed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.errors import CounterStateError
from repro.sim.events import Event

#: Probability that one sampling interrupt is lost (coalescing/throttling).
SAMPLE_LOSS_PROBABILITY = 0.002


@dataclass
class KernelCounter:
    """Kernel-side state of one opened counter.

    Attributes:
        counter_id: fd-like handle returned to user space.
        event: the counted hardware event.
        tid: target thread id.
        owner_uid: uid of the opening user (permission checks happen at
            open time in the backend).
        enabled: counting is armed.
        closed: handle has been released.
        value: accumulated event count (in sampling mode: samples x period,
            i.e. what user space reconstructs from the sample stream).
        time_enabled: seconds the counter was enabled with a live target.
        time_running: seconds the event was actually counted (target
            scheduled and counter resident in the PMU).
        sample_period: None for counting mode; otherwise the PMU interrupt
            period in events.
        samples: sampling-mode interrupts delivered so far.
    """

    counter_id: int
    event: Event
    tid: int
    owner_uid: int
    enabled: bool = True
    closed: bool = False
    value: float = 0.0
    time_enabled: float = 0.0
    time_running: float = 0.0
    sample_period: int | None = None
    samples: int = 0
    _carry: float = 0.0

    @property
    def sampling(self) -> bool:
        """True when the counter runs in sampling mode."""
        return self.sample_period is not None

    def reading(self) -> tuple[int, float, float]:
        """Snapshot as (value, time_enabled, time_running).

        Raises:
            CounterStateError: on a closed counter.
        """
        if self.closed:
            raise CounterStateError(f"counter {self.counter_id} is closed")
        return int(self.value), self.time_enabled, self.time_running


class CounterTable:
    """All open counters of the simulated kernel, indexed by task.

    Args:
        pmu_width: number of simultaneously countable events per task.
    """

    def __init__(self, pmu_width: int, seed: int = 0) -> None:
        if pmu_width < 1:
            raise CounterStateError(f"pmu_width must be >= 1, got {pmu_width}")
        self.pmu_width = pmu_width
        self._ids = itertools.count(3)  # skip fds 0-2, like a real process
        self._by_id: dict[int, KernelCounter] = {}
        self._by_tid: dict[int, list[KernelCounter]] = {}
        self._rotation: dict[int, int] = {}
        self._rng = np.random.default_rng((seed, 0xC0))
        # Memo for advance_idle: (time_enabled, dt, ticks) -> folded clock.
        # Counters attached at the same instant share time_enabled, so one
        # fold serves a whole cohort.
        self._clock_cache: dict[tuple[float, float, int], float] = {}

    def open(
        self,
        event: Event,
        tid: int,
        owner_uid: int,
        *,
        sample_period: int | None = None,
    ) -> KernelCounter:
        """Create a counter on ``tid`` and return it (enabled by default).

        Raises:
            CounterStateError: for a non-positive sample period.
        """
        if sample_period is not None and sample_period < 1:
            raise CounterStateError(
                f"sample_period must be >= 1, got {sample_period}"
            )
        counter = KernelCounter(
            counter_id=next(self._ids),
            event=event,
            tid=tid,
            owner_uid=owner_uid,
            sample_period=sample_period,
        )
        self._by_id[counter.counter_id] = counter
        self._by_tid.setdefault(tid, []).append(counter)
        self._rotation.setdefault(tid, 0)
        return counter

    def get(self, counter_id: int) -> KernelCounter:
        """Look up a counter by handle.

        Raises:
            CounterStateError: for an unknown or closed handle.
        """
        try:
            counter = self._by_id[counter_id]
        except KeyError as exc:
            raise CounterStateError(f"no such counter {counter_id}") from exc
        if counter.closed:
            raise CounterStateError(f"counter {counter_id} is closed")
        return counter

    def close(self, counter_id: int) -> None:
        """Release a counter handle (idempotent errors raise)."""
        counter = self.get(counter_id)
        counter.closed = True
        counter.enabled = False
        self._by_tid[counter.tid].remove(counter)
        del self._by_id[counter_id]

    def counters_for(self, tid: int) -> list[KernelCounter]:
        """Open counters targeting ``tid`` (may be empty)."""
        return list(self._by_tid.get(tid, ()))

    def _active_window(self, tid: int) -> set[int]:
        """Handles currently resident in the PMU for ``tid``."""
        counters = [c for c in self._by_tid.get(tid, ()) if c.enabled]
        if len(counters) <= self.pmu_width:
            return {c.counter_id for c in counters}
        start = self._rotation.get(tid, 0) % len(counters)
        window = [
            counters[(start + i) % len(counters)] for i in range(self.pmu_width)
        ]
        return {c.counter_id for c in window}

    def rotate(self, tid: int) -> None:
        """Advance the multiplexing window of ``tid`` by one counter."""
        self._rotation[tid] = self._rotation.get(tid, 0) + 1

    def accrue(
        self,
        tid: int,
        deltas: dict[Event, float],
        *,
        wall_dt: float,
        scheduled_dt: float,
        alive: bool,
    ) -> None:
        """Fold one tick's events into the counters of ``tid``.

        Args:
            tid: target thread.
            deltas: event counts produced during the tick (already scaled by
                the scheduled time; zero-filled events may be omitted).
            wall_dt: tick duration (advances ``time_enabled``).
            scheduled_dt: seconds the task was actually on a PU.
            alive: whether the task is still alive (dead tasks freeze).
        """
        counters = self._by_tid.get(tid)
        if not counters:
            return
        window = self._active_window(tid)
        for counter in counters:
            if not counter.enabled or not alive:
                continue
            counter.time_enabled += wall_dt
            if counter.counter_id in window and scheduled_dt > 0:
                counter.time_running += scheduled_dt
                delta = deltas.get(counter.event, 0.0)
                if counter.sampling:
                    self._accrue_sampled(counter, delta)
                else:
                    counter.value += delta
        if len([c for c in counters if c.enabled]) > self.pmu_width:
            self.rotate(tid)

    def advance_idle(self, tid: int, dt: float, ticks: int) -> None:
        """Batch-apply ``ticks`` idle accruals to the counters of ``tid``.

        Bitwise-equivalent to ``ticks`` consecutive
        ``accrue(tid, {}, wall_dt=dt, scheduled_dt=0.0, alive=True)`` calls:
        each enabled counter's ``time_enabled`` advances through the same
        sequence of float additions (folded once per distinct starting
        value and memoised), ``time_running``/``value`` stay put because the
        task never ran, and the multiplexing window rotates once per tick.
        The caller must guarantee the enabled set does not change across the
        covered ticks.
        """
        if ticks <= 0:
            return
        counters = self._by_tid.get(tid)
        if not counters:
            return
        enabled = [c for c in counters if c.enabled]
        for counter in enabled:
            counter.time_enabled = self._fold_clock(
                counter.time_enabled, dt, ticks
            )
        if len(enabled) > self.pmu_width:
            self._rotation[tid] = self._rotation.get(tid, 0) + ticks

    def _fold_clock(self, start: float, dt: float, ticks: int) -> float:
        """``start`` after ``ticks`` sequential ``+= dt`` additions."""
        key = (start, dt, ticks)
        cached = self._clock_cache.get(key)
        if cached is None:
            value = start
            for _ in range(ticks):
                value += dt
            if len(self._clock_cache) >= 65536:
                self._clock_cache.clear()
            self._clock_cache[key] = cached = value
        return cached

    def _accrue_sampled(self, counter: KernelCounter, delta: float) -> None:
        """Sampling-mode accrual: period quantisation plus interrupt loss."""
        period = counter.sample_period or 1
        counter._carry += delta
        due = int(counter._carry // period)
        counter._carry -= due * period
        if due > 0:
            delivered = due - int(
                self._rng.binomial(due, SAMPLE_LOSS_PROBABILITY)
            )
            counter.samples += delivered
            counter.value = counter.samples * period

    def open_count(self) -> int:
        """Number of currently open counters (for leak tests)."""
        return len(self._by_id)
