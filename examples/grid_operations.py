#!/usr/bin/env python3
"""Operating the §3.4 grid: queues, dispatch, and spot monitoring.

Builds a small version of the paper's compute grid (bi-Xeon nodes behind
sixteen SGE-style queues), submits a realistic mixed load, then does what
the paper's authors did in production: attach tiptop to a node and look at
what `%CPU` can't show. Finishes with batch-mode text piped through the
parser — the "UNIX filter" workflow of §2.1.

Run:  python examples/grid_operations.py
"""

from repro import Options, SimHost, TipTop
from repro.core.batchparse import parse_blocks, series_from_blocks
from repro.sim.grid import Grid
from repro.sim.workloads import datacenter, spec
from repro.sim.workload import Workload


def submit_load(grid: Grid) -> None:
    # Short analysis jobs, a few day-long simulations, one eternal service.
    for i in range(20):
        grid.submit(
            f"analysis{i}",
            datacenter.compute_job("analysis", 1.6, duration_hint=90.0),
            user="alice",
            queue="short-2g-asap",
        )
    for i in range(6):
        phase = spec.workload("429.mcf").phases[2].with_budget(float("inf"))
        grid.submit(
            f"sim{i}",
            Workload("mcf-like", (phase,)),
            user="bob",
            queue="long-8g-overnight",
            memory_bytes=6 * 1024**3,
        )
    grid.submit(
        "metrics-daemon",
        datacenter.compute_job("daemon", 1.0),
        user="ops",
        queue="eternal-8g-overnight",
        memory_bytes=3 * 1024**3,
    )


def main() -> None:
    grid = Grid(tick=1.0, seed=13)
    submit_load(grid)
    grid.run_for(30.0)

    print("grid state after 30 s:")
    for state in ("running", "pending", "done"):
        print(f"  {state:8s} {len(grid.jobs(state))}")
    print("  node utilisation:", {
        name: f"{load:.0%}" for name, load in grid.utilisation().items()
    })
    print()

    # Spot-check the busiest standard node with tiptop.
    busiest = max(
        (n for n in grid.utilisation() if n.startswith("node")),
        key=lambda n: grid.utilisation()[n],
    )
    print(f"tiptop -b on {busiest}:")
    node = grid.node(busiest)
    with TipTop(SimHost(node), Options(delay=5.0)) as app:
        blocks = app.run_batch(2, write=lambda s: None)
    print(blocks[-1])

    # The awk side: parse the stream and pull one pid's IPC series.
    parsed = parse_blocks("\n".join(blocks))
    some_pid = parsed[-1].rows[0].pid
    times, ipcs = series_from_blocks(parsed, some_pid, "IPC")
    print(f"pid {some_pid} IPC series from the batch stream: "
          f"{[round(v, 2) for v in ipcs]}")


if __name__ == "__main__":
    main()
