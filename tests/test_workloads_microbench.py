"""The Figure 4/5 micro-benchmark model (Table 1)."""

import pytest

from repro.errors import WorkloadError
from repro.sim import NEHALEM, PPC970
from repro.sim.core import solo_rates
from repro.sim.events import Event
from repro.sim.workloads.microbench import (
    FINITE_EXEC_CPI,
    INSTRUCTIONS_PER_ITERATION,
    fp_microbench,
)


class TestConstruction:
    def test_four_instructions_per_iteration(self):
        w = fp_microbench("x87", "finite", iterations=1000)
        assert w.total_instructions == 4000

    def test_mix_matches_figure5(self):
        """addq, fadd, cmpq, jne: 50 % int ALU, 25 % FP, 25 % branch."""
        phase = fp_microbench("x87", "finite").phases[0]
        assert phase.mix.x87_ops == pytest.approx(0.25)
        assert phase.mix.branches == pytest.approx(0.25)
        assert phase.mix.mem_refs == 0.0

    def test_sse_variant_uses_sse(self):
        phase = fp_microbench("sse", "finite").phases[0]
        assert phase.mix.sse_ops == pytest.approx(0.25)
        assert phase.mix.x87_ops == 0.0

    def test_bad_isa(self):
        with pytest.raises(WorkloadError):
            fp_microbench("avx512", "finite")

    def test_bad_operand_class(self):
        with pytest.raises(WorkloadError):
            fp_microbench("x87", "subnormal")

    def test_bad_iterations(self):
        with pytest.raises(WorkloadError):
            fp_microbench("x87", "finite", iterations=0)


class TestTable1:
    """The measured behaviour of Table 1."""

    def _ipc(self, isa, operands, arch=NEHALEM):
        return solo_rates(arch, fp_microbench(isa, operands).phases[0]).ipc

    def _assist_pct(self, isa, operands, arch=NEHALEM):
        r = solo_rates(arch, fp_microbench(isa, operands).phases[0])
        return 100 * r.events[Event.FP_ASSIST]

    def test_x87_finite(self):
        assert self._ipc("x87", "finite") == pytest.approx(1.33, abs=0.01)
        assert self._assist_pct("x87", "finite") == 0.0

    def test_x87_infinite(self):
        assert self._ipc("x87", "inf") == pytest.approx(0.015, abs=0.002)
        assert self._assist_pct("x87", "inf") == pytest.approx(25.0)

    def test_x87_nan_same_as_inf(self):
        assert self._ipc("x87", "nan") == self._ipc("x87", "inf")

    def test_sse_unaffected(self):
        assert self._ipc("sse", "inf") == pytest.approx(1.33, abs=0.01)
        assert self._assist_pct("sse", "inf") == 0.0

    def test_87x_slowdown(self):
        slow = self._ipc("x87", "finite") / self._ipc("x87", "inf")
        assert slow == pytest.approx(87.0, rel=0.06)

    def test_ppc970_immune(self):
        """Fig. 3d's root cause: no assist mechanism on the PowerPC."""
        fin = self._ipc("x87", "finite", PPC970)
        inf = self._ipc("x87", "inf", PPC970)
        assert inf == pytest.approx(fin, rel=0.01)

    def test_exec_cpi_is_dependency_bound(self):
        # 4 instructions in 3 cycles: the FP-add chain.
        assert FINITE_EXEC_CPI == pytest.approx(3 / INSTRUCTIONS_PER_ITERATION)
